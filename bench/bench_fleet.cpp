// Fleet-scale registry bench: the numbers behind the sharded-map +
// cuckoo-filter + bounded-residency redesign, measured.
//
//   lookup   hit and miss latency across fleet sizes (10k -> 1M keys,
//            every key aliasing one verified artifact): miss with the
//            filter front door, miss with the filter off (sharded map
//            only), and miss against a replica of the pre-fleet
//            registry's key store (std::map under one global mutex) —
//            the speedup column is the headline O(1) negative-lookup
//            claim.
//   threads  aggregate miss throughput under concurrency: the filter's
//            shared-lock probe vs the legacy global mutex.
//   filter   false-positive rate vs occupancy as the dynamic filter
//            grows through stacked segments, against its analytic bound.
//   resident bounded-residency churn over real artifact copies (each
//            its own inode): steady-state resident bytes vs the budget,
//            eviction counters, VmRSS, and bit-parity of every response
//            against an unbounded registry and the in-memory detector.
//
// Results go to BENCH_fleet.json. --max-keys=N trims the fleet-size
// series (default 1000000) for quick runs; other flags are the common
// bench flags.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/detector_registry.h"
#include "bench_common.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "fleet/cuckoo_filter.h"
#include "fleet/fleet.h"

namespace {

using namespace hmd;
using clock_type = std::chrono::steady_clock;

double elapsed_ns(clock_type::time_point start) {
  return std::chrono::duration<double, std::nano>(clock_type::now() - start)
      .count();
}

/// VmRSS in KiB from /proc/self/status (0 when unavailable).
std::size_t rss_kib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu kB", &kib) == 1) break;
  }
  std::fclose(f);
  return kib;
}

std::string fleet_key(std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%07zu", i);
  return buf;
}

/// Distinct miss keys patched digit-by-digit into ONE reused string —
/// the way a real front end sees keys (parsed into a hot wire buffer),
/// so the timing measures the lookup structure, not 16 MB of cold
/// pre-generated probe strings streaming through the cache. Probes look
/// like "k0123456x": the trailing 'x' guarantees a miss (registered
/// keys end in a digit) while the digits land each probe *among* the
/// registered "k%07zu" keys — a probe set sorting wholly after the
/// keyspace would ride the ordered-map baseline's single hot rightmost
/// path and flatter it badly; interleaved probes walk genuinely random
/// (and at fleet scale, cold) paths in every structure.
class KeyGen {
 public:
  KeyGen() : key_("k0000000x") {}

  const std::string& next(std::size_t i) {
    i %= 10'000'000;
    for (std::size_t p = 7; p > 0; --p) {
      key_[p] = static_cast<char>('0' + i % 10);
      i /= 10;
    }
    return key_;
  }

 private:
  std::string key_;
};

/// Replica of the pre-fleet registry's key store: every lookup — hit or
/// miss — serialises behind one global mutex and walks an ordered map
/// (O(log n) string comparisons). This is the miss path the filter
/// front door replaces.
struct LegacyKeyStore {
  std::mutex mutex;
  std::map<std::string, std::string> keys;

  void add(const std::string& key, const std::string& path) {
    const std::lock_guard<std::mutex> lock(mutex);
    keys[key] = path;
  }
  bool contains(const std::string& key) {
    const std::lock_guard<std::mutex> lock(mutex);
    return keys.find(key) != keys.end();
  }
};

/// Best-of-kReps ns/op for `op`; each rep is one pass over its own range
/// of distinct miss keys, after an untimed warmup pass over yet another
/// range. One pass over distinct keys is the realistic miss workload (a
/// front end fielding unknown keys sees fresh values, not a hot
/// microloop re-walking the same few); per-rep ranges keep every timed
/// probe's own path cold; taking the best rep filters out scheduler
/// preemption on busy hosts.
constexpr std::size_t kMissProbes = 500'000;
constexpr std::size_t kRepProbes = 150'000;
constexpr int kReps = 3;
constexpr std::size_t kWarmupProbes = 100'000;
/// Warmup key range, disjoint from the per-rep probe ranges.
constexpr std::size_t kWarmupBase = 5'000'000;

template <typename Op>
double time_probes(Op&& op) {
  KeyGen gen;
  std::size_t sink = 0;
  for (std::size_t i = 0; i < kWarmupProbes; ++i) {
    sink += op(gen.next(kWarmupBase + i)) ? 1 : 0;
  }
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * kRepProbes;
    const auto start = clock_type::now();
    for (std::size_t i = 0; i < kRepProbes; ++i) {
      sink += op(gen.next(base + i)) ? 1 : 0;
    }
    best = std::min(best, elapsed_ns(start) / kRepProbes);
  }
  // The sink keeps the probe loop observable; misses contribute 0.
  if (sink == static_cast<std::size_t>(-1)) std::printf("impossible\n");
  return best;
}

/// ns/op cycling over a small hot working set `rounds` times — the
/// realistic *hit* workload (a served fleet's active models stay hot).
template <typename Op>
double time_hot_probes(const std::vector<std::string>& probes, int rounds,
                       Op&& op) {
  std::size_t sink = 0;
  const auto start = clock_type::now();
  for (int r = 0; r < rounds; ++r) {
    for (const std::string& key : probes) sink += op(key) ? 1 : 0;
  }
  const double ns = elapsed_ns(start);
  if (sink == static_cast<std::size_t>(-1)) std::printf("impossible\n");
  return ns / (static_cast<double>(probes.size()) * rounds);
}

/// Aggregate Mops/s of `threads` workers each probing a disjoint miss
/// key range against `op`. On a single-core host this degenerates to
/// timeshared throughput — hardware_threads in the JSON says which.
template <typename Op>
double concurrent_miss_mops(std::size_t per_thread, int threads, Op&& op) {
  std::vector<std::thread> workers;
  const auto start = clock_type::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&op, per_thread, t] {
      KeyGen gen;
      std::size_t sink = 0;
      const std::size_t base =
          1'000'000 + static_cast<std::size_t>(t) * 777'777;
      for (std::size_t i = 0; i < per_thread; ++i) {
        sink += op(gen.next(base + i)) ? 1 : 0;
      }
      if (sink == static_cast<std::size_t>(-1)) std::printf("impossible\n");
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double seconds = elapsed_ns(start) * 1e-9;
  return static_cast<double>(per_thread) * threads / seconds / 1e6;
}

struct LookupRow {
  std::size_t fleet_keys = 0;
  double hit_ns = 0.0;
  double miss_filter_ns = 0.0;
  double miss_unfiltered_ns = 0.0;
  double miss_legacy_ns = 0.0;
  fleet::FilterStats filter;
};

struct FpRow {
  std::size_t inserted = 0;
  double occupancy = 0.0;
  std::size_t segments = 0;
  double fp_bound = 0.0;
  double measured_fp = 0.0;
};

bool estimates_identical(const std::vector<core::Estimate>& a,
                         const std::vector<core::Estimate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].prediction != b[i].prediction ||
        a[i].votes_malware != b[i].votes_malware ||
        a[i].score != b[i].score || a[i].soft_entropy != b[i].soft_entropy) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_keys = 1'000'000;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-keys=", 11) == 0) {
      max_keys = std::strtoull(argv[i] + 11, nullptr, 10);
      if (max_keys < 1000) max_keys = 1000;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::BenchOptions options = bench::parse_bench_args(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::print_header("bench_fleet",
                      "fleet-scale registry: filter front door, sharded "
                      "lookups, bounded residency");

  // One real training run; every fleet key aliases the artifact.
  const data::DatasetBundle bundle = bench::dvfs_bundle(options);
  core::TrustedHmd hmd(bench::paper_config(options));
  hmd.fit(bundle.train);
  std::filesystem::create_directories("bench_results");
  const std::string artifact = "bench_results/fleet_probe.hmdf";
  core::save_model(hmd, artifact);
  const std::size_t artifact_bytes = std::filesystem::file_size(artifact);
  std::printf("artifact %s: %zu bytes\n", artifact.c_str(), artifact_bytes);

  std::vector<std::size_t> sizes;
  for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000},
                              std::size_t{1'000'000}}) {
    if (n <= max_keys) sizes.push_back(n);
  }
  if (sizes.empty() || sizes.back() != max_keys) sizes.push_back(max_keys);
  const std::size_t top = sizes.back();

  const int kRounds = 4;
  const int kThreads =
      static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  std::vector<LookupRow> rows(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rows[i].fleet_keys = sizes[i];
  }

  // Phase A: the legacy key store (global mutex + std::map), grown
  // incrementally through the size series; kept alive for the
  // concurrency leg, then dropped.
  double legacy_mops = 0.0;
  {
    LegacyKeyStore legacy;
    std::size_t next = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      for (; next < sizes[i]; ++next) legacy.add(fleet_key(next), artifact);
      rows[i].miss_legacy_ns = time_probes(
          [&](const std::string& key) { return legacy.contains(key); });
    }
    legacy_mops = concurrent_miss_mops(
        kMissProbes, kThreads,
        [&](const std::string& key) { return legacy.contains(key); });
  }

  // Phase B: sharded map without the filter (FleetOptions::filter off) —
  // isolates what sharding alone buys on the miss path.
  {
    fleet::FleetOptions no_filter;
    no_filter.filter = false;
    api::DetectorRegistry registry(1, core::LoadMode::kAuto, no_filter);
    std::size_t next = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      for (; next < sizes[i]; ++next) registry.add(fleet_key(next), artifact);
      rows[i].miss_unfiltered_ns = time_probes(
          [&](const std::string& key) { return registry.try_get(key) != nullptr; });
    }
  }

  // Phase C: the full fleet registry. Hit probes cycle over a small
  // pre-loaded working set (the snapshot fast path); miss probes bounce
  // off the filter front door.
  double filter_mops = 0.0;
  {
    api::DetectorRegistry registry(1);
    std::vector<std::string> hit_probes;
    for (std::size_t i = 0; i < 64; ++i) hit_probes.push_back(fleet_key(i));
    std::size_t next = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      for (; next < sizes[i]; ++next) registry.add(fleet_key(next), artifact);
      if (i == 0) {
        for (const std::string& key : hit_probes) registry.get(key);
      }
      rows[i].hit_ns = time_hot_probes(
          hit_probes, kRounds * 512,
          [&](const std::string& key) { return registry.try_get(key) != nullptr; });
      rows[i].miss_filter_ns = time_probes(
          [&](const std::string& key) { return registry.try_get(key) != nullptr; });
      rows[i].filter = registry.fleet_stats().filter;
    }
    filter_mops = concurrent_miss_mops(
        kMissProbes, kThreads,
        [&](const std::string& key) { return registry.try_get(key) != nullptr; });
  }

  std::printf("\nlookup   fleet      hit ns   miss(filter)  miss(sharded)  "
              "miss(legacy map)  speedup\n");
  for (const LookupRow& row : rows) {
    std::printf("lookup   %-9zu %7.1f  %12.1f  %13.1f  %16.1f  %6.1fx\n",
                row.fleet_keys, row.hit_ns, row.miss_filter_ns,
                row.miss_unfiltered_ns, row.miss_legacy_ns,
                row.miss_legacy_ns / row.miss_filter_ns);
  }
  std::printf("threads  %d-thread miss throughput: filter %.1f Mops/s vs "
              "legacy %.1f Mops/s (%.1fx)\n",
              kThreads, filter_mops, legacy_mops, filter_mops / legacy_mops);

  // Filter FP vs occupancy: grow a standalone filter through its
  // stacked segments; at each checkpoint probe non-members and compare
  // the measured rate against the analytic bound.
  std::vector<FpRow> fp_rows;
  double fp_max = 0.0;
  {
    fleet::DynamicCuckooFilter filter;
    const std::vector<std::size_t> checkpoints = {4'000, 16'000, 64'000,
                                                  256'000, top};
    std::size_t inserted = 0;
    for (const std::size_t checkpoint : checkpoints) {
      if (checkpoint > top) break;
      for (; inserted < checkpoint; ++inserted) {
        filter.insert(fleet_key(inserted));
      }
      KeyGen gen;
      std::size_t false_hits = 0;
      for (std::size_t i = 0; i < kMissProbes; ++i) {
        false_hits += filter.may_contain(gen.next(i)) ? 1 : 0;
      }
      const fleet::FilterStats stats = filter.stats();
      FpRow row;
      row.inserted = inserted;
      row.occupancy = stats.occupancy;
      row.segments = stats.segments;
      row.fp_bound = stats.fp_bound;
      row.measured_fp =
          static_cast<double>(false_hits) / static_cast<double>(kMissProbes);
      fp_max = std::max(fp_max, row.measured_fp);
      fp_rows.push_back(row);
      std::printf("filter   %7zu keys, %zu segment(s), occupancy %.2f: "
                  "measured fp %.4f%% (bound %.4f%%)\n",
                  row.inserted, row.segments, row.occupancy,
                  100.0 * row.measured_fp, 100.0 * row.fp_bound);
    }
  }

  // Bounded residency churn over real copies (each its own inode, so an
  // eviction genuinely unmaps pages), with bit-parity against both an
  // unbounded registry and the in-memory detector.
  const std::size_t kCopies = 32;
  const std::string copies_dir = "bench_results/fleet_copies";
  std::filesystem::create_directories(copies_dir);
  std::vector<std::string> copy_keys;
  for (std::size_t i = 0; i < kCopies; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "copy_%03zu", i);
    const std::string path = copies_dir + "/" + name + ".hmdf";
    std::filesystem::copy_file(
        artifact, path, std::filesystem::copy_options::overwrite_existing);
    copy_keys.emplace_back(name);
  }
  const auto want = hmd.estimate_batch(bundle.test.X);

  const std::size_t rss_baseline = rss_kib();
  std::size_t footprint = 0;
  std::size_t budget = 0;
  fleet::ResidencyStats bounded_stats;
  std::size_t rss_bounded = 0;
  bool within_budget = false;
  bool parity_ok = true;
  {
    api::DetectorRegistry bounded(options.n_threads);
    for (std::size_t i = 0; i < kCopies; ++i) {
      bounded.add(copy_keys[i], copies_dir + "/" + copy_keys[i] + ".hmdf");
    }
    bounded.get(copy_keys[0]);
    footprint = bounded.fleet_stats().residency.resident_bytes;
    budget = footprint * 6;  // room for ~6 of the 32 copies
    bounded.set_residency_budget_bytes(budget);
    // Churn: several passes in a scrambled order, so the LRU tier keeps
    // evicting cold copies and transparently reloading them.
    for (int pass = 0; pass < 4; ++pass) {
      for (std::size_t i = 0; i < kCopies; ++i) {
        const std::size_t pick = (i * 2654435761ull + pass) % kCopies;
        const auto detector = bounded.get(copy_keys[pick]);
        if (pass == 3 && pick < 4) {
          parity_ok = parity_ok &&
                      estimates_identical(
                          want, detector->estimate_batch(bundle.test.X));
        }
      }
    }
    bounded_stats = bounded.fleet_stats().residency;
    rss_bounded = rss_kib();
    within_budget = bounded_stats.resident_bytes <= budget;
  }

  std::size_t rss_unbounded = 0;
  {
    api::DetectorRegistry unbounded(options.n_threads);
    for (std::size_t i = 0; i < kCopies; ++i) {
      unbounded.add(copy_keys[i], copies_dir + "/" + copy_keys[i] + ".hmdf");
    }
    for (std::size_t i = 0; i < kCopies; ++i) {
      const auto detector = unbounded.get(copy_keys[i]);
      if (i < 4) {
        parity_ok = parity_ok &&
                    estimates_identical(
                        want, detector->estimate_batch(bundle.test.X));
      }
    }
    rss_unbounded = rss_kib();
  }

  std::printf("resident %zu copies x %zu KiB, budget %zu KiB: steady "
              "%zu KiB (%s), %llu eviction(s), %llu pinned skip(s)\n",
              kCopies, footprint / 1024, budget / 1024,
              bounded_stats.resident_bytes / 1024,
              within_budget ? "within budget" : "OVER BUDGET",
              static_cast<unsigned long long>(bounded_stats.evictions),
              static_cast<unsigned long long>(bounded_stats.pinned_skips));
  std::printf("rss      baseline %zu KiB, bounded churn %zu KiB, unbounded "
              "all-resident %zu KiB\n",
              rss_baseline, rss_bounded, rss_unbounded);
  std::printf("parity   %s\n", parity_ok ? "ok" : "FAIL");

  const LookupRow& top_row = rows.back();
  const double speedup_vs_legacy =
      top_row.miss_legacy_ns / top_row.miss_filter_ns;
  const double speedup_vs_unfiltered =
      top_row.miss_unfiltered_ns / top_row.miss_filter_ns;

  std::FILE* out = std::fopen("BENCH_fleet.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_fleet: cannot write BENCH_fleet.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_fleet\",\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"max_keys\": %zu,\n", top);
  std::fprintf(out, "  \"artifact_bytes\": %zu,\n", artifact_bytes);
  std::fprintf(out, "  \"lookup_series\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LookupRow& row = rows[i];
    std::fprintf(out,
                 "    {\"fleet_keys\": %zu, \"hit_ns\": %.1f, "
                 "\"miss_filter_ns\": %.1f, \"miss_unfiltered_ns\": %.1f, "
                 "\"miss_legacy_map_ns\": %.1f,\n     "
                 "\"miss_speedup_vs_legacy\": %.2f, "
                 "\"filter_segments\": %zu, \"filter_occupancy\": %.3f, "
                 "\"filter_fp_bound\": %.5f}%s\n",
                 row.fleet_keys, row.hit_ns, row.miss_filter_ns,
                 row.miss_unfiltered_ns, row.miss_legacy_ns,
                 row.miss_legacy_ns / row.miss_filter_ns,
                 row.filter.segments, row.filter.occupancy,
                 row.filter.fp_bound, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"concurrent_miss\": {\"threads\": %d, \"fleet_keys\": "
               "%zu, \"filter_mops\": %.2f, \"legacy_mops\": %.2f, "
               "\"speedup\": %.2f},\n",
               kThreads, top, filter_mops, legacy_mops,
               filter_mops / legacy_mops);
  std::fprintf(out, "  \"fp_sweep\": [\n");
  for (std::size_t i = 0; i < fp_rows.size(); ++i) {
    const FpRow& row = fp_rows[i];
    std::fprintf(out,
                 "    {\"inserted\": %zu, \"occupancy\": %.3f, "
                 "\"segments\": %zu, \"fp_bound\": %.5f, "
                 "\"measured_fp\": %.5f}%s\n",
                 row.inserted, row.occupancy, row.segments, row.fp_bound,
                 row.measured_fp, i + 1 < fp_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"fp_max_measured\": %.5f,\n", fp_max);
  std::fprintf(out,
               "  \"residency\": {\"copies\": %zu, \"model_footprint_bytes\""
               ": %zu, \"budget_bytes\": %zu,\n   \"steady_resident_bytes\": "
               "%zu, \"within_budget\": %s, \"admits\": %llu, \"evictions\": "
               "%llu,\n   \"pinned_skips\": %llu, \"rss_baseline_kib\": %zu, "
               "\"rss_bounded_kib\": %zu, \"rss_unbounded_kib\": %zu},\n",
               kCopies, footprint, budget, bounded_stats.resident_bytes,
               within_budget ? "true" : "false",
               static_cast<unsigned long long>(bounded_stats.admits),
               static_cast<unsigned long long>(bounded_stats.evictions),
               static_cast<unsigned long long>(bounded_stats.pinned_skips),
               rss_baseline, rss_bounded, rss_unbounded);
  // The speedup is reported against both baselines: the pre-fleet key
  // store (global mutex + ordered map) and this registry with the front
  // door disabled (sharded map only). On a memory-resident keyspace both
  // the filter probe and the tree walk bottom out at DRAM latency, so
  // the single-thread ratio is hardware-bound; the filter's structural
  // wins — a flat O(1) miss cost as the fleet grows and a lock-free
  // probe that scales with cores where the mutex serialises — show in
  // the lookup series' shape and the concurrent leg.
  std::fprintf(out,
               "  \"acceptance\": {\"miss_speedup_vs_legacy_at_max_keys\": "
               "%.2f, \"miss_speedup_vs_unfiltered_at_max_keys\": %.2f, "
               "\"concurrent_miss_speedup\": %.2f,\n   "
               "\"miss_ns_flat_across_series\": %s, "
               "\"fp_within_one_percent\": %s, \"residency_within_budget\": "
               "%s, \"parity_ok\": %s}\n",
               speedup_vs_legacy, speedup_vs_unfiltered,
               filter_mops / legacy_mops,
               top_row.miss_filter_ns <= 4.0 * rows.front().miss_filter_ns
                   ? "true"
                   : "false",
               fp_max <= 0.01 ? "true" : "false",
               within_budget ? "true" : "false", parity_ok ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::filesystem::remove(artifact);
  std::filesystem::remove_all(copies_dir);
  std::printf("summary written to BENCH_fleet.json\n");
  return parity_ok && within_budget && fp_max <= 0.01 ? 0 : 1;
}
