// Serving front-end bench: the socket path end to end, measured.
//
// Starts the real ScoreServer (serve/server.h) on a loopback ephemeral
// port — an in-process thread, but real TCP, real epoll, real framing —
// and drives it with the wire-protocol load generator (serve/loadgen.h),
// sweeping two batching policies across connection counts:
//
//   batch1    max_batch_rows=1: every request scores alone, the
//             no-coalescing baseline;
//   adaptive  the default policy (rows-cap 256, deadline 200 us, idle
//             flush): concurrent requests coalesce into engine-sized
//             tiles.
//
// Every response in every run is compared bit-for-bit against a direct
// score() of the same rows (the serving contract in serve/wire.h), and a
// mask sweep re-checks parity for prediction-only, detection, and full
// estimate requests. The summary — latency percentiles, throughput
// series, the batch-1 vs coalesced knee — is written to
// BENCH_serving.json so the serving perf trajectory is tracked
// PR-over-PR.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/detector_registry.h"
#include "api/score.h"
#include "bench_common.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

using namespace hmd;

constexpr std::size_t kRowsPerRequest = 4;
constexpr char kModelKey[] = "serving_probe";

struct RunConfig {
  const char* policy;  ///< "batch1" | "adaptive"
  std::size_t max_batch_rows;
  int max_delay_us;
  int connections;
  int pipeline;
  std::uint64_t requests;
};

struct RunRow {
  RunConfig config;
  serve::LoadGenReport report;
  double mean_batch_rows = 0.0;
  std::uint64_t batches = 0;
};

/// One measured run: fresh server (so batcher stats are per-run and read
/// race-free after join), loadgen to completion, stats folded together.
RunRow run_config(api::DetectorRegistry& registry, const Matrix& source,
                  const api::ScoreResult& expected, const RunConfig& config) {
  serve::ServerOptions options;
  options.batcher.max_batch_rows = config.max_batch_rows;
  options.batcher.max_delay_us = config.max_delay_us;
  serve::ScoreServer server(registry, options);
  std::thread server_thread([&server] { server.run(); });

  serve::LoadGenOptions load;
  load.port = server.port();
  load.model_key = kModelKey;
  load.source = &source;
  load.rows_per_request = kRowsPerRequest;
  load.connections = config.connections;
  load.pipeline = config.pipeline;
  load.total_requests = config.requests;
  load.expected = &expected;

  RunRow row;
  row.config = config;
  try {
    row.report = serve::run_load(load);
  } catch (...) {
    server.request_stop();
    server_thread.join();
    throw;
  }
  server.request_stop();
  server_thread.join();
  const serve::BatcherStats& stats = server.batcher_stats();
  row.batches = stats.batches;
  row.mean_batch_rows = stats.batches > 0
                            ? static_cast<double>(stats.rows) /
                                  static_cast<double>(stats.batches)
                            : 0.0;
  return row;
}

struct MaskRun {
  const char* name;
  api::OutputMask outputs;
  bool parity_ok = false;
  std::string detail;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_bench_args(argc, argv);
  bench::print_header("bench_serving",
                      "socket front-end: adaptive micro-batching vs batch-1, "
                      "bit-parity asserted on every response");

  const data::DatasetBundle bundle = bench::dvfs_bundle(options);
  core::TrustedHmd hmd(bench::paper_config(options));
  hmd.fit(bundle.train);

  std::filesystem::create_directories("bench_results");
  const std::string artifact = "bench_results/serving_probe.hmdf";
  core::save_model(hmd, artifact);
  api::DetectorRegistry registry(options.n_threads);
  registry.add(kModelKey, artifact);
  registry.get(kModelKey);  // load outside the measured runs

  const Matrix& source = bundle.test.X;
  api::ScoreRequest oracle_request;
  oracle_request.x = &source;
  oracle_request.outputs = api::kDetectionOutputs;
  api::ScoreResult expected;
  hmd.score(oracle_request, expected);

  // Latency/throughput series: both policies across connection counts.
  std::vector<RunRow> rows;
  bool all_parity = true;
  for (const bool adaptive : {false, true}) {
    for (const int connections : {1, 4, 16, 32}) {
      RunConfig config;
      config.policy = adaptive ? "adaptive" : "batch1";
      config.max_batch_rows = adaptive ? 256 : 1;
      config.max_delay_us = adaptive ? 200 : 0;
      config.connections = connections;
      config.pipeline = 4;
      config.requests = 2000ull * static_cast<unsigned>(connections);
      const RunRow row = run_config(registry, source, expected, config);
      all_parity = all_parity && row.report.parity_ok &&
                   row.report.wire_errors == 0;
      std::printf("%-8s conns=%-2d  %8.0f req/s  %8.0f rows/s  p50 %7.1f us"
                  "  p99 %8.1f us  p99.9 %8.1f us  batch %.1f rows  %s\n",
                  config.policy, connections, row.report.requests_per_sec,
                  row.report.rows_per_sec, row.report.p50_us,
                  row.report.p99_us, row.report.p999_us, row.mean_batch_rows,
                  row.report.parity_ok ? "parity ok" : "PARITY FAIL");
      if (!row.report.parity_ok) {
        std::printf("  mismatch: %s\n", row.report.parity_detail.c_str());
      }
      rows.push_back(row);
    }
  }

  // Mask sweep: the bit-parity claim must hold for every served mask
  // family, not just the detection shape the series above used.
  std::vector<MaskRun> mask_runs = {
      {"prediction", api::kPredictionOnly | api::kOutTrusted, false, ""},
      {"detect", api::kDetectionOutputs, false, ""},
      {"estimate", api::kEstimateOutputs, false, ""},
  };
  for (MaskRun& mask : mask_runs) {
    api::ScoreRequest request;
    request.x = &source;
    request.outputs = mask.outputs;
    api::ScoreResult mask_expected;
    hmd.score(request, mask_expected);
    RunConfig config{"adaptive", 256, 200, 4, 4, 1000};
    serve::ServerOptions server_options;
    server_options.batcher.max_batch_rows = config.max_batch_rows;
    server_options.batcher.max_delay_us = config.max_delay_us;
    serve::ScoreServer server(registry, server_options);
    std::thread server_thread([&server] { server.run(); });
    serve::LoadGenOptions load;
    load.port = server.port();
    load.model_key = kModelKey;
    load.outputs = mask.outputs;
    load.source = &source;
    load.rows_per_request = kRowsPerRequest;
    load.connections = config.connections;
    load.pipeline = config.pipeline;
    load.total_requests = config.requests;
    load.expected = &mask_expected;
    try {
      const serve::LoadGenReport report = serve::run_load(load);
      mask.parity_ok = report.parity_ok && report.wire_errors == 0;
      mask.detail = report.parity_detail;
    } catch (const std::exception& error) {
      mask.parity_ok = false;
      mask.detail = error.what();
    }
    server.request_stop();
    server_thread.join();
    all_parity = all_parity && mask.parity_ok;
    std::printf("mask     %-10s %s\n", mask.name,
                mask.parity_ok ? "parity ok" : mask.detail.c_str());
  }

  // The knee: where coalescing starts paying. Compare peak throughput and
  // the p99 at the highest concurrency.
  double batch1_peak = 0.0, adaptive_peak = 0.0;
  double batch1_p99_hi = 0.0, adaptive_p99_hi = 0.0;
  for (const RunRow& row : rows) {
    const bool adaptive = std::string(row.config.policy) == "adaptive";
    (adaptive ? adaptive_peak : batch1_peak) =
        std::max(adaptive ? adaptive_peak : batch1_peak,
                 row.report.rows_per_sec);
    if (row.config.connections == 32) {
      (adaptive ? adaptive_p99_hi : batch1_p99_hi) = row.report.p99_us;
    }
  }
  std::printf("knee     batch1 peak %.0f rows/s, adaptive peak %.0f rows/s "
              "(%.2fx); p99 @32 conns: %.1f us -> %.1f us\n",
              batch1_peak, adaptive_peak, adaptive_peak / batch1_peak,
              batch1_p99_hi, adaptive_p99_hi);

  std::FILE* out = std::fopen("BENCH_serving.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_serving: cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_serving\",\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  std::fprintf(out, "  \"rows_per_request\": %zu,\n", kRowsPerRequest);
  std::fprintf(out, "  \"pipeline_per_connection\": 4,\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"series\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& row = rows[i];
    std::fprintf(out,
                 "    {\"policy\": \"%s\", \"connections\": %d, "
                 "\"requests\": %llu, \"requests_per_sec\": %.1f, "
                 "\"rows_per_sec\": %.1f,\n     \"p50_us\": %.1f, "
                 "\"p90_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
                 "\"mean_us\": %.1f, \"max_us\": %.1f,\n     "
                 "\"mean_batch_rows\": %.2f, \"batches\": %llu, "
                 "\"parity_ok\": %s}%s\n",
                 row.config.policy, row.config.connections,
                 static_cast<unsigned long long>(row.report.requests_sent),
                 row.report.requests_per_sec, row.report.rows_per_sec,
                 row.report.p50_us, row.report.p90_us, row.report.p99_us,
                 row.report.p999_us, row.report.mean_us, row.report.max_us,
                 row.mean_batch_rows,
                 static_cast<unsigned long long>(row.batches),
                 row.report.parity_ok ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"mask_parity\": [\n");
  for (std::size_t i = 0; i < mask_runs.size(); ++i) {
    std::fprintf(out, "    {\"outputs\": \"%s\", \"parity_ok\": %s}%s\n",
                 mask_runs[i].name, mask_runs[i].parity_ok ? "true" : "false",
                 i + 1 < mask_runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"knee\": {\"batch1_peak_rows_per_sec\": %.1f, "
               "\"adaptive_peak_rows_per_sec\": %.1f, "
               "\"coalescing_speedup\": %.2f,\n   "
               "\"batch1_p99_us_at_32_conns\": %.1f, "
               "\"adaptive_p99_us_at_32_conns\": %.1f},\n",
               batch1_peak, adaptive_peak, adaptive_peak / batch1_peak,
               batch1_p99_hi, adaptive_p99_hi);
  std::fprintf(out, "  \"all_parity_ok\": %s\n", all_parity ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::filesystem::remove(artifact);
  std::printf("summary written to BENCH_serving.json\n");
  return all_parity ? 0 : 1;
}
