// Regenerates Fig. 7b of the paper: F1 score on the known test split as a
// function of the entropy rejection threshold, on the DVFS and HPC
// datasets. The paper uses RF; --model=lr|svm re-runs the sweep for the
// other detector families.
//
// Paper shape: RF-DVFS starts high (~0.95+) and is flat — rejection cannot
// improve an already-clean dataset much. RF-HPC starts around 0.8 at loose
// thresholds and climbs to ~0.95 as uncertain predictions are rejected
// (precision rises; recall drops), the paper's Section V.B result.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto options = bench::parse_bench_args(argc, argv);

  const std::string name = core::model_kind_name(options.model);
  bench::print_header(
      "Fig. 7b — F1 vs entropy threshold (" + name + "-DVFS and " + name +
          "-HPC)",
      "F1 over the accepted subset of the known test split");

  const auto thresholds = core::threshold_grid(0.05, 0.85, 17);
  ConsoleTable table({"threshold", "RF-DVFS f1", "RF-DVFS rej%",
                      "RF-HPC f1", "RF-HPC rej%", "RF-HPC precision",
                      "RF-HPC recall"});

  std::vector<core::F1CurvePoint> dvfs_curve, hpc_curve;
  {
    const auto bundle = bench::dvfs_bundle(options);
    core::TrustedHmd hmd(bench::paper_config(options));
    hmd.fit(bundle.train);
    dvfs_curve = core::f1_vs_threshold(hmd, bundle.test, thresholds);
  }
  {
    const auto bundle = bench::hpc_bundle(options);
    core::TrustedHmd hmd(bench::paper_config(options));
    hmd.fit(bundle.train);
    hpc_curve = core::f1_vs_threshold(hmd, bundle.test, thresholds);
  }

  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    table.add_row({ConsoleTable::fmt(thresholds[t], 2),
                   ConsoleTable::fmt(dvfs_curve[t].f1, 3),
                   ConsoleTable::fmt(100.0 * dvfs_curve[t].fraction_rejected, 1),
                   ConsoleTable::fmt(hpc_curve[t].f1, 3),
                   ConsoleTable::fmt(100.0 * hpc_curve[t].fraction_rejected, 1),
                   ConsoleTable::fmt(hpc_curve[t].precision, 3),
                   ConsoleTable::fmt(hpc_curve[t].recall, 3)});
  }
  std::cout << table;
  std::cout << "(paper: HPC RF F1 rises from ~0.8-0.84 with no rejection to "
               "~0.95 under aggressive rejection,\n driven by precision; "
               "DVFS RF stays high throughout)\n";
  write_text_file("bench_results/fig7b_f1_threshold.csv", table.to_csv());
  std::cout << "[series written to bench_results/fig7b_f1_threshold.csv]\n";
  return 0;
}
