// Regenerates Fig. 9b of the paper: percentage of known and unknown HPC
// inputs rejected as the entropy threshold sweeps from 0 to 0.80, for the
// RF and LR ensembles (SVM is excluded for non-convergence).
//
// Paper shape: unlike the DVFS dataset, the known and unknown curves track
// each other closely — the unknown data lives in the class-overlap region,
// so rejection cannot separate zero-days from in-distribution inputs.

#include <iostream>

#include "bench_common.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  using namespace hmd;
  using core::ModelKind;
  const auto options = bench::parse_bench_args(argc, argv);
  const auto bundle = bench::hpc_bundle(options);

  bench::print_header(
      "Fig. 9b — Rejected inputs vs entropy threshold, HPC dataset",
      "series: {RF, LR} x {unknown, known}, percent rejected");

  const auto thresholds = core::threshold_grid(0.0, 0.80, 17);
  std::vector<std::string> headers{"threshold"};
  std::vector<std::vector<double>> series;
  std::vector<std::string> notes;
  for (auto kind : {ModelKind::kRandomForest, ModelKind::kBaggedLogistic}) {
    core::TrustedHmd hmd(bench::paper_config(options, kind));
    hmd.fit(bundle.train);
    const auto dists = core::entropy_distributions(hmd, bundle);
    const auto curve =
        core::rejection_curve(dists.known, dists.unknown, thresholds);
    const std::string name = core::model_kind_name(kind);
    headers.push_back(name + "-unknown");
    headers.push_back(name + "-known");
    std::vector<double> unknown_col, known_col;
    double max_gap = 0.0;
    for (const auto& point : curve) {
      unknown_col.push_back(point.rejected_unknown);
      known_col.push_back(point.rejected_known);
      max_gap = std::max(max_gap, std::abs(point.rejected_unknown -
                                           point.rejected_known));
    }
    series.push_back(unknown_col);
    series.push_back(known_col);
    notes.push_back(name + ": max |unknown-known| gap over the sweep = " +
                    ConsoleTable::fmt(max_gap, 1) +
                    " percentage points; OOD AUROC = " +
                    ConsoleTable::fmt(core::ood_auroc(dists), 3));
  }

  ConsoleTable table(headers);
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    std::vector<std::string> row{ConsoleTable::fmt(thresholds[t], 2)};
    for (const auto& column : series) {
      row.push_back(ConsoleTable::fmt(column[t], 1));
    }
    table.add_row(row);
  }
  std::cout << table;
  for (const auto& note : notes) std::cout << note << "\n";
  std::cout << "(paper: known and unknown curves nearly coincide — the "
               "estimator cannot flag HPC zero-days)\n";
  write_text_file("bench_results/fig9b_hpc_rejection.csv", table.to_csv());
  std::cout << "[series written to bench_results/fig9b_hpc_rejection.csv]\n";
  return 0;
}
