// Ablation A2: where does ensemble diversity come from, and how much does
// each source matter for uncertainty quality?
//
// The paper uses plain bagging (bootstrap resampling). This bench compares,
// for the DVFS dataset and each base-learner family:
//   bootstrap    — the paper's configuration
//   subagging    — 50% replicates drawn without replacement
//   subspace     — bootstrap + 50% random feature subspaces
//   none         — every member sees the full dataset; only the learner's
//                  internal randomness differs (Lakshminarayanan-style
//                  random-init diversity; deterministic learners collapse)

#include <iostream>

#include "bench_common.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

namespace {

using namespace hmd;

ml::ClassifierFactory base_factory(core::ModelKind kind) {
  switch (kind) {
    case core::ModelKind::kRandomForest: {
      ml::DecisionTreeParams tree;
      tree.max_features = 0;  // per-split feature subsampling
      return [tree]() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::DecisionTree>(tree);
      };
    }
    case core::ModelKind::kBaggedLogistic:
      return []() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::LogisticRegression>();
      };
    case core::ModelKind::kBaggedSvm:
      return []() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::LinearSvm>();
      };
  }
  throw InvalidArgument("base_factory: bad kind");
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = hmd::bench::parse_bench_args(argc, argv);
  const auto bundle = hmd::bench::dvfs_bundle(options);

  hmd::bench::print_header(
      "Ablation A2 — sources of ensemble diversity (DVFS dataset)",
      "OOD AUROC and unknown rejection at <=5% known cost, per variant");

  ml::StandardScaler scaler;
  const Matrix train_x = scaler.fit_transform(bundle.train.X);
  const Matrix test_x = scaler.transform(bundle.test.X);
  const Matrix unknown_x = scaler.transform(bundle.unknown.X);

  struct Variant {
    std::string name;
    bool bootstrap;
    double sample_fraction;
    double feature_fraction;
  };
  const std::vector<Variant> variants{
      {"bootstrap", true, 1.0, 1.0},
      {"subagging 50%", false, 0.5, 1.0},
      {"subspace 50%", true, 1.0, 0.5},
      {"none (seed only)", false, 1.0, 1.0},
  };

  ConsoleTable table({"Base", "Diversity", "AUROC", "rej@5%", "test acc"});
  for (auto kind : {core::ModelKind::kRandomForest,
                    core::ModelKind::kBaggedLogistic,
                    core::ModelKind::kBaggedSvm}) {
    for (const auto& variant : variants) {
      ml::BaggingParams params;
      params.n_members = options.n_members;
      params.seed = 99;
      params.n_threads = options.n_threads;
      params.bootstrap = variant.bootstrap;
      params.sample_fraction = variant.sample_fraction;
      params.feature_fraction = variant.feature_fraction;
      ml::Bagging ensemble(base_factory(kind), params);
      ensemble.fit(train_x, bundle.train.y);

      const core::UncertaintyEstimator estimator(
          core::EnsembleView::of(ensemble));
      core::EntropyDistributions dists;
      dists.known =
          estimator.scores(test_x, core::UncertaintyMode::kVoteEntropy);
      dists.unknown =
          estimator.scores(unknown_x, core::UncertaintyMode::kVoteEntropy);
      const auto grid = core::threshold_grid(0.0, 0.70, 141);
      const auto op =
          core::best_operating_point(dists.known, dists.unknown, grid, 5.0);
      const auto pred = ensemble.predict(test_x);
      table.add_row({core::model_kind_name(kind), variant.name,
                     ConsoleTable::fmt(core::ood_auroc(dists), 3),
                     ConsoleTable::fmt(op.rejected_unknown, 1),
                     ConsoleTable::fmt(
                         ml::accuracy_score(bundle.test.y, pred), 3)});
    }
  }
  std::cout << table;
  std::cout << "(expected: trees keep diversity everywhere; deterministic "
               "linear members collapse\n under 'none' — resampling is what "
               "creates their uncertainty signal)\n";
  hmd::write_text_file("bench_results/ablation_diversity.csv", table.to_csv());
  return 0;
}
