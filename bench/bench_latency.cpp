// Ablation A4 (google-benchmark): the runtime cost of trustworthiness.
//
// The paper positions the estimator as an *online* component with "minor
// modifications to the standard pipeline"; this bench quantifies that
// claim: per-sample detection latency of the conventional detector vs the
// trusted detector across ensemble sizes, batched throughput through the
// flat struct-of-arrays engine, the seed's pointer-chasing reference path
// for comparison, and the cost of the surrounding pipeline stages (SoC
// simulation and feature extraction).
//
// After the google-benchmark suite runs, main() self-times the per-sample
// vs batched inference paths and the CSV vs binary bundle cache and writes
// a machine-readable BENCH_latency.json summary into the working
// directory, so the perf trajectory is tracked PR-over-PR.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/flat_forest.h"
#include "core/hmd.h"
#include "core/uncertainty.h"
#include "datasets/dvfs_dataset.h"
#include "datasets/io.h"
#include "features/dvfs_features.h"
#include "features/hpc_features.h"
#include "sim/app_profiles.h"
#include "sim/soc.h"

namespace {

using namespace hmd;

/// Small shared DVFS bundle (built once; benchmarks time inference only).
const data::DatasetBundle& bundle() {
  static const data::DatasetBundle instance = [] {
    data::DvfsDatasetConfig config;
    config.n_train = 420;
    config.n_test = 140;
    config.n_unknown = 60;
    return data::build_dvfs_dataset(config);
  }();
  return instance;
}

core::HmdConfig config_for(int members) {
  core::HmdConfig config;
  config.n_members = members;
  config.n_threads = 0;
  config.seed = 1;
  return config;
}

void BM_UntrustedDetect(benchmark::State& state) {
  core::UntrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::size_t i = 0;
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect(x.row(i++ % x.rows())));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UntrustedDetect)->Arg(100);

void BM_TrustedDetect(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::size_t i = 0;
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect(x.row(i++ % x.rows())));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrustedDetect)->Arg(5)->Arg(20)->Arg(50)->Arg(100);

/// The seed's per-sample path: pointer-chasing member-by-member queries
/// through the reference ml::Bagging ensemble (what detect() cost before
/// the flat engine existed).
void BM_TrustedDetectReference(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const core::UncertaintyEstimator reference(
      core::EnsembleView::of(hmd.ensemble()));
  const int members = static_cast<int>(state.range(0));
  std::size_t i = 0;
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    const auto stats = reference.reference_stats(x.row(i++ % x.rows()));
    benchmark::DoNotOptimize(core::uncertainty_score(
        core::UncertaintyMode::kVoteEntropy, stats, members, nullptr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrustedDetectReference)->Arg(20)->Arg(100);

void BM_UntrustedDetectBatch(benchmark::State& state) {
  core::UntrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect_batch(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
}
BENCHMARK(BM_UntrustedDetectBatch)->Arg(20)->Arg(100);

void BM_TrustedDetectBatch(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect_batch(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
}
BENCHMARK(BM_TrustedDetectBatch)->Arg(20)->Arg(100);

void BM_TrustedEstimateBatch(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const auto& x = bundle().unknown.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.estimate_batch(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
}
BENCHMARK(BM_TrustedEstimateBatch)->Arg(20)->Arg(100);

void BM_UncertaintyEstimateOnly(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::size_t i = 0;
  const auto& x = bundle().unknown.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.estimate(x.row(i++ % x.rows())));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UncertaintyEstimateOnly)->Arg(20)->Arg(100);

void BM_EnsembleFit(benchmark::State& state) {
  for (auto _ : state) {
    core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
    hmd.fit(bundle().train);
    benchmark::DoNotOptimize(hmd);
  }
}
BENCHMARK(BM_EnsembleFit)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SocSimOneSecond(benchmark::State& state) {
  sim::SocSim soc;
  const auto profile = sim::dvfs_benign_apps()[0];
  Rng rng(3);
  for (auto _ : state) {
    sim::Workload run = profile.sample(rng);
    while (run.total_duration_ms() < 1000.0) {
      const auto more = profile.sample(rng);
      run.phases.insert(run.phases.end(), more.phases.begin(),
                        more.phases.end());
    }
    benchmark::DoNotOptimize(soc.run(run, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SocSimOneSecond)->Unit(benchmark::kMillisecond);

void BM_DvfsFeaturize(benchmark::State& state) {
  sim::SocSim soc;
  Rng rng(4);
  const auto trace = soc.run(sim::dvfs_benign_apps()[1].sample(rng), rng);
  const features::DvfsFeaturizer featurizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.features(trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DvfsFeaturize);

void BM_HpcFeaturize(benchmark::State& state) {
  sim::SocSim soc;
  Rng rng(5);
  const auto trace = soc.run(sim::dvfs_benign_apps()[1].sample(rng), rng);
  const features::HpcFeaturizer featurizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.features(trace.hpc_windows.front()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HpcFeaturize);

// ---------------------------------------------------------------------------
// BENCH_latency.json summary: self-timed throughput of the per-sample vs
// batched inference paths and of the CSV vs binary bundle cache.

/// Items/sec of `call` (which processes items_per_call items), run for at
/// least min_seconds after one warm-up call.
template <typename F>
double items_per_sec(std::size_t items_per_call, F&& call,
                     double min_seconds = 0.4) {
  using clock = std::chrono::steady_clock;
  call();  // warm-up
  std::size_t calls = 0;
  double elapsed = 0.0;
  const auto start = clock::now();
  do {
    call();
    ++calls;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(calls * items_per_call) / elapsed;
}

/// Wall-clock milliseconds of one call.
template <typename F>
double time_ms(F&& call) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  call();
  return std::chrono::duration<double, std::milli>(clock::now() - start)
      .count();
}

struct ThroughputRow {
  int members = 0;
  double per_sample_flat = 0.0;       ///< detect() items/sec, flat engine
  double per_sample_reference = 0.0;  ///< seed pointer-path items/sec
  double batch = 0.0;                 ///< detect_batch() items/sec
  double estimate_batch = 0.0;        ///< estimate_batch() items/sec
};

ThroughputRow measure_throughput(int members) {
  core::TrustedHmd hmd(config_for(members));
  hmd.fit(bundle().train);
  const core::UncertaintyEstimator reference(
      core::EnsembleView::of(hmd.ensemble()));
  const auto& x = bundle().test.X;

  ThroughputRow row;
  row.members = members;
  row.per_sample_flat = items_per_sec(x.rows(), [&] {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      benchmark::DoNotOptimize(hmd.detect(x.row(r)));
    }
  });
  row.per_sample_reference = items_per_sec(x.rows(), [&] {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto stats = reference.reference_stats(x.row(r));
      benchmark::DoNotOptimize(core::uncertainty_score(
          core::UncertaintyMode::kVoteEntropy, stats, members, nullptr));
    }
  });
  row.batch = items_per_sec(
      x.rows(), [&] { benchmark::DoNotOptimize(hmd.detect_batch(x)); });
  row.estimate_batch = items_per_sec(
      x.rows(), [&] { benchmark::DoNotOptimize(hmd.estimate_batch(x)); });
  return row;
}

struct CacheTiming {
  double csv_save_ms = 0.0;
  double csv_load_ms = 0.0;
  double binary_save_ms = 0.0;
  double binary_load_ms = 0.0;
};

CacheTiming measure_cache(const std::string& stem) {
  CacheTiming timing;
  const auto& probe = bundle();
  timing.csv_save_ms = time_ms([&] { data::save_bundle_csv(probe, stem); });
  timing.csv_load_ms = time_ms([&] {
    benchmark::DoNotOptimize(data::load_bundle_csv("probe", stem));
  });
  timing.binary_save_ms = time_ms([&] { data::save_bundle(probe, stem); });
  timing.binary_load_ms = time_ms([&] {
    benchmark::DoNotOptimize(data::load_bundle("probe", stem));
  });
  return timing;
}

void write_summary_json(const char* path) {
  std::fprintf(stderr, "\n[bench_latency] measuring summary for %s ...\n",
               path);
  std::vector<ThroughputRow> rows;
  for (const int members : {20, 100}) {
    rows.push_back(measure_throughput(members));
  }

  const std::string probe_dir = "bench_results";
  std::filesystem::create_directories(probe_dir);
  const std::string stem = probe_dir + "/latency_cache_probe";
  const CacheTiming cache = measure_cache(stem);
  for (const char* suffix :
       {".hmdb", "_train.csv", "_test.csv", "_unknown.csv"}) {
    std::filesystem::remove(stem + suffix);
  }

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench_latency] cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_latency\",\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  std::fprintf(out, "  \"n_train\": %zu,\n  \"n_test\": %zu,\n",
               bundle().train.size(), bundle().test.size());
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"throughput_items_per_sec\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& row = rows[i];
    std::fprintf(out,
                 "    {\"members\": %d, \"per_sample_flat\": %.1f, "
                 "\"per_sample_reference\": %.1f, \"detect_batch\": %.1f, "
                 "\"estimate_batch\": %.1f,\n     "
                 "\"speedup_batch_vs_seed_per_sample\": %.2f, "
                 "\"speedup_batch_vs_flat_per_sample\": %.2f}%s\n",
                 row.members, row.per_sample_flat, row.per_sample_reference,
                 row.batch, row.estimate_batch,
                 row.batch / row.per_sample_reference,
                 row.batch / row.per_sample_flat,
                 i + 1 < rows.size() ? "," : "");
    std::fprintf(stderr,
                 "[bench_latency] M=%d detect items/sec: reference "
                 "(seed per-sample) %.0f | flat per-sample %.0f | "
                 "flat batch %.0f (%.1fx vs seed, %.1fx vs flat)\n",
                 row.members, row.per_sample_reference, row.per_sample_flat,
                 row.batch, row.batch / row.per_sample_reference,
                 row.batch / row.per_sample_flat);
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"bundle_cache_ms\": {\"csv_save\": %.3f, \"csv_load\": "
               "%.3f, \"binary_save\": %.3f, \"binary_load\": %.3f, "
               "\"load_speedup_binary_vs_csv\": %.1f}\n",
               cache.csv_save_ms, cache.csv_load_ms, cache.binary_save_ms,
               cache.binary_load_ms, cache.csv_load_ms / cache.binary_load_ms);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr,
               "[bench_latency] bundle cache load: csv %.3f ms -> binary "
               "%.3f ms (%.1fx)\n[bench_latency] summary written to %s\n",
               cache.csv_load_ms, cache.binary_load_ms,
               cache.csv_load_ms / cache.binary_load_ms, path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_summary_json("BENCH_latency.json");
  return 0;
}
