// Ablation A4 (google-benchmark): the runtime cost of trustworthiness.
//
// The paper positions the estimator as an *online* component with "minor
// modifications to the standard pipeline"; this bench quantifies that
// claim: per-sample detection latency of the conventional detector vs the
// trusted detector across ensemble sizes, batched throughput through the
// flat struct-of-arrays engine, the seed's pointer-chasing reference path
// for comparison, and the cost of the surrounding pipeline stages (SoC
// simulation and feature extraction).
//
// After the google-benchmark suite runs, main() self-times the per-sample
// vs batched inference paths and the CSV vs binary bundle cache and writes
// a machine-readable BENCH_latency.json summary into the working
// directory, so the perf trajectory is tracked PR-over-PR.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/detector_registry.h"
#include "api/score.h"
#include "core/flat_forest.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "core/uncertainty.h"
#include "datasets/dvfs_dataset.h"
#include "datasets/hpc_dataset.h"
#include "datasets/io.h"
#include "features/dvfs_features.h"
#include "features/hpc_features.h"
#include "jit/jit.h"
#include "sim/app_profiles.h"
#include "sim/soc.h"

namespace {

using namespace hmd;

/// Small shared DVFS bundle (built once; benchmarks time inference only).
const data::DatasetBundle& bundle() {
  static const data::DatasetBundle instance = [] {
    data::DvfsDatasetConfig config;
    config.n_train = 420;
    config.n_test = 140;
    config.n_unknown = 60;
    return data::build_dvfs_dataset(config);
  }();
  return instance;
}

core::HmdConfig config_for(int members) {
  core::HmdConfig config;
  config.n_members = members;
  config.n_threads = 0;
  config.seed = 1;
  return config;
}

/// A serving-scale forest for the zero-copy artifact rows: HPC data
/// (overlapping classes, deep trees — the DVFS bundle compiles to a few
/// hundred stumps, far too small to show a residency effect) at a train
/// size that puts the arena in the megabyte range. Built once; both the
/// BM_ rows and the JSON summary share it.
struct BigForest {
  data::DatasetBundle bundle;
  core::TrustedHmd hmd;
};

const BigForest& big_forest() {
  static const BigForest instance = [] {
    data::HpcDatasetConfig config;
    config.n_train = 8000;
    config.n_test = 16;  // the "first batch" a cold-started server sees
    config.n_unknown = 16;
    data::DatasetBundle bundle = data::build_hpc_dataset(config);
    core::TrustedHmd hmd(config_for(100));
    hmd.fit(bundle.train);
    return BigForest{std::move(bundle), std::move(hmd)};
  }();
  return instance;
}

core::HmdConfig linear_config_for(core::ModelKind kind, int members) {
  core::HmdConfig config = config_for(members);
  config.model = kind;
  return config;
}

/// The pre-engine linear batch path, reproduced verbatim: standardise the
/// whole matrix, then query members one sample at a time and accumulate
/// with the reference accumulate_stats. This is what detect_batch cost on
/// LR/SVM models before FlatLinearEngine existed.
std::vector<core::EnsembleStats> reference_linear_batch(
    const core::UntrustedHmd& hmd, const Matrix& x) {
  const Matrix scaled = hmd.input_scaler().transform(x);
  std::vector<core::EnsembleStats> stats(scaled.rows());
  std::vector<double> probabilities;
  for (std::size_t r = 0; r < scaled.rows(); ++r) {
    hmd.ensemble().member_probabilities(scaled.row(r), probabilities);
    stats[r] = core::accumulate_stats(probabilities);
  }
  return stats;
}

void BM_UntrustedDetect(benchmark::State& state) {
  core::UntrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::size_t i = 0;
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect(x.row(i++ % x.rows())));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UntrustedDetect)->Arg(100);

void BM_TrustedDetect(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::size_t i = 0;
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect(x.row(i++ % x.rows())));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrustedDetect)->Arg(5)->Arg(20)->Arg(50)->Arg(100);

/// The seed's per-sample path: pointer-chasing member-by-member queries
/// through the reference ml::Bagging ensemble (what detect() cost before
/// the flat engine existed).
void BM_TrustedDetectReference(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const core::UncertaintyEstimator reference(
      core::EnsembleView::of(hmd.ensemble()));
  const int members = static_cast<int>(state.range(0));
  std::size_t i = 0;
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    const auto stats = reference.reference_stats(x.row(i++ % x.rows()));
    benchmark::DoNotOptimize(core::uncertainty_score(
        core::UncertaintyMode::kVoteEntropy, stats, members, nullptr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrustedDetectReference)->Arg(20)->Arg(100);

void BM_UntrustedDetectBatch(benchmark::State& state) {
  core::UntrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect_batch(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
}
BENCHMARK(BM_UntrustedDetectBatch)->Arg(20)->Arg(100);

void BM_TrustedDetectBatch(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect_batch(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
}
BENCHMARK(BM_TrustedDetectBatch)->Arg(20)->Arg(100);

void BM_TrustedEstimateBatch(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const auto& x = bundle().unknown.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.estimate_batch(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
}
BENCHMARK(BM_TrustedEstimateBatch)->Arg(20)->Arg(100);

void BM_UncertaintyEstimateOnly(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::size_t i = 0;
  const auto& x = bundle().unknown.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.estimate(x.row(i++ % x.rows())));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UncertaintyEstimateOnly)->Arg(20)->Arg(100);

void BM_LinearDetectBatch(benchmark::State& state) {
  const auto kind = state.range(1) == 0 ? core::ModelKind::kBaggedLogistic
                                        : core::ModelKind::kBaggedSvm;
  core::TrustedHmd hmd(
      linear_config_for(kind, static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect_batch(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
}
BENCHMARK(BM_LinearDetectBatch)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({20, 0});

void BM_LinearDetectBatchReference(benchmark::State& state) {
  const auto kind = state.range(1) == 0 ? core::ModelKind::kBaggedLogistic
                                        : core::ModelKind::kBaggedSvm;
  core::TrustedHmd hmd(
      linear_config_for(kind, static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_linear_batch(hmd, x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
}
BENCHMARK(BM_LinearDetectBatchReference)->Args({100, 0})->Args({100, 1});

void BM_LinearEstimateBatch(benchmark::State& state) {
  core::TrustedHmd hmd(linear_config_for(core::ModelKind::kBaggedLogistic,
                                         static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  const auto& x = bundle().unknown.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.estimate_batch(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
}
BENCHMARK(BM_LinearEstimateBatch)->Arg(100);

/// The unified score() spine under different OutputMasks: what a serving
/// loop pays for hard labels only vs the full Estimate family. range(0) =
/// M, range(1) = model (0 rf / 1 lr / 2 svm), range(2) = mask (0
/// prediction-only / 1 detection / 2 full estimate).
void BM_MaskedScore(benchmark::State& state) {
  static const core::ModelKind kinds[] = {core::ModelKind::kRandomForest,
                                          core::ModelKind::kBaggedLogistic,
                                          core::ModelKind::kBaggedSvm};
  static const api::OutputMask masks[] = {
      api::kPredictionOnly, api::kDetectionOutputs, api::kEstimateOutputs};
  core::TrustedHmd hmd(linear_config_for(
      kinds[state.range(1)], static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  api::ScoreRequest request;
  request.x = &bundle().test.X;
  request.outputs = masks[state.range(2)];
  api::ScoreResult result;  // reused: the loop body allocates nothing
  hmd.score(request, result);
  for (auto _ : state) {
    hmd.score(request, result);
    benchmark::DoNotOptimize(result.prediction.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bundle().test.X.rows()));
}
BENCHMARK(BM_MaskedScore)
    ->Args({100, 0, 0})
    ->Args({100, 0, 2})
    ->Args({100, 1, 0})
    ->Args({100, 1, 2})
    ->Args({100, 2, 0})
    ->Args({100, 2, 2});

/// Steady-state cost of a DetectorRegistry snapshot lookup (the per-batch
/// overhead hmd_serve pays for hot-swappability).
void BM_RegistryLookup(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/bm_registry.hmdf";
  core::save_model(hmd, path);
  api::DetectorRegistry registry(1);
  registry.add("model", path);
  registry.get("model");  // pay the lazy load outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.get("model"));
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_RegistryLookup)->Arg(100);

/// Steady-state cost of an unknown-key lookup: with the cuckoo-filter
/// front door (range(0) != 0) the probe is rejected O(1) with no shard
/// lock; with the filter off it pays the sharded-map walk. This is the
/// per-request floor a fleet front end pays for junk keys.
void BM_RegistryLookupMiss(benchmark::State& state) {
  fleet::FleetOptions fleet_options;
  fleet_options.filter = state.range(0) != 0;
  api::DetectorRegistry registry(1, core::LoadMode::kAuto, fleet_options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.try_get("unknown_model"));
  }
}
BENCHMARK(BM_RegistryLookupMiss)->Arg(1)->Arg(0);

void BM_ArtifactSave(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/bm_artifact.hmdf";
  for (auto _ : state) {
    core::save_model(hmd, path);
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_ArtifactSave)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_ArtifactLoad(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/bm_artifact.hmdf";
  core::save_model(hmd, path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::load_model(path));
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_ArtifactLoad)->Arg(100)->Unit(benchmark::kMicrosecond);

/// Verify-once-then-trust vs the legacy deep walk: loading a checksummed
/// artifact verifies three section hashes (O(bytes), sequential, SIMD-
/// friendly) and skips the O(n_nodes) structural walk; a checksum-less
/// v2 file must still walk every tree. range(0): 0 = checksummed,
/// 1 = checksum-less. Uses the deep HPC forest so the walk has real work.
void BM_ArtifactLoadChecksum(benchmark::State& state) {
  const BigForest& forest = big_forest();
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/bm_artifact_checksum.hmdf";
  core::save_model(forest.hmd, path, core::kModelFormatVersion,
                   /*section_checksums=*/state.range(0) == 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::load_model(path, 1));
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_ArtifactLoadChecksum)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

/// Map-and-serve: a v2 artifact loaded zero-copy (mmap) and immediately
/// asked for its first batch — the serving cold-start this PR optimises.
/// range(0) picks the mode: 0 = mmap v2, 1 = full-copy v2 read, 2 = v1
/// stream load (the pre-zero-copy baseline the acceptance bar compares
/// against).
void BM_ArtifactLoadMmap(benchmark::State& state) {
  const BigForest& forest = big_forest();
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/bm_artifact_mmap.hmdf";
  const long variant = state.range(0);
  core::save_model(forest.hmd, path,
                   variant == 2 ? core::kModelFormatV1
                                : core::kModelFormatVersion);
  const auto mode =
      variant == 0 ? core::LoadMode::kMmap : core::LoadMode::kStream;
  const auto& x = forest.bundle.test.X;
  for (auto _ : state) {
    const core::TrustedHmd served = core::load_model(path, 1, mode);
    benchmark::DoNotOptimize(served.detect_batch(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.rows()));
  std::filesystem::remove(path);
}
BENCHMARK(BM_ArtifactLoadMmap)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_EnsembleFit(benchmark::State& state) {
  for (auto _ : state) {
    core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
    hmd.fit(bundle().train);
    benchmark::DoNotOptimize(hmd);
  }
}
BENCHMARK(BM_EnsembleFit)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SocSimOneSecond(benchmark::State& state) {
  sim::SocSim soc;
  const auto profile = sim::dvfs_benign_apps()[0];
  Rng rng(3);
  for (auto _ : state) {
    sim::Workload run = profile.sample(rng);
    while (run.total_duration_ms() < 1000.0) {
      const auto more = profile.sample(rng);
      run.phases.insert(run.phases.end(), more.phases.begin(),
                        more.phases.end());
    }
    benchmark::DoNotOptimize(soc.run(run, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SocSimOneSecond)->Unit(benchmark::kMillisecond);

void BM_DvfsFeaturize(benchmark::State& state) {
  sim::SocSim soc;
  Rng rng(4);
  const auto trace = soc.run(sim::dvfs_benign_apps()[1].sample(rng), rng);
  const features::DvfsFeaturizer featurizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.features(trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DvfsFeaturize);

void BM_HpcFeaturize(benchmark::State& state) {
  sim::SocSim soc;
  Rng rng(5);
  const auto trace = soc.run(sim::dvfs_benign_apps()[1].sample(rng), rng);
  const features::HpcFeaturizer featurizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.features(trace.hpc_windows.front()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HpcFeaturize);

// ---------------------------------------------------------------------------
// BENCH_latency.json summary: self-timed throughput of the per-sample vs
// batched inference paths and of the CSV vs binary bundle cache.

/// Items/sec of `call` (which processes items_per_call items), run for at
/// least min_seconds after one warm-up call.
template <typename F>
double items_per_sec(std::size_t items_per_call, F&& call,
                     double min_seconds = 0.4) {
  using clock = std::chrono::steady_clock;
  call();  // warm-up
  std::size_t calls = 0;
  double elapsed = 0.0;
  const auto start = clock::now();
  do {
    call();
    ++calls;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(calls * items_per_call) / elapsed;
}

/// Wall-clock milliseconds of one call.
template <typename F>
double time_ms(F&& call) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  call();
  return std::chrono::duration<double, std::milli>(clock::now() - start)
      .count();
}

struct ThroughputRow {
  int members = 0;
  double per_sample_flat = 0.0;       ///< detect() items/sec, flat engine
  double per_sample_reference = 0.0;  ///< seed pointer-path items/sec
  double batch = 0.0;                 ///< detect_batch() items/sec
  double estimate_batch = 0.0;        ///< estimate_batch() items/sec
};

ThroughputRow measure_throughput(int members) {
  core::TrustedHmd hmd(config_for(members));
  hmd.fit(bundle().train);
  const core::UncertaintyEstimator reference(
      core::EnsembleView::of(hmd.ensemble()));
  const auto& x = bundle().test.X;

  ThroughputRow row;
  row.members = members;
  row.per_sample_flat = items_per_sec(x.rows(), [&] {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      benchmark::DoNotOptimize(hmd.detect(x.row(r)));
    }
  });
  row.per_sample_reference = items_per_sec(x.rows(), [&] {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto stats = reference.reference_stats(x.row(r));
      benchmark::DoNotOptimize(core::uncertainty_score(
          core::UncertaintyMode::kVoteEntropy, stats, members, nullptr));
    }
  });
  row.batch = items_per_sec(
      x.rows(), [&] { benchmark::DoNotOptimize(hmd.detect_batch(x)); });
  row.estimate_batch = items_per_sec(
      x.rows(), [&] { benchmark::DoNotOptimize(hmd.estimate_batch(x)); });
  return row;
}

/// Linear-ensemble batch throughput: the flat weight-matrix engine vs the
/// pre-engine per-member path (the "batch cliff" this PR removed).
struct LinearThroughputRow {
  std::string model;
  int members = 0;
  double batch_flat = 0.0;       ///< detect_batch() via FlatLinearEngine
  double batch_reference = 0.0;  ///< pre-engine per-member batch path
  double estimate_batch = 0.0;   ///< estimate_batch() via FlatLinearEngine
};

LinearThroughputRow measure_linear_throughput(core::ModelKind kind,
                                              int members) {
  core::TrustedHmd hmd(linear_config_for(kind, members));
  hmd.fit(bundle().train);
  const auto& x = bundle().test.X;
  LinearThroughputRow row;
  row.model = core::model_kind_name(kind);
  row.members = members;
  row.batch_flat = items_per_sec(
      x.rows(), [&] { benchmark::DoNotOptimize(hmd.detect_batch(x)); });
  row.batch_reference = items_per_sec(x.rows(), [&] {
    benchmark::DoNotOptimize(reference_linear_batch(hmd, x));
  });
  row.estimate_batch = items_per_sec(
      x.rows(), [&] { benchmark::DoNotOptimize(hmd.estimate_batch(x)); });
  return row;
}

/// Masked score() throughput per model family: the cheapest useful
/// request (prediction only) vs the Detection-shaped mask vs the full
/// Estimate family, all through one spine with one reused ScoreResult.
struct MaskedScoreRow {
  std::string model;
  int members = 0;
  double prediction_only = 0.0;  ///< api::kPredictionOnly items/sec
  double detection = 0.0;        ///< api::kDetectionOutputs items/sec
  double full_estimate = 0.0;    ///< api::kEstimateOutputs items/sec
};

MaskedScoreRow measure_masked_score(core::ModelKind kind, int members) {
  core::TrustedHmd hmd(linear_config_for(kind, members));
  hmd.fit(bundle().train);
  const auto& x = bundle().test.X;
  api::ScoreRequest request;
  request.x = &x;
  api::ScoreResult result;
  MaskedScoreRow row;
  row.model = core::model_kind_name(kind);
  row.members = members;
  const auto throughput = [&](api::OutputMask outputs) {
    request.outputs = outputs;
    return items_per_sec(x.rows(), [&] {
      hmd.score(request, result);
      benchmark::DoNotOptimize(result.prediction.data());
    });
  };
  row.prediction_only = throughput(api::kPredictionOnly);
  row.detection = throughput(api::kDetectionOutputs);
  row.full_estimate = throughput(api::kEstimateOutputs);
  return row;
}

/// Registry overheads: the snapshot lookup a serving loop pays per batch,
/// the no-op refresh() a hot-swap poll pays per interval, and the
/// unknown-key miss — through the filter front door and with the filter
/// disabled (sharded map only).
struct RegistryTiming {
  double lookup_ns = 0.0;
  double refresh_noop_ns = 0.0;
  double miss_ns = 0.0;
  double miss_unfiltered_ns = 0.0;
};

RegistryTiming measure_registry(int members) {
  core::TrustedHmd hmd(config_for(members));
  hmd.fit(bundle().train);
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/latency_registry_probe.hmdf";
  core::save_model(hmd, path);
  api::DetectorRegistry registry(1);
  registry.add("model", path);
  registry.get("model");
  RegistryTiming timing;
  timing.lookup_ns =
      1e9 / items_per_sec(1, [&] {
        benchmark::DoNotOptimize(registry.get("model"));
      }, /*min_seconds=*/0.1);
  timing.refresh_noop_ns =
      1e9 / items_per_sec(1, [&] {
        benchmark::DoNotOptimize(registry.refresh());
      }, /*min_seconds=*/0.1);
  timing.miss_ns =
      1e9 / items_per_sec(1, [&] {
        benchmark::DoNotOptimize(registry.try_get("unknown_model"));
      }, /*min_seconds=*/0.1);
  {
    fleet::FleetOptions no_filter;
    no_filter.filter = false;
    api::DetectorRegistry unfiltered(1, core::LoadMode::kAuto, no_filter);
    unfiltered.add("model", path);
    timing.miss_unfiltered_ns =
        1e9 / items_per_sec(1, [&] {
          benchmark::DoNotOptimize(unfiltered.try_get("unknown_model"));
        }, /*min_seconds=*/0.1);
  }
  std::filesystem::remove(path);
  return timing;
}

/// Train-once / serve-many: what a serving process pays to load a .hmdf
/// artifact vs retraining the same detector from scratch.
struct ArtifactTiming {
  double retrain_ms = 0.0;
  double save_ms = 0.0;
  double load_ms = 0.0;
};

ArtifactTiming measure_artifact(int members) {
  ArtifactTiming timing;
  core::TrustedHmd hmd(config_for(members));
  timing.retrain_ms = time_ms([&] { hmd.fit(bundle().train); });
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/latency_artifact_probe.hmdf";
  timing.save_ms = time_ms([&] { core::save_model(hmd, path); });
  timing.load_ms = time_ms([&] {
    benchmark::DoNotOptimize(core::load_model(path));
  });
  std::filesystem::remove(path);
  return timing;
}

/// Zero-copy vs full-copy artifact residency: load alone and
/// load-plus-first-batch (map-and-serve) for the v2 mmap path, the v2
/// full-read path, and the v1 stream baseline. Measured over repeated
/// calls (items_per_sec inverted) — single-shot sub-millisecond timings
/// are too noisy for PR-over-PR tracking.
struct ArtifactMmapTiming {
  double v2_mmap_load_ms = 0.0;
  double v2_read_load_ms = 0.0;
  double v1_stream_load_ms = 0.0;
  double v2_mmap_serve_ms = 0.0;  ///< load + first detect_batch
  double v1_stream_serve_ms = 0.0;
};

ArtifactMmapTiming measure_artifact_mmap() {
  const BigForest& forest = big_forest();
  std::filesystem::create_directories("bench_results");
  const std::string v2_path = "bench_results/latency_mmap_probe_v2.hmdf";
  const std::string v1_path = "bench_results/latency_mmap_probe_v1.hmdf";
  core::save_model(forest.hmd, v2_path);
  core::save_model(forest.hmd, v1_path, core::kModelFormatV1);
  const auto& x = forest.bundle.test.X;

  const auto ms_per_call = [](auto&& call) {
    return 1e3 / items_per_sec(1, call, /*min_seconds=*/0.2);
  };
  ArtifactMmapTiming timing;
  timing.v2_mmap_load_ms = ms_per_call([&] {
    benchmark::DoNotOptimize(
        core::load_model(v2_path, 1, core::LoadMode::kMmap));
  });
  timing.v2_read_load_ms = ms_per_call([&] {
    benchmark::DoNotOptimize(
        core::load_model(v2_path, 1, core::LoadMode::kStream));
  });
  timing.v1_stream_load_ms = ms_per_call([&] {
    benchmark::DoNotOptimize(core::load_model(v1_path, 1));
  });
  timing.v2_mmap_serve_ms = ms_per_call([&] {
    const core::TrustedHmd served =
        core::load_model(v2_path, 1, core::LoadMode::kMmap);
    benchmark::DoNotOptimize(served.detect_batch(x));
  });
  timing.v1_stream_serve_ms = ms_per_call([&] {
    const core::TrustedHmd served = core::load_model(v1_path, 1);
    benchmark::DoNotOptimize(served.detect_batch(x));
  });
  std::filesystem::remove(v2_path);
  std::filesystem::remove(v1_path);
  return timing;
}

/// Integrity-check cost: checksummed load (verify hashes, skip the deep
/// walk) vs checksum-less load (full structural walk) of the same deep
/// forest, plus save-side overhead of computing the checksums.
struct ArtifactChecksumTiming {
  double checksum_load_ms = 0.0;
  double walk_load_ms = 0.0;
  double checksum_save_ms = 0.0;
  double plain_save_ms = 0.0;
};

ArtifactChecksumTiming measure_artifact_checksum() {
  const BigForest& forest = big_forest();
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/latency_checksum_probe.hmdf";
  const auto ms_per_call = [](auto&& call) {
    return 1e3 / items_per_sec(1, call, /*min_seconds=*/0.2);
  };

  ArtifactChecksumTiming timing;
  timing.checksum_save_ms = ms_per_call([&] {
    core::save_model(forest.hmd, path);
  });
  timing.checksum_load_ms = ms_per_call([&] {
    benchmark::DoNotOptimize(core::load_model(path, 1));
  });
  timing.plain_save_ms = ms_per_call([&] {
    core::save_model(forest.hmd, path, core::kModelFormatVersion,
                     /*section_checksums=*/false);
  });
  timing.walk_load_ms = ms_per_call([&] {
    benchmark::DoNotOptimize(core::load_model(path, 1));
  });
  std::filesystem::remove(path);
  return timing;
}

/// Tree-to-native JIT vs the interpreted arena, per artifact scale. Each
/// row trains an RF, publishes it as a .hmdf, loads it twice from the
/// same bytes — policy off (interpreted arena kernels) and policy on
/// (native code compiled at load) — and gates everything on bit-identical
/// outputs across the full Detection and Estimate column sets over the
/// serving-scale batch. A row whose parity check fails is REFUSED: it is
/// reported on stderr and counted, but never written to the JSON (a fast
/// wrong kernel must not enter the perf trajectory as a win).
struct JitSeriesRow {
  std::string label;
  std::size_t n_train = 0;
  int members = 0;
  std::size_t nodes = 0;
  std::size_t stumps = 0;
  std::size_t batch_rows = 0;
  std::size_t code_bytes = 0;
  double compile_ms = 0.0;
  /// Cold-start yardstick the compile cost is judged against: mmap load
  /// of the same artifact plus its first interpreted detect_batch.
  double arena_load_first_batch_ms = 0.0;
  double arena_batch = 0.0;         ///< detect_batch items/sec, arena
  double jit_batch = 0.0;           ///< detect_batch items/sec, native
  double arena_estimate_mask = 0.0; ///< score(kEstimateOutputs) items/sec
  double jit_estimate_mask = 0.0;
  bool parity_ok = false;
};

bool bitwise_equal_outputs(const core::TrustedHmd& a,
                           const core::TrustedHmd& b, const Matrix& x) {
  const auto detect_a = a.detect_batch(x);
  const auto detect_b = b.detect_batch(x);
  const auto estimate_a = a.estimate_batch(x);
  const auto estimate_b = b.estimate_batch(x);
  if (detect_a.size() != detect_b.size() ||
      estimate_a.size() != estimate_b.size()) {
    return false;
  }
  for (std::size_t r = 0; r < detect_a.size(); ++r) {
    if (detect_a[r].prediction != detect_b[r].prediction ||
        detect_a[r].confidence != detect_b[r].confidence ||
        detect_a[r].score != detect_b[r].score ||
        detect_a[r].trusted != detect_b[r].trusted) {
      return false;
    }
  }
  for (std::size_t r = 0; r < estimate_a.size(); ++r) {
    const core::Estimate& ea = estimate_a[r];
    const core::Estimate& eb = estimate_b[r];
    if (ea.prediction != eb.prediction ||
        ea.votes_malware != eb.votes_malware ||
        ea.vote_entropy != eb.vote_entropy ||
        ea.soft_entropy != eb.soft_entropy ||
        ea.expected_entropy != eb.expected_entropy ||
        ea.mutual_information != eb.mutual_information ||
        ea.variation_ratio != eb.variation_ratio ||
        ea.max_probability != eb.max_probability || ea.score != eb.score ||
        ea.trusted != eb.trusted) {
      return false;
    }
  }
  return true;
}

JitSeriesRow measure_jit(const std::string& label,
                         const core::TrustedHmd& trained,
                         const Matrix& batch, std::size_t n_train) {
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/latency_jit_probe.hmdf";
  core::save_model(trained, path);
  const auto ms_per_call = [](auto&& call) {
    return 1e3 / items_per_sec(1, call, /*min_seconds=*/0.2);
  };

  JitSeriesRow row;
  row.label = label;
  row.n_train = n_train;
  row.members = static_cast<int>(trained.engine().n_members());
  row.batch_rows = batch.rows();

  const jit::Policy saved = jit::policy();
  jit::set_policy(jit::Policy::kOff);
  const core::TrustedHmd arena =
      core::load_model(path, 1, core::LoadMode::kMmap);
  row.arena_load_first_batch_ms = ms_per_call([&] {
    const core::TrustedHmd served =
        core::load_model(path, 1, core::LoadMode::kMmap);
    benchmark::DoNotOptimize(served.detect_batch(batch));
  });
  jit::set_policy(jit::Policy::kOn);
  const core::TrustedHmd jitted =
      core::load_model(path, 1, core::LoadMode::kMmap);
  jit::set_policy(saved);
  std::filesystem::remove(path);

  row.nodes = jitted.flat_forest().n_nodes();
  row.stumps = jitted.flat_forest().n_stumps();
  row.code_bytes = jitted.flat_forest().jit_code_bytes();
  row.compile_ms = jitted.flat_forest().jit_compile_ms();

  // The gate comes first: no parity, no timings worth having.
  row.parity_ok = bitwise_equal_outputs(arena, jitted, batch);
  if (!row.parity_ok) return row;

  row.arena_batch = items_per_sec(
      batch.rows(), [&] { benchmark::DoNotOptimize(arena.detect_batch(batch)); });
  row.jit_batch = items_per_sec(
      batch.rows(), [&] { benchmark::DoNotOptimize(jitted.detect_batch(batch)); });
  const auto masked = [&](const core::TrustedHmd& hmd) {
    api::ScoreRequest request;
    request.x = &batch;
    request.outputs = api::kEstimateOutputs;
    api::ScoreResult result;
    hmd.score(request, result);
    return items_per_sec(batch.rows(), [&] {
      hmd.score(request, result);
      benchmark::DoNotOptimize(result.prediction.data());
    });
  };
  row.arena_estimate_mask = masked(arena);
  row.jit_estimate_mask = masked(jitted);
  return row;
}

/// A fixed-size serving batch (rows cycled from `x`): both series rows
/// are judged against the same 4096-row batch a socket server's batcher
/// would hand the engine, independent of the training-set size.
Matrix serving_batch(const Matrix& x, std::size_t rows) {
  Matrix batch(rows, x.cols());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      batch(r, c) = x(r % x.rows(), c);
    }
  }
  return batch;
}

std::vector<JitSeriesRow> measure_jit_series() {
  constexpr std::size_t kServingRows = 4096;
  std::vector<JitSeriesRow> rows;
  if (!jit::available()) return rows;
  {
    // Mid-size serving artifact: the scale where compile time must pay
    // for itself inside one arena cold start.
    data::HpcDatasetConfig config;
    config.n_train = 1000;
    config.n_test = 16;
    config.n_unknown = 16;
    const data::DatasetBundle hpc1k = data::build_hpc_dataset(config);
    core::TrustedHmd trained(config_for(100));
    trained.fit(hpc1k.train);
    rows.push_back(measure_jit("hpc_rf_1k", trained,
                               serving_batch(hpc1k.train.X, kServingRows),
                               config.n_train));
  }
  // The deep megabyte-scale forest shared with the artifact rows.
  const BigForest& forest = big_forest();
  rows.push_back(measure_jit("hpc_rf_8k", forest.hmd,
                             serving_batch(forest.bundle.train.X,
                                           kServingRows),
                             8000));
  return rows;
}

/// Schema v8: the two-tier accuracy series. Fast- vs exact-tier score()
/// under the full Estimate mask with the soft-entropy mode — the only
/// request shape whose fill stage pays per-element transcendentals, i.e.
/// where the vectorised vmath kernels can show up at all. Rows are
/// band-gated the way the jit series is parity-gated: integer columns
/// must match the exact tier bit for bit and every double column must
/// sit inside the documented contract band (8 ULP or 1e-12 absolute,
/// the same tolerance hmd_client --verify uses); a row outside the band
/// is refused rather than recorded as a speedup.
struct AccuracyTierRow {
  std::string model;
  int members = 0;
  std::size_t batch_rows = 0;
  double exact = 0.0;  ///< score(kEstimateOutputs, kExact) items/sec
  double fast = 0.0;   ///< score(kEstimateOutputs, kFast) items/sec
  bool band_ok = false;
};

bool within_contract_band(const api::ScoreResult& exact,
                          const api::ScoreResult& fast) {
  if (exact.rows != fast.rows) return false;
  const auto rank = [](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return (bits >> 63) ? ~bits : (bits | 0x8000000000000000ull);
  };
  const auto close = [&](const std::vector<double>& a,
                         const std::vector<double>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] == b[i]) continue;
      if (std::abs(a[i] - b[i]) <= 1e-12) continue;
      const std::uint64_t ra = rank(a[i]), rb = rank(b[i]);
      if ((ra > rb ? ra - rb : rb - ra) > 8) return false;
    }
    return true;
  };
  return exact.prediction == fast.prediction && exact.votes == fast.votes &&
         exact.trusted == fast.trusted &&
         close(exact.confidence, fast.confidence) &&
         close(exact.vote_entropy, fast.vote_entropy) &&
         close(exact.soft_entropy, fast.soft_entropy) &&
         close(exact.expected_entropy, fast.expected_entropy) &&
         close(exact.mutual_information, fast.mutual_information) &&
         close(exact.variation_ratio, fast.variation_ratio) &&
         close(exact.max_probability, fast.max_probability) &&
         close(exact.score, fast.score);
}

AccuracyTierRow measure_accuracy_tier(core::ModelKind kind, int members,
                                      const Matrix& batch) {
  core::TrustedHmd hmd(linear_config_for(kind, members));
  hmd.fit(bundle().train);
  api::ScoreRequest request;
  request.x = &batch;
  request.outputs = api::kEstimateOutputs;
  request.mode = core::UncertaintyMode::kSoftEntropy;

  AccuracyTierRow row;
  row.model = core::model_kind_name(kind);
  row.members = members;
  row.batch_rows = batch.rows();

  api::ScoreResult exact_result;
  request.accuracy = core::Accuracy::kExact;
  hmd.score(request, exact_result);
  api::ScoreResult fast_result;
  request.accuracy = core::Accuracy::kFast;
  hmd.score(request, fast_result);
  row.band_ok = within_contract_band(exact_result, fast_result);
  if (!row.band_ok) return row;  // no band, no timings worth having

  const auto throughput = [&](core::Accuracy accuracy,
                              api::ScoreResult& result) {
    request.accuracy = accuracy;
    return items_per_sec(batch.rows(), [&] {
      hmd.score(request, result);
      benchmark::DoNotOptimize(result.prediction.data());
    });
  };
  row.exact = throughput(core::Accuracy::kExact, exact_result);
  row.fast = throughput(core::Accuracy::kFast, fast_result);
  return row;
}

std::vector<AccuracyTierRow> measure_accuracy_tier_series() {
  const Matrix batch = serving_batch(bundle().test.X, 4096);
  std::vector<AccuracyTierRow> rows;
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic,
        core::ModelKind::kBaggedSvm}) {
    rows.push_back(measure_accuracy_tier(kind, 100, batch));
  }
  return rows;
}

struct CacheTiming {
  double csv_save_ms = 0.0;
  double csv_load_ms = 0.0;
  double binary_save_ms = 0.0;
  double binary_load_ms = 0.0;
};

CacheTiming measure_cache(const std::string& stem) {
  CacheTiming timing;
  const auto& probe = bundle();
  timing.csv_save_ms = time_ms([&] { data::save_bundle_csv(probe, stem); });
  timing.csv_load_ms = time_ms([&] {
    benchmark::DoNotOptimize(data::load_bundle_csv("probe", stem));
  });
  timing.binary_save_ms = time_ms([&] { data::save_bundle(probe, stem); });
  timing.binary_load_ms = time_ms([&] {
    benchmark::DoNotOptimize(data::load_bundle("probe", stem));
  });
  return timing;
}

void write_summary_json(const char* path) {
  std::fprintf(stderr, "\n[bench_latency] measuring summary for %s ...\n",
               path);
  std::vector<ThroughputRow> rows;
  for (const int members : {20, 100}) {
    rows.push_back(measure_throughput(members));
  }
  std::vector<LinearThroughputRow> linear_rows;
  for (const auto kind :
       {core::ModelKind::kBaggedLogistic, core::ModelKind::kBaggedSvm}) {
    linear_rows.push_back(measure_linear_throughput(kind, 100));
  }
  std::vector<MaskedScoreRow> masked_rows;
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic,
        core::ModelKind::kBaggedSvm}) {
    masked_rows.push_back(measure_masked_score(kind, 100));
  }
  const RegistryTiming registry = measure_registry(100);
  const ArtifactTiming artifact = measure_artifact(100);
  const ArtifactMmapTiming mmap = measure_artifact_mmap();
  const ArtifactChecksumTiming checksum = measure_artifact_checksum();
  const std::vector<JitSeriesRow> jit_rows = measure_jit_series();
  const std::vector<AccuracyTierRow> tier_rows = measure_accuracy_tier_series();

  const std::string probe_dir = "bench_results";
  std::filesystem::create_directories(probe_dir);
  const std::string stem = probe_dir + "/latency_cache_probe";
  const CacheTiming cache = measure_cache(stem);
  for (const char* suffix :
       {".hmdb", "_train.csv", "_test.csv", "_unknown.csv"}) {
    std::filesystem::remove(stem + suffix);
  }

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench_latency] cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_latency\",\n");
  std::fprintf(out, "  \"schema_version\": 8,\n");
  std::fprintf(out, "  \"n_train\": %zu,\n  \"n_test\": %zu,\n",
               bundle().train.size(), bundle().test.size());
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"throughput_items_per_sec\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& row = rows[i];
    std::fprintf(out,
                 "    {\"members\": %d, \"per_sample_flat\": %.1f, "
                 "\"per_sample_reference\": %.1f, \"detect_batch\": %.1f, "
                 "\"estimate_batch\": %.1f,\n     "
                 "\"speedup_batch_vs_seed_per_sample\": %.2f, "
                 "\"speedup_batch_vs_flat_per_sample\": %.2f}%s\n",
                 row.members, row.per_sample_flat, row.per_sample_reference,
                 row.batch, row.estimate_batch,
                 row.batch / row.per_sample_reference,
                 row.batch / row.per_sample_flat,
                 i + 1 < rows.size() ? "," : "");
    std::fprintf(stderr,
                 "[bench_latency] M=%d detect items/sec: reference "
                 "(seed per-sample) %.0f | flat per-sample %.0f | "
                 "flat batch %.0f (%.1fx vs seed, %.1fx vs flat)\n",
                 row.members, row.per_sample_reference, row.per_sample_flat,
                 row.batch, row.batch / row.per_sample_reference,
                 row.batch / row.per_sample_flat);
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"linear_throughput_items_per_sec\": [\n");
  for (std::size_t i = 0; i < linear_rows.size(); ++i) {
    const LinearThroughputRow& row = linear_rows[i];
    std::fprintf(out,
                 "    {\"model\": \"%s\", \"members\": %d, "
                 "\"detect_batch_flat\": %.1f, "
                 "\"detect_batch_reference\": %.1f, "
                 "\"estimate_batch_flat\": %.1f,\n     "
                 "\"speedup_flat_vs_reference\": %.2f}%s\n",
                 row.model.c_str(), row.members, row.batch_flat,
                 row.batch_reference, row.estimate_batch,
                 row.batch_flat / row.batch_reference,
                 i + 1 < linear_rows.size() ? "," : "");
    std::fprintf(stderr,
                 "[bench_latency] %s M=%d detect items/sec: reference "
                 "member path %.0f | flat batch %.0f (%.1fx) | "
                 "estimate batch %.0f\n",
                 row.model.c_str(), row.members, row.batch_reference,
                 row.batch_flat, row.batch_flat / row.batch_reference,
                 row.estimate_batch);
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"masked_score_items_per_sec\": [\n");
  for (std::size_t i = 0; i < masked_rows.size(); ++i) {
    const MaskedScoreRow& row = masked_rows[i];
    std::fprintf(out,
                 "    {\"model\": \"%s\", \"members\": %d, "
                 "\"prediction_only\": %.1f, \"detection\": %.1f, "
                 "\"full_estimate\": %.1f,\n     "
                 "\"speedup_prediction_vs_estimate\": %.2f}%s\n",
                 row.model.c_str(), row.members, row.prediction_only,
                 row.detection, row.full_estimate,
                 row.prediction_only / row.full_estimate,
                 i + 1 < masked_rows.size() ? "," : "");
    std::fprintf(stderr,
                 "[bench_latency] %s M=%d score() items/sec: prediction-only "
                 "%.0f | detection %.0f | full estimate %.0f "
                 "(prediction %.1fx vs estimate)\n",
                 row.model.c_str(), row.members, row.prediction_only,
                 row.detection, row.full_estimate,
                 row.prediction_only / row.full_estimate);
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"registry_ns\": {\"lookup\": %.1f, \"refresh_noop\": "
               "%.1f, \"miss\": %.1f, \"miss_unfiltered\": %.1f},\n",
               registry.lookup_ns, registry.refresh_noop_ns,
               registry.miss_ns, registry.miss_unfiltered_ns);
  std::fprintf(stderr,
               "[bench_latency] registry: snapshot lookup %.0f ns, no-op "
               "refresh %.0f ns, miss %.0f ns (filter) / %.0f ns "
               "(unfiltered)\n",
               registry.lookup_ns, registry.refresh_noop_ns,
               registry.miss_ns, registry.miss_unfiltered_ns);
  std::fprintf(out,
               "  \"model_artifact_ms\": {\"retrain\": %.3f, \"save\": "
               "%.3f, \"load\": %.3f, \"speedup_load_vs_retrain\": %.1f},\n",
               artifact.retrain_ms, artifact.save_ms, artifact.load_ms,
               artifact.retrain_ms / artifact.load_ms);
  std::fprintf(stderr,
               "[bench_latency] RF M=100 artifact: retrain %.1f ms -> "
               "save %.2f ms, load %.2f ms (load %.0fx faster than "
               "retrain)\n",
               artifact.retrain_ms, artifact.save_ms, artifact.load_ms,
               artifact.retrain_ms / artifact.load_ms);
  std::fprintf(out,
               "  \"artifact_mmap\": {\"members\": 100, "
               "\"v2_mmap_load_ms\": %.4f, \"v2_read_load_ms\": %.4f, "
               "\"v1_stream_load_ms\": %.4f,\n   "
               "\"v2_mmap_load_first_batch_ms\": %.4f, "
               "\"v1_stream_load_first_batch_ms\": %.4f,\n   "
               "\"speedup_mmap_vs_v1_load\": %.2f, "
               "\"speedup_map_serve_vs_v1_serve\": %.2f, "
               "\"map_serve_beats_v1_load\": %s},\n",
               mmap.v2_mmap_load_ms, mmap.v2_read_load_ms,
               mmap.v1_stream_load_ms, mmap.v2_mmap_serve_ms,
               mmap.v1_stream_serve_ms,
               mmap.v1_stream_load_ms / mmap.v2_mmap_load_ms,
               mmap.v1_stream_serve_ms / mmap.v2_mmap_serve_ms,
               mmap.v2_mmap_serve_ms < mmap.v1_stream_load_ms ? "true"
                                                              : "false");
  std::fprintf(stderr,
               "[bench_latency] RF M=100 artifact load: v1 stream %.3f ms "
               "| v2 read %.3f ms | v2 mmap %.3f ms (%.1fx vs v1); "
               "map-and-serve-first-batch %.3f ms vs v1 load-and-serve "
               "%.3f ms\n",
               mmap.v1_stream_load_ms, mmap.v2_read_load_ms,
               mmap.v2_mmap_load_ms,
               mmap.v1_stream_load_ms / mmap.v2_mmap_load_ms,
               mmap.v2_mmap_serve_ms, mmap.v1_stream_serve_ms);
  std::fprintf(out,
               "  \"artifact_checksum_ms\": {\"members\": 100, "
               "\"checksum_load\": %.4f, \"walk_load\": %.4f, "
               "\"checksum_save\": %.4f, \"plain_save\": %.4f,\n   "
               "\"speedup_checksum_vs_walk_load\": %.2f, "
               "\"save_overhead_pct\": %.1f},\n",
               checksum.checksum_load_ms, checksum.walk_load_ms,
               checksum.checksum_save_ms, checksum.plain_save_ms,
               checksum.walk_load_ms / checksum.checksum_load_ms,
               100.0 * (checksum.checksum_save_ms - checksum.plain_save_ms) /
                   checksum.plain_save_ms);
  std::fprintf(stderr,
               "[bench_latency] RF M=100 integrity: checksummed load %.3f "
               "ms vs deep-walk load %.3f ms (%.2fx); save overhead "
               "%.1f%%\n",
               checksum.checksum_load_ms, checksum.walk_load_ms,
               checksum.walk_load_ms / checksum.checksum_load_ms,
               100.0 * (checksum.checksum_save_ms - checksum.plain_save_ms) /
                   checksum.plain_save_ms);
  // Schema v6: the tree-to-native JIT series. Entries are parity-gated —
  // a row whose native kernels were not bit-identical to the interpreted
  // arena is refused (counted in "refused", reported on stderr) rather
  // than recorded as a speedup.
  std::size_t jit_refused = 0;
  std::vector<const JitSeriesRow*> jit_accepted;
  for (const JitSeriesRow& row : jit_rows) {
    if (row.parity_ok) {
      jit_accepted.push_back(&row);
    } else {
      ++jit_refused;
      std::fprintf(stderr,
                   "[bench_latency] jit %s M=%d: PARITY FAILURE vs arena "
                   "— entry refused, not written to the summary\n",
                   row.label.c_str(), row.members);
    }
  }
  std::fprintf(out, "  \"jit\": {\"available\": %s, \"refused\": %zu, "
               "\"series\": [\n",
               jit::available() ? "true" : "false", jit_refused);
  for (std::size_t i = 0; i < jit_accepted.size(); ++i) {
    const JitSeriesRow& row = *jit_accepted[i];
    std::fprintf(
        out,
        "    {\"label\": \"%s\", \"n_train\": %zu, \"members\": %d, "
        "\"nodes\": %zu, \"stumps\": %zu, \"batch_rows\": %zu,\n     "
        "\"code_bytes\": %zu, \"compile_ms\": %.3f, "
        "\"arena_load_first_batch_ms\": %.3f,\n     "
        "\"detect_batch_arena\": %.1f, \"detect_batch_jit\": %.1f, "
        "\"estimate_score_arena\": %.1f, \"estimate_score_jit\": %.1f,\n"
        "     \"speedup_batch_jit_vs_arena\": %.2f, "
        "\"speedup_estimate_jit_vs_arena\": %.2f, "
        "\"compile_fits_arena_cold_start\": %s, \"parity_ok\": true}%s\n",
        row.label.c_str(), row.n_train, row.members, row.nodes, row.stumps,
        row.batch_rows, row.code_bytes, row.compile_ms,
        row.arena_load_first_batch_ms, row.arena_batch, row.jit_batch,
        row.arena_estimate_mask, row.jit_estimate_mask,
        row.jit_batch / row.arena_batch,
        row.jit_estimate_mask / row.arena_estimate_mask,
        row.compile_ms < row.arena_load_first_batch_ms ? "true" : "false",
        i + 1 < jit_accepted.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  if (!jit::available()) {
    std::fprintf(stderr,
                 "[bench_latency] jit: backend unavailable on this target "
                 "(interpreted arena only)\n");
  }
  for (const JitSeriesRow* row : jit_accepted) {
    // The one-line jit-vs-arena verdict per artifact scale.
    std::fprintf(stderr,
                 "[bench_latency] jit %s M=%d (%zu nodes): batch %.2fx vs "
                 "arena (%.0f -> %.0f items/sec), estimate mask %.2fx; "
                 "compile %.1f ms vs arena load+first-batch %.1f ms, "
                 "code %.1f KiB\n",
                 row->label.c_str(), row->members, row->nodes,
                 row->jit_batch / row->arena_batch, row->arena_batch,
                 row->jit_batch,
                 row->jit_estimate_mask / row->arena_estimate_mask,
                 row->compile_ms, row->arena_load_first_batch_ms,
                 static_cast<double>(row->code_bytes) / 1024.0);
  }
  // Schema v8: the two-tier accuracy series, band-gated like the jit
  // series is parity-gated.
  std::size_t tier_refused = 0;
  std::vector<const AccuracyTierRow*> tier_accepted;
  for (const AccuracyTierRow& row : tier_rows) {
    if (row.band_ok) {
      tier_accepted.push_back(&row);
    } else {
      ++tier_refused;
      std::fprintf(stderr,
                   "[bench_latency] accuracy %s M=%d: fast tier OUTSIDE the "
                   "contract band vs exact — entry refused, not written to "
                   "the summary\n",
                   row.model.c_str(), row.members);
    }
  }
  std::fprintf(out, "  \"accuracy_tier\": {\"refused\": %zu, \"series\": [\n",
               tier_refused);
  for (std::size_t i = 0; i < tier_accepted.size(); ++i) {
    const AccuracyTierRow& row = *tier_accepted[i];
    std::fprintf(out,
                 "    {\"model\": \"%s\", \"members\": %d, "
                 "\"batch_rows\": %zu, \"estimate_score_exact\": %.1f, "
                 "\"estimate_score_fast\": %.1f,\n     "
                 "\"speedup_fast_vs_exact\": %.2f, \"band_ok\": true}%s\n",
                 row.model.c_str(), row.members, row.batch_rows, row.exact,
                 row.fast, row.fast / row.exact,
                 i + 1 < tier_accepted.size() ? "," : "");
    std::fprintf(stderr,
                 "[bench_latency] accuracy %s M=%d (soft-entropy estimate "
                 "mask, %zu rows): exact %.0f -> fast %.0f items/sec "
                 "(%.2fx), within contract band\n",
                 row.model.c_str(), row.members, row.batch_rows, row.exact,
                 row.fast, row.fast / row.exact);
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out,
               "  \"bundle_cache_ms\": {\"csv_save\": %.3f, \"csv_load\": "
               "%.3f, \"binary_save\": %.3f, \"binary_load\": %.3f, "
               "\"load_speedup_binary_vs_csv\": %.1f}\n",
               cache.csv_save_ms, cache.csv_load_ms, cache.binary_save_ms,
               cache.binary_load_ms, cache.csv_load_ms / cache.binary_load_ms);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr,
               "[bench_latency] bundle cache load: csv %.3f ms -> binary "
               "%.3f ms (%.1fx)\n[bench_latency] summary written to %s\n",
               cache.csv_load_ms, cache.binary_load_ms,
               cache.csv_load_ms / cache.binary_load_ms, path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_summary_json("BENCH_latency.json");
  return 0;
}
