// Ablation A4 (google-benchmark): the runtime cost of trustworthiness.
//
// The paper positions the estimator as an *online* component with "minor
// modifications to the standard pipeline"; this bench quantifies that
// claim: per-sample detection latency of the conventional detector vs the
// trusted detector across ensemble sizes, plus the cost of the surrounding
// pipeline stages (SoC simulation and feature extraction).

#include <benchmark/benchmark.h>

#include "core/hmd.h"
#include "core/uncertainty.h"
#include "datasets/dvfs_dataset.h"
#include "features/dvfs_features.h"
#include "features/hpc_features.h"
#include "sim/app_profiles.h"
#include "sim/soc.h"

namespace {

using namespace hmd;

/// Small shared DVFS bundle (built once; benchmarks time inference only).
const data::DatasetBundle& bundle() {
  static const data::DatasetBundle instance = [] {
    data::DvfsDatasetConfig config;
    config.n_train = 420;
    config.n_test = 140;
    config.n_unknown = 60;
    return data::build_dvfs_dataset(config);
  }();
  return instance;
}

core::HmdConfig config_for(int members) {
  core::HmdConfig config;
  config.n_members = members;
  config.n_threads = 0;
  config.seed = 1;
  return config;
}

void BM_UntrustedDetect(benchmark::State& state) {
  core::UntrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::size_t i = 0;
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect(x.row(i++ % x.rows())));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UntrustedDetect)->Arg(100);

void BM_TrustedDetect(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::size_t i = 0;
  const auto& x = bundle().test.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.detect(x.row(i++ % x.rows())));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrustedDetect)->Arg(5)->Arg(20)->Arg(50)->Arg(100);

void BM_UncertaintyEstimateOnly(benchmark::State& state) {
  core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
  hmd.fit(bundle().train);
  std::size_t i = 0;
  const auto& x = bundle().unknown.X;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmd.estimate(x.row(i++ % x.rows())));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UncertaintyEstimateOnly)->Arg(20)->Arg(100);

void BM_EnsembleFit(benchmark::State& state) {
  for (auto _ : state) {
    core::TrustedHmd hmd(config_for(static_cast<int>(state.range(0))));
    hmd.fit(bundle().train);
    benchmark::DoNotOptimize(hmd);
  }
}
BENCHMARK(BM_EnsembleFit)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SocSimOneSecond(benchmark::State& state) {
  sim::SocSim soc;
  const auto profile = sim::dvfs_benign_apps()[0];
  Rng rng(3);
  for (auto _ : state) {
    sim::Workload run = profile.sample(rng);
    while (run.total_duration_ms() < 1000.0) {
      const auto more = profile.sample(rng);
      run.phases.insert(run.phases.end(), more.phases.begin(),
                        more.phases.end());
    }
    benchmark::DoNotOptimize(soc.run(run, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SocSimOneSecond)->Unit(benchmark::kMillisecond);

void BM_DvfsFeaturize(benchmark::State& state) {
  sim::SocSim soc;
  Rng rng(4);
  const auto trace = soc.run(sim::dvfs_benign_apps()[1].sample(rng), rng);
  const features::DvfsFeaturizer featurizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.features(trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DvfsFeaturize);

void BM_HpcFeaturize(benchmark::State& state) {
  sim::SocSim soc;
  Rng rng(5);
  const auto trace = soc.run(sim::dvfs_benign_apps()[1].sample(rng), rng);
  const features::HpcFeaturizer featurizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.features(trace.hpc_windows.front()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HpcFeaturize);

}  // namespace

BENCHMARK_MAIN();
