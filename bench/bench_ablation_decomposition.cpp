// Ablation A3: separating the sources of uncertainty — the paper's stated
// future work (Section VI).
//
// The paper's hard-vote entropy cannot distinguish data (aleatoric) from
// model (epistemic) uncertainty, which is why the HPC dataset confounds it.
// The soft-posterior decomposition H(E[p]) = E[H(p)] + MI can: this bench
// sweeps (a) class overlap with in-distribution test data — aleatoric
// should rise — and (b) a traversal of the empty corridor between two
// disjoint classes — MI peaks in the sparsely-trained gap. Finally it
// applies the
// decomposition to the two paper datasets: DVFS unknowns are dominated by
// MI (epistemic), HPC known-test uncertainty by expected entropy
// (aleatoric), which is exactly the diagnosis the paper reaches manually
// via t-SNE.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "ml/preprocessing.h"

namespace {

using namespace hmd;

/// Mean decomposition components over a matrix of samples.
struct MeanDecomposition {
  double total = 0.0;
  double aleatoric = 0.0;
  double epistemic = 0.0;
};

MeanDecomposition mean_decomposition(const core::TrustedHmd& hmd,
                                     const Matrix& x) {
  MeanDecomposition out;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto est = hmd.estimate(x.row(r));
    out.total += est.soft_entropy;
    out.aleatoric += est.expected_entropy;
    out.epistemic += est.mutual_information;
  }
  const auto n = static_cast<double>(x.rows());
  out.total /= n;
  out.aleatoric /= n;
  out.epistemic /= n;
  return out;
}

ml::Dataset two_blobs(double separation, double sigma, std::size_t per_class,
                      std::uint64_t seed, double shift = 0.0) {
  ml::Dataset d;
  Rng rng(seed);
  for (int cls = 0; cls < 2; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const double cx = cls * separation + shift;
      const double cy = cls * separation + shift;
      const std::vector<double> row{rng.normal(cx, sigma),
                                    rng.normal(cy, sigma)};
      d.X.push_row(row);
      d.y.push_back(cls);
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = hmd::bench::parse_bench_args(argc, argv);

  hmd::bench::print_header(
      "Ablation A3 — aleatoric/epistemic decomposition (paper future work)",
      "soft posterior: total = H(mean p); aleatoric = mean H(p_m); "
      "epistemic = MI");

  core::HmdConfig config =
      hmd::bench::paper_config(options, core::ModelKind::kRandomForest);
  config.mode = core::UncertaintyMode::kSoftEntropy;
  // Fully-grown trees have one-hot leaves, which silently zeroes the
  // aleatoric component; a leaf-size floor keeps empirical distributions.
  config.tree_min_samples_leaf = 8;

  // --- (a) class-overlap sweep: in-distribution test data. ---
  {
    ConsoleTable table({"separation/sigma", "total", "aleatoric",
                        "epistemic", "aleatoric share"});
    for (double separation : {4.0, 2.0, 1.0, 0.5, 0.0}) {
      const auto train = two_blobs(separation, 1.0, 400, 3);
      const auto test = two_blobs(separation, 1.0, 200, 4);
      core::TrustedHmd hmd(config);
      hmd.fit(train);
      const auto d = mean_decomposition(hmd, test.X);
      table.add_row({ConsoleTable::fmt(separation, 1),
                     ConsoleTable::fmt(d.total, 3),
                     ConsoleTable::fmt(d.aleatoric, 3),
                     ConsoleTable::fmt(d.epistemic, 3),
                     ConsoleTable::fmt(
                         d.total > 0 ? d.aleatoric / d.total : 0.0, 2)});
    }
    std::cout << "\n(a) class-overlap sweep (in-distribution test)\n"
              << table;
    std::cout << "expected: total rises as classes merge, and it is almost "
                 "entirely aleatoric\n";
  }

  // --- (b) inter-class traversal: probe the sparsely-trained gap. ---
  {
    ConsoleTable table({"gap position t", "total", "aleatoric", "epistemic",
                        "epistemic share"});
    const auto train = two_blobs(8.0, 1.0, 400, 5);
    core::TrustedHmd hmd(config);
    hmd.fit(train);
    for (double t : {0.0, 0.125, 0.25, 0.375, 0.5}) {
      // Probe points on the segment between the two cluster centres,
      // t = 0 on a training cluster, t = 0.5 mid-gap (zero-day territory).
      Rng rng(7);
      Matrix probes;
      for (int i = 0; i < 200; ++i) {
        const std::vector<double> row{8.0 * t + rng.normal(0.0, 0.3),
                                      8.0 * t + rng.normal(0.0, 0.3)};
        probes.push_row(row);
      }
      const auto d = mean_decomposition(hmd, probes);
      table.add_row({ConsoleTable::fmt(t, 3), ConsoleTable::fmt(d.total, 3),
                     ConsoleTable::fmt(d.aleatoric, 3),
                     ConsoleTable::fmt(d.epistemic, 3),
                     ConsoleTable::fmt(
                         d.total > 0 ? d.epistemic / d.total : 0.0, 2)});
    }
    std::cout << "\n(b) inter-class traversal (disjoint classes)\n"
              << table;
    std::cout << "expected: uncertainty appears only toward the gap centre "
                 "and is mostly epistemic (MI)\n";
  }

  // --- (c) the two paper datasets. ---
  {
    ConsoleTable table({"Dataset", "Split", "total", "aleatoric",
                        "epistemic", "dominant source"});
    for (const auto& bundle : {hmd::bench::dvfs_bundle(options),
                               hmd::bench::hpc_bundle(options)}) {
      core::HmdConfig dataset_config = config;
      // Deep datasets need a proportionally larger leaf floor, otherwise
      // bootstrap jitter of tiny leaves masquerades as model uncertainty.
      dataset_config.tree_min_samples_leaf = static_cast<int>(
          std::clamp<std::size_t>(bundle.train.size() / 200, 8, 256));
      core::TrustedHmd hmd(dataset_config);
      hmd.fit(bundle.train);
      for (const auto& [name, x] :
           {std::pair<std::string, const Matrix*>{"known", &bundle.test.X},
            std::pair<std::string, const Matrix*>{"unknown",
                                                  &bundle.unknown.X}}) {
        const auto d = mean_decomposition(hmd, *x);
        table.add_row({bundle.name, name, ConsoleTable::fmt(d.total, 3),
                       ConsoleTable::fmt(d.aleatoric, 3),
                       ConsoleTable::fmt(d.epistemic, 3),
                       d.aleatoric > d.epistemic ? "aleatoric (data)"
                                                 : "epistemic (model)"});
      }
    }
    std::cout << "\n(c) decomposition on the paper's datasets\n" << table;
    std::cout << "expected: DVFS-unknown dominated by epistemic (zero-day); "
                 "HPC by aleatoric (overlap)\n";
    hmd::write_text_file("bench_results/ablation_decomposition.csv",
                         table.to_csv());
  }
  return 0;
}
