// Regenerates Fig. 7a of the paper: percentage of known and unknown DVFS
// inputs rejected as the entropy threshold sweeps from 0 to 0.75, for the
// RF, LR and SVM ensembles.
//
// Paper shape: RF-unknown stays near 100% rejection until ~0.4 and the
// paper's operating point (threshold 0.40) rejects ~95% of unknown at <5%
// known; LR sits in between; SVM rejects little beyond tiny thresholds.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hmd;
  using core::ModelKind;
  const auto options = bench::parse_bench_args(argc, argv);
  const auto bundle = bench::dvfs_bundle(options);

  bench::print_header(
      "Fig. 7a — Rejected inputs vs entropy threshold, DVFS dataset",
      "series: {RF, LR, SVM} x {unknown, known}, percent rejected");

  const auto thresholds = core::threshold_grid(0.0, 0.75, 16);
  std::vector<std::string> headers{"threshold"};
  std::vector<std::vector<double>> series;
  std::vector<std::string> op_lines;
  for (auto kind : {ModelKind::kRandomForest, ModelKind::kBaggedLogistic,
                    ModelKind::kBaggedSvm}) {
    core::TrustedHmd hmd(bench::paper_config(options, kind));
    hmd.fit(bundle.train);
    const auto dists = core::entropy_distributions(hmd, bundle);
    const auto curve =
        core::rejection_curve(dists.known, dists.unknown, thresholds);
    const std::string name = core::model_kind_name(kind);
    headers.push_back(name + "-unknown");
    headers.push_back(name + "-known");
    std::vector<double> unknown_col, known_col;
    for (const auto& point : curve) {
      unknown_col.push_back(point.rejected_unknown);
      known_col.push_back(point.rejected_known);
    }
    series.push_back(unknown_col);
    series.push_back(known_col);

    const auto op = core::best_operating_point(dists.known, dists.unknown,
                                               thresholds, 5.0);
    op_lines.push_back(name + ": best <=5%-known operating point at tau=" +
                       ConsoleTable::fmt(op.threshold, 2) + " rejects " +
                       ConsoleTable::fmt(op.rejected_unknown, 1) +
                       "% unknown / " +
                       ConsoleTable::fmt(op.rejected_known, 1) + "% known");
  }

  ConsoleTable table(headers);
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    std::vector<std::string> row{ConsoleTable::fmt(thresholds[t], 2)};
    for (const auto& column : series) {
      row.push_back(ConsoleTable::fmt(column[t], 1));
    }
    table.add_row(row);
  }
  std::cout << table;
  for (const auto& line : op_lines) std::cout << line << "\n";
  std::cout << "(paper: RF tau=0.40 rejects ~95% unknown at <5% known; "
               "SVM tau=0.04 rejects only ~40% unknown)\n";
  write_text_file("bench_results/fig7a_dvfs_rejection.csv", table.to_csv());
  std::cout << "[series written to bench_results/fig7a_dvfs_rejection.csv]\n";
  return 0;
}
