// Ablation A1: how good is each uncertainty score at separating unknown
// from known inputs?
//
// Compares the paper's hard-vote entropy against the soft posterior
// entropy, the mutual-information (epistemic) and expected-entropy
// (aleatoric) components, the variation ratio, the ensemble max-probability
// — and the two *point-estimate* baselines the paper argues against: the
// single-model max-probability and the Platt-scaled margin confidence
// (Chawla et al.'s method, Section II.E).

#include <iostream>

#include "bench_common.h"

namespace {

using namespace hmd;

/// Uncertainty = 1 - confidence of the conventional detector.
std::vector<double> untrusted_uncertainty(const core::UntrustedHmd& hmd,
                                          const Matrix& x) {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(1.0 - hmd.detect(x.row(r)).confidence);
  }
  return out;
}

double rejection_at_budget(const std::vector<double>& known,
                           const std::vector<double>& unknown) {
  const auto grid = core::threshold_grid(0.0, 1.0, 401);
  return core::best_operating_point(known, unknown, grid, 5.0)
      .rejected_unknown;
}

void run_bundle(const data::DatasetBundle& bundle,
                const bench::BenchOptions& options, ConsoleTable& table) {
  core::TrustedHmd hmd(
      bench::paper_config(options, core::ModelKind::kRandomForest));
  hmd.fit(bundle.train);

  for (auto mode :
       {core::UncertaintyMode::kVoteEntropy,
        core::UncertaintyMode::kSoftEntropy,
        core::UncertaintyMode::kMutualInformation,
        core::UncertaintyMode::kExpectedEntropy,
        core::UncertaintyMode::kVariationRatio,
        core::UncertaintyMode::kMaxProbability}) {
    core::EntropyDistributions dists;
    dists.known = hmd.scores(bundle.test.X, mode);
    dists.unknown = hmd.scores(bundle.unknown.X, mode);
    table.add_row({bundle.name, uncertainty_mode_name(mode) + " (ensemble)",
                   ConsoleTable::fmt(core::ood_auroc(dists), 3),
                   ConsoleTable::fmt(
                       rejection_at_budget(dists.known, dists.unknown), 1)});
  }

  // Point-estimate baselines.
  {
    core::UntrustedHmd single(
        bench::paper_config(options, core::ModelKind::kRandomForest));
    single.fit(bundle.train);
    core::EntropyDistributions dists;
    dists.known = untrusted_uncertainty(single, bundle.test.X);
    dists.unknown = untrusted_uncertainty(single, bundle.unknown.X);
    table.add_row({bundle.name, "max_probability (single RF)",
                   ConsoleTable::fmt(core::ood_auroc(dists), 3),
                   ConsoleTable::fmt(
                       rejection_at_budget(dists.known, dists.unknown), 1)});
  }
  {
    core::UntrustedHmd platt(
        bench::paper_config(options, core::ModelKind::kBaggedSvm));
    platt.fit(bundle.train);
    core::EntropyDistributions dists;
    dists.known = untrusted_uncertainty(platt, bundle.test.X);
    dists.unknown = untrusted_uncertainty(platt, bundle.unknown.X);
    table.add_row({bundle.name, "platt confidence (single SVM) [16]",
                   ConsoleTable::fmt(core::ood_auroc(dists), 3),
                   ConsoleTable::fmt(
                       rejection_at_budget(dists.known, dists.unknown), 1)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = hmd::bench::parse_bench_args(argc, argv);

  hmd::bench::print_header(
      "Ablation A1 — uncertainty-score quality (unknown-vs-known separation)",
      "AUROC of separating unknown from known inputs; rej@5% = % of unknown\n"
      "rejected at the best threshold costing <=5% of known inputs");

  hmd::ConsoleTable table({"Dataset", "Score", "AUROC", "rej@5%"});
  run_bundle(hmd::bench::dvfs_bundle(options), options, table);
  run_bundle(hmd::bench::hpc_bundle(options), options, table);
  std::cout << table;
  std::cout << "(expected: ensemble scores dominate the Platt point-estimate "
               "baseline on DVFS;\n nothing works on HPC — the unknowns are "
               "in-distribution there.\n note: with fully-grown trees the "
               "leaf distributions are one-hot, so the soft scores\n "
               "coincide with the hard votes and expected_entropy is zero — "
               "see ablation A3 for\n the leaf-regularised decomposition)\n";
  hmd::write_text_file("bench_results/ablation_modes.csv", table.to_csv());
  return 0;
}
