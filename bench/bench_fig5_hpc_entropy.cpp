// Regenerates Fig. 5 of the paper: boxplots of the estimated predictive
// entropies on the HPC dataset for known (test) vs unknown inputs.
//
// Paper shape: the known box is as high as the unknown box — the ensemble is
// uncertain even about in-distribution inputs, because the benign and
// malware classes overlap (data/aleatoric uncertainty). SVM is excluded: it
// fails to converge on the bootstrapped HPC dataset (Section V.B); this
// bench reproduces and reports that exclusion.

#include <cmath>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hmd;
  using core::ModelKind;
  const auto options = bench::parse_bench_args(argc, argv);
  const auto bundle = bench::hpc_bundle(options);

  bench::print_header(
      "Fig. 5 — Estimated entropies, HPC dataset (known vs unknown)",
      "vote-entropy of M=" + std::to_string(options.n_members) +
          " bagged members, nats; binary max = ln 2 = 0.693");

  ConsoleTable table({"Ensemble", "Split", "median", "q1", "q3", "whisk_lo",
                      "whisk_hi", "mean", "n"});
  const double hi = std::log(2.0);
  for (auto kind : {ModelKind::kRandomForest, ModelKind::kBaggedLogistic,
                    ModelKind::kBaggedSvm}) {
    core::TrustedHmd hmd(bench::paper_config(options, kind));
    hmd.fit(bundle.train);
    const std::string name = core::model_kind_name(kind);
    if (!hmd.converged()) {
      std::cout << name << "  EXCLUDED: only "
                << ConsoleTable::fmt(100.0 * hmd.converged_fraction(), 1)
                << "% of members converged on the bootstrapped HPC dataset"
                << " (the paper reports the same failure)\n";
      table.add_row({name, "excluded (no convergence)", "-", "-", "-", "-",
                     "-", "-", "-"});
      continue;
    }
    const auto dists = core::entropy_distributions(hmd, bundle);
    for (const auto& [split, stats] :
         {std::pair{"known", dists.known_stats},
          std::pair{"unknown", dists.unknown_stats}}) {
      table.add_row({name, split, ConsoleTable::fmt(stats.median),
                     ConsoleTable::fmt(stats.q1), ConsoleTable::fmt(stats.q3),
                     ConsoleTable::fmt(stats.whisker_low),
                     ConsoleTable::fmt(stats.whisker_high),
                     ConsoleTable::fmt(stats.mean),
                     std::to_string(stats.n)});
      std::cout << name << (std::string(4 - name.size(), ' '))
                << (split == std::string("known") ? "known   " : "unknown ")
                << "[" << bench::ascii_boxplot(stats, 0.0, hi) << "]\n";
    }
  }
  std::cout << "      0" << std::string(50, ' ') << "ln2\n\n";
  std::cout << table;
  write_text_file("bench_results/fig5_hpc_entropy.csv", table.to_csv());
  std::cout << "[series written to bench_results/fig5_hpc_entropy.csv]\n";
  return 0;
}
