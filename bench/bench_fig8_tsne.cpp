// Regenerates Fig. 8 of the paper: t-SNE visualisation of the latent space
// of the training data (benign + malware) together with the unknown split,
// for both datasets. The figure itself is a scatter plot; this bench writes
// the 2-D embeddings as CSV (for plotting) and prints the quantitative
// geometry the paper reads off the plot:
//
//  * DVFS (Fig. 8a): benign and malware form disjoint clusters (high 1-NN
//    label agreement) and the unknown data sits away from the training
//    clusters (large distance to the nearest known neighbour).
//  * HPC (Fig. 8b): the classes overlap (low 1-NN agreement) and the
//    unknown data falls inside the overlap region, not outside.

#include <algorithm>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "ml/preprocessing.h"
#include "tsne/tsne.h"

namespace {

using namespace hmd;

struct EmbeddingStats {
  double knn_label_agreement = 0.0;  ///< 1-NN agreement among known points
  double unknown_to_known = 0.0;     ///< median NN distance unknown->known
  double known_to_known = 0.0;       ///< median NN distance known->known
};

EmbeddingStats analyse(const Matrix& embedding,
                       const std::vector<int>& labels, std::size_t n_known) {
  EmbeddingStats stats;
  std::size_t agree = 0;
  std::vector<double> known_nn, unknown_nn;
  for (std::size_t i = 0; i < embedding.rows(); ++i) {
    double best = 1e300;
    std::size_t nn = i;
    for (std::size_t j = 0; j < n_known; ++j) {
      if (j == i) continue;
      const double d =
          squared_distance(embedding.row(i), embedding.row(j));
      if (d < best) {
        best = d;
        nn = j;
      }
    }
    if (i < n_known) {
      agree += labels[i] == labels[nn];
      known_nn.push_back(std::sqrt(best));
    } else {
      unknown_nn.push_back(std::sqrt(best));
    }
  }
  stats.knn_label_agreement =
      static_cast<double>(agree) / static_cast<double>(n_known);
  stats.known_to_known = median(known_nn);
  stats.unknown_to_known = median(unknown_nn);
  return stats;
}

void run_dataset(const data::DatasetBundle& bundle, std::size_t max_known,
                 std::size_t max_unknown, ConsoleTable& table) {
  // Subsample for the O(N^2) embedding.
  ml::StandardScaler scaler;
  const Matrix train_x = scaler.fit_transform(bundle.train.X);
  const Matrix unknown_x = scaler.transform(bundle.unknown.X);

  Rng rng(17);
  const auto known_idx = rng.sample_without_replacement(
      train_x.rows(), std::min(max_known, train_x.rows()));
  const auto unknown_idx = rng.sample_without_replacement(
      unknown_x.rows(), std::min(max_unknown, unknown_x.rows()));

  Matrix stacked;
  std::vector<int> labels;
  std::vector<std::string> roles;
  for (std::size_t i : known_idx) {
    stacked.push_row(train_x.row(i));
    labels.push_back(bundle.train.y[i]);
    roles.push_back(bundle.train.y[i] == 1 ? "malware" : "benign");
  }
  for (std::size_t i : unknown_idx) {
    stacked.push_row(unknown_x.row(i));
    labels.push_back(2);
    roles.push_back("unknown");
  }

  tsne::TsneParams params;
  params.perplexity = 30.0;
  params.n_iterations = 400;
  params.seed = 5;
  const auto result = tsne::tsne_embed(stacked, params);

  const auto stats = analyse(result.embedding, labels, known_idx.size());
  table.add_row({bundle.name, std::to_string(stacked.rows()),
                 ConsoleTable::fmt(result.kl_divergence, 3),
                 ConsoleTable::fmt(stats.knn_label_agreement, 3),
                 ConsoleTable::fmt(stats.known_to_known, 3),
                 ConsoleTable::fmt(stats.unknown_to_known, 3),
                 ConsoleTable::fmt(
                     stats.unknown_to_known / stats.known_to_known, 2)});

  std::ostringstream csv;
  csv << "x,y,role\n";
  for (std::size_t i = 0; i < result.embedding.rows(); ++i) {
    csv << result.embedding(i, 0) << ',' << result.embedding(i, 1) << ','
        << roles[i] << '\n';
  }
  const std::string path =
      "bench_results/fig8_tsne_" + bundle.name + ".csv";
  write_text_file(path, csv.str());
  std::cout << "[embedding written to " << path << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = hmd::bench::parse_bench_args(argc, argv);

  hmd::bench::print_header(
      "Fig. 8 — t-SNE of the training latent space + unknown data",
      "agreement: 1-NN label purity of known points (1.0 = disjoint "
      "classes);\nU/K ratio: unknown-to-known NN distance over known-to-known"
      " (>1 = unknowns OOD)");

  hmd::ConsoleTable table({"Dataset", "points", "KL", "1NN-agreement",
                           "knownNN", "unknownNN", "U/K ratio"});
  run_dataset(hmd::bench::dvfs_bundle(options), 900, 284, table);
  run_dataset(hmd::bench::hpc_bundle(options), 900, 300, table);
  std::cout << table;
  std::cout << "(paper: DVFS classes disjoint + unknowns far from training "
               "data;\n HPC classes overlapping + unknowns inside the "
               "overlap region)\n";
  hmd::write_text_file("bench_results/fig8_tsne_summary.csv", table.to_csv());
  return 0;
}
