// Regenerates Fig. 9a of the paper: average estimated entropy on the DVFS
// known and unknown splits as a function of the number of base classifiers
// in the RF ensemble.
//
// Paper shape: both curves rise from 0 (a single member is always certain)
// and stabilise once the ensemble exceeds ~20 members — more members add
// cost without changing the uncertainty estimate.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto options = bench::parse_bench_args(argc, argv);
  const auto bundle = bench::dvfs_bundle(options);

  bench::print_header(
      "Fig. 9a — Average entropy vs number of base classifiers (RF, DVFS)",
      "mean vote-entropy over the known / unknown splits, nats");

  const std::vector<int> sizes{1, 2, 5, 10, 20, 35, 50, 75, 100};
  const auto sweep = core::ensemble_size_sweep(
      bench::paper_config(options, core::ModelKind::kRandomForest), bundle,
      sizes);

  ConsoleTable table({"members", "RF-known", "RF-unknown", "delta"});
  for (const auto& point : sweep) {
    table.add_row({std::to_string(point.n_members),
                   ConsoleTable::fmt(point.mean_entropy_known),
                   ConsoleTable::fmt(point.mean_entropy_unknown),
                   ConsoleTable::fmt(point.mean_entropy_unknown -
                                     point.mean_entropy_known)});
  }
  std::cout << table;

  // Stabilisation check: relative change of the unknown curve per doubling
  // beyond 20 members.
  const auto& last = sweep.back();
  const auto& at20 = *std::find_if(
      sweep.begin(), sweep.end(),
      [](const core::EnsembleSizePoint& p) { return p.n_members == 20; });
  std::cout << "unknown-entropy change from M=20 to M=" << last.n_members
            << ": "
            << ConsoleTable::fmt(
                   100.0 *
                       std::abs(last.mean_entropy_unknown -
                                at20.mean_entropy_unknown) /
                       std::max(at20.mean_entropy_unknown, 1e-9),
                   1)
            << "% (paper: stabilises beyond ~20 members)\n";
  write_text_file("bench_results/fig9a_ensemble_size.csv", table.to_csv());
  std::cout << "[series written to bench_results/fig9a_ensemble_size.csv]\n";
  return 0;
}
