// Ablation A5: how much does the DVFS governor policy matter to the
// DVFS-based HMD?
//
// The DVFS signature is the governor's *response* to the workload. A
// reactive governor (ondemand/conservative) transduces utilisation rhythms
// into state sequences; a pinned governor (performance) destroys the
// signal entirely — every app pegs the same state. This bench rebuilds a
// reduced DVFS dataset under each policy and reports classification and
// zero-day detection quality.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hmd;
  auto options = bench::parse_bench_args(argc, argv);

  bench::print_header(
      "Ablation A5 — governor policy vs DVFS-HMD quality",
      "same roster/counts per policy; RF trusted HMD; reduced scale");

  // Governor sweeps always run reduced: four datasets must be simulated.
  const double scale = std::min(options.scale, 0.25);

  ConsoleTable table({"Governor", "test acc", "test F1", "OOD AUROC",
                      "rej@5%", "median H known", "median H unknown"});
  for (const std::string policy :
       {"ondemand", "conservative", "performance", "powersave"}) {
    data::DvfsDatasetConfig config;
    config.seed = options.dvfs_seed;
    config.n_train = static_cast<std::size_t>(2100 * scale);
    config.n_test = static_cast<std::size_t>(700 * scale);
    config.n_unknown = static_cast<std::size_t>(284 * scale);
    config.soc.governor = policy;
    const auto bundle = data::build_dvfs_dataset(config);

    const auto summary = core::evaluate_detector(
        core::ModelKind::kRandomForest, bundle,
        bench::paper_config(options, core::ModelKind::kRandomForest));
    table.add_row({policy, ConsoleTable::fmt(summary.accuracy, 3),
                   ConsoleTable::fmt(summary.f1, 3),
                   ConsoleTable::fmt(summary.auroc, 3),
                   ConsoleTable::fmt(
                       summary.operating_point.rejected_unknown, 1),
                   ConsoleTable::fmt(summary.median_entropy_known, 3),
                   ConsoleTable::fmt(summary.median_entropy_unknown, 3)});
  }
  std::cout << table;
  std::cout << "(expected: reactive governors carry the signature; pinned "
               "governors destroy both\n classification and zero-day "
               "detection — the sensor choice determines the HMD)\n";
  write_text_file("bench_results/ablation_governor.csv", table.to_csv());
  return 0;
}
