#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>

#include "common/error.h"
#include "datasets/io.h"

namespace hmd::bench {

BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) -> std::string {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--scale=", 0) == 0) {
      options.scale = std::stod(value_of("--scale="));
      HMD_REQUIRE(options.scale > 0.0 && options.scale <= 16.0,
                  "--scale must lie in (0, 16]");
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.dvfs_seed = std::stoull(value_of("--seed="));
      options.hpc_seed = options.dvfs_seed + 6;
    } else if (arg.rfind("--members=", 0) == 0) {
      options.n_members = std::stoi(value_of("--members="));
      HMD_REQUIRE(options.n_members >= 1, "--members must be >= 1");
    } else if (arg.rfind("--model=", 0) == 0) {
      const auto kind = core::parse_model_kind(value_of("--model="));
      HMD_REQUIRE(kind.has_value(), "--model must be rf, lr, or svm");
      options.model = *kind;
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.n_threads = std::stoi(value_of("--threads="));
      HMD_REQUIRE(options.n_threads >= 0,
                  "--threads must be >= 0 (0 = all cores)");
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --scale=<f in (0,16]> --seed=<n> --members=<n> --model=<rf|lr|svm> "
                   "--threads=<n, 0 = all cores> --no-cache\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  return options;
}

namespace {

std::size_t scaled(std::size_t count, double scale) {
  return std::max<std::size_t>(
      32, static_cast<std::size_t>(std::llround(
              static_cast<double>(count) * scale)));
}

}  // namespace

std::string cache_stem(const BenchOptions& options, const std::string& name,
                       std::uint64_t seed) {
  // Encode the scale at 1e-6 resolution: scales that truncate to the same
  // per-mille value (e.g. 1.0005 vs 1.0009, or any pair above 1 that a
  // coarser cast would merge) still get distinct stems.
  std::ostringstream os;
  os << options.cache_dir << "/" << name << "_s" << seed << "_x"
     << std::llround(options.scale * 1e6);
  return os.str();
}

namespace {

/// Load a cached bundle, degrading a corrupt file (e.g. truncated by an
/// interrupted earlier run) to "absent" so the caller regenerates it.
std::optional<data::DatasetBundle> try_load_cached(const std::string& name,
                                                   const std::string& stem) {
  if (!data::bundle_exists(stem)) return std::nullopt;
  try {
    std::cerr << "[bench] loading cached " << name << " bundle from " << stem
              << "\n";
    return data::load_bundle(name, stem);
  } catch (const IoError& error) {
    std::cerr << "[bench] discarding unreadable cache (" << error.what()
              << ")\n";
    return std::nullopt;
  }
}

}  // namespace

data::DatasetBundle dvfs_bundle(const BenchOptions& options) {
  const std::string stem = cache_stem(options, "dvfs", options.dvfs_seed);
  if (options.use_cache) {
    if (auto cached = try_load_cached("DVFS", stem)) return *std::move(cached);
  }
  std::cerr << "[bench] generating DVFS bundle (scale=" << options.scale
            << ") ...\n";
  data::DvfsDatasetConfig config;
  config.seed = options.dvfs_seed;
  config.n_train = scaled(config.n_train, options.scale);
  config.n_test = scaled(config.n_test, options.scale);
  config.n_unknown = scaled(config.n_unknown, options.scale);
  auto bundle = data::build_dvfs_dataset(config);
  if (options.use_cache) data::save_bundle(bundle, stem);
  return bundle;
}

data::DatasetBundle hpc_bundle(const BenchOptions& options) {
  const std::string stem = cache_stem(options, "hpc", options.hpc_seed);
  if (options.use_cache) {
    if (auto cached = try_load_cached("HPC", stem)) return *std::move(cached);
  }
  std::cerr << "[bench] generating HPC bundle (scale=" << options.scale
            << ") ...\n";
  data::HpcDatasetConfig config;
  config.seed = options.hpc_seed;
  config.n_train = scaled(config.n_train, options.scale);
  config.n_test = scaled(config.n_test, options.scale);
  config.n_unknown = scaled(config.n_unknown, options.scale);
  auto bundle = data::build_hpc_dataset(config);
  if (options.use_cache) data::save_bundle(bundle, stem);
  return bundle;
}

core::HmdConfig paper_config(const BenchOptions& options,
                             core::ModelKind kind) {
  core::HmdConfig config;
  config.model = kind;
  config.n_members = options.n_members;
  config.n_threads = options.n_threads;
  config.entropy_threshold = 0.40;  // the paper's RF operating point
  config.mode = core::UncertaintyMode::kVoteEntropy;
  config.seed = 99;
  return config;
}

core::HmdConfig paper_config(const BenchOptions& options) {
  return paper_config(options, options.model);
}

std::string ascii_boxplot(const BoxplotStats& stats, double lo, double hi,
                          std::size_t width) {
  HMD_REQUIRE(hi > lo && width >= 16, "ascii_boxplot: bad range/width");
  std::string strip(width, ' ');
  auto pos = [&](double value) {
    const double t = std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
    return static_cast<std::size_t>(t * static_cast<double>(width - 1));
  };
  for (std::size_t i = pos(stats.whisker_low); i <= pos(stats.whisker_high);
       ++i) {
    strip[i] = '-';
  }
  for (std::size_t i = pos(stats.q1); i <= pos(stats.q3); ++i) {
    strip[i] = '=';
  }
  strip[pos(stats.whisker_low)] = '|';
  strip[pos(stats.whisker_high)] = '|';
  strip[pos(stats.median)] = '#';
  return strip;
}

void print_header(const std::string& title, const std::string& subtitle) {
  std::cout << "\n" << std::string(74, '=') << "\n"
            << title << "\n" << subtitle << "\n"
            << std::string(74, '=') << "\n";
}

}  // namespace hmd::bench
