#pragma once
// Shared infrastructure of the bench harness.
//
// Every bench binary regenerates one table or figure of the paper. They all
// consume the same two dataset bundles (Table I), which are expensive to
// simulate, so the first bench to run materialises them into an on-disk
// versioned binary cache (./dataset_cache/<stem>.hmdb relative to the
// working directory, see datasets/io.h) and later benches just load it.
// Stale or mismatched cache files are regenerated, never misread.
//
// Common flags (parsed by parse_bench_args):
//   --scale=<f>    scale Table I sample counts by f in (0, 16]; > 1 scales
//                  *up* for throughput stress runs (default 1.0)
//   --seed=<n>     dataset generation seed override
//   --members=<n>  ensemble size M (default 100)
//   --model=<s>    detector family rf|lr|svm (default rf) for benches
//                  that take the family from the options
//   --threads=<n>  worker threads for fit and batched inference
//                  (0 = all cores, the default)
//   --no-cache     force regeneration, do not touch the cache

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/evaluation.h"
#include "datasets/dvfs_dataset.h"
#include "datasets/hpc_dataset.h"

namespace hmd::bench {

/// Options shared by all bench binaries.
struct BenchOptions {
  double scale = 1.0;
  std::uint64_t dvfs_seed = 7;
  std::uint64_t hpc_seed = 13;
  int n_members = 100;
  int n_threads = 0;
  /// Detector family for benches that take it from the options (--model).
  core::ModelKind model = core::ModelKind::kRandomForest;
  bool use_cache = true;
  std::string cache_dir = "dataset_cache";
};

/// Parse argv into BenchOptions; unknown flags abort with a usage message.
BenchOptions parse_bench_args(int argc, char** argv);

/// Cache-file stem for a dataset at the options' scale. Seed and scale are
/// both encoded (scale at 1e-6 resolution), so distinct configurations —
/// including scales above 1 — never collide on the same cache file.
std::string cache_stem(const BenchOptions& options, const std::string& name,
                       std::uint64_t seed);

/// Load (or build + cache) the DVFS bundle at the requested scale.
data::DatasetBundle dvfs_bundle(const BenchOptions& options);

/// Load (or build + cache) the HPC bundle at the requested scale.
data::DatasetBundle hpc_bundle(const BenchOptions& options);

/// HmdConfig preset matching the paper's setup (M members, vote entropy).
core::HmdConfig paper_config(const BenchOptions& options,
                             core::ModelKind kind);

/// Same preset with the family taken from options.model (--model).
core::HmdConfig paper_config(const BenchOptions& options);

/// Render one boxplot row as an ASCII strip over [0, ln 2].
std::string ascii_boxplot(const BoxplotStats& stats, double lo, double hi,
                          std::size_t width = 56);

/// Print a section header.
void print_header(const std::string& title, const std::string& subtitle);

}  // namespace hmd::bench
