// Regenerates Fig. 4 of the paper: boxplots of the estimated predictive
// entropies on the DVFS dataset, for known (test) vs unknown inputs, under
// the RF, LR and SVM bagging ensembles.
//
// Paper shape: for every ensemble the unknown box sits well above the known
// box; RF shows the cleanest separation, SVM's entropies are degenerate
// (near zero for both) — the "poor quality of uncertainty" result.

#include <cmath>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hmd;
  using core::ModelKind;
  const auto options = bench::parse_bench_args(argc, argv);
  const auto bundle = bench::dvfs_bundle(options);

  bench::print_header(
      "Fig. 4 — Estimated entropies, DVFS dataset (known vs unknown)",
      "vote-entropy of M=" + std::to_string(options.n_members) +
          " bagged members, nats; binary max = ln 2 = 0.693");

  ConsoleTable table({"Ensemble", "Split", "median", "q1", "q3", "whisk_lo",
                      "whisk_hi", "mean", "n"});
  const double hi = std::log(2.0);
  for (auto kind : {ModelKind::kRandomForest, ModelKind::kBaggedLogistic,
                    ModelKind::kBaggedSvm}) {
    core::TrustedHmd hmd(bench::paper_config(options, kind));
    hmd.fit(bundle.train);
    const auto dists = core::entropy_distributions(hmd, bundle);
    const std::string name = core::model_kind_name(kind);
    for (const auto& [split, stats] :
         {std::pair{"known", dists.known_stats},
          std::pair{"unknown", dists.unknown_stats}}) {
      table.add_row({name, split, ConsoleTable::fmt(stats.median),
                     ConsoleTable::fmt(stats.q1), ConsoleTable::fmt(stats.q3),
                     ConsoleTable::fmt(stats.whisker_low),
                     ConsoleTable::fmt(stats.whisker_high),
                     ConsoleTable::fmt(stats.mean),
                     std::to_string(stats.n)});
      std::cout << name << (std::string(4 - name.size(), ' '))
                << (split == std::string("known") ? "known   " : "unknown ")
                << "[" << bench::ascii_boxplot(stats, 0.0, hi) << "]\n";
    }
    if (!hmd.converged()) {
      std::cout << "  note: " << name << " ensemble reported only "
                << ConsoleTable::fmt(100.0 * hmd.converged_fraction(), 1)
                << "% member convergence\n";
    }
  }
  std::cout << "      0" << std::string(50, ' ') << "ln2\n\n";
  std::cout << table;
  write_text_file("bench_results/fig4_dvfs_entropy.csv", table.to_csv());
  std::cout << "[series written to bench_results/fig4_dvfs_entropy.csv]\n";
  return 0;
}
