// Regenerates Table I of the paper: the dataset taxonomy (sample counts per
// split for the DVFS and HPC datasets), plus class/app composition columns
// the paper describes in the text.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hmd;
  const auto options = bench::parse_bench_args(argc, argv);

  bench::print_header(
      "Table I — Dataset taxonomy",
      "paper: DVFS 2100/700/284, HPC 44605/6372/12727 (train/test/unknown)");

  ConsoleTable table({"Dataset", "Split", "# Samples", "# Benign",
                      "# Malware", "# Apps"});
  for (const auto& bundle :
       {bench::dvfs_bundle(options), bench::hpc_bundle(options)}) {
    for (const auto& row : bundle.taxonomy()) {
      table.add_row({row.dataset, row.split, std::to_string(row.n_samples),
                     std::to_string(row.n_benign),
                     std::to_string(row.n_malware),
                     std::to_string(row.n_apps)});
    }
  }
  std::cout << table;
  write_text_file("bench_results/table1_taxonomy.csv", table.to_csv());
  std::cout << "[series written to bench_results/table1_taxonomy.csv]\n";
  return 0;
}
