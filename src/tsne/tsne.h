#pragma once
// Exact t-SNE (van der Maaten & Hinton, 2008) for the Fig. 8 latent-space
// visualisation. O(N^2) pairwise affinities with a per-point perplexity
// binary search, then gradient descent with momentum and early
// exaggeration on the 2-D embedding. Deterministic for a fixed seed.

#include <cstdint>

#include "common/matrix.h"

namespace hmd::tsne {

struct TsneParams {
  int n_components = 2;
  double perplexity = 30.0;
  int n_iterations = 400;
  double learning_rate = 200.0;
  /// Pij are multiplied by this factor for the first `exaggeration_iters`
  /// iterations to form tight, well-separated clusters early.
  double early_exaggeration = 12.0;
  int exaggeration_iters = 100;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  std::uint64_t seed = 0;
};

struct TsneResult {
  Matrix embedding;           ///< rows x n_components
  double kl_divergence = 0.0; ///< KL(P || Q) at the final iteration
};

/// Embed the rows of x. Requires x.rows() >= 4; perplexity is clamped to
/// (rows - 1) / 3 as in the reference implementation.
TsneResult tsne_embed(const Matrix& x, const TsneParams& params);

}  // namespace hmd::tsne
