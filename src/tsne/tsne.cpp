#include "tsne/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace hmd::tsne {

namespace {

// Symmetrised input affinities P (row-major n x n) from squared pairwise
// distances, with a binary search for the Gaussian bandwidth matching the
// requested perplexity.
std::vector<double> input_affinities(const Matrix& x, double perplexity) {
  const std::size_t n = x.rows();
  std::vector<double> d2(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = squared_distance(x.row(i), x.row(j));
      d2[i * n + j] = d;
      d2[j * n + i] = d;
    }
  }

  const double target_entropy = std::log(perplexity);
  std::vector<double> p(n * n, 0.0);
  std::vector<double> row(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double beta = 1.0, beta_lo = 0.0, beta_hi = 1e300;
    for (int it = 0; it < 64; ++it) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = j == i ? 0.0 : std::exp(-beta * d2[i * n + j]);
        sum += row[j];
      }
      sum = std::max(sum, 1e-300);
      // H = log(sum) + beta * E[d2] under the conditional distribution.
      double weighted = 0.0;
      for (std::size_t j = 0; j < n; ++j) weighted += row[j] * d2[i * n + j];
      const double entropy = std::log(sum) + beta * weighted / sum;
      const double diff = entropy - target_entropy;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0.0) {
        beta_lo = beta;
        beta = beta_hi >= 1e300 ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta + beta_lo) / 2.0;
      }
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = j == i ? 0.0 : std::exp(-beta * d2[i * n + j]);
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = j == i ? 0.0 : std::exp(-beta * d2[i * n + j]);
      sum += row[j];
    }
    sum = std::max(sum, 1e-300);
    for (std::size_t j = 0; j < n; ++j) p[i * n + j] = row[j] / sum;
  }

  // Symmetrise and normalise over all pairs.
  std::vector<double> sym(n * n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sym[i * n + j] = (p[i * n + j] + p[j * n + i]) / 2.0;
      total += sym[i * n + j];
    }
  }
  total = std::max(total, 1e-300);
  for (double& v : sym) v = std::max(v / total, 1e-12);
  return sym;
}

}  // namespace

TsneResult tsne_embed(const Matrix& x, const TsneParams& params) {
  const std::size_t n = x.rows();
  HMD_REQUIRE(n >= 4, "tsne_embed: need at least 4 points");
  HMD_REQUIRE(params.n_components >= 1, "tsne_embed: bad n_components");
  const auto dim = static_cast<std::size_t>(params.n_components);
  const double perplexity = std::min(
      params.perplexity, std::max(2.0, static_cast<double>(n - 1) / 3.0));

  const std::vector<double> p = input_affinities(x, perplexity);

  Rng rng(params.seed + 1);
  Matrix y(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < dim; ++c) y(i, c) = rng.normal(0.0, 1e-4);
  }

  std::vector<double> velocity(n * dim, 0.0);
  std::vector<double> gains(n * dim, 1.0);
  std::vector<double> q(n * n, 0.0);
  std::vector<double> gradient(n * dim, 0.0);
  double kl = 0.0;

  for (int iter = 0; iter < params.n_iterations; ++iter) {
    const double exaggeration =
        iter < params.exaggeration_iters ? params.early_exaggeration : 1.0;
    const double momentum = iter < params.exaggeration_iters
                                ? params.initial_momentum
                                : params.final_momentum;

    // Student-t output affinities.
    double q_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double w =
            1.0 / (1.0 + squared_distance(y.row(i), y.row(j)));
        q[i * n + j] = w;
        q[j * n + i] = w;
        q_total += 2.0 * w;
      }
    }
    q_total = std::max(q_total, 1e-300);

    std::fill(gradient.begin(), gradient.end(), 0.0);
    kl = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double pij = p[i * n + j] * exaggeration;
        const double w = q[i * n + j];
        const double qij = std::max(w / q_total, 1e-12);
        const double coeff = 4.0 * (pij - qij) * w;
        for (std::size_t c = 0; c < dim; ++c) {
          gradient[i * dim + c] += coeff * (y(i, c) - y(j, c));
        }
        if (exaggeration == 1.0) {
          kl += p[i * n + j] * std::log(p[i * n + j] / qij);
        }
      }
    }

    for (std::size_t k = 0; k < n * dim; ++k) {
      // Adaptive per-coordinate gains as in the reference implementation.
      const bool same_sign = (gradient[k] > 0.0) == (velocity[k] > 0.0);
      gains[k] = same_sign ? std::max(0.01, gains[k] * 0.8) : gains[k] + 0.2;
      velocity[k] = momentum * velocity[k] -
                    params.learning_rate * gains[k] * gradient[k];
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < dim; ++c) y(i, c) += velocity[i * dim + c];
    }

    // Re-centre the embedding each step.
    for (std::size_t c = 0; c < dim; ++c) {
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += y(i, c);
      mean /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) y(i, c) -= mean;
    }
  }

  TsneResult result;
  result.embedding = std::move(y);
  result.kl_divergence = kl;
  return result;
}

}  // namespace hmd::tsne
