#include "jit/jit.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/flat_forest.h"
#include "jit/x64_emitter.h"

namespace hmd::jit {

namespace {

Policy env_default_policy() {
  const char* env = std::getenv("HMD_JIT");
  if (env == nullptr) return Policy::kAuto;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "off" || v == "0" || v == "false" || v == "no") return Policy::kOff;
  if (v == "on" || v == "1" || v == "true" || v == "yes") return Policy::kOn;
  return Policy::kAuto;
}

std::atomic<Policy>& policy_flag() {
  static std::atomic<Policy> flag{env_default_policy()};
  return flag;
}

}  // namespace

bool available() { return HMD_JIT_SUPPORTED != 0; }

Policy policy() { return policy_flag().load(std::memory_order_relaxed); }

void set_policy(Policy p) {
  policy_flag().store(p, std::memory_order_relaxed);
}

bool should_compile(const core::FlatForestEngine& forest) {
  if (!available()) return false;
  switch (policy()) {
    case Policy::kOff:
      return false;
    case Policy::kOn:
      return true;
    case Policy::kAuto:
      break;
  }
  // Profitability: per row, a stump costs the interpreter ~1 vectorised
  // compare+blend step, while a deep tree costs one dependent arena load
  // per level — the case native compare/branch chains win (measured
  // 1.4-1.7x). Compile only when deep-tree node work dwarfs the stump
  // count; a stump-table forest stays on the interpreter's SIMD loop.
  const std::size_t stump_trees = forest.n_stumps();
  const std::size_t stump_nodes = stump_trees * 3;  // upper bound
  const std::size_t deep_nodes =
      forest.n_nodes() > stump_nodes ? forest.n_nodes() - stump_nodes : 0;
  return deep_nodes >= 64 * stump_trees;
}

#if HMD_JIT_SUPPORTED

namespace {

using core::FlatForestEngine;
using Node = FlatForestEngine::Node;

/// Generator limits. Arenas past the size cap would emit tens of MB of
/// code per shape — interpret those instead. The displacement cap keeps
/// feature-column offsets inside a disp32.
constexpr std::size_t kMaxJitNodes = std::size_t{1} << 18;
constexpr std::int64_t kMaxDisp = 0x7FFFFFFF;

struct TreeCompiler {
  X64Emitter& e;
  std::span<const Node> nodes;
  std::span<const double> leaf_entropy;
  /// Pool slots interned once per forest (not per shape): node_slot[i] is
  /// nodes[i].threshold — the split threshold for internal nodes, the
  /// leaf posterior for leaves; ent_slot[i] is leaf_entropy[i]; one_slot
  /// is the 1.0 malware-vote increment. Hash-interning each constant four
  /// times (once per shape) dominated compile time on large forests.
  std::span<const std::size_t> node_slot;
  std::span<const std::size_t> ent_slot;
  std::size_t one_slot;
  std::size_t zero_slot;
  bool posterior;
  bool entropy;
  /// Nodes emitted so far across the whole kernel — a defensive bound so
  /// a pathological arena (possible only under the checksummed
  /// shallow-validation trust model) fails compilation instead of
  /// recursing forever.
  std::size_t budget;
  bool ok = true;

  /// acc[r9] += constant. Operand order matches the interpreter's
  /// `acc += c` (acc + c). A zero constant is skipped entirely: every
  /// accumulator is a sum of non-negative terms starting from +0.0, so
  /// adding +/-0.0 never changes its bit pattern — the skip is
  /// bit-identical to the interpreter's unconditional add, and on
  /// mostly-pure-leaf forests it shrinks the emitted code substantially.
  void emit_accumulate_const(Gpr acc_base, double c, std::size_t slot) {
    if (c == 0.0) return;
    e.movsd_load_const(0, slot);
    e.movsd_load_indexed(1, acc_base, 0);
    e.addsd(1, 0);
    e.movsd_store_indexed(1, acc_base, 0);
  }

  /// The three leaf accumulates, in the interpreter's order: vote,
  /// posterior, entropy. Shapes skip what they don't demand.
  void emit_leaf_payloads(std::size_t i) {
    const double p1 = nodes[i].threshold;
    emit_accumulate_const(kRdx, p1 > 0.5 ? 1.0 : 0.0, one_slot);
    if (posterior) emit_accumulate_const(kRcx, p1, node_slot[i]);
    if (entropy) emit_accumulate_const(kR8, leaf_entropy[i], ent_slot[i]);
  }

  /// acc[r9] += mask ? lo : hi, where xmm0 holds the (x <= t) mask
  /// (all-ones selects lo — NaN compares false and takes hi, matching
  /// the interpreter's !(x <= t) hi select). Bit-exact blend via
  /// andpd/andnpd/orpd; xmm0 is preserved for the next payload. Equal
  /// payloads need no blend at all — the select is a constant either
  /// way — and collapse to the (zero-skipping) constant accumulate.
  void emit_blend_accumulate(Gpr acc_base, double lo, double hi,
                             std::size_t lo_slot, std::size_t hi_slot) {
    std::uint64_t lo_bits = 0, hi_bits = 0;
    std::memcpy(&lo_bits, &lo, 8);
    std::memcpy(&hi_bits, &hi, 8);
    if (lo_bits == hi_bits) {
      emit_accumulate_const(acc_base, lo, lo_slot);
      return;
    }
    e.movapd(1, 0);
    e.movsd_load_const(2, lo_slot);
    e.movsd_load_const(3, hi_slot);
    e.andpd(2, 1);
    e.andnpd(1, 3);
    e.orpd(2, 1);
    e.movsd_load_indexed(4, acc_base, 0);
    e.addsd(4, 2);
    e.movsd_store_indexed(4, acc_base, 0);
  }

  std::int32_t feature_disp(std::int32_t feature) {
    const std::int64_t disp = std::int64_t{feature} *
                              static_cast<std::int64_t>(
                                  FlatForestEngine::kTileRows * sizeof(double));
    if (disp < 0 || disp > kMaxDisp) {
      ok = false;
      return 0;
    }
    return static_cast<std::int32_t>(disp);
  }

  /// Branch-free depth<=1 body: one compare-to-mask, then a blend per
  /// demanded payload. Falls through (no row-epilogue jump needed). The
  /// mask is only computed when at least one payload actually differs
  /// between the leaves; degenerate stumps reduce to constant adds.
  void emit_stump(std::size_t root_index) {
    const Node& root = nodes[root_index];
    const auto li = static_cast<std::size_t>(root.left);
    const Node& lo = nodes[li];
    const Node& hi = nodes[li + 1];
    struct Payload {
      Gpr base;
      double lo, hi;
      std::size_t lo_slot, hi_slot;
    };
    Payload payloads[3];
    std::size_t n = 0;
    payloads[n++] = {kRdx, lo.threshold > 0.5 ? 1.0 : 0.0,
                     hi.threshold > 0.5 ? 1.0 : 0.0,
                     lo.threshold > 0.5 ? one_slot : zero_slot,
                     hi.threshold > 0.5 ? one_slot : zero_slot};
    if (posterior) {
      payloads[n++] = {kRcx, lo.threshold, hi.threshold, node_slot[li],
                       node_slot[li + 1]};
    }
    if (entropy) {
      payloads[n++] = {kR8, leaf_entropy[li], leaf_entropy[li + 1],
                       ent_slot[li], ent_slot[li + 1]};
    }
    bool needs_mask = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t a = 0, b = 0;
      std::memcpy(&a, &payloads[i].lo, 8);
      std::memcpy(&b, &payloads[i].hi, 8);
      needs_mask = needs_mask || a != b;
    }
    if (needs_mask) {
      e.movsd_load_indexed(0, kRdi, feature_disp(root.feature));
      e.cmpsd_const(0, node_slot[root_index], /*imm=LE*/ 2);
    }
    for (std::size_t i = 0; i < n; ++i) {
      emit_blend_accumulate(payloads[i].base, payloads[i].lo, payloads[i].hi,
                            payloads[i].lo_slot, payloads[i].hi_slot);
    }
  }

  /// Is `left` a valid two-child slot (left and left+1 in the arena)?
  bool children_in_bounds(std::int32_t left) const {
    return left > 0 &&
           left < static_cast<std::int32_t>(nodes.size()) - 1;
  }

  /// Compare/branch chain for a general subtree. Every leaf jumps to the
  /// row epilogue.
  void emit_subtree(std::int32_t i, X64Emitter::Label row_next) {
    if (!ok || budget == 0) {
      ok = false;
      return;
    }
    --budget;
    const Node& node = nodes[static_cast<std::size_t>(i)];
    if (node.feature >= 0 && !children_in_bounds(node.left)) {
      ok = false;
      return;
    }
    if (node.feature < 0) {
      emit_leaf_payloads(static_cast<std::size_t>(i));
      e.jmp(row_next);
      return;
    }
    // ucomisd t, x sets CF iff t < x or unordered — exactly the
    // interpreter's "descend right" predicate !(x <= t), NaN included.
    e.movsd_load_const(0, node_slot[static_cast<std::size_t>(i)]);
    e.ucomisd_indexed(0, kRdi, feature_disp(node.feature));
    const X64Emitter::Label right = e.make_label();
    e.jb(right);
    emit_subtree(node.left, row_next);
    e.bind(right);
    emit_subtree(node.left + 1, row_next);
  }

  /// One tree: a row loop over the live tile, body chosen by shape.
  void emit_tree(std::int32_t root_index) {
    const Node& root = nodes[static_cast<std::size_t>(root_index)];
    if (root.feature < 0 && root.threshold == 0.0 &&
        leaf_entropy[static_cast<std::size_t>(root_index)] == 0.0) {
      // A single benign pure leaf contributes +0.0 to every accumulator
      // — nothing to emit (see emit_accumulate_const's zero-skip).
      return;
    }
    e.zero_r9();
    const X64Emitter::Label loop = e.make_label();
    const X64Emitter::Label done = e.make_label();
    const X64Emitter::Label row_next = e.make_label();
    e.bind(loop);
    e.cmp_r9_rsi();
    e.jae(done);
    if (root.feature >= 0 && !children_in_bounds(root.left)) {
      ok = false;
      return;
    }
    if (root.feature < 0) {
      // Single-leaf tree: unconditional constant accumulates.
      emit_leaf_payloads(static_cast<std::size_t>(root_index));
    } else if (nodes[static_cast<std::size_t>(root.left)].feature < 0 &&
               nodes[static_cast<std::size_t>(root.left) + 1].feature < 0) {
      emit_stump(static_cast<std::size_t>(root_index));
    } else {
      emit_subtree(root_index, row_next);
    }
    e.bind(row_next);
    e.inc_r9();
    e.jmp(loop);
    e.bind(done);
  }
};

}  // namespace

std::unique_ptr<ForestProgram> compile_forest(const FlatForestEngine& forest) {
  const auto nodes = forest.nodes_view();
  const auto roots = forest.roots_view();
  if (nodes.empty() || roots.empty() || nodes.size() > kMaxJitNodes)
    return nullptr;
  const auto t0 = std::chrono::steady_clock::now();

  auto program = std::unique_ptr<ForestProgram>(new ForestProgram());
  X64Emitter emitter(program->code_);
  // Upper bounds across all four shapes: <=2 jumps per node (leaf jmp or
  // branch jb), <=8 const references per node (threshold + three blended
  // payloads x2), pool <= one distinct slot per node value plus 0/1.
  emitter.reserve(/*jumps=*/nodes.size() * 8, /*consts=*/nodes.size() * 8,
                  /*pool=*/nodes.size() + 2);
  // Intern every constant once up front; the four shape passes then reuse
  // the slot ids without touching the dedup hash again.
  const auto leaf_entropy = forest.leaf_entropy_view();
  const std::size_t one_slot = emitter.pool_const(1.0);
  const std::size_t zero_slot = emitter.pool_const(0.0);
  std::vector<std::size_t> node_slot(nodes.size());
  std::vector<std::size_t> ent_slot(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    node_slot[i] = emitter.pool_const(nodes[i].threshold);
    ent_slot[i] = emitter.pool_const(leaf_entropy[i]);
  }
  std::size_t entries[4] = {};
  for (unsigned shape = 0; shape < 4; ++shape) {
    entries[shape] = emitter.offset();
    TreeCompiler compiler{emitter,
                          nodes,
                          leaf_entropy,
                          node_slot,
                          ent_slot,
                          one_slot,
                          zero_slot,
                          /*posterior=*/(shape & 1) != 0,
                          /*entropy=*/(shape & 2) != 0,
                          /*budget=*/nodes.size() + 1};
    for (const std::int32_t root : roots) {
      compiler.emit_tree(root);
      if (!compiler.ok) return nullptr;
    }
    emitter.ret();
  }
  if (!emitter.finish()) return nullptr;
  if (!program->code_.protect()) return nullptr;
  for (unsigned shape = 0; shape < 4; ++shape) {
    program->kernels_[shape] = reinterpret_cast<ForestProgram::KernelFn>(
        const_cast<void*>(program->code_.entry(entries[shape])));
  }
  program->compile_ms_ =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return program;
}

#else  // !HMD_JIT_SUPPORTED

std::unique_ptr<ForestProgram> compile_forest(const core::FlatForestEngine&) {
  return nullptr;
}

#endif

}  // namespace hmd::jit
