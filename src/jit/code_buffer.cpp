#include "jit/code_buffer.h"

#include <cassert>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define HMD_JIT_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define HMD_JIT_HAVE_MMAP 0
#endif

namespace hmd::jit {

namespace {

constexpr std::size_t kInitialCapacity = std::size_t{1} << 16;  // 64 KiB

std::size_t page_round(std::size_t n) {
#if HMD_JIT_HAVE_MMAP
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
#else
  const std::size_t page = 4096;
#endif
  return (n + page - 1) / page * page;
}

}  // namespace

CodeBuffer::CodeBuffer() = default;

CodeBuffer::~CodeBuffer() { reset(); }

CodeBuffer::CodeBuffer(CodeBuffer&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      capacity_(std::exchange(other.capacity_, 0)),
      size_(std::exchange(other.size_, 0)),
      ok_(std::exchange(other.ok_, true)),
      sealed_(std::exchange(other.sealed_, false)) {}

CodeBuffer& CodeBuffer::operator=(CodeBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    base_ = std::exchange(other.base_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
    size_ = std::exchange(other.size_, 0);
    ok_ = std::exchange(other.ok_, true);
    sealed_ = std::exchange(other.sealed_, false);
  }
  return *this;
}

void CodeBuffer::reset() noexcept {
#if HMD_JIT_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, capacity_);
#endif
  base_ = nullptr;
  capacity_ = 0;
  size_ = 0;
  sealed_ = false;
}

bool CodeBuffer::grow(std::size_t extra) {
  assert(!sealed_);
  if (!ok_ || sealed_) return false;
  if (size_ + extra <= capacity_) return true;
#if HMD_JIT_HAVE_MMAP
  std::size_t want = capacity_ == 0 ? kInitialCapacity : capacity_ * 2;
  while (want < size_ + extra) want *= 2;
  want = page_round(want);
  void* fresh = ::mmap(nullptr, want, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (fresh == MAP_FAILED) {
    ok_ = false;
    return false;
  }
  if (size_ != 0) std::memcpy(fresh, base_, size_);
  if (base_ != nullptr) ::munmap(base_, capacity_);
  base_ = static_cast<std::uint8_t*>(fresh);
  capacity_ = want;
  return true;
#else
  ok_ = false;
  return false;
#endif
}

void CodeBuffer::patch32(std::size_t offset, std::uint32_t v) {
  assert(!sealed_);
  if (!ok_ || sealed_ || offset + 4 > size_) return;
  std::memcpy(base_ + offset, &v, 4);
}

void CodeBuffer::align_to(std::size_t alignment, std::uint8_t fill) {
  while (size_ % alignment != 0) put8(fill);
}

bool CodeBuffer::protect() {
  if (!ok_ || sealed_ || base_ == nullptr) return false;
#if HMD_JIT_HAVE_MMAP
  if (::mprotect(base_, capacity_, PROT_READ | PROT_EXEC) != 0) {
    ok_ = false;
    return false;
  }
  sealed_ = true;
  return true;
#else
  ok_ = false;
  return false;
#endif
}

const void* CodeBuffer::entry(std::size_t offset) const {
  assert(sealed_ && offset < size_);
  return base_ + offset;
}

}  // namespace hmd::jit
