#pragma once
// Minimal x86-64 (SysV AMD64) instruction emitter for the forest JIT.
//
// Emits exactly the instruction set the tree compiler needs — scalar SSE2
// double moves/compares/blends, a handful of GPR ops for the row loop,
// and rel32 control flow — into a CodeBuffer, with two fixup mechanisms:
//
//   Labels     forward/backward rel32 branch targets. bind() anchors a
//              label at the current offset; finish() patches every
//              recorded jump site.
//   Constants  an 8-byte-aligned constant pool appended after the code by
//              finish(), deduplicated by bit pattern. movsd/cmpsd sites
//              reference pool slots RIP-relatively; finish() patches the
//              disp32 of each site once the pool layout is known. All
//              pool references are scalar m64 loads, which carry no
//              alignment requirement (unlike packed m128 operands) — the
//              blend sequences therefore run register-to-register.
//
// Register discipline: generated kernels are leaf functions touching only
// SysV volatile registers (rdi rsi rdx rcx r8 r9 rax, xmm0-xmm7), so no
// prologue, stack frame, or callee-saved spill is ever emitted.
//
// RIP-relative displacements are measured from the END of the referencing
// instruction; cmpsd carries a trailing imm8 after its disp32, which the
// fixup bookkeeping accounts for (`end` is recorded per site).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "jit/code_buffer.h"

namespace hmd::jit {

/// GPR encodings (low 3 bits of modrm fields; bit 3 = REX extension).
enum Gpr : std::uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
};

/// xmm0..xmm7 as plain integers (REX-free range only).
using Xmm = std::uint8_t;

class X64Emitter {
 public:
  explicit X64Emitter(CodeBuffer& code) : code_(code) {}

  std::size_t offset() const { return code_.size(); }

  // --- labels ------------------------------------------------------------

  using Label = std::size_t;

  /// Pre-size the fixup bookkeeping. Purely an allocation hint — large
  /// forests record hundreds of thousands of fixups, and doubling-growth
  /// copies are a measurable slice of compile time.
  void reserve(std::size_t jumps, std::size_t consts, std::size_t pool) {
    jumps_.reserve(jumps);
    consts_.reserve(consts);
    pool_.reserve(pool);
  }

  Label make_label() {
    labels_.push_back(kUnbound);
    return labels_.size() - 1;
  }

  void bind(Label label) { labels_[label] = code_.size(); }

  // --- constant pool -----------------------------------------------------

  /// Intern a double by bit pattern; returns the pool slot id.
  std::size_t pool_const(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, 8);
    const auto it = pool_index_.find(bits);
    if (it != pool_index_.end()) return it->second;
    pool_.push_back(bits);
    pool_index_.emplace(bits, pool_.size() - 1);
    return pool_.size() - 1;
  }

  // --- SSE2 scalar double ------------------------------------------------

  /// movsd xmm, [base + r9*8 + disp32]
  void movsd_load_indexed(Xmm dst, Gpr base, std::int32_t disp) {
    code_.put8(0xF2);
    emit_rex_x(base);
    code_.put8(0x0F);
    code_.put8(0x10);
    emit_modrm_sib_indexed(dst, base, disp);
  }

  /// movsd [base + r9*8 + disp32], src
  void movsd_store_indexed(Xmm src, Gpr base, std::int32_t disp) {
    code_.put8(0xF2);
    emit_rex_x(base);
    code_.put8(0x0F);
    code_.put8(0x11);
    emit_modrm_sib_indexed(src, base, disp);
  }

  /// movsd xmm, [rip + <pool slot>]
  void movsd_load_const(Xmm dst, std::size_t slot) {
    code_.put8(0xF2);
    code_.put8(0x0F);
    code_.put8(0x10);
    emit_modrm_rip(dst);
    record_const_fixup(slot, /*tail_bytes=*/0);
  }

  /// cmpsd xmm, [rip + <pool slot>], imm8 — xmm = (xmm CMP const) mask.
  /// imm8 2 (LE) yields all-ones iff xmm <= const; NaN compares false.
  void cmpsd_const(Xmm dst, std::size_t slot, std::uint8_t imm) {
    code_.put8(0xF2);
    code_.put8(0x0F);
    code_.put8(0xC2);
    emit_modrm_rip(dst);
    record_const_fixup(slot, /*tail_bytes=*/1);
    code_.put8(imm);
  }

  /// ucomisd xmm, [base + r9*8 + disp32] — sets CF iff xmm < mem or
  /// unordered (the "descend right" predicate when xmm holds the
  /// threshold and memory holds the sample value).
  void ucomisd_indexed(Xmm lhs, Gpr base, std::int32_t disp) {
    code_.put8(0x66);
    emit_rex_x(base);
    code_.put8(0x0F);
    code_.put8(0x2E);
    emit_modrm_sib_indexed(lhs, base, disp);
  }

  void movapd(Xmm dst, Xmm src) { emit_66_0f(0x28, dst, src); }
  void andpd(Xmm dst, Xmm src) { emit_66_0f(0x54, dst, src); }
  void andnpd(Xmm dst, Xmm src) { emit_66_0f(0x55, dst, src); }
  void orpd(Xmm dst, Xmm src) { emit_66_0f(0x56, dst, src); }

  void addsd(Xmm dst, Xmm src) {
    code_.put8(0xF2);
    code_.put8(0x0F);
    code_.put8(0x58);
    emit_modrm_reg(dst, src);
  }

  // --- GPR / control flow ------------------------------------------------

  /// xor r9d, r9d (zeroes all of r9)
  void zero_r9() {
    code_.put8(0x45);
    code_.put8(0x31);
    code_.put8(0xC9);
  }

  /// cmp r9, rsi
  void cmp_r9_rsi() {
    code_.put8(0x49);
    code_.put8(0x39);
    code_.put8(0xF1);
  }

  /// inc r9
  void inc_r9() {
    code_.put8(0x49);
    code_.put8(0xFF);
    code_.put8(0xC1);
  }

  void jae(Label target) { emit_jcc(0x83, target); }
  void jb(Label target) { emit_jcc(0x82, target); }

  void jmp(Label target) {
    code_.put8(0xE9);
    record_jump_fixup(target);
  }

  void ret() { code_.put8(0xC3); }

  // --- finalisation ------------------------------------------------------

  /// Patch every branch, lay out the constant pool after the code, and
  /// patch every RIP-relative pool reference. Call exactly once, after
  /// all emission. Returns false if the underlying buffer failed.
  bool finish() {
    if (!code_.ok()) return false;
    for (const JumpFixup& fix : jumps_) {
      const std::size_t target = labels_[fix.label];
      if (target == kUnbound) return false;
      code_.patch32(fix.patch_at, rel32(fix.end, target));
    }
    code_.align_to(8);
    std::vector<std::size_t> slot_offsets(pool_.size());
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      slot_offsets[i] = code_.size();
      code_.put64(pool_[i]);
    }
    for (const ConstFixup& fix : consts_) {
      code_.patch32(fix.patch_at, rel32(fix.end, slot_offsets[fix.slot]));
    }
    return code_.ok();
  }

 private:
  static constexpr std::size_t kUnbound = static_cast<std::size_t>(-1);

  struct JumpFixup {
    std::size_t patch_at;  ///< offset of the rel32 field
    std::size_t end;       ///< offset of the end of the instruction
    Label label;
  };
  struct ConstFixup {
    std::size_t patch_at;
    std::size_t end;
    std::size_t slot;
  };

  static std::uint32_t rel32(std::size_t from_end, std::size_t target) {
    return static_cast<std::uint32_t>(
        static_cast<std::int64_t>(target) - static_cast<std::int64_t>(from_end));
  }

  /// REX.X for the r9 index register, plus REX.B when the base is r8/r9.
  void emit_rex_x(Gpr base) {
    code_.put8(static_cast<std::uint8_t>(0x42 | ((base >> 3) & 1)));
  }

  /// modrm(mod=10, reg, rm=SIB) + SIB(scale=8, index=r9, base) + disp32.
  void emit_modrm_sib_indexed(std::uint8_t reg, Gpr base, std::int32_t disp) {
    code_.put8(static_cast<std::uint8_t>(0x80 | (reg << 3) | 0x04));
    code_.put8(static_cast<std::uint8_t>(0xC8 | (base & 7)));
    code_.put32(static_cast<std::uint32_t>(disp));
  }

  /// modrm(mod=00, reg, rm=101) — RIP-relative, disp32 placeholder.
  void emit_modrm_rip(std::uint8_t reg) {
    code_.put8(static_cast<std::uint8_t>(0x05 | (reg << 3)));
  }

  void emit_modrm_reg(std::uint8_t reg, std::uint8_t rm) {
    code_.put8(static_cast<std::uint8_t>(0xC0 | (reg << 3) | rm));
  }

  void emit_66_0f(std::uint8_t opcode, Xmm dst, Xmm src) {
    code_.put8(0x66);
    code_.put8(0x0F);
    code_.put8(opcode);
    emit_modrm_reg(dst, src);
  }

  void emit_jcc(std::uint8_t opcode, Label target) {
    code_.put8(0x0F);
    code_.put8(opcode);
    record_jump_fixup(target);
  }

  void record_jump_fixup(Label target) {
    const std::size_t patch_at = code_.size();
    code_.put32(0);
    jumps_.push_back({patch_at, code_.size(), target});
  }

  void record_const_fixup(std::size_t slot, std::size_t tail_bytes) {
    const std::size_t patch_at = code_.size();
    code_.put32(0);
    consts_.push_back({patch_at, code_.size() + tail_bytes, slot});
  }

  CodeBuffer& code_;
  std::vector<std::size_t> labels_;
  std::vector<JumpFixup> jumps_;
  std::vector<ConstFixup> consts_;
  std::vector<std::uint64_t> pool_;
  std::unordered_map<std::uint64_t, std::size_t> pool_index_;
};

}  // namespace hmd::jit
