#pragma once
// Executable code buffer with W^X discipline.
//
// A CodeBuffer is a grow-only byte sink backed by an anonymous mmap:
// it is mapped read+write while code is being emitted, sealed to
// read+execute exactly once by protect(), and unmapped by the destructor
// (RAII). The two states never overlap — no page of the buffer is ever
// writable and executable at the same time, and emission after protect()
// is a programming error (asserted).
//
// Growth remaps: a larger anonymous mapping is created, the emitted bytes
// are copied, and the old mapping is released. Consumers therefore refer
// to code positions as *offsets* until protect(), and only then resolve
// entry points via entry(offset) — the base address is not stable before
// the seal.
//
// The buffer compiles on any POSIX x86-64 target; on other targets (or
// under -DHMD_NO_JIT) src/jit/jit.h reports the JIT unavailable and this
// class is never instantiated, but it still compiles so the library
// builds everywhere unchanged.

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace hmd::jit {

class CodeBuffer {
 public:
  CodeBuffer();
  ~CodeBuffer();
  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;
  CodeBuffer(CodeBuffer&& other) noexcept;
  CodeBuffer& operator=(CodeBuffer&& other) noexcept;

  /// Append one byte / a little-endian scalar. Only valid before
  /// protect(). A failed growth poisons the buffer — callers check ok()
  /// once at the end of emission rather than on every byte. Inline hot
  /// path: emission is on the artifact-load path, where compile time is
  /// amortised against the first served batches.
  void put8(std::uint8_t v) {
    if (size_ + 1 > capacity_ && !grow(1)) return;
    base_[size_++] = v;
  }
  void put32(std::uint32_t v) {
    if (size_ + 4 > capacity_ && !grow(4)) return;
    std::memcpy(base_ + size_, &v, 4);
    size_ += 4;
  }
  void put64(std::uint64_t v) {
    if (size_ + 8 > capacity_ && !grow(8)) return;
    std::memcpy(base_ + size_, &v, 8);
    size_ += 8;
  }

  /// Overwrite 4 bytes at `offset` (fixup patching). Valid before
  /// protect() only.
  void patch32(std::size_t offset, std::uint32_t v);

  /// Pad with a given byte until size() is a multiple of `alignment`.
  void align_to(std::size_t alignment, std::uint8_t fill = 0xCC);

  /// Bytes emitted so far.
  std::size_t size() const { return size_; }

  /// False once any growth or protection step failed; the buffer is then
  /// inert (emission is ignored, protect() fails).
  bool ok() const { return ok_; }

  /// Seal the buffer: mprotect the mapping read+execute. After this the
  /// buffer is immutable and entry() becomes valid. Returns false on
  /// failure (the buffer stays non-executable and unusable).
  bool protect();

  /// Resolve an emitted offset to a callable address. Valid only after a
  /// successful protect().
  const void* entry(std::size_t offset) const;

 private:
  void reset() noexcept;
  /// Remap to at least size_ + extra bytes (cold path of the put*()s).
  bool grow(std::size_t extra);

  std::uint8_t* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  bool ok_ = true;
  bool sealed_ = false;
};

}  // namespace hmd::jit
