#pragma once
// Tree-to-native JIT: compile a loaded FlatForestEngine's arena into
// straight-line x86-64 batch kernels with thresholds, leaf posteriors,
// entropies and votes baked in as immediates.
//
// A compiled ForestProgram holds four entry points — one per StatsMask
// shape (posterior and/or entropy demanded; votes always) — sharing one
// sealed CodeBuffer. Each kernel has the engine's uniform batch-kernel
// signature: a column-major tile transposed at the fixed
// FlatForestEngine::kTileRows stride (so every feature column lives at a
// compile-time displacement), the live row count, and the three
// accumulator arrays. Masked-out accumulators are never touched by the
// corresponding shape's code — the generated kernel for a
// prediction-only request contains no posterior or entropy instructions
// at all.
//
// Codegen strategy (mirrors the interpreter so results stay
// bit-identical — asserted by the JitParity test suite):
//   depth<=1 trees  fused compare+blend straight-line sequence: one
//                   cmpsd(LE) mask + andpd/andnpd/orpd select per
//                   payload, all scalar-double and branch-free. NaN
//                   compares false and therefore selects the hi leaf,
//                   exactly like the interpreter's !(x <= t).
//   deeper trees    compare/branch chains: ucomisd threshold-vs-sample
//                   with jb taken iff t < x or unordered (NaN descends
//                   right), leaves accumulate their constants and jump
//                   to the row epilogue.
// Trees are emitted in ascending member order with a per-tree row loop,
// so per-sample accumulation order matches the interpreter exactly and
// IEEE addition makes every partial sum bit-identical.
//
// Availability and gating:
//   compile-time  x86-64 + POSIX mmap only; -DHMD_NO_JIT compiles the
//                 backend out entirely (available() is then false and
//                 compile_forest() returns nullptr).
//   run-time      a three-state Policy (HMD_JIT env var / the serving
//                 tools' --jit flag / set_policy()): kOff never
//                 compiles, kOn always does, and the default kAuto
//                 compiles only forests the generator predicts it can
//                 beat the interpreter on — traversal-dominated (deep)
//                 forests. Stump-dominated ensembles stay interpreted:
//                 the compiler auto-vectorises the interpreter's stump
//                 loop across rows (4-wide under AVX), which scalar
//                 straight-line code cannot outrun, so compiling those
//                 would be a regression, not an optimisation.
//                 compile_forest() also declines absurd inputs (feature
//                 displacement overflow, oversized arenas) so callers
//                 fall back to the interpreted arena with zero behavior
//                 change.
//
// Thread-safety: the enable flag is atomic; ForestProgram is immutable
// after compile_forest() returns, so concurrent kernel calls need no
// synchronisation. Compilation itself runs wherever the engine is
// constructed — on the registry path that is inside the per-entry load
// mutex, off the registry-wide lock, so a slow compile of one key never
// blocks another key's get().

#include <cstddef>
#include <memory>

#include "jit/code_buffer.h"

#if defined(__x86_64__) && !defined(HMD_NO_JIT) && \
    (defined(__unix__) || defined(__APPLE__))
#define HMD_JIT_SUPPORTED 1
#else
#define HMD_JIT_SUPPORTED 0
#endif

namespace hmd::core {
class FlatForestEngine;
}  // namespace hmd::core

namespace hmd::jit {

/// Compiled into the build and running on a JIT-capable target?
bool available();

/// When to compile a loaded forest to native code.
enum class Policy {
  kAuto,  ///< compile when predicted profitable (deep forests) — default
  kOn,    ///< compile every eligible forest (bench/parity forcing)
  kOff,   ///< never compile; interpreted arena everywhere
};

/// The process-wide policy. Defaults from the HMD_JIT environment
/// variable (on / off / auto; unset = auto) and is overridden by the
/// serving tools' --jit flag via set_policy(). Affects engines loaded
/// after the call, never ones already constructed. Atomic — safe to
/// read from concurrent loads.
Policy policy();
void set_policy(Policy p);

/// Should this forest be compiled under the current policy? False
/// whenever !available(). Under kAuto this is the profitability
/// heuristic: compile only when per-row work is dominated by deep-tree
/// traversal (the interpreter already vectorises stump-table forests
/// better than scalar native code can).
bool should_compile(const core::FlatForestEngine& forest);

/// Native batch kernels for one forest. Index a kernel by StatsMask
/// shape: (posterior ? 1 : 0) | (entropy ? 2 : 0).
class ForestProgram {
 public:
  /// xt is the tile transposed at the fixed kTileRows stride; votes /
  /// sum_p1 / sum_entropy are dense accumulators of `tile` doubles. A
  /// shape that does not demand a field never dereferences its pointer.
  using KernelFn = void (*)(const double* xt, std::size_t tile,
                            double* votes, double* sum_p1,
                            double* sum_entropy);

  KernelFn kernel(unsigned shape) const { return kernels_[shape & 3]; }
  double compile_ms() const { return compile_ms_; }
  std::size_t code_bytes() const { return code_.size(); }

 private:
  friend std::unique_ptr<ForestProgram> compile_forest(
      const core::FlatForestEngine& forest);

  CodeBuffer code_;
  KernelFn kernels_[4] = {nullptr, nullptr, nullptr, nullptr};
  double compile_ms_ = 0.0;
};

/// Compile `forest`'s arena into native kernels. Returns nullptr when
/// the JIT is unavailable, the forest exceeds the generator's limits, or
/// emission fails for any reason — the caller keeps the interpreted
/// kernels. Does NOT consult enabled(): policy belongs to the caller.
std::unique_ptr<ForestProgram> compile_forest(
    const core::FlatForestEngine& forest);

}  // namespace hmd::jit
