#include "serve/event_loop.h"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"

namespace hmd::serve {

namespace {

IoError errno_error(const char* what) {
  return IoError(std::string("event loop: ") + what + ": " +
                 std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw errno_error("epoll_create1 failed");
}

EventLoop::~EventLoop() {
  for (auto& [fd, watch] : watches_) {
    if (watch->is_timer) ::close(fd);
  }
  ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, FdCallback cb) {
  auto watch = std::make_shared<Watch>();
  watch->on_event = std::move(cb);
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw errno_error("epoll_ctl(ADD) failed");
  }
  watches_[fd] = std::move(watch);
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw errno_error("epoll_ctl(MOD) failed");
  }
}

void EventLoop::remove(int fd) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) return;
  it->second->dead = true;  // events already fetched this wave are dropped
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  if (it->second->is_timer) ::close(fd);
  watches_.erase(it);
}

int EventLoop::add_timer_ms(int interval_ms, TimerCallback cb) {
  const int fd = ::timerfd_create(CLOCK_MONOTONIC,
                                  TFD_NONBLOCK | TFD_CLOEXEC);
  if (fd < 0) throw errno_error("timerfd_create failed");
  itimerspec spec{};
  spec.it_interval.tv_sec = interval_ms / 1000;
  spec.it_interval.tv_nsec =
      static_cast<long>(interval_ms % 1000) * 1000000L;
  spec.it_value = spec.it_interval;
  if (::timerfd_settime(fd, 0, &spec, nullptr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw errno_error("timerfd_settime failed");
  }

  auto watch = std::make_shared<Watch>();
  watch->is_timer = true;
  watch->on_tick = std::move(cb);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw errno_error("epoll_ctl(ADD) failed for timer");
  }
  watches_[fd] = std::move(watch);
  return fd;
}

int EventLoop::poll_once(int timeout_ms) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw errno_error("epoll_wait failed");
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    auto it = watches_.find(fd);
    if (it == watches_.end()) continue;  // removed earlier in this wave
    // Hold a reference: the callback may remove this or any other watch.
    std::shared_ptr<Watch> watch = it->second;
    if (watch->dead) continue;
    ++dispatched;
    if (watch->is_timer) {
      std::uint64_t expirations = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(fd, &expirations, sizeof(expirations));
      watch->on_tick();
    } else {
      watch->on_event(events[i].events);
    }
  }
  return dispatched;
}

}  // namespace hmd::serve
