#pragma once
// The `.hmdw` serving wire protocol and the micro-batcher contract — the
// byte-level agreement between tools/hmd_client (or any foreign client)
// and the socket front-end in serve/server.h.
//
// ## Frame layout
//
// Every message is one frame: a fixed 16-byte header followed by a typed
// payload. All integers and doubles are little-endian (the same framing
// discipline as the on-disk artefacts — common/binary_io.h static_asserts
// a little-endian host), packed with no padding and no alignment
// requirement: readers memcpy fields out of the byte stream.
//
//   offset  size  field
//        0     4  magic "HMDW"
//        4     1  protocol version (kProtocolVersion = 1)
//        5     1  frame type (FrameType: 1 request, 2 result, 3 error)
//        6     1  accuracy tier (core::Accuracy: 0 exact, 1 fast)
//        7     1  reserved, must be 0
//        8     4  request id (u32; results/errors echo the request's)
//       12     4  payload size in bytes (u32)
//       16     …  payload
//
// Byte 6 was reserved-must-be-0 before the accuracy tier existed, which
// is exactly what makes the extension compatible both ways: an old
// client's 0 *is* Accuracy::kExact, so it keeps receiving bit-identical
// responses from new servers, and a new client talking exact-tier frames
// is indistinguishable from an old one. On request frames the byte is
// the client's requested tier (values above 1 are a survivable
// kBadPayload — old servers reject a fast-tier request the same way, so
// a new client degrades loudly, not silently). On result frames it
// echoes the tier the server actually scored under. On error frames it
// is 0. See api/score.h for what the fast tier means numerically.
//
// ScoreRequest payload (client -> server):
//
//        0     4  OutputMask (api/score.h bits; must be a non-empty
//                 subset of kKnownOutputs)
//        4     4  uncertainty mode (core::UncertaintyMode value, or
//                 kModeUnset = 0xffffffff for the model's configured mode)
//        8     4  rows (u32, 1..kMaxRowsPerRequest)
//       12     4  cols (u32, 1..kMaxColsPerRequest; must equal the
//                 model's n_features() or the request is rejected)
//       16     2  model key length (u16, 1..kMaxKeyBytes)
//       18     …  model key (registry key, no NUL)
//        …     …  features: rows x cols f64, row-major
//
// ScoreResult payload (server -> client): the SoA ScoreResult columns the
// request selected, sliced to the request's rows and packed back to back
// in ascending OutputMask bit order — the scatter half of the batcher's
// scatter/gather (each client gets exactly its rows back out of the
// coalesced batch, bit-identical to a direct score() call on those rows):
//
//        0     4  OutputMask actually filled (== the request's)
//        4     4  rows
//        8     …  per selected bit, `rows` elements:
//                 prediction  i32    confidence        f64
//                 votes       i32    vote_entropy      f64
//                 soft_entropy f64   expected_entropy  f64
//                 mutual_information f64  variation_ratio f64
//                 max_probability f64     score         f64
//                 trusted     u8
//
// Error payload (server -> client):
//
//        0     4  ErrorCode (u32)
//        4     4  detail length (u32)
//        8     …  human-readable detail (no NUL)
//
// ## Error taxonomy and connection survival
//
// Errors echo the offending request id (0 when the header itself was
// unreadable). Two severities:
//
//  - *Fatal* (error_closes_connection() == true): bad magic, bad version,
//    or a declared payload over the server's frame cap. After any of
//    these the stream offset can no longer be trusted, so the server
//    sends the error frame and closes. kBadMagic on the first frame is
//    the "not speaking HMDW at all" rejection.
//  - *Survivable*: everything else — malformed payload geometry, unknown
//    mask bits / mode, unknown model key, feature width not matching the
//    model. The header was sound, so the frame boundary is known: the
//    server consumes the frame, answers with a typed error, and the
//    connection keeps serving subsequent requests (asserted by
//    tests/test_wire.cpp).
//
// Registry load failures map the LoadError taxonomy (common/error.h) into
// the kLoad* range via error_code_for(), so a client can distinguish "you
// named no such model" from "the artifact is quarantined with a checksum
// failure" without parsing strings.
//
// ## Batching semantics (the micro-batcher contract, serve/batcher.h)
//
// The server may coalesce frames from many connections into one engine
// batch. This is invisible in the results: the OutputMask contract
// (api/score.h) guarantees every selected column is bit-identical for
// any mask, and per-row results are independent of which rows share a
// batch (asserted across thread widths by the determinism suite), so a
// response is bit-identical to a direct score() on the request's rows no
// matter how it was batched. Requests for the same model but different
// uncertainty *modes* are never merged (kOutScore / kOutTrusted depend
// on the mode); masks within a queue are merged by union. Responses to
// one connection always come back in request order; ordering across
// connections is unspecified.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/score.h"
#include "common/error.h"
#include "core/uncertainty.h"

namespace hmd::serve::wire {

inline constexpr char kMagic[4] = {'H', 'M', 'D', 'W'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;

/// Sentinel for "score under the model's configured mode".
inline constexpr std::uint32_t kModeUnset = 0xffffffffu;

/// Every OutputMask bit this protocol version knows how to pack.
inline constexpr api::OutputMask kKnownOutputs =
    (api::kOutTrusted << 1) - 1;  // all 11 column bits

inline constexpr std::uint32_t kMaxRowsPerRequest = 1u << 20;
inline constexpr std::uint32_t kMaxColsPerRequest = 1u << 16;
inline constexpr std::uint32_t kMaxKeyBytes = 256;
/// Hard protocol bound on payload size; servers typically cap lower
/// (ServerOptions::max_frame_bytes).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : std::uint8_t {
  kScoreRequest = 1,
  kScoreResult = 2,
  kError = 3,
};

enum class ErrorCode : std::uint32_t {
  kNone = 0,
  // Framing errors — the byte stream is poisoned, connection closes.
  kBadMagic = 1,
  kBadVersion = 2,
  kFrameTooLarge = 3,
  // Frame-level errors — boundary known, connection survives.
  kBadFrameType = 8,
  kBadPayload = 9,      ///< geometry/length mismatch inside the payload
  kMaskInvalid = 10,    ///< empty or unknown OutputMask bits
  kModeInvalid = 11,    ///< mode value outside UncertaintyMode
  kUnknownModel = 16,   ///< key not in the registry
  kShapeMismatch = 17,  ///< cols != model n_features(), or queue conflict
  // LoadError taxonomy mirror (common/error.h), offset by 100: the model
  // exists but its artifact could not be served.
  kLoadBadMagic = 100,
  kLoadBadVersion = 101,
  kLoadChecksum = 102,
  kLoadTruncated = 103,
  kLoadBadStructure = 104,
  kLoadIo = 105,
  kLoadMmapFailed = 106,
};

const char* error_code_name(ErrorCode code);

/// Map a load failure into its wire mirror.
ErrorCode error_code_for(LoadErrorCode code);

/// True when the error leaves the stream offset untrustworthy — the
/// sender emits the error frame and then closes the connection.
bool error_closes_connection(ErrorCode code);

/// A malformed frame, thrown by parse_frame(). Carries the wire error
/// code to answer with and the request id to echo (0 if unknown).
class WireError : public HmdError {
 public:
  WireError(ErrorCode code, std::uint32_t request_id, std::string detail)
      : HmdError("wire error [" + std::string(error_code_name(code)) +
                 "]: " + detail),
        code_(code),
        request_id_(request_id),
        detail_(std::move(detail)) {}

  ErrorCode code() const { return code_; }
  std::uint32_t request_id() const { return request_id_; }
  const std::string& detail() const { return detail_; }
  bool fatal() const { return error_closes_connection(code_); }

 private:
  ErrorCode code_;
  std::uint32_t request_id_;
  std::string detail_;
};

/// Parsed request frame. Views point into the parse buffer and are valid
/// only until it is mutated or compacted.
struct RequestView {
  std::uint32_t request_id = 0;
  std::string_view model_key;
  api::OutputMask outputs = 0;
  std::optional<core::UncertaintyMode> mode;
  /// Requested serving tier (header byte 6; 0 from old clients = exact).
  core::Accuracy accuracy = core::Accuracy::kExact;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  /// rows*cols little-endian f64, row-major, unaligned.
  const unsigned char* features = nullptr;
};

/// Parsed result frame (client side). `columns` is the packed column
/// block documented above.
struct ResultView {
  std::uint32_t request_id = 0;
  api::OutputMask outputs = 0;
  /// Tier the server actually scored under (echoed in header byte 6).
  core::Accuracy accuracy = core::Accuracy::kExact;
  std::uint32_t rows = 0;
  const unsigned char* columns = nullptr;
};

struct ErrorView {
  std::uint32_t request_id = 0;
  ErrorCode code = ErrorCode::kNone;
  std::string_view detail;
};

struct Frame {
  FrameType type = FrameType::kScoreRequest;
  RequestView request;
  ResultView result;
  ErrorView error;
};

/// Parse one frame from data[0..size). Returns the frame's total byte
/// length (header + payload) and fills `out`; returns 0 when more bytes
/// are needed. Throws WireError on malformed input — fatal() tells the
/// caller whether the stream can continue (for survivable errors the
/// declared frame length at bytes [12,16) is valid and the whole frame
/// is present, so the caller can skip it).
std::size_t parse_frame(const unsigned char* data, std::size_t size,
                        std::size_t max_payload, Frame& out);

/// Byte size of a packed result payload for `outputs` over `rows`.
std::size_t result_payload_bytes(api::OutputMask outputs, std::size_t rows);

// Encoders append one complete frame to `out` (which may already hold
// queued frames — the server's per-connection write buffer).

void append_request(std::vector<unsigned char>& out, std::uint32_t request_id,
                    std::string_view model_key, api::OutputMask outputs,
                    std::optional<core::UncertaintyMode> mode,
                    const double* features, std::size_t rows,
                    std::size_t cols,
                    core::Accuracy accuracy = core::Accuracy::kExact);

/// Pack rows [row_offset, row_offset + rows) of `result`'s selected
/// columns — the scatter step: `result` may be a coalesced multi-client
/// batch, and this slices one client's rows back out of it. `accuracy`
/// is the tier the rows were scored under, echoed in header byte 6.
void append_result(std::vector<unsigned char>& out, std::uint32_t request_id,
                   api::OutputMask outputs, const api::ScoreResult& result,
                   std::size_t row_offset, std::size_t rows,
                   core::Accuracy accuracy = core::Accuracy::kExact);

void append_error(std::vector<unsigned char>& out, std::uint32_t request_id,
                  ErrorCode code, std::string_view detail);

/// Unpack a result frame into a ScoreResult (shape() + column memcpy) —
/// the client-side mirror of append_result with row_offset 0.
void unpack_result(const ResultView& view, api::ScoreResult& out);

}  // namespace hmd::serve::wire
