#include "serve/wire.h"

#include <cstring>
#include <type_traits>

namespace hmd::serve::wire {

namespace {

void put_bytes(std::vector<unsigned char>& out, const void* data,
               std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  out.insert(out.end(), p, p + n);
}

template <typename T>
void put_pod(std::vector<unsigned char>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(out, &value, sizeof(T));
}

template <typename T>
T get_pod(const unsigned char* p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

void put_header(std::vector<unsigned char>& out, FrameType type,
                std::uint32_t request_id, std::uint32_t payload_bytes,
                core::Accuracy accuracy = core::Accuracy::kExact) {
  put_bytes(out, kMagic, sizeof(kMagic));
  put_pod(out, kProtocolVersion);
  put_pod(out, static_cast<std::uint8_t>(type));
  put_pod(out, static_cast<std::uint8_t>(accuracy));  // byte 6: tier
  put_pod(out, std::uint8_t{0});                      // byte 7: reserved
  put_pod(out, request_id);
  put_pod(out, payload_bytes);
}

/// The packed result columns in ascending OutputMask bit order. Shared by
/// the pack / unpack paths so the two can never disagree on the layout
/// (result_payload_bytes mirrors the same order). `Result` is ScoreResult
/// or const ScoreResult.
template <typename Result, typename Fn>
void for_each_column(api::OutputMask outputs, Result& r, Fn&& fn) {
  using namespace api;
  if (outputs & kOutPrediction) fn(r.prediction);
  if (outputs & kOutConfidence) fn(r.confidence);
  if (outputs & kOutVotes) fn(r.votes);
  if (outputs & kOutVoteEntropy) fn(r.vote_entropy);
  if (outputs & kOutSoftEntropy) fn(r.soft_entropy);
  if (outputs & kOutExpectedEntropy) fn(r.expected_entropy);
  if (outputs & kOutMutualInformation) fn(r.mutual_information);
  if (outputs & kOutVariationRatio) fn(r.variation_ratio);
  if (outputs & kOutMaxProbability) fn(r.max_probability);
  if (outputs & kOutScore) fn(r.score);
  if (outputs & kOutTrusted) fn(r.trusted);
}

void parse_request_payload(const unsigned char* p, std::uint32_t payload,
                           std::uint32_t request_id, RequestView& out) {
  constexpr std::uint32_t kFixed = 18;  // outputs+mode+rows+cols+key_len
  if (payload < kFixed) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "request payload shorter than its fixed fields (" +
                        std::to_string(payload) + " bytes)");
  }
  const auto outputs = get_pod<std::uint32_t>(p);
  const auto mode_raw = get_pod<std::uint32_t>(p + 4);
  const auto rows = get_pod<std::uint32_t>(p + 8);
  const auto cols = get_pod<std::uint32_t>(p + 12);
  const auto key_len = get_pod<std::uint16_t>(p + 16);

  if (outputs == 0 || (outputs & ~kKnownOutputs) != 0) {
    throw WireError(ErrorCode::kMaskInvalid, request_id,
                    "OutputMask 0x" + std::to_string(outputs) +
                        " is empty or has unknown bits");
  }
  if (mode_raw != kModeUnset &&
      mode_raw > static_cast<std::uint32_t>(
                     core::UncertaintyMode::kMaxProbability)) {
    throw WireError(ErrorCode::kModeInvalid, request_id,
                    "uncertainty mode " + std::to_string(mode_raw) +
                        " out of range");
  }
  if (rows == 0 || rows > kMaxRowsPerRequest || cols == 0 ||
      cols > kMaxColsPerRequest) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "implausible shape " + std::to_string(rows) + "x" +
                        std::to_string(cols));
  }
  if (key_len == 0 || key_len > kMaxKeyBytes) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "model key length " + std::to_string(key_len) +
                        " out of range");
  }
  // 64-bit arithmetic: rows*cols*8 can overflow u32 long before the
  // payload bound rejects it.
  const std::uint64_t feature_bytes =
      std::uint64_t{rows} * cols * sizeof(double);
  const std::uint64_t expected = kFixed + key_len + feature_bytes;
  if (expected != payload) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "payload is " + std::to_string(payload) +
                        " bytes, geometry needs " + std::to_string(expected));
  }
  out.request_id = request_id;
  out.outputs = outputs;
  if (mode_raw == kModeUnset) {
    out.mode.reset();
  } else {
    out.mode = static_cast<core::UncertaintyMode>(mode_raw);
  }
  out.rows = rows;
  out.cols = cols;
  out.model_key = std::string_view(
      reinterpret_cast<const char*>(p + kFixed), key_len);
  out.features = p + kFixed + key_len;
}

void parse_result_payload(const unsigned char* p, std::uint32_t payload,
                          std::uint32_t request_id, ResultView& out) {
  if (payload < 8) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "result payload shorter than its fixed fields");
  }
  const auto outputs = get_pod<std::uint32_t>(p);
  const auto rows = get_pod<std::uint32_t>(p + 4);
  if (outputs == 0 || (outputs & ~kKnownOutputs) != 0) {
    throw WireError(ErrorCode::kMaskInvalid, request_id,
                    "result OutputMask has unknown bits");
  }
  if (rows == 0 || rows > kMaxRowsPerRequest) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "implausible result rows " + std::to_string(rows));
  }
  const std::uint64_t expected = 8 + result_payload_bytes(outputs, rows);
  if (expected != payload) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "result payload is " + std::to_string(payload) +
                        " bytes, mask needs " + std::to_string(expected));
  }
  out.request_id = request_id;
  out.outputs = outputs;
  out.rows = rows;
  out.columns = p + 8;
}

void parse_error_payload(const unsigned char* p, std::uint32_t payload,
                         std::uint32_t request_id, ErrorView& out) {
  if (payload < 8) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "error payload shorter than its fixed fields");
  }
  const auto code = get_pod<std::uint32_t>(p);
  const auto detail_len = get_pod<std::uint32_t>(p + 4);
  if (std::uint64_t{8} + detail_len != payload) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "error payload length mismatch");
  }
  out.request_id = request_id;
  out.code = static_cast<ErrorCode>(code);
  out.detail = std::string_view(
      reinterpret_cast<const char*>(p + 8), detail_len);
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadMagic: return "bad-magic";
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kFrameTooLarge: return "frame-too-large";
    case ErrorCode::kBadFrameType: return "bad-frame-type";
    case ErrorCode::kBadPayload: return "bad-payload";
    case ErrorCode::kMaskInvalid: return "mask-invalid";
    case ErrorCode::kModeInvalid: return "mode-invalid";
    case ErrorCode::kUnknownModel: return "unknown-model";
    case ErrorCode::kShapeMismatch: return "shape-mismatch";
    case ErrorCode::kLoadBadMagic: return "load-bad-magic";
    case ErrorCode::kLoadBadVersion: return "load-bad-version";
    case ErrorCode::kLoadChecksum: return "load-checksum";
    case ErrorCode::kLoadTruncated: return "load-truncated";
    case ErrorCode::kLoadBadStructure: return "load-bad-structure";
    case ErrorCode::kLoadIo: return "load-io";
    case ErrorCode::kLoadMmapFailed: return "load-mmap-failed";
  }
  return "unknown";
}

ErrorCode error_code_for(LoadErrorCode code) {
  switch (code) {
    case LoadErrorCode::kBadMagic: return ErrorCode::kLoadBadMagic;
    case LoadErrorCode::kBadVersion: return ErrorCode::kLoadBadVersion;
    case LoadErrorCode::kChecksum: return ErrorCode::kLoadChecksum;
    case LoadErrorCode::kTruncated: return ErrorCode::kLoadTruncated;
    case LoadErrorCode::kBadStructure: return ErrorCode::kLoadBadStructure;
    case LoadErrorCode::kIo: return ErrorCode::kLoadIo;
    case LoadErrorCode::kMmapFailed: return ErrorCode::kLoadMmapFailed;
  }
  return ErrorCode::kLoadIo;
}

bool error_closes_connection(ErrorCode code) {
  return code == ErrorCode::kBadMagic || code == ErrorCode::kBadVersion ||
         code == ErrorCode::kFrameTooLarge;
}

std::size_t parse_frame(const unsigned char* data, std::size_t size,
                        std::size_t max_payload, Frame& out) {
  if (size < kHeaderBytes) return 0;
  // request_id is read before any validation so error frames can echo it
  // even when the rest of the header is wrong (best effort for version
  // mismatches; garbage for non-HMDW bytes, where we report id 0).
  const auto request_id = get_pod<std::uint32_t>(data + 8);
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    throw WireError(ErrorCode::kBadMagic, 0, "not an HMDW frame");
  }
  if (data[4] != kProtocolVersion) {
    throw WireError(ErrorCode::kBadVersion, request_id,
                    "protocol version " + std::to_string(data[4]) +
                        " (expected " + std::to_string(kProtocolVersion) +
                        ")");
  }
  const auto payload = get_pod<std::uint32_t>(data + 12);
  if (payload > max_payload || payload > kMaxPayloadBytes) {
    throw WireError(ErrorCode::kFrameTooLarge, request_id,
                    "declared payload " + std::to_string(payload) +
                        " bytes exceeds the frame cap");
  }
  const auto accuracy_raw = data[6];
  const auto reserved = data[7];
  const auto type_raw = data[5];
  if (size < kHeaderBytes + payload) return 0;  // frame not complete yet

  // From here the whole frame is present and its length is trusted —
  // every error below is survivable (the caller skips this frame).
  if (accuracy_raw > static_cast<std::uint8_t>(core::Accuracy::kFast)) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "unknown accuracy tier " + std::to_string(accuracy_raw));
  }
  if (reserved != 0) {
    throw WireError(ErrorCode::kBadPayload, request_id,
                    "reserved header byte is non-zero");
  }
  const auto accuracy = static_cast<core::Accuracy>(accuracy_raw);
  const unsigned char* p = data + kHeaderBytes;
  switch (type_raw) {
    case static_cast<std::uint8_t>(FrameType::kScoreRequest):
      out.type = FrameType::kScoreRequest;
      parse_request_payload(p, payload, request_id, out.request);
      out.request.accuracy = accuracy;
      break;
    case static_cast<std::uint8_t>(FrameType::kScoreResult):
      out.type = FrameType::kScoreResult;
      parse_result_payload(p, payload, request_id, out.result);
      out.result.accuracy = accuracy;
      break;
    case static_cast<std::uint8_t>(FrameType::kError):
      out.type = FrameType::kError;
      parse_error_payload(p, payload, request_id, out.error);
      break;
    default:
      throw WireError(ErrorCode::kBadFrameType, request_id,
                      "unknown frame type " + std::to_string(type_raw));
  }
  return kHeaderBytes + payload;
}

std::size_t result_payload_bytes(api::OutputMask outputs, std::size_t rows) {
  using namespace api;
  std::size_t per_row = 0;
  if (outputs & kOutPrediction) per_row += sizeof(std::int32_t);
  if (outputs & kOutConfidence) per_row += sizeof(double);
  if (outputs & kOutVotes) per_row += sizeof(std::int32_t);
  if (outputs & kOutVoteEntropy) per_row += sizeof(double);
  if (outputs & kOutSoftEntropy) per_row += sizeof(double);
  if (outputs & kOutExpectedEntropy) per_row += sizeof(double);
  if (outputs & kOutMutualInformation) per_row += sizeof(double);
  if (outputs & kOutVariationRatio) per_row += sizeof(double);
  if (outputs & kOutMaxProbability) per_row += sizeof(double);
  if (outputs & kOutScore) per_row += sizeof(double);
  if (outputs & kOutTrusted) per_row += sizeof(std::uint8_t);
  return per_row * rows;
}

void append_request(std::vector<unsigned char>& out, std::uint32_t request_id,
                    std::string_view model_key, api::OutputMask outputs,
                    std::optional<core::UncertaintyMode> mode,
                    const double* features, std::size_t rows,
                    std::size_t cols, core::Accuracy accuracy) {
  HMD_REQUIRE(!model_key.empty() && model_key.size() <= kMaxKeyBytes,
              "append_request: bad model key length");
  HMD_REQUIRE(rows >= 1 && rows <= kMaxRowsPerRequest && cols >= 1 &&
                  cols <= kMaxColsPerRequest,
              "append_request: bad shape");
  const std::uint64_t feature_bytes =
      std::uint64_t{rows} * cols * sizeof(double);
  const std::uint64_t payload = 18 + model_key.size() + feature_bytes;
  HMD_REQUIRE(payload <= kMaxPayloadBytes, "append_request: frame too large");
  put_header(out, FrameType::kScoreRequest, request_id,
             static_cast<std::uint32_t>(payload), accuracy);
  put_pod(out, static_cast<std::uint32_t>(outputs));
  put_pod(out, mode ? static_cast<std::uint32_t>(*mode) : kModeUnset);
  put_pod(out, static_cast<std::uint32_t>(rows));
  put_pod(out, static_cast<std::uint32_t>(cols));
  put_pod(out, static_cast<std::uint16_t>(model_key.size()));
  put_bytes(out, model_key.data(), model_key.size());
  put_bytes(out, features, static_cast<std::size_t>(feature_bytes));
}

void append_result(std::vector<unsigned char>& out, std::uint32_t request_id,
                   api::OutputMask outputs, const api::ScoreResult& result,
                   std::size_t row_offset, std::size_t rows,
                   core::Accuracy accuracy) {
  const std::uint64_t payload = 8 + result_payload_bytes(outputs, rows);
  put_header(out, FrameType::kScoreResult, request_id,
             static_cast<std::uint32_t>(payload), accuracy);
  put_pod(out, static_cast<std::uint32_t>(outputs));
  put_pod(out, static_cast<std::uint32_t>(rows));
  for_each_column(outputs, result, [&](const auto& column) {
    using Elem = typename std::decay_t<decltype(column)>::value_type;
    HMD_REQUIRE(row_offset + rows <= column.size(),
                "append_result: slice outside the result column");
    put_bytes(out, column.data() + row_offset, rows * sizeof(Elem));
  });
}

void append_error(std::vector<unsigned char>& out, std::uint32_t request_id,
                  ErrorCode code, std::string_view detail) {
  if (detail.size() > 1024) detail = detail.substr(0, 1024);
  put_header(out, FrameType::kError, request_id,
             static_cast<std::uint32_t>(8 + detail.size()));
  put_pod(out, static_cast<std::uint32_t>(code));
  put_pod(out, static_cast<std::uint32_t>(detail.size()));
  put_bytes(out, detail.data(), detail.size());
}

void unpack_result(const ResultView& view, api::ScoreResult& out) {
  out.shape(view.outputs, view.rows);
  out.rows = view.rows;
  const unsigned char* p = view.columns;
  for_each_column(view.outputs, out, [&](auto& column) {
    using Elem = typename std::decay_t<decltype(column)>::value_type;
    std::memcpy(column.data(), p, view.rows * sizeof(Elem));
    p += view.rows * sizeof(Elem);
  });
}

}  // namespace hmd::serve::wire
