#pragma once
// The socket serving front-end: a single-threaded epoll loop (IPv4 TCP)
// accepting HMDW wire-protocol connections (serve/wire.h), feeding
// requests through the adaptive micro-batcher (serve/batcher.h) into the
// DetectorRegistry + score() spine, and scattering results back per
// connection. Registry refresh() — the hot-swap poll — rides a timerfd
// inside the same loop, so artifact swaps land on wall-clock cadence
// regardless of traffic.
//
// run() owns the calling thread until request_stop(), which is safe from
// other threads and from signal handlers (an eventfd wakes the loop).
// Connections are plain blocking-free sockets with per-connection read
// and write buffers; a response that does not fit in the socket buffer
// turns on EPOLLOUT backpressure, and a connection whose unsent backlog
// exceeds max_write_backlog is dropped (slow reader).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/detector_registry.h"
#include "serve/batcher.h"
#include "serve/event_loop.h"
#include "serve/wire.h"

namespace hmd::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the real one via port()
  BatcherOptions batcher;
  /// Registry refresh() cadence in milliseconds; 0 disables the timer.
  int refresh_ms = 0;
  /// Per-frame payload cap (a declared length above this is fatal).
  std::size_t max_frame_bytes = 16u << 20;
  /// Unsent-response backlog that gets a connection dropped.
  std::size_t max_write_backlog = 64u << 20;
  int backlog = 128;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t requests_in = 0;
  /// requests_in split by tier (header byte 6; old clients count exact).
  std::uint64_t requests_exact = 0;
  std::uint64_t requests_fast = 0;
  std::uint64_t results_out = 0;
  std::uint64_t errors_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t models_reloaded = 0;
};

class ScoreServer {
 public:
  /// Called after each timer-driven refresh() with the keys it reloaded
  /// (may be empty) — the host logs hot-swaps and health transitions.
  using RefreshHook = std::function<void(const std::vector<std::string>&)>;

  /// Binds and listens immediately (throws IoError on failure), but
  /// accepts no connections until run().
  ScoreServer(api::DetectorRegistry& registry, ServerOptions options);
  ~ScoreServer();
  ScoreServer(const ScoreServer&) = delete;
  ScoreServer& operator=(const ScoreServer&) = delete;

  std::uint16_t port() const { return port_; }

  void set_refresh_hook(RefreshHook hook) { refresh_hook_ = std::move(hook); }

  /// Serve until request_stop(). The adaptive flush policy: drain every
  /// ready socket, and when a zero-timeout poll reports nothing ready,
  /// flush all pending batches (idle trigger) — batch-1 latency when the
  /// server is idle, engine-sized tiles as concurrency rises, with the
  /// batcher's rows-cap and deadline triggers bounding batch size and
  /// wait inbetween.
  void run();

  /// Stop run() soon. Safe from any thread and from async signal
  /// handlers (atomic store + eventfd write only).
  void request_stop();

  const ServerStats& stats() const { return stats_; }
  const BatcherStats& batcher_stats() const { return batcher_.stats(); }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    bool dead = false;
    bool closing = false;  ///< fatal wire error: close once out drains
    bool want_write = false;
    std::vector<unsigned char> in;
    std::size_t parsed = 0;
    std::vector<unsigned char> out;
    std::size_t out_sent = 0;
  };

  void handle_accept();
  void handle_conn(std::uint64_t id, std::uint32_t events);
  void read_conn(Connection& c);
  void parse_frames(Connection& c);
  void on_request(Connection& c, const wire::RequestView& request);
  void flush_out(Connection& c);
  void close_conn(Connection& c);
  void on_refresh_tick();

  api::DetectorRegistry& registry_;
  ServerOptions options_;
  EventLoop loop_;
  MicroBatcher batcher_;
  RefreshHook refresh_hook_;
  int listen_fd_ = -1;
  int stop_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::map<std::uint64_t, std::shared_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;
  ServerStats stats_;
};

}  // namespace hmd::serve
