#pragma once
// Minimal epoll reactor behind the socket front-end (serve/server.h):
// register fds with callbacks, drive one epoll_wait round at a time from
// the owner's run loop. Periodic work (the registry refresh() cadence)
// rides a CLOCK_MONOTONIC timerfd so it fires on wall-clock time,
// independent of traffic — the old per-round refresh counter made
// hot-swap latency a function of load.
//
// Single-threaded by design: callbacks run on the thread calling
// poll_once(), and all registration methods must be called from that
// thread. A callback may add or remove watches — including watches with
// pending events in the same epoll wave; removal is tracked so a dead
// watch's events are dropped, never dispatched (asserted by
// tests/test_event_loop.cpp).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace hmd::serve {

class EventLoop {
 public:
  /// `events` is the epoll event bitmask (EPOLLIN | EPOLLOUT | ...).
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;

  EventLoop();  ///< throws IoError when epoll_create1 fails
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watch `fd` for `events`. The fd stays owned by the caller (closed by
  /// the caller after remove()); timer fds from add_timer_ms are the one
  /// exception.
  void add(int fd, std::uint32_t events, FdCallback cb);

  /// Change the event mask of a watched fd (EPOLLOUT toggling).
  void modify(int fd, std::uint32_t events);

  /// Stop watching `fd`. Safe from inside a callback, including for fds
  /// with undelivered events in the current wave.
  void remove(int fd);

  bool watched(int fd) const { return watches_.count(fd) != 0; }
  std::size_t size() const { return watches_.size(); }

  /// Periodic callback every `interval_ms`, first firing one interval
  /// from now. Returns the timerfd (owned by the loop; pass it to
  /// remove() to cancel, which also closes it).
  int add_timer_ms(int interval_ms, TimerCallback cb);

  /// One epoll_wait + dispatch round. timeout_ms < 0 blocks until an
  /// event; 0 polls. Returns the number of events dispatched (0 on
  /// timeout). EINTR reports as a timeout so callers re-check their stop
  /// conditions.
  int poll_once(int timeout_ms);

 private:
  struct Watch {
    FdCallback on_event;
    TimerCallback on_tick;
    bool is_timer = false;
    bool dead = false;
  };

  int epoll_fd_ = -1;
  std::map<int, std::shared_ptr<Watch>> watches_;
};

}  // namespace hmd::serve
