#pragma once
// Wire-protocol load generator shared by tools/hmd_client and
// bench/bench_serving: N concurrent connections driven open-loop (paced
// request rate) or closed-loop (fixed pipeline depth per connection),
// request rows cycled deterministically from a source matrix, per-request
// latency sampled, and — when `expected` is set — every response byte
// checked against a precomputed direct score() of the same rows
// (bit-parity: valid because per-row results are independent of batching,
// see the contract in serve/wire.h).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/score.h"
#include "common/matrix.h"
#include "core/uncertainty.h"

namespace hmd::serve {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string model_key;
  api::OutputMask outputs = api::kDetectionOutputs;
  std::optional<core::UncertaintyMode> mode;
  /// Serving tier stamped on every request (wire header byte 6). The
  /// server must echo it on each result or the run fails verification.
  core::Accuracy accuracy = core::Accuracy::kExact;

  /// Rows are taken from here in contiguous chunks, wrapping to row 0
  /// when a chunk would run off the end. Must outlive run_load().
  const Matrix* source = nullptr;
  std::size_t rows_per_request = 8;

  int connections = 1;
  /// Closed loop: outstanding requests per connection.
  int pipeline = 1;
  /// Open loop: total target request rate across all connections; 0
  /// selects closed-loop mode.
  double open_loop_rps = 0.0;
  std::uint64_t total_requests = 1000;

  /// Full-source direct *exact-tier* score() under the same
  /// outputs/mode; responses are compared against the matching row
  /// slices. Exact-tier runs compare bit-for-bit. Fast-tier runs keep
  /// integer columns bitwise but allow double columns the vmath
  /// kernels' ULP band against the exact oracle (tolerance constants in
  /// loadgen.cpp) — the end-to-end check of the accuracy contract in
  /// api/score.h.
  const api::ScoreResult* expected = nullptr;
};

struct LoadGenReport {
  std::uint64_t requests_sent = 0;
  std::uint64_t results_ok = 0;
  std::uint64_t wire_errors = 0;  ///< error frames received
  std::uint64_t rows = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double rows_per_sec = 0.0;
  double p50_us = 0.0, p90_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double max_us = 0.0, mean_us = 0.0;
  bool parity_ok = true;       ///< vacuously true without `expected`
  std::string parity_detail;   ///< first mismatch, for the report
  std::string last_error;      ///< detail of the last error frame
};

/// Drive the configured load to completion and report. Throws IoError on
/// connect failure or a mid-run protocol breakdown (malformed server
/// frame, unexpected close, stall).
LoadGenReport run_load(const LoadGenOptions& options);

}  // namespace hmd::serve
