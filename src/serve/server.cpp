#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hmd::serve {

namespace {

IoError errno_error(const std::string& what) {
  return IoError("serve: " + what + ": " + std::strerror(errno));
}

}  // namespace

ScoreServer::ScoreServer(api::DetectorRegistry& registry,
                         ServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      batcher_(
          registry_, options_.batcher,
          [this](const BatchItem& item, const api::ScoreResult& result) {
            auto it = conns_.find(item.conn_id);
            if (it == conns_.end() || it->second->dead) return;
            Connection& c = *it->second;
            wire::append_result(c.out, item.request_id, item.outputs,
                                result, item.row_begin, item.rows,
                                item.accuracy);
            ++stats_.results_out;
            flush_out(c);
          },
          [this](const BatchItem& item, wire::ErrorCode code,
                 const std::string& detail) {
            auto it = conns_.find(item.conn_id);
            if (it == conns_.end() || it->second->dead) return;
            Connection& c = *it->second;
            wire::append_error(c.out, item.request_id, code, detail);
            ++stats_.errors_out;
            flush_out(c);
          }) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw errno_error("socket failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("serve: not an IPv4 listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const IoError err = errno_error("cannot listen on " + options_.host +
                                    ":" + std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw err;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    const IoError err = errno_error("getsockname failed");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw err;
  }
  port_ = ntohs(addr.sin_port);

  stop_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (stop_fd_ < 0) {
    const IoError err = errno_error("eventfd failed");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw err;
  }
}

ScoreServer::~ScoreServer() {
  for (auto& [id, conn] : conns_) {
    if (!conn->dead) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_fd_ >= 0) ::close(stop_fd_);
}

void ScoreServer::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r =
      ::write(stop_fd_, &one, sizeof(one));  // async-signal-safe wakeup
}

void ScoreServer::on_refresh_tick() {
  const std::vector<std::string> reloaded = registry_.refresh();
  ++stats_.refreshes;
  stats_.models_reloaded += reloaded.size();
  if (refresh_hook_) refresh_hook_(reloaded);
}

void ScoreServer::run() {
  loop_.add(listen_fd_, EPOLLIN, [this](std::uint32_t) { handle_accept(); });
  loop_.add(stop_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t drain = 0;
    [[maybe_unused]] const ssize_t r =
        ::read(stop_fd_, &drain, sizeof(drain));
  });
  if (options_.refresh_ms > 0) {
    loop_.add_timer_ms(options_.refresh_ms, [this] { on_refresh_tick(); });
  }

  while (!stop_.load(std::memory_order_relaxed)) {
    // With work pending, only slurp what is already readable (timeout 0):
    // an empty wave means the sockets went idle and the batches should go
    // out now rather than wait out the deadline.
    const int timeout_ms = batcher_.pending_rows() > 0 ? 0 : -1;
    const int dispatched = loop_.poll_once(timeout_ms);
    if (stop_.load(std::memory_order_relaxed)) break;
    if (dispatched == 0 && batcher_.pending_rows() > 0) {
      batcher_.flush_all();
    }
    batcher_.flush_due(MicroBatcher::Clock::now());

    // Reap connections closed mid-dispatch.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->dead) {
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  batcher_.flush_all();  // answer whatever is still queued before exit
  loop_.remove(listen_fd_);
  loop_.remove(stop_fd_);
}

void ScoreServer::handle_accept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays registered
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conns_[conn->id] = conn;
    ++stats_.connections_accepted;
    const std::uint64_t id = conn->id;
    loop_.add(fd, EPOLLIN,
              [this, id](std::uint32_t events) { handle_conn(id, events); });
  }
}

void ScoreServer::handle_conn(std::uint64_t id, std::uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const std::shared_ptr<Connection> conn = it->second;  // keep alive
  if (conn->dead) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(*conn);
    return;
  }
  if (events & EPOLLIN) {
    read_conn(*conn);
    if (conn->dead) return;
  }
  if (events & EPOLLOUT) flush_out(*conn);
}

void ScoreServer::read_conn(Connection& c) {
  unsigned char buf[64 * 1024];
  bool got_bytes = false;
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.in.insert(c.in.end(), buf, buf + n);
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      got_bytes = true;
      continue;
    }
    if (n == 0) {  // orderly remote close
      close_conn(c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(c);
    return;
  }
  if (got_bytes) parse_frames(c);
}

void ScoreServer::parse_frames(Connection& c) {
  while (!c.dead && !c.closing) {
    const unsigned char* p = c.in.data() + c.parsed;
    const std::size_t avail = c.in.size() - c.parsed;
    wire::Frame frame;
    std::size_t consumed = 0;
    try {
      consumed = wire::parse_frame(p, avail, options_.max_frame_bytes,
                                   frame);
    } catch (const wire::WireError& e) {
      wire::append_error(c.out, e.request_id(), e.code(), e.detail());
      ++stats_.errors_out;
      if (e.fatal()) {
        c.closing = true;  // stream poisoned: error out, then close
        break;
      }
      // Survivable: the declared frame is fully buffered — skip it.
      std::uint32_t payload = 0;
      std::memcpy(&payload, p + 12, sizeof(payload));
      c.parsed += wire::kHeaderBytes + payload;
      continue;
    }
    if (consumed == 0) break;  // incomplete frame: wait for more bytes
    c.parsed += consumed;
    if (frame.type == wire::FrameType::kScoreRequest) {
      on_request(c, frame.request);
    } else {
      // Clients must not send result/error frames upstream.
      wire::append_error(c.out, frame.type == wire::FrameType::kScoreResult
                                    ? frame.result.request_id
                                    : frame.error.request_id,
                         wire::ErrorCode::kBadFrameType,
                         "unexpected server-to-client frame type");
      ++stats_.errors_out;
    }
  }
  // Compact the consumed prefix; cheap when the buffer drained fully.
  if (c.parsed == c.in.size()) {
    c.in.clear();
    c.parsed = 0;
  } else if (c.parsed >= (1u << 20)) {
    c.in.erase(c.in.begin(),
               c.in.begin() + static_cast<std::ptrdiff_t>(c.parsed));
    c.parsed = 0;
  }
  if (!c.dead) flush_out(c);
}

void ScoreServer::on_request(Connection& c, const wire::RequestView& req) {
  ++stats_.requests_in;
  if (req.accuracy == core::Accuracy::kFast) {
    ++stats_.requests_fast;
  } else {
    ++stats_.requests_exact;
  }
  // May flush (and answer other connections) synchronously.
  batcher_.enqueue(c.id, req.request_id, req.model_key, req.outputs,
                   req.mode, req.features, req.rows, req.cols,
                   req.accuracy);
}

void ScoreServer::flush_out(Connection& c) {
  if (c.dead) return;
  while (c.out_sent < c.out.size()) {
    const ssize_t n =
        ::send(c.fd, c.out.data() + c.out_sent, c.out.size() - c.out_sent,
               MSG_NOSIGNAL);
    if (n > 0) {
      c.out_sent += static_cast<std::size_t>(n);
      stats_.bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (c.out.size() - c.out_sent > options_.max_write_backlog) {
        close_conn(c);  // slow reader: drop rather than buffer unbounded
        return;
      }
      if (!c.want_write) {
        c.want_write = true;
        loop_.modify(c.fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(c);
    return;
  }
  c.out.clear();
  c.out_sent = 0;
  if (c.want_write) {
    c.want_write = false;
    loop_.modify(c.fd, EPOLLIN);
  }
  if (c.closing) close_conn(c);
}

void ScoreServer::close_conn(Connection& c) {
  if (c.dead) return;
  c.dead = true;
  loop_.remove(c.fd);
  ::close(c.fd);
  ++stats_.connections_closed;
  // The map entry is reaped in run(); batcher items still pointing at
  // this id resolve to a dead connection and are dropped by the sinks.
}

}  // namespace hmd::serve
