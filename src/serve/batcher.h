#pragma once
// The adaptive micro-batcher: coalesces small client requests into
// engine-sized tiles. The engines' batch kernels hit 12M+ items/s on
// 256-row tiles but a socket client sends a handful of rows per frame —
// scoring those one frame at a time pays the full score() dispatch,
// result shaping, and per-batch engine setup per handful. The batcher
// gathers rows from many connections into one Matrix per (model, mode)
// queue, runs one score(), and scatters each client's rows back out of
// the coalesced SoA ScoreResult.
//
// Flush triggers (any of):
//   - rows: a queue reaching max_batch_rows flushes inside enqueue();
//   - deadline: a queue's oldest request older than max_delay_us —
//     flush_due(now) (the server times its epoll wait to next_deadline());
//   - idle: the server saw no ready sockets, so nothing more is coming —
//     flush_all(). Under light load this path flushes every request
//     immediately after its socket drains: batch-1 latency when there is
//     nothing to coalesce, bigger tiles as concurrency rises, with
//     max_delay_us bounding the wait either way.
//
// Queues are keyed by (model key, uncertainty mode, accuracy tier):
// kOutScore/kOutTrusted depend on the mode, and the two accuracy tiers
// (api/score.h) carry different numeric contracts, so requests differing
// in either never share a score() call — coalescing an exact request
// into a fast batch would silently break its bit-parity guarantee.
// Differing OutputMasks within a queue are merged by union — safe
// because the mask contract (api/score.h) makes every selected column
// bit-identical for any mask. Per-model queues are the
// isolation boundary: a cold or broken model stalls or fails only its own
// queue's requests (errors are delivered per request through the error
// sink), never another model's.
//
// Correctness of scatter/gather rests on per-row determinism: a row's
// scores do not depend on its batch-mates (asserted across thread widths
// by the determinism suite), so a response sliced out of a coalesced
// batch is bit-identical to a direct score() on the request's rows —
// asserted per mask by tests/test_batcher.cpp and end-to-end by
// bench_serving.
//
// Single-threaded, like the event loop that drives it. Completion sinks
// run synchronously inside enqueue()/flush_*(); steady state allocates
// nothing (each queue's row buffer, item list, and ScoreResult are
// reused across flushes).

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/detector_registry.h"
#include "api/score.h"
#include "serve/wire.h"

namespace hmd::serve {

struct BatcherOptions {
  /// Flush a queue once it holds this many rows. 256 matches the engines'
  /// internal tile (FlatForestEngine::kTileRows); 1 disables coalescing
  /// entirely — the batch-1 baseline bench_serving compares against.
  std::size_t max_batch_rows = 256;
  /// Upper bound on how long a queued request may wait for batch-mates.
  std::int64_t max_delay_us = 200;
};

/// One client request inside a batch: which connection/request to answer,
/// which rows of the coalesced batch are its, under which mask.
struct BatchItem {
  std::uint64_t conn_id = 0;
  std::uint32_t request_id = 0;
  api::OutputMask outputs = 0;
  /// Tier the item's queue scores under (echoed in the result frame).
  core::Accuracy accuracy = core::Accuracy::kExact;
  std::size_t row_begin = 0;
  std::uint32_t rows = 0;
};

struct BatcherStats {
  std::uint64_t requests = 0;
  std::uint64_t rows = 0;
  std::uint64_t batches = 0;  ///< score() calls issued
  std::uint64_t flushed_rows_cap = 0;
  std::uint64_t flushed_deadline = 0;
  std::uint64_t flushed_idle = 0;
  std::uint64_t errors = 0;  ///< requests answered through the error sink
  std::uint64_t max_batch_rows_seen = 0;
};

class MicroBatcher {
 public:
  using Clock = std::chrono::steady_clock;
  /// Called once per request of a flushed batch. `result` holds the whole
  /// coalesced batch; the receiver scatters rows [item.row_begin,
  /// item.row_begin + item.rows) under item.outputs (wire::append_result
  /// does exactly this slice).
  using ResultSink =
      std::function<void(const BatchItem&, const api::ScoreResult& result)>;
  /// Called once per request that cannot be scored (unknown model, load
  /// failure, shape conflict).
  using ErrorSink = std::function<void(
      const BatchItem&, wire::ErrorCode code, const std::string& detail)>;

  MicroBatcher(api::DetectorRegistry& registry, BatcherOptions options,
               ResultSink on_result, ErrorSink on_error);

  /// Queue one request's rows (copied out of the frame buffer; the caller
  /// may release it on return). May flush — and thus invoke sinks —
  /// before returning, when the queue reaches max_batch_rows. Unknown
  /// keys and intra-queue shape conflicts are answered through the error
  /// sink immediately, without poisoning the queue.
  void enqueue(std::uint64_t conn_id, std::uint32_t request_id,
               std::string_view model_key, api::OutputMask outputs,
               std::optional<core::UncertaintyMode> mode,
               const unsigned char* features_le, std::uint32_t rows,
               std::uint32_t cols,
               core::Accuracy accuracy = core::Accuracy::kExact);

  /// Earliest (oldest enqueue + max_delay_us) over non-empty queues; the
  /// server sleeps no longer than this.
  std::optional<Clock::time_point> next_deadline() const;

  /// Flush every queue whose deadline has passed.
  void flush_due(Clock::time_point now);

  /// Flush everything (the idle-socket trigger, and shutdown drain).
  void flush_all();

  std::size_t pending_rows() const { return pending_rows_; }
  const BatcherStats& stats() const { return stats_; }

 private:
  enum class FlushWhy { kRowsCap, kDeadline, kIdle };

  struct Queue {
    std::string model_key;
    std::optional<core::UncertaintyMode> mode;
    core::Accuracy accuracy = core::Accuracy::kExact;
    std::size_t cols = 0;  ///< fixed by the first request while non-empty
    std::vector<double> rows_data;  ///< row-major gather buffer, reused
    std::vector<BatchItem> items;
    Clock::time_point oldest{};
    api::ScoreResult result;  ///< reused scratch for this queue's flushes
  };
  /// int key: mode value, -1 for "model's configured mode". The trailing
  /// int is the accuracy tier — tiers never coalesce.
  using QueueKey = std::tuple<std::string, int, int>;

  void flush_queue(Queue& q, FlushWhy why);
  void fail_queue(Queue& q, wire::ErrorCode code, const std::string& detail);

  api::DetectorRegistry& registry_;
  BatcherOptions options_;
  ResultSink on_result_;
  ErrorSink on_error_;
  std::map<QueueKey, Queue> queues_;
  std::size_t pending_rows_ = 0;
  BatcherStats stats_;
};

}  // namespace hmd::serve
