#include "serve/loadgen.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>

#include "common/error.h"
#include "serve/wire.h"

namespace hmd::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct Outstanding {
  Clock::time_point sent_at;
  std::size_t row_start = 0;
  std::uint32_t rows = 0;
};

struct ClientConn {
  int fd = -1;
  std::vector<unsigned char> out;
  std::size_t out_sent = 0;
  std::vector<unsigned char> in;
  std::size_t parsed = 0;
  std::map<std::uint32_t, Outstanding> outstanding;
  std::uint32_t next_request_id = 1;
  std::uint64_t quota = 0;  ///< requests this connection must send
  std::uint64_t sent = 0;
  Clock::time_point next_due;  ///< open loop: earliest next send
};

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw IoError(std::string("loadgen: socket failed: ") +
                  std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw IoError("loadgen: not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    throw IoError("loadgen: cannot connect to " + host + ":" +
                  std::to_string(port) + ": " + detail);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Compare one response column slice against the expected full-matrix
/// column, bitwise (memcmp — NaN-safe, exactness is the contract).
template <typename T>
bool slice_matches(const std::vector<T>& got, const std::vector<T>& want,
                   std::size_t row_start, std::size_t rows) {
  if (got.size() != rows || want.size() < row_start + rows) return false;
  return std::memcmp(got.data(), want.data() + row_start,
                     rows * sizeof(T)) == 0;
}

// Fast-tier tolerance against the exact oracle. Each transcendental in
// the fast path is within 2 ULP (simd/vmath.h); a column value composes
// at most a couple of them plus exact arithmetic, so a small ULP budget
// covers it. The absolute floor covers mutual information, where the
// subtraction h(p̄) − H̄ can cancel: the absolute error stays at the
// operands' ULP scale (~1e-16 for entropies in [0, 1]) even when the
// tiny difference makes the *relative* error unbounded.
constexpr std::uint64_t kFastVerifyUlps = 8;
constexpr double kFastVerifyAbs = 1e-12;

/// Monotone bit-rank of a double: total order matching <, so ULP
/// distance is rank subtraction (works across ±0 and denormals).
std::uint64_t value_rank(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return (bits >> 63) ? ~bits : (bits | 0x8000000000000000ull);
}

bool value_close(double got, double want) {
  std::uint64_t gb, wb;
  std::memcpy(&gb, &got, sizeof(gb));
  std::memcpy(&wb, &want, sizeof(wb));
  if (gb == wb) return true;  // covers NaN == NaN bitwise, ±inf, -0.0
  if (std::abs(got - want) <= kFastVerifyAbs) return true;
  const std::uint64_t gr = value_rank(got);
  const std::uint64_t wr = value_rank(want);
  return (gr > wr ? gr - wr : wr - gr) <= kFastVerifyUlps;
}

bool slice_close(const std::vector<double>& got,
                 const std::vector<double>& want, std::size_t row_start,
                 std::size_t rows) {
  if (got.size() != rows || want.size() < row_start + rows) return false;
  for (std::size_t r = 0; r < rows; ++r) {
    if (!value_close(got[r], want[row_start + r])) return false;
  }
  return true;
}

bool verify_response(const api::ScoreResult& got,
                     const api::ScoreResult& want, api::OutputMask outputs,
                     core::Accuracy accuracy, std::size_t row_start,
                     std::size_t rows, std::string& detail) {
  using namespace api;
  // Double columns: bitwise on the exact tier, bounded-ULP on the fast
  // tier (the oracle is always exact-tier). Integer columns are bitwise
  // on both.
  const bool fast = accuracy == core::Accuracy::kFast;
  const auto dslice = [&](const std::vector<double>& g,
                          const std::vector<double>& w) {
    return fast ? slice_close(g, w, row_start, rows)
                : slice_matches(g, w, row_start, rows);
  };
  const auto check = [&](const char* name, auto ok) {
    if (!ok) detail = std::string("column ") + name + " differs";
    return static_cast<bool>(ok);
  };
  if (outputs & kOutPrediction &&
      !check("prediction",
             slice_matches(got.prediction, want.prediction, row_start, rows)))
    return false;
  if (outputs & kOutConfidence &&
      !check("confidence", dslice(got.confidence, want.confidence)))
    return false;
  if (outputs & kOutVotes &&
      !check("votes", slice_matches(got.votes, want.votes, row_start, rows)))
    return false;
  if (outputs & kOutVoteEntropy &&
      !check("vote_entropy", dslice(got.vote_entropy, want.vote_entropy)))
    return false;
  if (outputs & kOutSoftEntropy &&
      !check("soft_entropy", dslice(got.soft_entropy, want.soft_entropy)))
    return false;
  if (outputs & kOutExpectedEntropy &&
      !check("expected_entropy",
             dslice(got.expected_entropy, want.expected_entropy)))
    return false;
  if (outputs & kOutMutualInformation &&
      !check("mutual_information",
             dslice(got.mutual_information, want.mutual_information)))
    return false;
  if (outputs & kOutVariationRatio &&
      !check("variation_ratio",
             dslice(got.variation_ratio, want.variation_ratio)))
    return false;
  if (outputs & kOutMaxProbability &&
      !check("max_probability",
             dslice(got.max_probability, want.max_probability)))
    return false;
  if (outputs & kOutScore && !check("score", dslice(got.score, want.score)))
    return false;
  if (outputs & kOutTrusted &&
      !check("trusted",
             slice_matches(got.trusted, want.trusted, row_start, rows)))
    return false;
  return true;
}

}  // namespace

LoadGenReport run_load(const LoadGenOptions& options) {
  HMD_REQUIRE(options.source != nullptr, "loadgen: source matrix required");
  HMD_REQUIRE(options.connections >= 1, "loadgen: connections must be >= 1");
  HMD_REQUIRE(options.pipeline >= 1, "loadgen: pipeline must be >= 1");
  HMD_REQUIRE(options.rows_per_request >= 1 &&
                  options.rows_per_request <= options.source->rows(),
              "loadgen: rows_per_request must fit the source matrix");
  HMD_REQUIRE(options.total_requests >= 1, "loadgen: nothing to send");

  const Matrix& source = *options.source;
  const std::size_t cols = source.cols();
  const std::size_t req_rows = options.rows_per_request;

  std::vector<ClientConn> conns(
      static_cast<std::size_t>(options.connections));
  for (std::size_t i = 0; i < conns.size(); ++i) {
    conns[i].fd = connect_to(options.host, options.port);
    conns[i].quota = options.total_requests /
                     static_cast<std::uint64_t>(conns.size());
    if (i < options.total_requests % conns.size()) ++conns[i].quota;
  }

  const bool open_loop = options.open_loop_rps > 0.0;
  const auto send_interval =
      open_loop ? std::chrono::nanoseconds(static_cast<std::int64_t>(
                      1e9 * static_cast<double>(conns.size()) /
                      options.open_loop_rps))
                : std::chrono::nanoseconds(0);

  LoadGenReport report;
  std::vector<double> latencies_us;
  latencies_us.reserve(options.total_requests);
  api::ScoreResult scratch;
  std::size_t row_cursor = 0;

  const auto start = Clock::now();
  if (open_loop) {
    for (std::size_t i = 0; i < conns.size(); ++i) {
      // Stagger first sends so connections do not phase-lock.
      conns[i].next_due = start + send_interval * static_cast<int>(i) /
                                      static_cast<int>(conns.size());
    }
  }

  const auto enqueue_request = [&](ClientConn& c, Clock::time_point now) {
    if (row_cursor + req_rows > source.rows()) row_cursor = 0;
    const std::size_t row_start = row_cursor;
    row_cursor += req_rows;
    const std::uint32_t id = c.next_request_id++;
    wire::append_request(c.out, id, options.model_key, options.outputs,
                         options.mode, source.row_ptr(row_start), req_rows,
                         cols, options.accuracy);
    c.outstanding[id] =
        Outstanding{now, row_start, static_cast<std::uint32_t>(req_rows)};
    ++c.sent;
    ++report.requests_sent;
    if (open_loop) c.next_due += send_interval;
  };

  const auto want_send = [&](const ClientConn& c, Clock::time_point now) {
    if (c.sent >= c.quota) return false;
    if (open_loop) return now >= c.next_due;
    return c.outstanding.size() <
           static_cast<std::size_t>(options.pipeline);
  };

  const auto handle_frame = [&](ClientConn& c, const wire::Frame& frame) {
    const auto now = Clock::now();
    if (frame.type == wire::FrameType::kScoreResult) {
      const auto it = c.outstanding.find(frame.result.request_id);
      if (it == c.outstanding.end()) {
        throw IoError("loadgen: response to unknown request id " +
                      std::to_string(frame.result.request_id));
      }
      const Outstanding pending = it->second;
      c.outstanding.erase(it);
      if (frame.result.rows != pending.rows) {
        report.parity_ok = false;
        report.parity_detail = "response row count mismatch";
      }
      if (frame.result.accuracy != options.accuracy) {
        report.parity_ok = false;
        report.parity_detail =
            "server echoed accuracy tier " +
            std::to_string(static_cast<int>(frame.result.accuracy)) +
            ", requested " +
            std::to_string(static_cast<int>(options.accuracy));
      }
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(now - pending.sent_at)
              .count());
      ++report.results_ok;
      report.rows += frame.result.rows;
      if (options.expected != nullptr && report.parity_ok) {
        wire::unpack_result(frame.result, scratch);
        std::string detail;
        if (!verify_response(scratch, *options.expected, options.outputs,
                             options.accuracy, pending.row_start,
                             pending.rows, detail)) {
          report.parity_ok = false;
          report.parity_detail =
              detail + " at rows [" + std::to_string(pending.row_start) +
              ", " + std::to_string(pending.row_start + pending.rows) + ")";
        }
      }
    } else if (frame.type == wire::FrameType::kError) {
      const auto it = c.outstanding.find(frame.error.request_id);
      if (it != c.outstanding.end()) c.outstanding.erase(it);
      ++report.wire_errors;
      report.last_error =
          std::string(wire::error_code_name(frame.error.code)) + ": " +
          std::string(frame.error.detail);
    } else {
      throw IoError("loadgen: server sent a request frame");
    }
  };

  const auto all_done = [&] {
    for (const ClientConn& c : conns) {
      if (c.sent < c.quota || !c.outstanding.empty()) return false;
    }
    return true;
  };

  std::vector<pollfd> fds(conns.size());
  auto last_progress = Clock::now();
  while (!all_done()) {
    const auto now = Clock::now();
    // Top up sends.
    for (ClientConn& c : conns) {
      while (want_send(c, now)) enqueue_request(c, now);
    }
    for (std::size_t i = 0; i < conns.size(); ++i) {
      fds[i].fd = conns[i].fd;
      fds[i].events = POLLIN;
      if (conns[i].out_sent < conns[i].out.size()) fds[i].events |= POLLOUT;
      fds[i].revents = 0;
    }
    int timeout_ms = 100;  // progress watchdog granularity
    if (open_loop) {
      auto earliest = Clock::time_point::max();
      for (const ClientConn& c : conns) {
        if (c.sent < c.quota && c.next_due < earliest) {
          earliest = c.next_due;
        }
      }
      if (earliest != Clock::time_point::max()) {
        const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
            earliest - now);
        timeout_ms = std::clamp<int>(static_cast<int>(wait.count()), 0, 100);
      }
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      throw IoError(std::string("loadgen: poll failed: ") +
                    std::strerror(errno));
    }

    bool progressed = false;
    for (std::size_t i = 0; i < conns.size(); ++i) {
      ClientConn& c = conns[i];
      if (c.out_sent < c.out.size()) {
        while (c.out_sent < c.out.size()) {
          const ssize_t n = ::send(c.fd, c.out.data() + c.out_sent,
                                   c.out.size() - c.out_sent, MSG_NOSIGNAL);
          if (n > 0) {
            c.out_sent += static_cast<std::size_t>(n);
            progressed = true;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          throw IoError("loadgen: send failed (server closed?)");
        }
        if (c.out_sent == c.out.size()) {
          c.out.clear();
          c.out_sent = 0;
        }
      }
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        unsigned char buf[64 * 1024];
        while (true) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            c.in.insert(c.in.end(), buf, buf + n);
            progressed = true;
            continue;
          }
          if (n == 0) {
            throw IoError("loadgen: server closed the connection with " +
                          std::to_string(c.outstanding.size()) +
                          " request(s) outstanding" +
                          (report.last_error.empty()
                               ? std::string()
                               : " (last error frame: " + report.last_error +
                                     ")"));
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          throw IoError(std::string("loadgen: recv failed: ") +
                        std::strerror(errno));
        }
        while (true) {
          wire::Frame frame;
          const std::size_t consumed = wire::parse_frame(
              c.in.data() + c.parsed, c.in.size() - c.parsed,
              wire::kMaxPayloadBytes, frame);
          if (consumed == 0) break;
          c.parsed += consumed;
          handle_frame(c, frame);
          progressed = true;
        }
        if (c.parsed == c.in.size()) {
          c.in.clear();
          c.parsed = 0;
        }
      }
    }
    if (progressed) {
      last_progress = Clock::now();
    } else if (Clock::now() - last_progress > std::chrono::seconds(30)) {
      throw IoError("loadgen: no progress for 30s (server stalled?)");
    }
  }
  const auto stop = Clock::now();

  for (ClientConn& c : conns) ::close(c.fd);

  report.seconds = std::chrono::duration<double>(stop - start).count();
  if (report.seconds > 0.0) {
    report.requests_per_sec =
        static_cast<double>(report.results_ok + report.wire_errors) /
        report.seconds;
    report.rows_per_sec =
        static_cast<double>(report.rows) / report.seconds;
  }
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    report.p50_us = percentile(latencies_us, 0.50);
    report.p90_us = percentile(latencies_us, 0.90);
    report.p99_us = percentile(latencies_us, 0.99);
    report.p999_us = percentile(latencies_us, 0.999);
    report.max_us = latencies_us.back();
    double sum = 0.0;
    for (const double v : latencies_us) sum += v;
    report.mean_us = sum / static_cast<double>(latencies_us.size());
  }
  return report;
}

}  // namespace hmd::serve
