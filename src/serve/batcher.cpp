#include "serve/batcher.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/hmd.h"

namespace hmd::serve {

MicroBatcher::MicroBatcher(api::DetectorRegistry& registry,
                           BatcherOptions options, ResultSink on_result,
                           ErrorSink on_error)
    : registry_(registry),
      options_(options),
      on_result_(std::move(on_result)),
      on_error_(std::move(on_error)) {
  HMD_REQUIRE(options_.max_batch_rows >= 1,
              "MicroBatcher: max_batch_rows must be >= 1");
  HMD_REQUIRE(options_.max_delay_us >= 0,
              "MicroBatcher: max_delay_us must be >= 0");
}

void MicroBatcher::enqueue(std::uint64_t conn_id, std::uint32_t request_id,
                           std::string_view model_key,
                           api::OutputMask outputs,
                           std::optional<core::UncertaintyMode> mode,
                           const unsigned char* features_le,
                           std::uint32_t rows, std::uint32_t cols,
                           core::Accuracy accuracy) {
  BatchItem item;
  item.conn_id = conn_id;
  item.request_id = request_id;
  item.outputs = outputs;
  item.accuracy = accuracy;
  item.rows = rows;

  // Reject unscorable requests before they can touch a queue: an unknown
  // key must not delay (or be delayed by) queued work for real models.
  // The registry answers the common never-registered case straight from
  // its cuckoo-filter front door — no shard lock, no key allocation — so
  // a flood of bogus keys cannot contend with real lookups.
  if (!registry_.contains(model_key)) {
    ++stats_.errors;
    on_error_(item, wire::ErrorCode::kUnknownModel,
              "unknown model key '" + std::string(model_key) + "'");
    return;
  }

  const QueueKey key(std::string(model_key),
                     mode ? static_cast<int>(*mode) : -1,
                     static_cast<int>(accuracy));
  Queue& q = queues_[key];
  if (q.items.empty()) {
    q.model_key = std::get<0>(key);
    q.mode = mode;
    q.accuracy = accuracy;
    q.cols = cols;  // re-fixed each time the queue drains
  } else if (q.cols != cols) {
    ++stats_.errors;
    on_error_(item, wire::ErrorCode::kShapeMismatch,
              "request has " + std::to_string(cols) +
                  " features; the pending batch for this model has " +
                  std::to_string(q.cols));
    return;
  }

  item.row_begin = q.rows_data.size() / cols;
  const std::size_t offset = q.rows_data.size();
  q.rows_data.resize(offset + std::size_t{rows} * cols);
  std::memcpy(q.rows_data.data() + offset, features_le,
              std::size_t{rows} * cols * sizeof(double));
  if (q.items.empty()) q.oldest = Clock::now();
  q.items.push_back(item);
  pending_rows_ += rows;
  ++stats_.requests;
  stats_.rows += rows;

  if (q.rows_data.size() / cols >= options_.max_batch_rows) {
    flush_queue(q, FlushWhy::kRowsCap);
  }
}

std::optional<MicroBatcher::Clock::time_point> MicroBatcher::next_deadline()
    const {
  std::optional<Clock::time_point> earliest;
  for (const auto& [key, q] : queues_) {
    if (q.items.empty()) continue;
    const auto deadline =
        q.oldest + std::chrono::microseconds(options_.max_delay_us);
    if (!earliest || deadline < *earliest) earliest = deadline;
  }
  return earliest;
}

void MicroBatcher::flush_due(Clock::time_point now) {
  for (auto& [key, q] : queues_) {
    if (q.items.empty()) continue;
    if (q.oldest + std::chrono::microseconds(options_.max_delay_us) <= now) {
      flush_queue(q, FlushWhy::kDeadline);
    }
  }
}

void MicroBatcher::flush_all() {
  for (auto& [key, q] : queues_) {
    if (!q.items.empty()) flush_queue(q, FlushWhy::kIdle);
  }
}

void MicroBatcher::flush_queue(Queue& q, FlushWhy why) {
  const std::size_t total_rows = q.rows_data.size() / q.cols;
  switch (why) {
    case FlushWhy::kRowsCap: ++stats_.flushed_rows_cap; break;
    case FlushWhy::kDeadline: ++stats_.flushed_deadline; break;
    case FlushWhy::kIdle: ++stats_.flushed_idle; break;
  }

  std::shared_ptr<const core::TrustedHmd> hmd;
  try {
    hmd = registry_.get(q.model_key);
  } catch (const LoadError& e) {
    fail_queue(q, wire::error_code_for(e.code()), e.detail());
    return;
  } catch (const HmdError& e) {
    fail_queue(q, wire::ErrorCode::kUnknownModel, e.what());
    return;
  }
  if (hmd->uses_flat_engine() && hmd->engine().n_features() != q.cols) {
    fail_queue(q, wire::ErrorCode::kShapeMismatch,
               "model expects " +
                   std::to_string(hmd->engine().n_features()) +
                   " features, request has " + std::to_string(q.cols));
    return;
  }

  // Steady-state no-alloc gather: adopt the reused row buffer as a
  // Matrix, score, then take the storage back for the next batch.
  Matrix x = Matrix::from_storage(total_rows, q.cols,
                                  std::move(q.rows_data));
  api::ScoreRequest request;
  request.x = &x;
  request.mode = q.mode;
  request.accuracy = q.accuracy;
  request.outputs = 0;
  for (const BatchItem& item : q.items) request.outputs |= item.outputs;

  ++stats_.batches;
  stats_.max_batch_rows_seen =
      std::max<std::uint64_t>(stats_.max_batch_rows_seen, total_rows);
  pending_rows_ -= total_rows;

  try {
    hmd->score(request, q.result);
  } catch (const HmdError& e) {
    q.rows_data = std::move(x.storage());
    q.rows_data.clear();
    std::vector<BatchItem> items = std::move(q.items);
    q.items.clear();
    for (const BatchItem& item : items) {
      ++stats_.errors;
      on_error_(item, wire::ErrorCode::kBadPayload,
                std::string("score failed: ") + e.what());
    }
    return;
  }

  q.rows_data = std::move(x.storage());
  q.rows_data.clear();
  // Swap the item list out before running sinks: a sink may re-enter
  // enqueue() for this same queue (a client pipelining on its callback).
  std::vector<BatchItem> items = std::move(q.items);
  q.items.clear();
  for (const BatchItem& item : items) on_result_(item, q.result);
  // Hand the list's capacity back for reuse if nothing repopulated it.
  if (q.items.empty()) {
    items.clear();
    q.items = std::move(items);
  }
}

void MicroBatcher::fail_queue(Queue& q, wire::ErrorCode code,
                              const std::string& detail) {
  pending_rows_ -= q.rows_data.size() / q.cols;
  q.rows_data.clear();
  std::vector<BatchItem> items = std::move(q.items);
  q.items.clear();
  for (const BatchItem& item : items) {
    ++stats_.errors;
    on_error_(item, code, detail);
  }
  if (q.items.empty()) {
    items.clear();
    q.items = std::move(items);
  }
}

}  // namespace hmd::serve
