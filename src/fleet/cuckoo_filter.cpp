#include "fleet/cuckoo_filter.h"

#include <mutex>

#include "common/checksum.h"
#include "common/error.h"

namespace hmd::fleet {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void prefetch_bucket(const void* bucket) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(bucket, /*rw=*/0, /*locality=*/3);
#else
  (void)bucket;
#endif
}

}  // namespace

DynamicCuckooFilter::DynamicCuckooFilter()
    : DynamicCuckooFilter(Options{}) {}

DynamicCuckooFilter::DynamicCuckooFilter(Options options)
    : options_(options) {
  HMD_REQUIRE(options_.initial_capacity > 0,
              "DynamicCuckooFilter: initial_capacity must be positive");
  HMD_REQUIRE(options_.max_kicks > 0,
              "DynamicCuckooFilter: max_kicks must be positive");
  HMD_REQUIRE(options_.max_load > 0.0 && options_.max_load <= 1.0,
              "DynamicCuckooFilter: max_load must be in (0, 1]");
  const std::size_t buckets = round_up_pow2(
      (options_.initial_capacity + kSlotsPerBucket - 1) / kSlotsPerBucket);
  segments_[0].store(new_segment(buckets), std::memory_order_release);
  segment_count_.store(1, std::memory_order_release);
  next_buckets_ = buckets * kGrowthFactor;
}

DynamicCuckooFilter::Segment* DynamicCuckooFilter::new_segment(
    std::size_t bucket_count) {
  owned_.push_back(std::make_unique<Segment>(bucket_count));
  return owned_.back().get();
}

std::uint64_t DynamicCuckooFilter::hash_key(std::string_view key) {
  return io::xxhash64(key.data(), key.size());
}

std::uint16_t DynamicCuckooFilter::fingerprint(std::uint64_t hash) {
  // High bits — bucket indices consume the low bits, so fingerprint and
  // home bucket stay (nearly) independent. 0 is the empty-slot marker.
  const auto fp = static_cast<std::uint16_t>(hash >> 48);
  return fp == 0 ? std::uint16_t{1} : fp;
}

std::size_t DynamicCuckooFilter::alt_bucket(std::size_t bucket,
                                            std::uint16_t fp,
                                            std::size_t mask) {
  // spread(fp): one odd-constant multiply mixes the 16 fingerprint bits
  // across the word so the XOR offset is well distributed at any mask
  // width. XOR with a value independent of `bucket` keeps the involution.
  const std::uint64_t spread =
      static_cast<std::uint64_t>(fp) * 0x9E3779B97F4A7C15ull;
  return bucket ^ (static_cast<std::size_t>(spread >> 32) & mask);
}

bool DynamicCuckooFilter::bucket_contains(const Slot* bucket,
                                          std::uint16_t fp) {
  // Semisorted descending with zeros trailing: the first slot below fp
  // (or a zero) proves absence.
  for (int i = 0; i < kSlotsPerBucket; ++i) {
    const std::uint16_t slot = bucket[i].load(std::memory_order_relaxed);
    if (slot == fp) return true;
    if (slot < fp) return false;
  }
  return false;
}

bool DynamicCuckooFilter::bucket_insert(Slot* bucket, std::uint16_t fp) {
  if (bucket[kSlotsPerBucket - 1].load(std::memory_order_relaxed) != 0) {
    return false;  // full
  }
  int i = kSlotsPerBucket - 1;
  while (i > 0) {
    const std::uint16_t above =
        bucket[i - 1].load(std::memory_order_relaxed);
    if (above >= fp) break;
    bucket[i].store(above, std::memory_order_relaxed);
    --i;
  }
  bucket[i].store(fp, std::memory_order_relaxed);
  return true;
}

bool DynamicCuckooFilter::bucket_remove(Slot* bucket, std::uint16_t fp) {
  for (int i = 0; i < kSlotsPerBucket; ++i) {
    const std::uint16_t slot = bucket[i].load(std::memory_order_relaxed);
    if (slot == fp) {
      for (int j = i; j + 1 < kSlotsPerBucket; ++j) {
        bucket[j].store(bucket[j + 1].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      }
      bucket[kSlotsPerBucket - 1].store(0, std::memory_order_relaxed);
      return true;
    }
    if (slot < fp) return false;
  }
  return false;
}

bool DynamicCuckooFilter::sweep_segments(std::uint64_t hash,
                                         std::uint16_t fp) const {
  const std::size_t count = segment_count_.load(std::memory_order_acquire);
  // Pass 1: kick off every candidate-bucket cache line before touching
  // any — the sweep then pays ~one memory latency instead of 2 x count
  // serialised ones.
  const Slot* candidates[2 * kMaxSegments];
  for (std::size_t i = 0; i < count; ++i) {
    // Acquire pairs with rebuild()'s release store: a freshly swapped-in
    // segment is fully constructed before its pointer is visible.
    const Segment& segment = *segments_[i].load(std::memory_order_acquire);
    const std::size_t b1 = static_cast<std::size_t>(hash) & segment.mask;
    const Slot* c1 = segment.bucket(b1);
    const Slot* c2 = segment.bucket(alt_bucket(b1, fp, segment.mask));
    prefetch_bucket(c1);
    prefetch_bucket(c2);
    candidates[2 * i] = c1;
    candidates[2 * i + 1] = c2;
  }
  // Pass 2 (newest segments last to first — recent keys live there).
  for (std::size_t i = count; i-- > 0;) {
    if (bucket_contains(candidates[2 * i], fp) ||
        bucket_contains(candidates[2 * i + 1], fp)) {
      return true;
    }
  }
  return false;
}

bool DynamicCuckooFilter::insert_with_kicks(Segment& segment,
                                            std::size_t bucket,
                                            std::uint16_t fp) {
  journal_.clear();
  std::size_t cur_bucket = bucket;
  std::uint16_t cur_fp = fp;
  for (int kick = 0; kick < options_.max_kicks; ++kick) {
    // The bucket is full (direct placement was tried first). Displace a
    // rotating victim slot; deterministic, and the rotation avoids
    // re-kicking the slot just written by the previous step.
    Slot* slots = segment.bucket(cur_bucket);
    const int victim_slot = kick & (kSlotsPerBucket - 1);
    const std::uint16_t victim =
        slots[victim_slot].load(std::memory_order_relaxed);
    bucket_remove(slots, victim);
    bucket_insert(slots, cur_fp);
    journal_.push_back({cur_bucket, cur_fp, victim});
    cur_fp = victim;
    cur_bucket = alt_bucket(cur_bucket, cur_fp, segment.mask);
    if (bucket_insert(segment.bucket(cur_bucket), cur_fp)) return true;
  }
  // Chain failed: roll the journal back in reverse so every previously
  // resident fingerprint is restored — growth must be lossless or a
  // false negative could betray a registered key.
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    bucket_remove(segment.bucket(it->bucket), it->placed);
    bucket_insert(segment.bucket(it->bucket), it->displaced);
  }
  return false;
}

void DynamicCuckooFilter::insert(std::string_view key) {
  const std::uint64_t hash = hash_key(key);
  const std::uint16_t fp = fingerprint(hash);
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  // Seqlock write window: mark the version odd so concurrent probes
  // discard anything they read while fingerprints may be mid-kick.
  const std::uint64_t version = version_.load(std::memory_order_relaxed);
  version_.store(version + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);

  const std::size_t count = segment_count_.load(std::memory_order_relaxed);
  bool placed = false;
  // Direct placement, newest segment first: new keys land in the active
  // segment; holes erased out of older segments get backfilled.
  for (std::size_t i = count; i-- > 0 && !placed;) {
    Segment& segment = *segments_[i].load(std::memory_order_relaxed);
    const std::size_t b1 = static_cast<std::size_t>(hash) & segment.mask;
    const std::size_t b2 = alt_bucket(b1, fp, segment.mask);
    if (bucket_insert(segment.bucket(b1), fp) ||
        bucket_insert(segment.bucket(b2), fp)) {
      ++segment.occupied;
      placed = true;
    }
  }
  if (!placed) {
    Segment& active = *segments_[count - 1].load(std::memory_order_relaxed);
    const double load = static_cast<double>(active.occupied) /
                        static_cast<double>(active.slots.size());
    if (load < options_.max_load) {
      const std::size_t b1 = static_cast<std::size_t>(hash) & active.mask;
      if (insert_with_kicks(active, b1, fp)) {
        ++active.occupied;
        placed = true;
      }
    }
  }
  if (!placed) {
    // Active segment saturated (or the kick chain gave up): stack a new
    // segment with kGrowthFactor x the buckets and place there — two
    // empty candidate buckets, cannot fail. Publish the pointer before
    // the count so readers only ever see constructed segments.
    HMD_REQUIRE(count < kMaxSegments,
                "DynamicCuckooFilter: segment limit exceeded");
    Segment& fresh = *new_segment(next_buckets_);
    next_buckets_ *= kGrowthFactor;
    segments_[count].store(&fresh, std::memory_order_release);
    segment_count_.store(count + 1, std::memory_order_release);
    const std::size_t b1 = static_cast<std::size_t>(hash) & fresh.mask;
    bucket_insert(fresh.bucket(b1), fp);
    ++fresh.occupied;
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  version_.store(version + 2, std::memory_order_release);
}

bool DynamicCuckooFilter::may_contain(std::string_view key) const {
  const std::uint64_t hash = hash_key(key);
  const std::uint16_t fp = fingerprint(hash);
  // Seqlock read: no lock, no RMW — sweep, then validate that no writer
  // overlapped (a mid-kick snapshot could transiently miss a moving
  // fingerprint, so a torn read must be retried, never trusted).
  for (int attempt = 0; attempt < kMaxReadRetries; ++attempt) {
    const std::uint64_t v1 = version_.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) continue;  // writer mid-mutation
    const bool found = sweep_segments(hash, fp);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (version_.load(std::memory_order_relaxed) == v1) return found;
  }
  // Write storm: resolve under the writer mutex instead of spinning.
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  return sweep_segments(hash, fp);
}

bool DynamicCuckooFilter::erase(std::string_view key) {
  const std::uint64_t hash = hash_key(key);
  const std::uint16_t fp = fingerprint(hash);
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  const std::uint64_t version = version_.load(std::memory_order_relaxed);
  version_.store(version + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);

  const std::size_t count = segment_count_.load(std::memory_order_relaxed);
  bool removed = false;
  for (std::size_t i = count; i-- > 0 && !removed;) {
    Segment& segment = *segments_[i].load(std::memory_order_relaxed);
    const std::size_t b1 = static_cast<std::size_t>(hash) & segment.mask;
    if (bucket_remove(segment.bucket(b1), fp) ||
        bucket_remove(segment.bucket(alt_bucket(b1, fp, segment.mask)),
                      fp)) {
      --segment.occupied;
      removed = true;
    }
  }
  if (removed) size_.fetch_sub(1, std::memory_order_relaxed);
  version_.store(version + 2, std::memory_order_release);
  return removed;
}

void DynamicCuckooFilter::place_for_rebuild(std::vector<Segment*>& stack,
                                            std::size_t& next_buckets,
                                            std::uint64_t hash,
                                            std::uint16_t fp) {
  // Same placement policy as insert(), against the private stack: direct
  // placement newest-first, then kicks into the active segment, then
  // grow. Growth here should be rare — the stack's first segment is
  // sized for the whole live set.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    Segment& segment = **it;
    const std::size_t b1 = static_cast<std::size_t>(hash) & segment.mask;
    const std::size_t b2 = alt_bucket(b1, fp, segment.mask);
    if (bucket_insert(segment.bucket(b1), fp) ||
        bucket_insert(segment.bucket(b2), fp)) {
      ++segment.occupied;
      return;
    }
  }
  Segment& active = *stack.back();
  const double load = static_cast<double>(active.occupied) /
                      static_cast<double>(active.slots.size());
  if (load < options_.max_load) {
    const std::size_t b1 = static_cast<std::size_t>(hash) & active.mask;
    if (insert_with_kicks(active, b1, fp)) {
      ++active.occupied;
      return;
    }
  }
  HMD_REQUIRE(stack.size() < kMaxSegments,
              "DynamicCuckooFilter: segment limit exceeded");
  Segment& fresh = *new_segment(next_buckets);
  next_buckets *= kGrowthFactor;
  stack.push_back(&fresh);
  const std::size_t b1 = static_cast<std::size_t>(hash) & fresh.mask;
  bucket_insert(fresh.bucket(b1), fp);
  ++fresh.occupied;
}

void DynamicCuckooFilter::rebuild(
    const std::vector<std::string_view>& live_keys) {
  const std::lock_guard<std::mutex> lock(writer_mutex_);

  // One fresh segment sized so the live set sits below max_load, never
  // below the configured initial capacity. The whole stack is private
  // until the swap, so probes keep validating against the old one.
  const std::size_t want_slots = std::max(
      options_.initial_capacity,
      static_cast<std::size_t>(static_cast<double>(live_keys.size()) /
                               options_.max_load) +
          kSlotsPerBucket);
  std::vector<Segment*> stack;
  std::size_t next_buckets =
      round_up_pow2((want_slots + kSlotsPerBucket - 1) / kSlotsPerBucket);
  stack.push_back(new_segment(next_buckets));
  next_buckets *= kGrowthFactor;
  for (const std::string_view key : live_keys) {
    const std::uint64_t hash = hash_key(key);
    place_for_rebuild(stack, next_buckets, hash, fingerprint(hash));
  }

  // Swap inside a seqlock write window. Slots at index >= the new count
  // keep their old (retired) pointers: a probe racing the swap may still
  // sweep them — valid memory, and its result is discarded by version
  // validation anyway.
  const std::uint64_t version = version_.load(std::memory_order_relaxed);
  version_.store(version + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < stack.size(); ++i) {
    segments_[i].store(stack[i], std::memory_order_release);
  }
  segment_count_.store(stack.size(), std::memory_order_release);
  next_buckets_ = next_buckets;
  size_.store(live_keys.size(), std::memory_order_relaxed);
  ++rebuilds_;
  version_.store(version + 2, std::memory_order_release);
}

FilterStats DynamicCuckooFilter::stats() const {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  FilterStats out;
  out.enabled = true;
  out.keys = size_.load(std::memory_order_relaxed);
  out.segments = segment_count_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < out.segments; ++i) {
    out.slots += segments_[i].load(std::memory_order_relaxed)->slots.size();
  }
  out.rebuilds = rebuilds_;
  out.occupancy = out.slots == 0
                      ? 0.0
                      : static_cast<double>(out.keys) /
                            static_cast<double>(out.slots);
  // Two buckets x 4 slots probed per segment, each slot matching a
  // uniform 16-bit fingerprint with probability 2^-16.
  out.fp_bound = static_cast<double>(out.segments) * 8.0 / 65536.0;
  return out;
}

}  // namespace hmd::fleet
