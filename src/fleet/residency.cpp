#include "fleet/residency.h"

#include <algorithm>

namespace hmd::fleet {

void ResidencyManager::set_budget_bytes(std::size_t bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  budget_ = bytes;
  sweep_locked();
}

std::size_t ResidencyManager::budget_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return budget_;
}

void ResidencyManager::admit(const std::shared_ptr<Resident>& entry,
                             std::size_t bytes) {
  if (entry == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++admits_;
  Tracked& tracked = tracked_[entry.get()];
  // Re-admit (hot-swap reload, or a raw pointer reused after its old
  // entry expired): replace the stale byte count, don't double-count.
  if (!tracked.handle.expired()) resident_bytes_ -= tracked.bytes;
  tracked.handle = entry;
  tracked.bytes = bytes;
  resident_bytes_ += bytes;
  sweep_locked();
}

std::vector<std::shared_ptr<ResidencyManager::Resident>>
ResidencyManager::residents() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Resident>> out;
  out.reserve(tracked_.size());
  for (auto it = tracked_.begin(); it != tracked_.end();) {
    if (auto live = it->second.handle.lock()) {
      out.push_back(std::move(live));
      ++it;
    } else {
      resident_bytes_ -= it->second.bytes;
      it = tracked_.erase(it);
    }
  }
  return out;
}

ResidencyStats ResidencyManager::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ResidencyStats out;
  out.budget_bytes = budget_;
  out.resident_bytes = resident_bytes_;
  out.resident_entries = tracked_.size();
  out.admits = admits_;
  out.evictions = evictions_;
  out.evicted_bytes = evicted_bytes_;
  out.pinned_skips = pinned_skips_;
  return out;
}

void ResidencyManager::sweep_locked() {
  // Prune entries whose registry entry was re-pointed away or destroyed.
  for (auto it = tracked_.begin(); it != tracked_.end();) {
    if (it->second.handle.expired()) {
      resident_bytes_ -= it->second.bytes;
      it = tracked_.erase(it);
    } else {
      ++it;
    }
  }
  if (budget_ == 0 || resident_bytes_ <= budget_) return;
  // One pass, coldest-first: rank every live entry by its use stamp,
  // then walk the ranking attempting evictions until under budget. An
  // entry found pinned stays pinned for the rest of *this* sweep (its
  // lease cannot clear while we hold the manager mutex and the holder
  // keeps the snapshot), so it is simply never revisited — the sweep is
  // O(T log T) in the tracked set however many entries are pinned.
  struct Candidate {
    std::uint64_t stamp;
    const Resident* key;
    std::shared_ptr<Resident> live;
  };
  std::vector<Candidate> ranked;
  ranked.reserve(tracked_.size());
  for (const auto& [ptr, tracked] : tracked_) {
    if (auto live = tracked.handle.lock()) {
      ranked.push_back({live->residency_last_used(), ptr, std::move(live)});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.stamp < b.stamp;
            });
  for (Candidate& victim : ranked) {
    if (resident_bytes_ <= budget_) break;
    const std::size_t freed = victim.live->residency_evict();
    if (freed == 0) {
      ++pinned_skips_;
      continue;
    }
    const auto it = tracked_.find(victim.key);
    // Account with the tracked bytes (what admit() added), not the
    // entry's own idea of its size — the two are equal by construction,
    // but the tracker's ledger must stay self-consistent either way.
    resident_bytes_ -= it->second.bytes;
    evicted_bytes_ += it->second.bytes;
    ++evictions_;
    tracked_.erase(it);
  }
}

}  // namespace hmd::fleet
