#pragma once
// Dynamic cuckoo filter — the registry's O(1) negative-lookup front door.
//
// An approximate membership filter over string keys with NO false
// negatives: may_contain() returning false proves the key was never
// inserted (or was erased), so a fleet-scale registry can reject a
// lookup for a never-trained key without touching any shard lock. False
// positives merely fall through to the exact sharded map, which answers
// "no" authoritatively — correctness never depends on the filter.
//
// ## Layout: partial-key cuckoo hashing over semisorted buckets
//
// Each key is reduced to a 16-bit nonzero fingerprint (the high bits of
// its 64-bit xxhash; 0 is reserved for "empty slot"). Fingerprints live
// in 4-slot buckets kept *semisorted* — occupied slots descending, empty
// slots trailing — so a probe can stop at the first slot smaller than
// the probed fingerprint and an insert is a short insertion sort, both
// branch-friendly over a single cache line (4 x 16 bit = 8 bytes).
//
// Every fingerprint has exactly two candidate buckets per segment:
//
//   b1 = hash(key) & mask
//   b2 = b1 ^ (spread(fingerprint) & mask)
//
// The XOR form is an involution — b1 is recoverable from (b2, fp) — so a
// stored fingerprint can be *kicked* to its alternate bucket without
// knowing the original key (partial-key cuckoo hashing, Fan et al.).
//
// ## Growth: stacked segments, lossless kicks
//
// A classic cuckoo filter has fixed capacity. Here the filter grows as
// the keyspace does, holding a bounded false-positive rate: when the
// newest ("active") segment is ~max_load full or a kick chain exceeds
// max_kicks, a new segment with 4x the buckets is stacked on top. Old
// segments become read-mostly (probes and erases only; inserts prefer
// newer segments, backfilling slots freed by erase). A probe checks two
// buckets per segment, so with S segments the false-positive bound is
// ~ S * 8 / 2^16; quadrupling keeps S ~ log4 of the keyspace — a
// million keys from the default capacity is 5 segments (~0.06% FP) and
// ten candidate buckets per probe. A probe prefetches every candidate
// bucket across all segments before examining any, so the sweep costs
// about one memory latency, not S serialized ones.
//
// Kicks are journaled and rolled back when a chain fails, then the
// insert lands in a fresh segment instead — an insert NEVER drops a
// resident fingerprint, which is what makes "no false negatives" a hard
// invariant rather than a probabilistic one.
//
// ## Shrink: rebuild() after key churn
//
// Erases free slots but never retire segments, so a filter that grew
// under a transient key population keeps paying the full per-probe
// segment sweep (and the widened FP bound) forever. rebuild() fixes
// that: given the *live* key set, it re-inserts every key into one
// right-sized fresh segment (stacking only if placement overflows) and
// atomically swaps the stack. Fingerprints cannot migrate across mask
// sizes — b2 = b1 ^ (spread(fp) & mask) changes meaning — which is why
// rebuild takes keys, not resident fingerprints. Retired segments are
// parked on an owner list and freed only at destruction: concurrent
// lock-free probes may still hold raw pointers into them (their sweeps
// fail seqlock validation and retry, but the memory must stay valid).
//
// ## Concurrency: seqlock reads, mutex writes
//
// may_contain() takes NO lock at all: slots are relaxed atomics and a
// probe runs under a seqlock — read the version counter, sweep the
// candidate buckets, re-read the counter, retry if a writer intervened
// (a mid-kick snapshot could transiently miss a moving fingerprint, so
// torn reads must be discarded, never trusted). The read path performs
// zero RMW operations and touches no shared cache line in write mode,
// so negative lookups scale linearly with probing threads — a
// shared_mutex reader count would serialise them all on one line.
// Writers (insert/erase) serialise on a plain mutex and bracket their
// mutations with version bumps. Segments are published via an atomic
// count over a fixed pointer array, so readers never observe a
// reallocating container. A reader that keeps losing to a write storm
// falls back to the writer mutex after a bounded number of retries.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace hmd::fleet {

/// Point-in-time filter statistics (see DynamicCuckooFilter::stats).
/// `rejected` is owned by whoever fronts the filter (the registry counts
/// lookups it answered negatively without a shard probe).
struct FilterStats {
  bool enabled = false;
  std::size_t keys = 0;      ///< fingerprints resident
  std::size_t slots = 0;     ///< total slot capacity across segments
  std::size_t segments = 0;  ///< stacked growth segments
  double occupancy = 0.0;    ///< keys / slots
  double fp_bound = 0.0;     ///< ~segments * 8 / 2^16 upper estimate
  std::uint64_t rejected = 0;
  std::uint64_t rebuilds = 0;  ///< times rebuild() compacted the filter
};

class DynamicCuckooFilter {
 public:
  struct Options {
    /// Slot capacity of the first segment (rounded up to a power-of-two
    /// bucket count; 4 slots per bucket). Growth quadruples from here.
    std::size_t initial_capacity = 4096;
    /// Kick-chain length before the insert gives up, rolls the chain
    /// back, and grows a new segment instead.
    int max_kicks = 192;
    /// Active-segment load factor beyond which inserts grow rather than
    /// kick (semisorted 4-slot buckets stay healthy to ~0.95).
    double max_load = 0.94;
  };

  // Two constructors instead of one defaulted `Options options = {}`
  // argument: GCC parses a nested aggregate's member initializers only
  // at the end of the outermost class, so the braced default cannot be
  // formed here (PR 96645).
  DynamicCuckooFilter();
  explicit DynamicCuckooFilter(Options options);

  /// Record `key`. Duplicate inserts of the same key are permitted and
  /// store duplicate fingerprints (each erase removes one); the registry
  /// only duplicates on a benign add()-race, so the waste is bounded.
  void insert(std::string_view key);

  /// False => `key` was definitely never inserted (or has been erased).
  /// True => probably present; the caller must confirm against exact
  /// state. Lock-free: a seqlock-validated probe with no RMW — see the
  /// concurrency note in the file header.
  bool may_contain(std::string_view key) const;

  /// Remove one stored fingerprint matching `key`. Returns false when no
  /// matching fingerprint is resident (erasing a never-inserted key is a
  /// no-op, never corruption). Only erase keys that were inserted:
  /// erasing a colliding never-inserted key could false-negative its
  /// collision partner — same contract as any cuckoo filter.
  bool erase(std::string_view key);

  /// Replace the whole filter with one right-sized segment holding
  /// exactly `live_keys` (see "Shrink" in the file header). Safe against
  /// concurrent may_contain() — probes racing the swap fail seqlock
  /// validation and retry against the published stack. The caller owns
  /// the TOCTOU between snapshotting its live set and calling this: a
  /// key inserted after the snapshot is NOT in the rebuilt filter, so
  /// external insert/erase must be excluded for the duration (the
  /// registry holds its maintenance lock across both).
  void rebuild(const std::vector<std::string_view>& live_keys);

  /// Fingerprints resident (== inserts - successful erases).
  std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  FilterStats stats() const;

 private:
  static constexpr int kSlotsPerBucket = 4;
  /// Growth factor per stacked segment (see file header: 4x keeps the
  /// segment count — and with it both probe cost and the FP bound —
  /// at log4 of the keyspace).
  static constexpr std::size_t kGrowthFactor = 4;
  /// Fixed segment-slot array so readers never chase a reallocating
  /// container. 4x growth from the minimum capacity overflows size_t
  /// long before this bound.
  static constexpr std::size_t kMaxSegments = 32;
  /// Seqlock read attempts before a reader gives up racing writers and
  /// takes the writer mutex instead.
  static constexpr int kMaxReadRetries = 64;

  using Slot = std::atomic<std::uint16_t>;

  /// One growth segment: a flat fingerprint array of `buckets()`
  /// semisorted 4-slot buckets, power-of-two sized. Slots are relaxed
  /// atomics — the seqlock orders them; the atomics only make the racy
  /// reads defined.
  struct Segment {
    explicit Segment(std::size_t bucket_count)
        : slots(bucket_count * kSlotsPerBucket), mask(bucket_count - 1) {}

    std::vector<Slot> slots;  ///< value-initialised: all empty
    std::size_t mask = 0;     ///< bucket_count - 1
    std::size_t occupied = 0; ///< writer-mutex only

    std::size_t buckets() const { return mask + 1; }
    Slot* bucket(std::size_t index) {
      return slots.data() + index * kSlotsPerBucket;
    }
    const Slot* bucket(std::size_t index) const {
      return slots.data() + index * kSlotsPerBucket;
    }
  };

  /// One journaled displacement of a kick chain (for rollback).
  struct Kick {
    std::size_t bucket = 0;
    std::uint16_t placed = 0;    ///< fingerprint the step wrote
    std::uint16_t displaced = 0; ///< fingerprint the step evicted
  };

  static std::uint64_t hash_key(std::string_view key);
  static std::uint16_t fingerprint(std::uint64_t hash);
  /// The partner bucket of `bucket` for `fp` within a segment of
  /// `mask + 1` buckets. An involution: alt(alt(b)) == b.
  static std::size_t alt_bucket(std::size_t bucket, std::uint16_t fp,
                                std::size_t mask);

  static bool bucket_contains(const Slot* bucket, std::uint16_t fp);
  /// Insert `fp` keeping the bucket semisorted; false when full.
  static bool bucket_insert(Slot* bucket, std::uint16_t fp);
  /// Remove one copy of `fp` keeping the bucket semisorted.
  static bool bucket_remove(Slot* bucket, std::uint16_t fp);

  /// One unvalidated sweep of every segment's candidate buckets
  /// (prefetch pass, then probe pass). Only meaningful under the seqlock
  /// check or the writer mutex.
  bool sweep_segments(std::uint64_t hash, std::uint16_t fp) const;

  /// Kick-chain insert into the active segment; rolls back and returns
  /// false when the chain exceeds max_kicks. Caller holds the writer
  /// mutex inside a version window.
  bool insert_with_kicks(Segment& segment, std::size_t bucket,
                         std::uint16_t fp);

  /// Allocate a segment onto the owner list and return its raw pointer
  /// (writer mutex held). Segments are freed only at destruction — see
  /// the rebuild note in the file header.
  Segment* new_segment(std::size_t bucket_count);

  /// Place `fp` into the private (unpublished) rebuild stack, growing it
  /// when placement overflows. Writer mutex held.
  void place_for_rebuild(std::vector<Segment*>& stack,
                         std::size_t& next_buckets, std::uint64_t hash,
                         std::uint16_t fp);

  Options options_;
  /// Serialises insert/erase/rebuild (and stats); never taken by a
  /// successful seqlock read.
  mutable std::mutex writer_mutex_;
  /// Seqlock generation: odd while a writer is mutating slots.
  std::atomic<std::uint64_t> version_{0};
  /// Published stack: segments_[i] for i < segment_count_ point at fully
  /// constructed segments. Atomic because rebuild() swaps them while
  /// lock-free probes read them (release store / acquire load pairs).
  std::array<std::atomic<Segment*>, kMaxSegments> segments_{};
  /// Published segment count.
  std::atomic<std::size_t> segment_count_{0};
  /// Every segment ever allocated, live and retired alike (writer mutex
  /// only). Retired segments — replaced by rebuild() — stay here until
  /// destruction because concurrent probes may hold raw pointers.
  std::vector<std::unique_ptr<Segment>> owned_;
  std::size_t next_buckets_ = 0;  ///< bucket count of the next segment
  std::atomic<std::size_t> size_{0};
  std::uint64_t rebuilds_ = 0;  ///< writer mutex only
  std::vector<Kick> journal_;  ///< kick scratch, reused across inserts
};

}  // namespace hmd::fleet
