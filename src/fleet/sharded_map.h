#pragma once
// Sharded key map — the fleet registry's exact key store.
//
// A hash map over string keys split into N independently-locked shards:
// a key's shard is picked by its xxhash64, so operations on distinct
// keys land on distinct mutexes with probability (N-1)/N and never
// serialise behind one global registration lock. This is what lets a
// fleet-scale registry register and look up millions of per-user keys
// concurrently: the PR 4 registry's single map mutex made every add()
// and every first-touch find() a rendezvous point; here only *same-key*
// (and same-shard-collision) operations contend — asserted race-free by
// the concurrent distinct-key suite under the TSan CI job.
//
// The shard count is fixed at construction (rounded up to a power of
// two) — resharding a live fleet is not a thing this map does; pick the
// shard count for the deployment's core count, not its key count (shard
// occupancy is irrelevant: each shard is a std::unordered_map that
// grows on its own).
//
// Lookups are heterogeneous (std::string_view, no allocation on the
// probe path). Values are returned by copy — the intended Value is a
// shared_ptr, which makes find() a snapshot operation: the caller's
// copy stays valid however the map mutates afterwards.
//
// All members are safe to call concurrently. sorted_keys()/sorted_items()
// lock one shard at a time (never two), so they are a point-in-time
// *approximation* under concurrent writers — exactly what a health or
// listing endpoint wants, never what correctness may depend on.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/checksum.h"

namespace hmd::fleet {

/// Transparent xxhash64 hasher: string_view probes never allocate.
struct KeyHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view key) const {
    return static_cast<std::size_t>(io::xxhash64(key.data(), key.size()));
  }
};

template <typename Value>
class ShardedKeyMap {
 public:
  explicit ShardedKeyMap(std::size_t shard_count = 16) {
    std::size_t n = 1;
    while (n < shard_count) n <<= 1;
    if (n == 0) n = 1;
    mask_ = n - 1;
    shards_ = std::make_unique<Shard[]>(n);
  }

  std::size_t shard_count() const { return mask_ + 1; }

  /// The shard `key` lives in (stable for the map's lifetime).
  std::size_t shard_index(std::string_view key) const {
    // High bits: the per-shard unordered_map consumes the hash's low
    // bits for its buckets, so shard and bucket stay independent.
    return static_cast<std::size_t>(io::xxhash64(key.data(), key.size()) >>
                                    48) &
           mask_;
  }

  /// Insert or overwrite. Returns true when `key` was new to the map.
  bool insert_or_assign(std::string_view key, Value value) {
    Shard& shard = shards_[shard_index(key)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second = std::move(value);
      return false;
    }
    shard.map.emplace(std::string(key), std::move(value));
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// The value under `key`, or a default-constructed Value (null for the
  /// intended shared_ptr instantiation). One shard lock, no allocation.
  Value find(std::string_view key) const {
    const Shard& shard = shards_[shard_index(key)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    return it == shard.map.end() ? Value{} : it->second;
  }

  bool contains(std::string_view key) const {
    const Shard& shard = shards_[shard_index(key)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.map.find(key) != shard.map.end();
  }

  /// Remove `key`. Returns false when it was not present.
  bool erase(std::string_view key) {
    Shard& shard = shards_[shard_index(key)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    shard.map.erase(it);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  std::vector<std::string> sorted_keys() const {
    std::vector<std::string> out;
    out.reserve(size());
    for (std::size_t s = 0; s <= mask_; ++s) {
      const Shard& shard = shards_[s];
      const std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [key, value] : shard.map) out.push_back(key);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<std::pair<std::string, Value>> sorted_items() const {
    std::vector<std::pair<std::string, Value>> out;
    out.reserve(size());
    for (std::size_t s = 0; s <= mask_; ++s) {
      const Shard& shard = shards_[s];
      const std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [key, value] : shard.map) out.emplace_back(key, value);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Value, KeyHash, std::equal_to<>> map;
  };

  std::unique_ptr<Shard[]> shards_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> size_{0};
};

}  // namespace hmd::fleet
