#pragma once
// Bounded-residency manager — the eviction tier over the mmap layer.
//
// A fleet's long tail of cold per-user artifacts must not all stay
// mapped: with millions of keys, "loaded forever on first get()" is an
// unbounded RSS leak. The ResidencyManager tracks every resident
// artifact's byte footprint against a configurable budget and evicts
// the coldest unleased entries when a new load pushes the total over —
// PR 5 made re-mapping an evicted artifact ~1.3 ms, so eviction trades
// a bounded reload latency for bounded memory.
//
// ## Leases: in-flight batches pin their version
//
// Eviction never invalidates a snapshot a caller holds: an entry whose
// detector is referenced outside the registry (shared_ptr use_count >
// 1 — an in-flight batch, a pinned hot-swap comparison) reports itself
// *pinned* and is skipped by the sweep (counted in pinned_skips). Only
// cold, unleased entries are unmapped. A snapshot taken before its
// entry was evicted therefore keeps serving the old bytes until the
// holder drops it — the same pin-your-version contract refresh()
// hot-swaps have always honoured.
//
// ## Division of labour
//
// The manager owns accounting (resident byte total, budget, stats) and
// victim selection (least-recently-used by the entries' own relaxed
// use stamps); the *entries* own the eviction mechanics through the
// Resident interface — checking their lease and dropping their
// detector under their own leaf lock. Lock order is always
// manager mutex -> entry leaf lock, never the reverse: entries call
// into the manager only from contexts that hold no entry lock.
//
// Tracking uses weak_ptrs, so an entry orphaned by a registry
// re-point (or a destroyed registry) ages out of the accounting
// automatically on the next sweep.
//
// All members are safe to call concurrently.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace hmd::fleet {

/// Point-in-time residency accounting (see ResidencyManager::stats).
struct ResidencyStats {
  std::size_t budget_bytes = 0;  ///< 0 = unbounded (no eviction)
  std::size_t resident_bytes = 0;
  std::size_t resident_entries = 0;
  std::uint64_t admits = 0;     ///< loads published into the tracker
  std::uint64_t evictions = 0;  ///< entries unmapped by the sweep
  std::uint64_t evicted_bytes = 0;
  /// Sweep passes that wanted an entry but found it lease-pinned.
  std::uint64_t pinned_skips = 0;
};

class ResidencyManager {
 public:
  /// One resident artifact the sweep may unmap. Implemented by the
  /// registry's per-key entry.
  class Resident {
   public:
    virtual ~Resident() = default;
    /// Monotonic last-use stamp (relaxed atomic read; bigger = hotter).
    virtual std::uint64_t residency_last_used() const = 0;
    /// Drop the resident detector if (and only if) it is unleased.
    /// Returns the bytes freed, or 0 when the entry was pinned by an
    /// outstanding snapshot (or already gone). Called with the
    /// manager's mutex held; must take only the entry's own leaf lock.
    virtual std::size_t residency_evict() = 0;
  };

  /// Set the byte budget (0 = unbounded) and sweep immediately if the
  /// resident set is now over it.
  void set_budget_bytes(std::size_t bytes);
  std::size_t budget_bytes() const;
  bool bounded() const { return budget_bytes() != 0; }

  /// Record `entry` as resident holding `bytes` (re-admitting an
  /// already-tracked entry replaces its byte count — a hot-swap reload
  /// may change footprint), then sweep while over budget: evict the
  /// least-recently-used unleased entries until the total fits or only
  /// pinned entries remain. The caller must hold no entry lock.
  void admit(const std::shared_ptr<Resident>& entry, std::size_t bytes);

  /// Every live tracked entry (expired ones are pruned as a side
  /// effect). The registry's refresh() sweep iterates this — O(resident
  /// set), not O(registered keys).
  std::vector<std::shared_ptr<Resident>> residents();

  ResidencyStats stats() const;

 private:
  struct Tracked {
    std::weak_ptr<Resident> handle;
    std::size_t bytes = 0;
  };

  /// Prune expired handles; then, while over budget, evict coldest
  /// unleased entries. Caller holds mutex_.
  void sweep_locked();

  mutable std::mutex mutex_;
  std::size_t budget_ = 0;
  std::size_t resident_bytes_ = 0;
  std::map<const Resident*, Tracked> tracked_;
  std::uint64_t admits_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t evicted_bytes_ = 0;
  std::uint64_t pinned_skips_ = 0;
};

}  // namespace hmd::fleet
