#pragma once
// Fleet subsystem façade: the knobs and stats the registry surfaces.
//
// The fleet layer is three independent pieces the registry composes —
// a sharded exact key map (sharded_map.h), a dynamic cuckoo-filter
// front door (cuckoo_filter.h), and a bounded-residency manager
// (residency.h). FleetOptions is how a constructor caller sizes them;
// FleetStats is the aggregate health() / hmd_serve summary view.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>

#include "fleet/cuckoo_filter.h"
#include "fleet/residency.h"

namespace hmd::fleet {

/// A cache-line-striped event counter for hot paths every thread hits.
/// One shared atomic would ping-pong its line between every prober (the
/// filter front door rejects millions of lookups per second across
/// threads); striping by thread identity keeps each bump core-local.
/// value() is a relaxed sum — monotonic and exact once writers quiesce,
/// approximate mid-flight, which is all a stats counter needs.
class StripedCounter {
 public:
  void bump() {
    stripes_[stripe_index()].value.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Stripe& stripe : stripes_) {
      sum += stripe.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  static constexpr std::size_t kStripes = 16;  // power of two

  static std::size_t stripe_index() {
    // Hashed once per call; thread::id hashing is a handful of ALU ops,
    // far cheaper than a contended fetch_add.
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) &
           (kStripes - 1);
  }

  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

/// Construction-time sizing for a fleet-scale registry. The defaults
/// reproduce a "small fleet" profile: 16 shards, filter on, unbounded
/// residency (no eviction) — existing two-argument registry callers see
/// no behavioural change beyond the lock split.
struct FleetOptions {
  /// Independently-locked key shards (rounded up to a power of two).
  std::size_t shards = 16;
  /// Front the exact map with the cuckoo filter: negative get()/contains()
  /// answered O(1) without touching a shard lock.
  bool filter = true;
  /// A registry-sized first segment (128 KiB of slots — noise for a
  /// serving process): a million-key fleet then stacks only ~3 segments,
  /// keeping both the probe's bucket sweep and the FP bound low. The
  /// filter class's own smaller default stays put so growth paths get
  /// exercised by tests constructing filters directly.
  DynamicCuckooFilter::Options filter_options = {.initial_capacity = 65536};
  /// Resident-artifact byte budget; 0 = unbounded (never evict).
  std::size_t residency_budget_bytes = 0;
};

/// Point-in-time fleet accounting (see DetectorRegistry::fleet_stats).
struct FleetStats {
  std::size_t keys = 0;    ///< registered keys (exact map size)
  std::size_t shards = 0;  ///< key-map shard count
  FilterStats filter;      ///< enabled=false when the filter is off
  ResidencyStats residency;
};

}  // namespace hmd::fleet
