#include "api/score.h"

namespace hmd::api {

core::StatsMask stats_mask_for(OutputMask outputs,
                               core::UncertaintyMode score_mode) {
  core::StatsMask mask = core::kStatsVotes;
  constexpr OutputMask kPosteriorOutputs =
      kOutConfidence | kOutSoftEntropy | kOutMutualInformation |
      kOutMaxProbability;
  constexpr OutputMask kEntropyOutputs =
      kOutExpectedEntropy | kOutMutualInformation;
  if (outputs & kPosteriorOutputs) mask |= core::kStatsPosterior;
  if (outputs & kEntropyOutputs) mask |= core::kStatsEntropy;
  if (outputs & (kOutScore | kOutTrusted)) {
    if (core::uncertainty_mode_needs_posterior(score_mode))
      mask |= core::kStatsPosterior;
    if (core::uncertainty_mode_needs_entropy(score_mode))
      mask |= core::kStatsEntropy;
  }
  return mask;
}

namespace {

template <typename T>
void shape_column(std::vector<T>& column, bool selected, std::size_t n) {
  // resize() within capacity never reallocates; clear() keeps capacity.
  if (selected) {
    column.resize(n);
  } else {
    column.clear();
  }
}

}  // namespace

void ScoreResult::shape(OutputMask outputs, std::size_t n) {
  rows = n;
  shape_column(prediction, outputs & kOutPrediction, n);
  shape_column(confidence, outputs & kOutConfidence, n);
  shape_column(votes, outputs & kOutVotes, n);
  shape_column(vote_entropy, outputs & kOutVoteEntropy, n);
  shape_column(soft_entropy, outputs & kOutSoftEntropy, n);
  shape_column(expected_entropy, outputs & kOutExpectedEntropy, n);
  shape_column(mutual_information, outputs & kOutMutualInformation, n);
  shape_column(variation_ratio, outputs & kOutVariationRatio, n);
  shape_column(max_probability, outputs & kOutMaxProbability, n);
  shape_column(score, outputs & kOutScore, n);
  shape_column(trusted, outputs & kOutTrusted, n);
}

}  // namespace hmd::api
