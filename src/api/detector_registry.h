#pragma once
// Multi-model serving registry — one process, every model family.
//
// A DetectorRegistry maps string keys to `.hmdf` model artifacts on disk
// (core/model_artifact.h) and hands out shared_ptr snapshots of the
// serving-only detectors reconstructed from them:
//
//   - registration is cheap: add() / add_directory() record paths only;
//     an artifact is loaded lazily on the first get() of its key.
//   - get() is a snapshot lookup: the returned shared_ptr pins that
//     version of the detector for as long as the caller holds it, so
//     in-flight batches are never invalidated by a swap (or, at fleet
//     scale, by an eviction — see residency below).
//   - refresh() re-stats the *resident* artifacts and reloads the ones
//     whose identity (inode, mtime, size) changed — the field-update
//     story of Kuruvila et al. (arXiv:2005.03644): a retrained artifact
//     dropped over the old file (save_model's temp-file + rename keeps
//     that atomic, gives the replacement a fresh inode, and leaves
//     mappings of the old inode intact for in-flight snapshots) is
//     picked up without a restart and without dropping traffic on the
//     old version. An artifact that went missing or unreadable keeps
//     its last good snapshot — a registry never serves worse than it
//     already does.
//
// ## Fleet scale: sharded keys, filter front door, bounded residency
//
// The key store is a sharded map (fleet/sharded_map.h): N independently
// locked shards selected by key hash, so registration and first-touch
// lookups of distinct keys never serialise behind one global mutex. In
// front of it sits a dynamic cuckoo filter (fleet/cuckoo_filter.h):
// get()/try_get()/contains() of a key that was never registered is
// answered O(1) from the filter without touching any shard lock — the
// filter has no false negatives, and its false positives merely fall
// through to the exact map. Filter maintenance rides registration
// (add() inserts, remove() erases); answers are always exact. Key churn
// — registering and removing transient keys — grows the filter without
// ever shrinking it, so once enough erases accumulate (relative to the
// live key count) remove() rebuilds the filter from the live key set
// into one right-sized segment; rebuild_filter() forces the same
// compaction on demand. Registration and rebuild are ordered by a
// shared/exclusive maintenance lock: add()/remove() hold it shared (so
// they still run concurrently with each other), a rebuild holds it
// exclusive — the rebuilt filter can therefore never miss a key whose
// registration raced it. Lock-free probes are never excluded; they
// retry through the filter's seqlock during the swap.
//
// A byte budget (FleetOptions::residency_budget_bytes, hmd_serve
// --residency-mb) bounds how much artifact data stays resident: when a
// load pushes the total over, the coldest unleased entries are unmapped
// (fleet/residency.h). Eviction drops only the detector — the key stays
// registered, its health history (including quarantine state) is kept,
// and the next get() transparently reloads. An entry whose snapshot is
// held by an in-flight batch is lease-pinned and never evicted.
//
// ## refresh() contract at fleet scale
//
// refresh() is O(resident set), not O(registered keys): it re-stats only
// the entries currently holding a detector. Never-loaded keys stay lazy
// and *evicted* keys are verified lazily instead — their next get()
// re-stats and reloads from disk anyway, so a swap under an evicted key
// is picked up at first use without refresh() paying a stat() per
// registered key across a million-key fleet.
//
// ## Locking: loads happen OUTSIDE the map locks
//
// Shard locks only guard key → entry slots; artifact I/O never runs
// under them. Each entry carries its own two-mutex loading state:
//
//   - `state_mutex` (leaf lock, held for pointer reads/writes only)
//     guards the published snapshot + stat;
//   - `load_mutex` serialises loads *of that entry alone* and is held
//     across the artifact read.
//
// get() is double-checked: a snapshot read under state_mutex first
// (loaded entries never touch load_mutex), then load_mutex + re-check,
// so a load happens at most once per concurrent wave of callers — and a
// slow load of key A never blocks get("B"): B's callers take B's locks
// only. refresh() follows the same discipline per entry, so it cannot
// stall lookups of other keys either. add() re-pointing a live key
// installs a *fresh* entry, so an in-flight load of the old path can
// only ever publish into the orphaned entry, never into the new one.
//
// ## Failure handling: retry, quarantine, degrade — never crash serving
//
// Every load attempt resolves to a typed LoadError (common/error.h).
// The registry's response depends on the error's class:
//
//   - *transient* codes (io / truncated / mmap-failed — a publish caught
//     mid-write, a flaky filesystem) are retried inside the load
//     operation with exponential backoff + jitter (RetryPolicy), bounded
//     by max_attempts;
//   - kMmapFailed additionally falls back to one stream-mode load before
//     counting as a failure — a filesystem without working mmap demotes
//     the entry to copied bytes, it does not take the model down;
//   - *persistent* codes (checksum / bad-magic / bad-version /
//     bad-structure) fail the operation immediately — the bytes are
//     wrong and re-reading them cannot help.
//
// A failed operation leaves the last good snapshot serving (kDegraded);
// quarantine_after consecutive failures quarantine the entry: get() on
// a quarantined key with no snapshot (never loaded, or evicted) fails
// fast on the cached error (no I/O), refresh() skips the entry
// entirely, and after quarantine_ms the next get()/refresh() re-probes
// — one real load attempt that either heals the entry or re-arms the
// quarantine. Failed loads never update the recorded artifact stat, so
// a repaired file is always seen as changed. health() exposes the whole
// state machine per key.
//
// All members are safe to call concurrently (the policy/loader setters
// excepted; see their comments).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "fleet/cuckoo_filter.h"
#include "fleet/fleet.h"
#include "fleet/residency.h"
#include "fleet/sharded_map.h"

namespace hmd::api {

/// On-disk identity of an artifact, used to detect swaps. All-zero means
/// "unreachable". The inode distinguishes rename-published replacements
/// whose size and mtime quantum both match the old file.
struct ArtifactStat {
  std::uint64_t inode = 0;
  std::int64_t mtime_ns = 0;
  std::uintmax_t bytes = 0;

  friend bool operator==(const ArtifactStat&, const ArtifactStat&) = default;
};

/// How the registry responds to failing loads (see file header). The
/// defaults retry a torn-publish-sized window (~10 + 40 ms) and
/// quarantine after three consecutive failed operations for five
/// seconds.
struct RetryPolicy {
  /// Attempts per load operation (first try included). Only transient
  /// errors are retried; persistent ones fail the operation on attempt 1.
  int max_attempts = 3;
  int initial_backoff_ms = 10;
  /// Each retry multiplies the backoff by this, capped at max_backoff_ms.
  int backoff_multiplier = 4;
  int max_backoff_ms = 250;
  /// Every sleep is scaled by a uniform draw from [1 - jitter, 1], so a
  /// fleet of entries failing together does not re-probe in lockstep.
  double jitter = 0.5;
  /// Consecutive failed operations before the entry is quarantined;
  /// <= 0 disables quarantine (every get()/refresh() probes).
  int quarantine_after = 3;
  /// How long a quarantined entry refuses probes before re-trying.
  int quarantine_ms = 5000;
};

enum class HealthState : std::uint8_t {
  kHealthy = 0,   ///< last load operation succeeded (or never needed)
  kDegraded,      ///< failing, below the quarantine threshold
  kQuarantined,   ///< failing repeatedly; probes gated by quarantine_ms
};

inline const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kQuarantined: return "quarantined";
  }
  return "unknown";
}

/// Point-in-time health snapshot of one registry entry.
struct ModelHealth {
  std::string key;
  HealthState state = HealthState::kHealthy;
  /// True when a snapshot is being served (possibly an old one: a
  /// degraded entry with loaded=true is serving last-good). False for an
  /// evicted entry — loads_ok > 0 with loaded == false means evicted.
  bool loaded = false;
  std::uint64_t loads_ok = 0;
  std::uint64_t loads_failed = 0;  ///< failed operations (post-retry)
  std::uint64_t retries = 0;       ///< extra attempts inside operations
  /// Times this entry's detector was unmapped by the residency sweep.
  std::uint64_t evictions = 0;
  int consecutive_failures = 0;
  /// Code/what() of the most recent failure; meaningful when
  /// loads_failed > 0 (last_error empty otherwise).
  LoadErrorCode last_error_code = LoadErrorCode::kIo;
  std::string last_error;
  /// The served snapshot's batch-kernel backend ("jit" / "arena" /
  /// "stream-fallback"; see InferenceEngine::kernel_backend). Empty when
  /// nothing is loaded.
  std::string kernel_backend;
};

class DetectorRegistry {
 public:
  /// Loader signature: reconstruct a detector from an artifact path.
  /// Replaceable for tests (e.g. to make one key's load slow and prove
  /// it does not block the others).
  using Loader = std::function<std::shared_ptr<const core::TrustedHmd>(
      const std::string& path, int n_threads)>;

  /// `n_threads` sizes every loaded detector's serving thread pool
  /// (<= 0 = all cores) and `mode` how artifact bytes are materialised
  /// (mmap by default for v2 artifacts), exactly like core::load_model.
  /// `fleet` sizes the key shards, the filter front door, and the
  /// residency budget (defaults: 16 shards, filter on, unbounded).
  explicit DetectorRegistry(int n_threads = 0,
                            core::LoadMode mode = core::LoadMode::kAuto,
                            fleet::FleetOptions fleet = {});

  /// Register (or re-point) `key` at an artifact path. No I/O happens
  /// until the first get(); re-pointing an existing key installs a fresh
  /// unloaded entry so the next get() loads from the new path.
  void add(const std::string& key, const std::string& path);

  /// Register every `*.hmdf` in `dir`, keyed by file stem (e.g.
  /// "dvfs_RF_M100"). Returns the number of keys added or re-pointed;
  /// throws IoError when `dir` is not a directory.
  std::size_t add_directory(const std::string& dir);

  /// Unregister `key` (its artifact stays on disk; in-flight snapshots
  /// stay valid). Returns false when the key was not registered. Every
  /// kFilterRebuildFloor-th erase (at least) checks churn and may
  /// compact the filter — see rebuild_filter().
  bool remove(const std::string& key);

  /// Compact the cuckoo filter front door: re-insert exactly the live
  /// key set into one right-sized segment, shedding the stale slack and
  /// stacked segments that key churn accumulates. Called automatically
  /// by remove() once erases since the last rebuild reach the live key
  /// count (with a floor of kFilterRebuildFloor, so small registries
  /// never thrash); callable any time. No-op when the filter is off.
  void rebuild_filter();

  /// Erases before remove() considers an automatic filter rebuild.
  static constexpr std::uint64_t kFilterRebuildFloor = 256;

  /// Snapshot lookup. Loads the artifact on first use — and transparently
  /// *re*loads an evicted entry — with the retry / fallback discipline in
  /// the file header; throws IoError on an unknown key and LoadError on a
  /// failed load — a quarantined key with no snapshot fails fast on its
  /// cached error without touching the filesystem. The snapshot stays
  /// valid (and bit-stable) however many refresh() swaps or evictions
  /// happen after it.
  std::shared_ptr<const core::TrustedHmd> get(const std::string& key);

  /// get() that returns nullptr for unknown keys instead of throwing
  /// (load failures still throw). An unknown key is typically rejected by
  /// the filter front door without touching any shard lock.
  std::shared_ptr<const core::TrustedHmd> try_get(const std::string& key);

  /// Re-stat every *resident* artifact and hot-swap the changed ones
  /// (see "refresh() contract at fleet scale" in the file header).
  /// Returns the keys that were reloaded, sorted. Never-loaded keys stay
  /// lazy; evicted keys verify lazily on their next get(); quarantined
  /// keys are skipped until their TTL expires; vanished or unreadable
  /// artifacts keep serving their last good snapshot. Loads run outside
  /// the map locks, so a refresh never stalls get() of other keys.
  std::vector<std::string> refresh();

  /// Health snapshots for every key (sorted by key), or for one key
  /// (throws IoError when unknown). Lock-cheap: per-entry leaf locks
  /// only, no I/O.
  std::vector<ModelHealth> health() const;
  ModelHealth health(const std::string& key) const;

  /// Registered keys, sorted.
  std::vector<std::string> keys() const;

  /// The artifact path registered for `key` (the one refresh() re-stats);
  /// throws IoError on an unknown key.
  std::string path(const std::string& key) const;

  std::size_t size() const;

  /// Exact membership. Negative answers normally come from the filter
  /// front door — O(1), no shard lock; positives (and filter false
  /// positives) are confirmed against the exact map.
  bool contains(std::string_view key) const;

  /// Aggregate fleet accounting: key/shard counts, filter occupancy and
  /// rejection tally, residency budget/evictions.
  fleet::FleetStats fleet_stats() const;

  /// Adjust the resident-artifact byte budget at runtime (0 = unbounded).
  /// Shrinking sweeps immediately.
  void set_residency_budget_bytes(std::size_t bytes);

  /// Replace the artifact loader (test seam; defaults to
  /// core::load_model with this registry's LoadMode). Call before
  /// serving starts — it is not synchronised against in-flight loads.
  void set_loader_for_testing(Loader loader) { loader_ = std::move(loader); }

  /// Replace the failure-handling policy. Like the loader seam: call
  /// before serving starts, not synchronised against in-flight loads.
  void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }
  const RetryPolicy& retry_policy() const { return policy_; }

  /// How this registry materialises artifact bytes.
  core::LoadMode load_mode() const { return load_mode_; }

 private:
  struct Entry : fleet::ResidencyManager::Resident {
    Entry(std::string entry_key, std::string artifact_path)
        : key(std::move(entry_key)), path(std::move(artifact_path)) {}

    const std::string key;   ///< for the residency sweep / refresh()
    const std::string path;  ///< immutable; re-pointing makes a new Entry

    /// Serialises loads of this entry only; held across artifact I/O
    /// (and across the in-operation retry sleeps).
    std::mutex load_mutex;
    /// Leaf lock for the published fields below (pointer-copy critical
    /// sections only — never held across I/O, never while taking
    /// another lock).
    mutable std::mutex state_mutex;
    ArtifactStat stat;
    std::shared_ptr<const core::TrustedHmd> detector;  ///< null until loaded
    /// Footprint admitted to the residency tracker (meaningful while
    /// detector != nullptr; guarded by state_mutex).
    std::size_t resident_bytes = 0;

    /// LRU use stamp (registry clock value of the last get() touch).
    std::atomic<std::uint64_t> last_used{0};

    // Health state machine (all guarded by state_mutex).
    HealthState health = HealthState::kHealthy;
    std::uint64_t loads_ok = 0;
    std::uint64_t loads_failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t evictions = 0;
    int consecutive_failures = 0;
    LoadErrorCode last_error_code = LoadErrorCode::kIo;
    std::string last_error;
    /// Probes refused until this instant while health == kQuarantined.
    std::chrono::steady_clock::time_point quarantine_until{};

    // fleet::ResidencyManager::Resident — victim-selection stamp and the
    // lease-checked unmap (see detector_registry.cpp).
    std::uint64_t residency_last_used() const override {
      return last_used.load(std::memory_order_relaxed);
    }
    std::size_t residency_evict() override;
  };

  /// The published snapshot (null when not yet loaded / evicted).
  static std::shared_ptr<const core::TrustedHmd> snapshot(const Entry& entry);

  /// Load entry's artifact with retry/backoff/fallback, publish it, and
  /// admit it to the residency tracker — or record the failure (health
  /// bookkeeping, quarantine arming) and rethrow the final LoadError.
  /// Returns the freshly loaded detector: the caller's copy is what
  /// lease-pins the entry through the admit-triggered sweep, so a brand
  /// new load can never be evicted before its caller sees it. Caller
  /// holds entry->load_mutex (and no other lock). Records the stat taken
  /// *before* the read, so a file swapped mid-load is seen as changed by
  /// the next refresh() rather than missed; a failed operation leaves
  /// the stat untouched, so the next refresh() always retries a repaired
  /// file.
  std::shared_ptr<const core::TrustedHmd> load_entry(
      const std::shared_ptr<Entry>& entry) const;

  /// One physical load attempt: the registry.load failpoint, the loader,
  /// and the one-shot stream fallback on kMmapFailed.
  std::shared_ptr<const core::TrustedHmd> attempt_load(
      const std::string& path) const;

  /// The entry registered under `key`, or null (brief shard-lock lookup).
  std::shared_ptr<Entry> find_entry(std::string_view key) const;

  /// Stamp `entry` as just-used on the registry's LRU clock.
  void touch(Entry& entry) const;

  /// Fill a ModelHealth from one entry (takes the entry's leaf lock).
  static ModelHealth health_of(const std::string& key, const Entry& entry);

  int n_threads_ = 0;
  core::LoadMode load_mode_ = core::LoadMode::kAuto;
  Loader loader_;
  RetryPolicy policy_;
  fleet::ShardedKeyMap<std::shared_ptr<Entry>> entries_;
  /// Null when FleetOptions::filter is off.
  std::unique_ptr<fleet::DynamicCuckooFilter> filter_;
  /// Orders filter+map mutation against filter rebuilds: add()/remove()
  /// shared, rebuild_filter() exclusive (see the fleet-scale section of
  /// the file header). Never held across I/O.
  mutable std::shared_mutex filter_maintenance_;
  /// Successful erases since the last filter rebuild.
  std::atomic<std::uint64_t> filter_erases_{0};
  /// Striped: the front door rejects at memory speed across threads, so
  /// the tally must not serialise them on one cache line.
  mutable fleet::StripedCounter filter_rejects_;
  mutable fleet::ResidencyManager residency_;
  /// Monotonic LRU clock; each get() touch stamps its entry with the
  /// next tick.
  mutable std::atomic<std::uint64_t> use_clock_{0};
};

}  // namespace hmd::api
