#pragma once
// Multi-model serving registry — one process, every model family.
//
// A DetectorRegistry maps string keys to `.hmdf` model artifacts on disk
// (core/model_artifact.h) and hands out shared_ptr snapshots of the
// serving-only detectors reconstructed from them:
//
//   - registration is cheap: add() / add_directory() record paths only;
//     an artifact is loaded lazily on the first get() of its key.
//   - get() is a snapshot lookup: the returned shared_ptr pins that
//     version of the detector for as long as the caller holds it, so
//     in-flight batches are never invalidated by a swap.
//   - refresh() re-stats every loaded artifact and reloads the ones whose
//     identity (inode, mtime, size) changed — the field-update story of
//     Kuruvila et al. (arXiv:2005.03644): a retrained artifact dropped
//     over the old file (save_model's temp-file + rename keeps that
//     atomic, and gives the replacement a fresh inode) is picked up
//     without a restart and without dropping traffic on the old version.
//     An artifact that went missing or unreadable keeps its last good
//     snapshot — a registry never serves worse than it already does.
//
// All members are safe to call concurrently; loads happen under the
// registry lock (serving threads holding snapshots are unaffected).

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/hmd.h"

namespace hmd::api {

/// On-disk identity of an artifact, used to detect swaps. All-zero means
/// "unreachable". The inode distinguishes rename-published replacements
/// whose size and mtime quantum both match the old file.
struct ArtifactStat {
  std::uint64_t inode = 0;
  std::int64_t mtime_ns = 0;
  std::uintmax_t bytes = 0;

  friend bool operator==(const ArtifactStat&, const ArtifactStat&) = default;
};

class DetectorRegistry {
 public:
  /// `n_threads` sizes every loaded detector's serving thread pool
  /// (<= 0 = all cores), exactly like core::load_model.
  explicit DetectorRegistry(int n_threads = 0) : n_threads_(n_threads) {}

  /// Register (or re-point) `key` at an artifact path. No I/O happens
  /// until the first get(); re-pointing an existing key drops its loaded
  /// snapshot so the next get() loads from the new path.
  void add(const std::string& key, const std::string& path);

  /// Register every `*.hmdf` in `dir`, keyed by file stem (e.g.
  /// "dvfs_RF_M100"). Returns the number of keys added or re-pointed;
  /// throws IoError when `dir` is not a directory.
  std::size_t add_directory(const std::string& dir);

  /// Snapshot lookup. Loads the artifact on first use; throws IoError on
  /// an unknown key, and propagates the loader's error (IoError, or
  /// InvalidArgument for a well-formed file with a rejected config) on a
  /// failed first load. The snapshot stays valid (and bit-stable) however
  /// many refresh() swaps happen after it.
  std::shared_ptr<const core::TrustedHmd> get(const std::string& key);

  /// get() that returns nullptr for unknown keys instead of throwing.
  std::shared_ptr<const core::TrustedHmd> try_get(const std::string& key);

  /// Re-stat every loaded artifact and hot-swap the changed ones (see
  /// file header). Returns the keys that were reloaded. Never-loaded
  /// keys stay lazy; vanished or unreadable artifacts keep serving their
  /// last good snapshot.
  std::vector<std::string> refresh();

  /// Registered keys, sorted.
  std::vector<std::string> keys() const;

  /// The artifact path registered for `key` (the one refresh() re-stats);
  /// throws IoError on an unknown key.
  std::string path(const std::string& key) const;

  std::size_t size() const;
  bool contains(const std::string& key) const;

 private:
  struct Entry {
    std::string path;
    ArtifactStat stat;
    std::shared_ptr<const core::TrustedHmd> detector;  ///< null until loaded
  };

  /// Load entry's artifact (caller holds mutex_). Records the stat taken
  /// *before* the read, so a file swapped mid-load is seen as changed by
  /// the next refresh() rather than missed.
  void load_locked(Entry& entry) const;

  int n_threads_ = 0;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace hmd::api
