#pragma once
// Multi-model serving registry — one process, every model family.
//
// A DetectorRegistry maps string keys to `.hmdf` model artifacts on disk
// (core/model_artifact.h) and hands out shared_ptr snapshots of the
// serving-only detectors reconstructed from them:
//
//   - registration is cheap: add() / add_directory() record paths only;
//     an artifact is loaded lazily on the first get() of its key.
//   - get() is a snapshot lookup: the returned shared_ptr pins that
//     version of the detector for as long as the caller holds it, so
//     in-flight batches are never invalidated by a swap.
//   - refresh() re-stats every loaded artifact and reloads the ones whose
//     identity (inode, mtime, size) changed — the field-update story of
//     Kuruvila et al. (arXiv:2005.03644): a retrained artifact dropped
//     over the old file (save_model's temp-file + rename keeps that
//     atomic, gives the replacement a fresh inode, and leaves mappings
//     of the old inode intact for in-flight snapshots) is picked up
//     without a restart and without dropping traffic on the old version.
//     An artifact that went missing or unreadable keeps its last good
//     snapshot — a registry never serves worse than it already does.
//
// ## Locking: loads happen OUTSIDE the registry mutex
//
// The registry mutex only guards the key → entry map; artifact I/O never
// runs under it. Each entry carries its own two-mutex loading state:
//
//   - `state_mutex` (leaf lock, held for pointer reads/writes only)
//     guards the published snapshot + stat;
//   - `load_mutex` serialises loads *of that entry alone* and is held
//     across the artifact read.
//
// get() is double-checked: a snapshot read under state_mutex first
// (loaded entries never touch load_mutex), then load_mutex + re-check,
// so a load happens at most once per concurrent wave of callers — and a
// slow load of key A never blocks get("B"): B's callers take B's locks
// only. refresh() follows the same discipline per entry, so it cannot
// stall lookups of other keys either. add() re-pointing a live key
// installs a *fresh* entry, so an in-flight load of the old path can
// only ever publish into the orphaned entry, never into the new one.
//
// All members are safe to call concurrently.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/hmd.h"
#include "core/model_artifact.h"

namespace hmd::api {

/// On-disk identity of an artifact, used to detect swaps. All-zero means
/// "unreachable". The inode distinguishes rename-published replacements
/// whose size and mtime quantum both match the old file.
struct ArtifactStat {
  std::uint64_t inode = 0;
  std::int64_t mtime_ns = 0;
  std::uintmax_t bytes = 0;

  friend bool operator==(const ArtifactStat&, const ArtifactStat&) = default;
};

class DetectorRegistry {
 public:
  /// Loader signature: reconstruct a detector from an artifact path.
  /// Replaceable for tests (e.g. to make one key's load slow and prove
  /// it does not block the others).
  using Loader = std::function<std::shared_ptr<const core::TrustedHmd>(
      const std::string& path, int n_threads)>;

  /// `n_threads` sizes every loaded detector's serving thread pool
  /// (<= 0 = all cores) and `mode` how artifact bytes are materialised
  /// (mmap by default for v2 artifacts), exactly like core::load_model.
  explicit DetectorRegistry(int n_threads = 0,
                            core::LoadMode mode = core::LoadMode::kAuto);

  /// Register (or re-point) `key` at an artifact path. No I/O happens
  /// until the first get(); re-pointing an existing key installs a fresh
  /// unloaded entry so the next get() loads from the new path.
  void add(const std::string& key, const std::string& path);

  /// Register every `*.hmdf` in `dir`, keyed by file stem (e.g.
  /// "dvfs_RF_M100"). Returns the number of keys added or re-pointed;
  /// throws IoError when `dir` is not a directory.
  std::size_t add_directory(const std::string& dir);

  /// Snapshot lookup. Loads the artifact on first use; throws IoError on
  /// an unknown key, and propagates the loader's error (IoError, or
  /// InvalidArgument for a well-formed file with a rejected config) on a
  /// failed first load. The snapshot stays valid (and bit-stable) however
  /// many refresh() swaps happen after it.
  std::shared_ptr<const core::TrustedHmd> get(const std::string& key);

  /// get() that returns nullptr for unknown keys instead of throwing.
  std::shared_ptr<const core::TrustedHmd> try_get(const std::string& key);

  /// Re-stat every loaded artifact and hot-swap the changed ones (see
  /// file header). Returns the keys that were reloaded. Never-loaded
  /// keys stay lazy; vanished or unreadable artifacts keep serving their
  /// last good snapshot. Loads run outside the registry mutex, so a
  /// refresh never stalls get() of other keys.
  std::vector<std::string> refresh();

  /// Registered keys, sorted.
  std::vector<std::string> keys() const;

  /// The artifact path registered for `key` (the one refresh() re-stats);
  /// throws IoError on an unknown key.
  std::string path(const std::string& key) const;

  std::size_t size() const;
  bool contains(const std::string& key) const;

  /// Replace the artifact loader (test seam; defaults to
  /// core::load_model with this registry's LoadMode). Call before
  /// serving starts — it is not synchronised against in-flight loads.
  void set_loader_for_testing(Loader loader) { loader_ = std::move(loader); }

  /// How this registry materialises artifact bytes.
  core::LoadMode load_mode() const { return load_mode_; }

 private:
  struct Entry {
    explicit Entry(std::string artifact_path)
        : path(std::move(artifact_path)) {}

    const std::string path;  ///< immutable; re-pointing makes a new Entry

    /// Serialises loads of this entry only; held across artifact I/O.
    std::mutex load_mutex;
    /// Leaf lock for the published fields below (pointer-copy critical
    /// sections only — never held across I/O, never while taking
    /// another lock).
    mutable std::mutex state_mutex;
    ArtifactStat stat;
    std::shared_ptr<const core::TrustedHmd> detector;  ///< null until loaded
  };

  /// The published snapshot (null when not yet loaded).
  static std::shared_ptr<const core::TrustedHmd> snapshot(const Entry& entry);

  /// Load entry's artifact and publish it. Caller holds entry.load_mutex
  /// (and no other lock). Records the stat taken *before* the read, so a
  /// file swapped mid-load is seen as changed by the next refresh()
  /// rather than missed.
  void load_entry(Entry& entry) const;

  /// The entry registered under `key`, or null (brief map-lock lookup).
  std::shared_ptr<Entry> find_entry(const std::string& key) const;

  int n_threads_ = 0;
  core::LoadMode load_mode_ = core::LoadMode::kAuto;
  Loader loader_;
  mutable std::mutex mutex_;  ///< guards entries_ (the map) only
  std::map<std::string, std::shared_ptr<Entry>> entries_;
};

}  // namespace hmd::api
