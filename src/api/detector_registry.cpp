#include "api/detector_registry.h"

#include <sys/stat.h>

#include "common/error.h"

namespace hmd::api {

namespace {

namespace fs = std::filesystem;

/// Identity stat of `path` (zeroed when the file is unreachable). The
/// inode is the load-bearing field: save_model publishes via temp file +
/// rename, so every legitimate swap lands on a *new* inode even when the
/// replacement has the same byte count and an mtime inside the
/// filesystem's timestamp granularity (bagged linear artifacts of a fixed
/// (M, d) are always the same size). mtime + size still catch in-place
/// rewrites by foreign writers.
ArtifactStat stat_artifact(const std::string& path) {
  struct ::stat st = {};
  if (::stat(path.c_str(), &st) != 0 || st.st_size <= 0) return {};
#if defined(__APPLE__)
  const auto& mtime = st.st_mtimespec;  // BSD spelling of st_mtim
#else
  const auto& mtime = st.st_mtim;
#endif
  ArtifactStat out;
  out.inode = static_cast<std::uint64_t>(st.st_ino);
  out.mtime_ns = static_cast<std::int64_t>(mtime.tv_sec) * 1000000000 +
                 static_cast<std::int64_t>(mtime.tv_nsec);
  out.bytes = static_cast<std::uintmax_t>(st.st_size);
  return out;
}

}  // namespace

DetectorRegistry::DetectorRegistry(int n_threads, core::LoadMode mode)
    : n_threads_(n_threads),
      load_mode_(mode),
      loader_([mode](const std::string& path, int threads) {
        return std::make_shared<const core::TrustedHmd>(
            core::load_model(path, threads, mode));
      }) {}

void DetectorRegistry::add(const std::string& key, const std::string& path) {
  HMD_REQUIRE(!key.empty(), "DetectorRegistry::add: empty key");
  auto entry = std::make_shared<Entry>(path);
  const std::lock_guard<std::mutex> lock(mutex_);
  // Always a fresh Entry — even when the key exists. An in-flight load
  // against the old entry then publishes into an orphan the map no
  // longer reaches, so a re-point can never be clobbered by stale I/O.
  entries_[key] = std::move(entry);
}

std::size_t DetectorRegistry::add_directory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    throw IoError("DetectorRegistry: not a directory: " + dir);
  }
  // Non-throwing overloads throughout: an entry vanishing or failing to
  // stat mid-scan is skipped, never an escape of std::filesystem_error
  // past the documented IoError surface.
  fs::directory_iterator it(dir, ec);
  if (ec) throw IoError("DetectorRegistry: cannot scan " + dir);
  std::size_t added = 0;
  for (const auto& item : it) {
    if (!item.is_regular_file(ec) || ec) continue;
    const fs::path& path = item.path();
    if (path.extension() != ".hmdf") continue;
    add(path.stem().string(), path.string());
    ++added;
  }
  return added;
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::snapshot(
    const Entry& entry) {
  const std::lock_guard<std::mutex> lock(entry.state_mutex);
  return entry.detector;
}

std::shared_ptr<DetectorRegistry::Entry> DetectorRegistry::find_entry(
    const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

void DetectorRegistry::load_entry(Entry& entry) const {
  const ArtifactStat stat = stat_artifact(entry.path);
  auto detector = loader_(entry.path, n_threads_);
  const std::lock_guard<std::mutex> lock(entry.state_mutex);
  entry.detector = std::move(detector);
  entry.stat = stat;
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::get(
    const std::string& key) {
  auto detector = try_get(key);
  if (detector == nullptr) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return detector;
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::try_get(
    const std::string& key) {
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (entry == nullptr) return nullptr;
  // Fast path: already loaded — one leaf-lock pointer copy, no I/O
  // locks, no serialisation against loads of any key (even this one:
  // refresh() publishes the swapped detector with the same leaf lock).
  if (auto loaded = snapshot(*entry)) return loaded;
  // Slow path: first load. load_mutex makes it at-most-once per
  // concurrent wave of callers of *this* key; the registry map mutex is
  // not held, so callers of other keys proceed untouched.
  const std::lock_guard<std::mutex> load_lock(entry->load_mutex);
  if (auto loaded = snapshot(*entry)) return loaded;  // double-check
  load_entry(*entry);
  return snapshot(*entry);
}

std::vector<std::string> DetectorRegistry::refresh() {
  // Snapshot the entry set first; the map lock drops before any I/O.
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> loaded;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    loaded.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) loaded.emplace_back(key, entry);
  }
  std::vector<std::string> reloaded;
  for (auto& [key, entry] : loaded) {
    // The lazy check runs *before* taking the load mutex: a never-loaded
    // entry whose first get() is parked in artifact I/O holds its
    // load_mutex, and refresh() queueing behind it would stall the
    // hot-swap sweep of every other key.
    {
      const std::lock_guard<std::mutex> state_lock(entry->state_mutex);
      if (entry->detector == nullptr) continue;  // still lazy: nothing to swap
    }
    const std::lock_guard<std::mutex> load_lock(entry->load_mutex);
    ArtifactStat last_stat;
    {
      const std::lock_guard<std::mutex> state_lock(entry->state_mutex);
      last_stat = entry->stat;
    }
    const ArtifactStat stat = stat_artifact(entry->path);
    if (stat.bytes == 0) continue;  // vanished: keep the last good snapshot
    if (stat == last_stat) continue;
    try {
      load_entry(*entry);
      reloaded.push_back(key);
    } catch (const HmdError&) {
      // Unreadable or invalid replacement (a foreign writer without the
      // atomic rename discipline, or a well-formed file carrying a config
      // the detector rejects): keep serving the previous snapshot and let
      // a later refresh() retry — the stale stat fields guarantee it will.
    }
  }
  return reloaded;
}

std::vector<std::string> DetectorRegistry::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

std::string DetectorRegistry::path(const std::string& key) const {
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (entry == nullptr) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return entry->path;
}

std::size_t DetectorRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool DetectorRegistry::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

}  // namespace hmd::api
