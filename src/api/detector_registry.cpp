#include "api/detector_registry.h"

#include <sys/stat.h>

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "common/failpoint.h"

namespace hmd::api {

namespace {

namespace fs = std::filesystem;

/// Identity stat of `path` (zeroed when the file is unreachable). The
/// inode is the load-bearing field: save_model publishes via temp file +
/// rename, so every legitimate swap lands on a *new* inode even when the
/// replacement has the same byte count and an mtime inside the
/// filesystem's timestamp granularity (bagged linear artifacts of a fixed
/// (M, d) are always the same size). mtime + size still catch in-place
/// rewrites by foreign writers.
ArtifactStat stat_artifact(const std::string& path) {
  struct ::stat st = {};
  if (::stat(path.c_str(), &st) != 0 || st.st_size <= 0) return {};
#if defined(__APPLE__)
  const auto& mtime = st.st_mtimespec;  // BSD spelling of st_mtim
#else
  const auto& mtime = st.st_mtim;
#endif
  ArtifactStat out;
  out.inode = static_cast<std::uint64_t>(st.st_ino);
  out.mtime_ns = static_cast<std::int64_t>(mtime.tv_sec) * 1000000000 +
                 static_cast<std::int64_t>(mtime.tv_nsec);
  out.bytes = static_cast<std::uintmax_t>(st.st_size);
  return out;
}

/// Normalise any load failure to the typed taxonomy. Non-LoadError
/// exceptions (InvalidArgument for a rejected config, a foreign
/// std::exception from a custom loader) are content problems a re-read
/// cannot fix, so they classify as persistent kBadStructure.
LoadError as_load_error(const std::string& path, const std::exception& e) {
  if (const auto* typed = dynamic_cast<const LoadError*>(&e)) return *typed;
  return LoadError(LoadErrorCode::kBadStructure, path, e.what());
}

/// Backoff before retry number `completed_attempts + 1`: exponential,
/// capped, jittered by a uniform draw from [1 - jitter, 1] so entries
/// failing together do not re-probe in lockstep.
std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        int completed_attempts) {
  double ms = static_cast<double>(std::max(0, policy.initial_backoff_ms));
  for (int i = 1; i < completed_attempts; ++i) {
    ms *= std::max(1, policy.backoff_multiplier);
    if (ms >= policy.max_backoff_ms) break;
  }
  ms = std::min(ms, static_cast<double>(std::max(0, policy.max_backoff_ms)));
  if (policy.jitter > 0.0) {
    // xorshift64*: no shared state, no <random> engine construction on a
    // path that exists to sleep anyway.
    thread_local std::uint64_t state =
        0x9E3779B97F4A7C15ull ^
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()) ^
        (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1);
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const double u =
        static_cast<double>((state * 0x2545F4914F6CDD1Dull) >> 11) /
        static_cast<double>(std::uint64_t{1} << 53);
    ms *= 1.0 - std::min(1.0, policy.jitter) * u;
  }
  return std::chrono::milliseconds(
      std::max<std::int64_t>(0, static_cast<std::int64_t>(ms)));
}

/// The residency ledger's idea of a detector's footprint: the flat
/// engine's arena (which for a v2 mmap load *is* the mapped artifact
/// payload). Floor of 1 so even an exotic zero-reporting detector stays
/// visible to the eviction accounting.
std::size_t resident_footprint(const core::TrustedHmd& detector) {
  const std::size_t bytes =
      detector.uses_flat_engine() ? detector.engine().memory_bytes() : 0;
  return std::max<std::size_t>(1, bytes);
}

}  // namespace

std::size_t DetectorRegistry::Entry::residency_evict() {
  const std::lock_guard<std::mutex> lock(state_mutex);
  if (detector == nullptr) return 0;  // already evicted / never loaded
  // Lease check: a use_count above 1 means someone outside this entry
  // holds the snapshot (an in-flight batch, a caller mid-score). New
  // external references are only ever minted by snapshot() under this
  // same state_mutex, so the check cannot race a fresh lease.
  if (detector.use_count() > 1) return 0;
  const std::size_t freed = resident_bytes;
  detector.reset();  // unmap (last reference: the artifact drops here)
  resident_bytes = 0;
  ++evictions;
  // Health history (including quarantine state and the cached error)
  // deliberately survives eviction: a quarantined evicted key keeps
  // failing fast on its recorded error, not on a fresh I/O probe.
  return freed;
}

DetectorRegistry::DetectorRegistry(int n_threads, core::LoadMode mode,
                                   fleet::FleetOptions fleet)
    : n_threads_(n_threads),
      load_mode_(mode),
      loader_([mode](const std::string& path, int threads) {
        return std::make_shared<const core::TrustedHmd>(
            core::load_model(path, threads, mode));
      }),
      entries_(fleet.shards) {
  if (fleet.filter) {
    filter_ =
        std::make_unique<fleet::DynamicCuckooFilter>(fleet.filter_options);
  }
  residency_.set_budget_bytes(fleet.residency_budget_bytes);
}

void DetectorRegistry::add(const std::string& key, const std::string& path) {
  HMD_REQUIRE(!key.empty(), "DetectorRegistry::add: empty key");
  auto entry = std::make_shared<Entry>(key, path);
  // Shared maintenance lock: concurrent add()/remove() proceed freely,
  // but a filter rebuild (exclusive) sees filter insert + map insert as
  // one atomic step — otherwise a key registered mid-rebuild could land
  // its fingerprint in the segments the rebuild is about to retire and
  // be lost, a false negative on a registered key.
  const std::shared_lock<std::shared_mutex> maintenance(filter_maintenance_);
  // Filter before map, and only for keys not yet present: inserting
  // first keeps "registered implies may_contain" airtight (a concurrent
  // contains() between the two inserts sees a filter maybe + map miss =
  // correct "not yet registered", never a false negative). Two racing
  // adds of the same new key can both pass the presence check and store
  // a duplicate fingerprint — benign and bounded (see filter contract).
  if (filter_ != nullptr && !entries_.contains(key)) filter_->insert(key);
  // Always a fresh Entry — even when the key exists. An in-flight load
  // against the old entry then publishes into an orphan the map no
  // longer reaches, so a re-point can never be clobbered by stale I/O.
  entries_.insert_or_assign(key, std::move(entry));
}

std::size_t DetectorRegistry::add_directory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    throw IoError("DetectorRegistry: not a directory: " + dir);
  }
  // Non-throwing overloads throughout: an entry vanishing or failing to
  // stat mid-scan is skipped, never an escape of std::filesystem_error
  // past the documented IoError surface.
  fs::directory_iterator it(dir, ec);
  if (ec) throw IoError("DetectorRegistry: cannot scan " + dir);
  std::size_t added = 0;
  for (const auto& item : it) {
    if (!item.is_regular_file(ec) || ec) continue;
    const fs::path& path = item.path();
    if (path.extension() != ".hmdf") continue;
    add(path.stem().string(), path.string());
    ++added;
  }
  return added;
}

bool DetectorRegistry::remove(const std::string& key) {
  bool rebuild = false;
  {
    const std::shared_lock<std::shared_mutex> maintenance(
        filter_maintenance_);
    // Map first, then filter: between the two a lookup sees filter maybe
    // + map miss = correct "not registered". The filter erase only runs
    // for a key that was actually registered (so it can only remove a
    // fingerprint add() inserted — erasing a never-inserted key could
    // false-negative a colliding registered key).
    if (!entries_.erase(key)) return false;
    if (filter_ != nullptr) {
      filter_->erase(key);
      // Churn check: once erases since the last rebuild reach the live
      // key count (floored so small registries never thrash), the filter
      // is carrying at least as much retired slack as live state —
      // compact it. Checked outside the shared lock: rebuild_filter()
      // needs the exclusive one.
      const std::uint64_t erased =
          filter_erases_.fetch_add(1, std::memory_order_relaxed) + 1;
      rebuild = erased >= kFilterRebuildFloor && erased >= entries_.size();
    }
  }
  if (rebuild) rebuild_filter();
  return true;
}

void DetectorRegistry::rebuild_filter() {
  if (filter_ == nullptr) return;
  const std::lock_guard<std::shared_mutex> maintenance(filter_maintenance_);
  const std::vector<std::string> live = entries_.sorted_keys();
  filter_->rebuild({live.begin(), live.end()});
  filter_erases_.store(0, std::memory_order_relaxed);
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::snapshot(
    const Entry& entry) {
  const std::lock_guard<std::mutex> lock(entry.state_mutex);
  return entry.detector;
}

std::shared_ptr<DetectorRegistry::Entry> DetectorRegistry::find_entry(
    std::string_view key) const {
  return entries_.find(key);
}

void DetectorRegistry::touch(Entry& entry) const {
  entry.last_used.store(use_clock_.fetch_add(1, std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::attempt_load(
    const std::string& path) const {
  // Armed with error:... this makes the whole load attempt fail before
  // any I/O — the seam the retry/quarantine tests (and the chaos script,
  // via HMD_FAILPOINTS) drive.
  HMD_FAILPOINT("registry.load", path.c_str());
  try {
    return loader_(path, n_threads_);
  } catch (const LoadError& error) {
    if (error.code() != LoadErrorCode::kMmapFailed) throw;
    // mmap specifically failed (a LoadMode::kMmap registry on a
    // filesystem without working mmap, or an injected fault): demote
    // this load to the full-copy stream path instead of failing the
    // model — graceful degradation, not an outage.
    return std::make_shared<const core::TrustedHmd>(
        core::load_model(path, n_threads_, core::LoadMode::kStream));
  }
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::load_entry(
    const std::shared_ptr<Entry>& entry) const {
  const int max_attempts = std::max(1, policy_.max_attempts);
  std::uint64_t extra_attempts = 0;
  for (int attempt = 1;; ++attempt) {
    try {
      const ArtifactStat stat = stat_artifact(entry->path);
      auto detector = attempt_load(entry->path);
      const std::size_t bytes = resident_footprint(*detector);
      {
        const std::lock_guard<std::mutex> lock(entry->state_mutex);
        entry->detector = detector;  // copy — the local one is the lease
        entry->stat = stat;
        entry->resident_bytes = bytes;
        entry->health = HealthState::kHealthy;
        ++entry->loads_ok;
        entry->retries += extra_attempts;
        entry->consecutive_failures = 0;
      }
      touch(*entry);
      // Admit AFTER publishing, while the local `detector` copy holds
      // use_count >= 2: the sweep this admit may trigger sees the fresh
      // entry lease-pinned, so a brand-new load can never be evicted
      // before its caller receives it. Lock order: manager mutex ->
      // victim state_mutex; we hold neither here (load_mutex only).
      residency_.admit(entry, bytes);
      return detector;
    } catch (const std::exception& e) {
      const LoadError error = as_load_error(entry->path, e);
      if (error.transient() && attempt < max_attempts) {
        // Transient (torn publish, flaky I/O): back off and retry inside
        // this operation. The sleep holds only this entry's load_mutex —
        // other keys' gets and refreshes proceed untouched.
        ++extra_attempts;
        std::this_thread::sleep_for(backoff_delay(policy_, attempt));
        continue;
      }
      // Operation failed: record health (stat intentionally untouched,
      // so a later refresh() always sees a repaired file as changed).
      const std::lock_guard<std::mutex> lock(entry->state_mutex);
      ++entry->loads_failed;
      entry->retries += extra_attempts;
      ++entry->consecutive_failures;
      entry->last_error_code = error.code();
      entry->last_error = error.what();
      if (policy_.quarantine_after > 0 &&
          entry->consecutive_failures >= policy_.quarantine_after) {
        entry->health = HealthState::kQuarantined;
        entry->quarantine_until =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(std::max(0, policy_.quarantine_ms));
      } else {
        entry->health = HealthState::kDegraded;
      }
      throw error;
    }
  }
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::get(
    const std::string& key) {
  auto detector = try_get(key);
  if (detector == nullptr) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return detector;
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::try_get(
    const std::string& key) {
  // Front door: a key that was never registered bounces off the filter
  // in O(1) — shared filter lock only, no shard lock, no allocation.
  // (No false negatives, so a registered key never takes this exit.)
  if (filter_ != nullptr && !filter_->may_contain(key)) {
    filter_rejects_.bump();
    return nullptr;
  }
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (entry == nullptr) return nullptr;  // filter false positive
  // Fast path: already loaded — one leaf-lock pointer copy, no I/O
  // locks, no serialisation against loads of any key (even this one:
  // refresh() publishes the swapped detector with the same leaf lock).
  if (auto loaded = snapshot(*entry)) {
    touch(*entry);
    return loaded;
  }
  // Slow path: first load, or a reload after eviction. load_mutex makes
  // it at-most-once per concurrent wave of callers of *this* key; no map
  // lock is held, so callers of other keys proceed untouched.
  const std::lock_guard<std::mutex> load_lock(entry->load_mutex);
  if (auto loaded = snapshot(*entry)) {  // double-check
    touch(*entry);
    return loaded;
  }
  {
    // Quarantine gate (entries with no live snapshot only; loaded ones
    // returned above): fail fast on the cached error instead of
    // hammering a path that just failed repeatedly. After the TTL, fall
    // through — one real probe that either heals the entry or re-arms
    // the quarantine. An evicted quarantined entry takes this same gate.
    const std::lock_guard<std::mutex> state_lock(entry->state_mutex);
    if (entry->health == HealthState::kQuarantined &&
        std::chrono::steady_clock::now() < entry->quarantine_until) {
      throw LoadError(
          entry->last_error_code, entry->path,
          "quarantined after " +
              std::to_string(entry->consecutive_failures) +
              " consecutive load failures; last: " + entry->last_error);
    }
  }
  return load_entry(entry);
}

std::vector<std::string> DetectorRegistry::refresh() {
  // O(resident set): the residency tracker knows exactly which entries
  // hold a detector, so a million-key fleet refreshes by re-statting
  // only what is actually resident. Evicted and never-loaded keys are
  // verified lazily by their next get() (which re-stats and reloads
  // anyway). The tracker hands out shared_ptrs, so nothing here races an
  // entry being dropped.
  std::vector<std::string> reloaded;
  for (auto& resident : residency_.residents()) {
    auto entry = std::static_pointer_cast<Entry>(std::move(resident));
    // Orphan check: the key may have been re-pointed (fresh Entry) or
    // removed since this entry was admitted — its artifact no longer
    // speaks for the key, so don't stat or reload it.
    if (find_entry(entry->key).get() != entry.get()) continue;
    {
      const std::lock_guard<std::mutex> state_lock(entry->state_mutex);
      if (entry->detector == nullptr) continue;  // evicted meanwhile
      // A quarantined entry is left alone until its TTL expires — no
      // stat, no load. (It keeps serving its last-good snapshot; only
      // the *replacement* probing is suppressed.)
      if (entry->health == HealthState::kQuarantined &&
          std::chrono::steady_clock::now() < entry->quarantine_until) {
        continue;
      }
    }
    const std::lock_guard<std::mutex> load_lock(entry->load_mutex);
    ArtifactStat last_stat;
    {
      const std::lock_guard<std::mutex> state_lock(entry->state_mutex);
      last_stat = entry->stat;
    }
    const ArtifactStat stat = stat_artifact(entry->path);
    if (stat.bytes == 0) continue;  // vanished: keep the last good snapshot
    if (stat == last_stat) continue;
    try {
      load_entry(entry);
      reloaded.push_back(entry->key);
    } catch (const HmdError&) {
      // Unreadable or invalid replacement (a foreign writer without the
      // atomic rename discipline, or a well-formed file carrying a config
      // the detector rejects): keep serving the previous snapshot and let
      // a later refresh() retry — the stale stat fields guarantee it will.
    }
  }
  // The tracker iterates in address order; keep the reported keys
  // deterministic for callers and logs.
  std::sort(reloaded.begin(), reloaded.end());
  return reloaded;
}

ModelHealth DetectorRegistry::health_of(const std::string& key,
                                        const Entry& entry) {
  const std::lock_guard<std::mutex> lock(entry.state_mutex);
  ModelHealth out;
  out.key = key;
  out.state = entry.health;
  out.loaded = entry.detector != nullptr;
  out.loads_ok = entry.loads_ok;
  out.loads_failed = entry.loads_failed;
  out.retries = entry.retries;
  out.evictions = entry.evictions;
  out.consecutive_failures = entry.consecutive_failures;
  out.last_error_code = entry.last_error_code;
  out.last_error = entry.last_error;
  if (entry.detector != nullptr) {
    out.kernel_backend = entry.detector->engine().kernel_backend();
  }
  return out;
}

std::vector<ModelHealth> DetectorRegistry::health() const {
  const auto items = entries_.sorted_items();
  std::vector<ModelHealth> out;
  out.reserve(items.size());
  for (const auto& [key, entry] : items) out.push_back(health_of(key, *entry));
  return out;
}

ModelHealth DetectorRegistry::health(const std::string& key) const {
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (entry == nullptr) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return health_of(key, *entry);
}

std::vector<std::string> DetectorRegistry::keys() const {
  return entries_.sorted_keys();
}

std::string DetectorRegistry::path(const std::string& key) const {
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (entry == nullptr) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return entry->path;
}

std::size_t DetectorRegistry::size() const { return entries_.size(); }

bool DetectorRegistry::contains(std::string_view key) const {
  if (filter_ != nullptr && !filter_->may_contain(key)) {
    filter_rejects_.bump();
    return false;
  }
  return entries_.contains(key);
}

fleet::FleetStats DetectorRegistry::fleet_stats() const {
  fleet::FleetStats out;
  out.keys = entries_.size();
  out.shards = entries_.shard_count();
  if (filter_ != nullptr) {
    out.filter = filter_->stats();
    out.filter.rejected = filter_rejects_.value();
  }
  out.residency = residency_.stats();
  return out;
}

void DetectorRegistry::set_residency_budget_bytes(std::size_t bytes) {
  residency_.set_budget_bytes(bytes);
}

}  // namespace hmd::api
