#include "api/detector_registry.h"

#include <sys/stat.h>

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "common/failpoint.h"

namespace hmd::api {

namespace {

namespace fs = std::filesystem;

/// Identity stat of `path` (zeroed when the file is unreachable). The
/// inode is the load-bearing field: save_model publishes via temp file +
/// rename, so every legitimate swap lands on a *new* inode even when the
/// replacement has the same byte count and an mtime inside the
/// filesystem's timestamp granularity (bagged linear artifacts of a fixed
/// (M, d) are always the same size). mtime + size still catch in-place
/// rewrites by foreign writers.
ArtifactStat stat_artifact(const std::string& path) {
  struct ::stat st = {};
  if (::stat(path.c_str(), &st) != 0 || st.st_size <= 0) return {};
#if defined(__APPLE__)
  const auto& mtime = st.st_mtimespec;  // BSD spelling of st_mtim
#else
  const auto& mtime = st.st_mtim;
#endif
  ArtifactStat out;
  out.inode = static_cast<std::uint64_t>(st.st_ino);
  out.mtime_ns = static_cast<std::int64_t>(mtime.tv_sec) * 1000000000 +
                 static_cast<std::int64_t>(mtime.tv_nsec);
  out.bytes = static_cast<std::uintmax_t>(st.st_size);
  return out;
}

/// Normalise any load failure to the typed taxonomy. Non-LoadError
/// exceptions (InvalidArgument for a rejected config, a foreign
/// std::exception from a custom loader) are content problems a re-read
/// cannot fix, so they classify as persistent kBadStructure.
LoadError as_load_error(const std::string& path, const std::exception& e) {
  if (const auto* typed = dynamic_cast<const LoadError*>(&e)) return *typed;
  return LoadError(LoadErrorCode::kBadStructure, path, e.what());
}

/// Backoff before retry number `completed_attempts + 1`: exponential,
/// capped, jittered by a uniform draw from [1 - jitter, 1] so entries
/// failing together do not re-probe in lockstep.
std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        int completed_attempts) {
  double ms = static_cast<double>(std::max(0, policy.initial_backoff_ms));
  for (int i = 1; i < completed_attempts; ++i) {
    ms *= std::max(1, policy.backoff_multiplier);
    if (ms >= policy.max_backoff_ms) break;
  }
  ms = std::min(ms, static_cast<double>(std::max(0, policy.max_backoff_ms)));
  if (policy.jitter > 0.0) {
    // xorshift64*: no shared state, no <random> engine construction on a
    // path that exists to sleep anyway.
    thread_local std::uint64_t state =
        0x9E3779B97F4A7C15ull ^
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()) ^
        (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1);
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const double u =
        static_cast<double>((state * 0x2545F4914F6CDD1Dull) >> 11) /
        static_cast<double>(std::uint64_t{1} << 53);
    ms *= 1.0 - std::min(1.0, policy.jitter) * u;
  }
  return std::chrono::milliseconds(
      std::max<std::int64_t>(0, static_cast<std::int64_t>(ms)));
}

}  // namespace

DetectorRegistry::DetectorRegistry(int n_threads, core::LoadMode mode)
    : n_threads_(n_threads),
      load_mode_(mode),
      loader_([mode](const std::string& path, int threads) {
        return std::make_shared<const core::TrustedHmd>(
            core::load_model(path, threads, mode));
      }) {}

void DetectorRegistry::add(const std::string& key, const std::string& path) {
  HMD_REQUIRE(!key.empty(), "DetectorRegistry::add: empty key");
  auto entry = std::make_shared<Entry>(path);
  const std::lock_guard<std::mutex> lock(mutex_);
  // Always a fresh Entry — even when the key exists. An in-flight load
  // against the old entry then publishes into an orphan the map no
  // longer reaches, so a re-point can never be clobbered by stale I/O.
  entries_[key] = std::move(entry);
}

std::size_t DetectorRegistry::add_directory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    throw IoError("DetectorRegistry: not a directory: " + dir);
  }
  // Non-throwing overloads throughout: an entry vanishing or failing to
  // stat mid-scan is skipped, never an escape of std::filesystem_error
  // past the documented IoError surface.
  fs::directory_iterator it(dir, ec);
  if (ec) throw IoError("DetectorRegistry: cannot scan " + dir);
  std::size_t added = 0;
  for (const auto& item : it) {
    if (!item.is_regular_file(ec) || ec) continue;
    const fs::path& path = item.path();
    if (path.extension() != ".hmdf") continue;
    add(path.stem().string(), path.string());
    ++added;
  }
  return added;
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::snapshot(
    const Entry& entry) {
  const std::lock_guard<std::mutex> lock(entry.state_mutex);
  return entry.detector;
}

std::shared_ptr<DetectorRegistry::Entry> DetectorRegistry::find_entry(
    const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::attempt_load(
    const std::string& path) const {
  // Armed with error:... this makes the whole load attempt fail before
  // any I/O — the seam the retry/quarantine tests (and the chaos script,
  // via HMD_FAILPOINTS) drive.
  HMD_FAILPOINT("registry.load", path.c_str());
  try {
    return loader_(path, n_threads_);
  } catch (const LoadError& error) {
    if (error.code() != LoadErrorCode::kMmapFailed) throw;
    // mmap specifically failed (a LoadMode::kMmap registry on a
    // filesystem without working mmap, or an injected fault): demote
    // this load to the full-copy stream path instead of failing the
    // model — graceful degradation, not an outage.
    return std::make_shared<const core::TrustedHmd>(
        core::load_model(path, n_threads_, core::LoadMode::kStream));
  }
}

void DetectorRegistry::load_entry(Entry& entry) const {
  const int max_attempts = std::max(1, policy_.max_attempts);
  std::uint64_t extra_attempts = 0;
  for (int attempt = 1;; ++attempt) {
    try {
      const ArtifactStat stat = stat_artifact(entry.path);
      auto detector = attempt_load(entry.path);
      const std::lock_guard<std::mutex> lock(entry.state_mutex);
      entry.detector = std::move(detector);
      entry.stat = stat;
      entry.health = HealthState::kHealthy;
      ++entry.loads_ok;
      entry.retries += extra_attempts;
      entry.consecutive_failures = 0;
      return;
    } catch (const std::exception& e) {
      const LoadError error = as_load_error(entry.path, e);
      if (error.transient() && attempt < max_attempts) {
        // Transient (torn publish, flaky I/O): back off and retry inside
        // this operation. The sleep holds only this entry's load_mutex —
        // other keys' gets and refreshes proceed untouched.
        ++extra_attempts;
        std::this_thread::sleep_for(backoff_delay(policy_, attempt));
        continue;
      }
      // Operation failed: record health (stat intentionally untouched,
      // so a later refresh() always sees a repaired file as changed).
      const std::lock_guard<std::mutex> lock(entry.state_mutex);
      ++entry.loads_failed;
      entry.retries += extra_attempts;
      ++entry.consecutive_failures;
      entry.last_error_code = error.code();
      entry.last_error = error.what();
      if (policy_.quarantine_after > 0 &&
          entry.consecutive_failures >= policy_.quarantine_after) {
        entry.health = HealthState::kQuarantined;
        entry.quarantine_until =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(std::max(0, policy_.quarantine_ms));
      } else {
        entry.health = HealthState::kDegraded;
      }
      throw error;
    }
  }
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::get(
    const std::string& key) {
  auto detector = try_get(key);
  if (detector == nullptr) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return detector;
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::try_get(
    const std::string& key) {
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (entry == nullptr) return nullptr;
  // Fast path: already loaded — one leaf-lock pointer copy, no I/O
  // locks, no serialisation against loads of any key (even this one:
  // refresh() publishes the swapped detector with the same leaf lock).
  if (auto loaded = snapshot(*entry)) return loaded;
  // Slow path: first load. load_mutex makes it at-most-once per
  // concurrent wave of callers of *this* key; the registry map mutex is
  // not held, so callers of other keys proceed untouched.
  const std::lock_guard<std::mutex> load_lock(entry->load_mutex);
  if (auto loaded = snapshot(*entry)) return loaded;  // double-check
  {
    // Quarantine gate (never-loaded entries only; loaded ones returned
    // above): fail fast on the cached error instead of hammering a path
    // that just failed repeatedly. After the TTL, fall through — one
    // real probe that either heals the entry or re-arms the quarantine.
    const std::lock_guard<std::mutex> state_lock(entry->state_mutex);
    if (entry->health == HealthState::kQuarantined &&
        std::chrono::steady_clock::now() < entry->quarantine_until) {
      throw LoadError(
          entry->last_error_code, entry->path,
          "quarantined after " +
              std::to_string(entry->consecutive_failures) +
              " consecutive load failures; last: " + entry->last_error);
    }
  }
  load_entry(*entry);
  return snapshot(*entry);
}

std::vector<std::string> DetectorRegistry::refresh() {
  // Snapshot the entry set first; the map lock drops before any I/O.
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> loaded;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    loaded.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) loaded.emplace_back(key, entry);
  }
  std::vector<std::string> reloaded;
  for (auto& [key, entry] : loaded) {
    // The lazy check runs *before* taking the load mutex: a never-loaded
    // entry whose first get() is parked in artifact I/O holds its
    // load_mutex, and refresh() queueing behind it would stall the
    // hot-swap sweep of every other key.
    {
      const std::lock_guard<std::mutex> state_lock(entry->state_mutex);
      if (entry->detector == nullptr) continue;  // still lazy: nothing to swap
      // A quarantined entry is left alone until its TTL expires — no
      // stat, no load. (It keeps serving its last-good snapshot; only
      // the *replacement* probing is suppressed.)
      if (entry->health == HealthState::kQuarantined &&
          std::chrono::steady_clock::now() < entry->quarantine_until) {
        continue;
      }
    }
    const std::lock_guard<std::mutex> load_lock(entry->load_mutex);
    ArtifactStat last_stat;
    {
      const std::lock_guard<std::mutex> state_lock(entry->state_mutex);
      last_stat = entry->stat;
    }
    const ArtifactStat stat = stat_artifact(entry->path);
    if (stat.bytes == 0) continue;  // vanished: keep the last good snapshot
    if (stat == last_stat) continue;
    try {
      load_entry(*entry);
      reloaded.push_back(key);
    } catch (const HmdError&) {
      // Unreadable or invalid replacement (a foreign writer without the
      // atomic rename discipline, or a well-formed file carrying a config
      // the detector rejects): keep serving the previous snapshot and let
      // a later refresh() retry — the stale stat fields guarantee it will.
    }
  }
  return reloaded;
}

ModelHealth DetectorRegistry::health_of(const std::string& key,
                                        const Entry& entry) {
  const std::lock_guard<std::mutex> lock(entry.state_mutex);
  ModelHealth out;
  out.key = key;
  out.state = entry.health;
  out.loaded = entry.detector != nullptr;
  out.loads_ok = entry.loads_ok;
  out.loads_failed = entry.loads_failed;
  out.retries = entry.retries;
  out.consecutive_failures = entry.consecutive_failures;
  out.last_error_code = entry.last_error_code;
  out.last_error = entry.last_error;
  if (entry.detector != nullptr) {
    out.kernel_backend = entry.detector->engine().kernel_backend();
  }
  return out;
}

std::vector<ModelHealth> DetectorRegistry::health() const {
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> items;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    items.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) items.emplace_back(key, entry);
  }
  std::vector<ModelHealth> out;
  out.reserve(items.size());
  // Map iteration order is already key-sorted.
  for (const auto& [key, entry] : items) out.push_back(health_of(key, *entry));
  return out;
}

ModelHealth DetectorRegistry::health(const std::string& key) const {
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (entry == nullptr) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return health_of(key, *entry);
}

std::vector<std::string> DetectorRegistry::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

std::string DetectorRegistry::path(const std::string& key) const {
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (entry == nullptr) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return entry->path;
}

std::size_t DetectorRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool DetectorRegistry::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

}  // namespace hmd::api
