#include "api/detector_registry.h"

#include <sys/stat.h>

#include "common/error.h"
#include "core/model_artifact.h"

namespace hmd::api {

namespace {

namespace fs = std::filesystem;

/// Identity stat of `path` (zeroed when the file is unreachable). The
/// inode is the load-bearing field: save_model publishes via temp file +
/// rename, so every legitimate swap lands on a *new* inode even when the
/// replacement has the same byte count and an mtime inside the
/// filesystem's timestamp granularity (bagged linear artifacts of a fixed
/// (M, d) are always the same size). mtime + size still catch in-place
/// rewrites by foreign writers.
ArtifactStat stat_artifact(const std::string& path) {
  struct ::stat st = {};
  if (::stat(path.c_str(), &st) != 0 || st.st_size <= 0) return {};
#if defined(__APPLE__)
  const auto& mtime = st.st_mtimespec;  // BSD spelling of st_mtim
#else
  const auto& mtime = st.st_mtim;
#endif
  ArtifactStat out;
  out.inode = static_cast<std::uint64_t>(st.st_ino);
  out.mtime_ns = static_cast<std::int64_t>(mtime.tv_sec) * 1000000000 +
                 static_cast<std::int64_t>(mtime.tv_nsec);
  out.bytes = static_cast<std::uintmax_t>(st.st_size);
  return out;
}

}  // namespace

void DetectorRegistry::add(const std::string& key, const std::string& path) {
  HMD_REQUIRE(!key.empty(), "DetectorRegistry::add: empty key");
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key];
  entry.path = path;
  entry.detector = nullptr;  // force a lazy (re)load from the new path
  entry.stat = {};
}

std::size_t DetectorRegistry::add_directory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    throw IoError("DetectorRegistry: not a directory: " + dir);
  }
  // Non-throwing overloads throughout: an entry vanishing or failing to
  // stat mid-scan is skipped, never an escape of std::filesystem_error
  // past the documented IoError surface.
  fs::directory_iterator it(dir, ec);
  if (ec) throw IoError("DetectorRegistry: cannot scan " + dir);
  std::size_t added = 0;
  for (const auto& item : it) {
    if (!item.is_regular_file(ec) || ec) continue;
    const fs::path& path = item.path();
    if (path.extension() != ".hmdf") continue;
    add(path.stem().string(), path.string());
    ++added;
  }
  return added;
}

void DetectorRegistry::load_locked(Entry& entry) const {
  const ArtifactStat stat = stat_artifact(entry.path);
  entry.detector = std::make_shared<const core::TrustedHmd>(
      core::load_model(entry.path, n_threads_));
  entry.stat = stat;
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::get(
    const std::string& key) {
  auto detector = try_get(key);
  if (detector == nullptr) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return detector;
}

std::shared_ptr<const core::TrustedHmd> DetectorRegistry::try_get(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (it->second.detector == nullptr) load_locked(it->second);
  return it->second.detector;
}

std::vector<std::string> DetectorRegistry::refresh() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> reloaded;
  for (auto& [key, entry] : entries_) {
    if (entry.detector == nullptr) continue;  // still lazy; nothing to swap
    const ArtifactStat stat = stat_artifact(entry.path);
    if (stat.bytes == 0) continue;  // vanished: keep the last good snapshot
    if (stat == entry.stat) continue;
    try {
      load_locked(entry);
      reloaded.push_back(key);
    } catch (const HmdError&) {
      // Unreadable or invalid replacement (a foreign writer without the
      // atomic rename discipline, or a well-formed file carrying a config
      // the detector rejects): keep serving the previous snapshot and let
      // a later refresh() retry — the stale stat fields guarantee it will.
    }
  }
  return reloaded;
}

std::vector<std::string> DetectorRegistry::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

std::string DetectorRegistry::path(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw IoError("DetectorRegistry: unknown model key '" + key + "'");
  }
  return it->second.path;
}

std::size_t DetectorRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool DetectorRegistry::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

}  // namespace hmd::api
