#pragma once
// The unified scoring API — one batched entry point for every consumer.
//
// A ScoreRequest names an input matrix and an OutputMask of the columns
// the caller wants; UntrustedHmd::score(request, result) fills exactly
// those columns of a struct-of-arrays ScoreResult and computes nothing
// else. The legacy surface (detect / detect_batch / estimate /
// estimate_batch / scores) is a set of thin compatibility wrappers over
// this spine with preset masks.
//
// ## The OutputMask contract
//
//  - Each kOut* bit selects one ScoreResult column. After score()
//    returns, a selected column has exactly x.rows() entries; an
//    unselected column is empty (size 0, capacity retained). Reading an
//    unselected column is a caller bug, not undefined behaviour — it is
//    just empty.
//  - Selected values are bit-identical to the full-surface results: the
//    same expressions as Detection / Estimate field for field, in the
//    same per-sample accumulation order, for any mask. Masking changes
//    what is computed, never the value of what is computed.
//  - kOutScore / kOutTrusted are evaluated under ScoreRequest::mode when
//    set, else under the detector's configured mode — per-request
//    selection of the uncertainty quantity a deployment consumes
//    (Nguyen et al., arXiv:2108.04081) without touching the detector.
//  - The mask drives work elimination end to end: score() derives the
//    minimal engine-level StatsMask (core/inference_engine.h), so a
//    kOutPrediction-only request under a vote-based mode skips the
//    posterior and entropy accumulates inside the engine kernels, and a
//    detection-shaped request under vote entropy never pays the
//    per-member entropy log() pair.
//  - Steady state allocates nothing: ScoreResult's vectors (and its
//    stats scratch) are resized, never reallocated, once their capacity
//    has grown to the batch size — reuse one ScoreResult per serving
//    loop.
//
// ## The two-tier accuracy contract
//
// ScoreRequest::accuracy selects between two serving tiers
// (core::Accuracy):
//
//  - kExact (the default, and what every pre-existing caller gets):
//    every guarantee above holds verbatim — selected values are
//    bit-identical to the reference member-by-member path, libm
//    transcendentals included.
//  - kFast: transcendental evaluations (the linear engines' sigmoid,
//    every binary entropy) run on the vectorised bounded-ULP kernels in
//    simd/vmath.h. Contract: each such value is within 2 ULP of its
//    kExact counterpart; exactly-representable specials (saturated
//    sigmoids, H(0)=H(1)=0, vote-LUT entropies) are bit-identical.
//    Discrete columns (prediction, votes, trusted) can differ only when
//    the exact value they threshold sits inside the kernels' ULP band
//    of the decision boundary (0.5 for a member vote, entropy_threshold
//    for trusted) — a knife-edge no trained detector in the suite
//    produces. Results are still deterministic per row for a given
//    build and tier.
//
// score() lowers the tier into the engine StatsMask as the
// core::kStatsFastMath modifier; engines without hot-path
// transcendentals serve both tiers bit-identically.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/matrix.h"
#include "core/inference_engine.h"
#include "core/uncertainty.h"

namespace hmd::api {

/// One bit per ScoreResult column.
enum Output : std::uint32_t {
  kOutPrediction = 1u << 0,         ///< 0 = benign, 1 = malware
  kOutConfidence = 1u << 1,         ///< mean member P of the prediction
  kOutVotes = 1u << 2,              ///< members voting malware
  kOutVoteEntropy = 1u << 3,        ///< the paper's default score
  kOutSoftEntropy = 1u << 4,
  kOutExpectedEntropy = 1u << 5,
  kOutMutualInformation = 1u << 6,
  kOutVariationRatio = 1u << 7,
  kOutMaxProbability = 1u << 8,
  kOutScore = 1u << 9,              ///< score under the request's mode
  kOutTrusted = 1u << 10,           ///< score <= entropy_threshold
};
using OutputMask = std::uint32_t;

/// What detect_batch() consumes — the Detection struct, column for column.
inline constexpr OutputMask kDetectionOutputs =
    kOutPrediction | kOutConfidence | kOutScore | kOutTrusted;

/// What estimate_batch() consumes — the full Estimate family.
inline constexpr OutputMask kEstimateOutputs =
    kOutPrediction | kOutVotes | kOutVoteEntropy | kOutSoftEntropy |
    kOutExpectedEntropy | kOutMutualInformation | kOutVariationRatio |
    kOutMaxProbability | kOutScore | kOutTrusted;

/// The cheapest useful request: hard labels only. Under a vote-based
/// mode this reduces engine work to vote accumulation alone.
inline constexpr OutputMask kPredictionOnly = kOutPrediction;

/// The minimal engine-level StatsMask for `outputs` scored under
/// `score_mode` (the resolved request mode). Votes are always demanded —
/// prediction, and every vote-based quantity, derive from them and they
/// cost the engine one compare per member.
core::StatsMask stats_mask_for(OutputMask outputs,
                               core::UncertaintyMode score_mode);

/// A batched scoring request: which rows, which outputs, which mode.
struct ScoreRequest {
  /// Input samples, one per row; raw features (engines own any scaling).
  /// A non-owning view — the matrix must outlive the score() call.
  const Matrix* x = nullptr;
  OutputMask outputs = kDetectionOutputs;
  /// Mode for kOutScore / kOutTrusted; unset = the detector's configured
  /// mode. Generalises the old TrustedHmd::scores(x, mode) override.
  std::optional<core::UncertaintyMode> mode;
  /// Serving tier — see "The two-tier accuracy contract" above. kExact
  /// keeps today's bit-parity guarantee; kFast permits the vectorised
  /// ≤2-ULP transcendental kernels on the hot path.
  core::Accuracy accuracy = core::Accuracy::kExact;
};

/// Struct-of-arrays result. Columns selected by the request hold one
/// entry per input row; unselected columns are empty. Reuse one instance
/// across calls: buffers only ever grow, so a steady-state serving loop
/// allocates nothing (see the contract above).
struct ScoreResult {
  std::size_t rows = 0;  ///< rows scored by the last score() call

  std::vector<std::int32_t> prediction;
  std::vector<double> confidence;
  std::vector<std::int32_t> votes;
  std::vector<double> vote_entropy;
  std::vector<double> soft_entropy;
  std::vector<double> expected_entropy;
  std::vector<double> mutual_information;
  std::vector<double> variation_ratio;
  std::vector<double> max_probability;
  std::vector<double> score;
  std::vector<std::uint8_t> trusted;  ///< 0 / 1

  /// Engine-level sufficient statistics of the last call — score()'s
  /// reusable scratch, left populated for callers that want the raw
  /// sums (fields outside the derived StatsMask are zero).
  std::vector<core::EnsembleStats> stats;

  /// Fast-tier column scratch (a kOutTrusted-without-kOutScore request
  /// needs somewhere to batch the scores). Internal to score(); contents
  /// unspecified. Lives here so steady-state serving allocates nothing.
  std::vector<double> fast_scratch;

  /// Size selected columns to `n`, empty the rest. Capacity is retained
  /// either way. score() calls this; callers never need to.
  void shape(OutputMask outputs, std::size_t n);
};

}  // namespace hmd::api
