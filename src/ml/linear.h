#pragma once
// Linear base learners: logistic regression and a linear SVM with Platt-
// scaled confidences. Both train with deterministic full-batch gradient
// descent and report convergence; the SVM's criterion is margin
// attainment (mean hinge loss below a threshold), which is what fails on
// the heavily-overlapping bootstrapped HPC dataset — reproducing the
// paper's Section V.B exclusion.

#include <vector>

#include "ml/classifier.h"

namespace hmd::ml {

struct LinearModelParams {
  int max_iterations = 250;
  double learning_rate = 0.5;
  double l2 = 1e-4;
  double tolerance = 1e-7;  ///< loss-delta convergence (logistic)
  /// SVM converges iff final mean hinge loss drops below this margin
  /// attainment threshold.
  double hinge_convergence_threshold = 0.25;
};

class LogisticRegression : public Classifier {
 public:
  LogisticRegression() = default;
  explicit LogisticRegression(const LinearModelParams& params)
      : params_(params) {}

  void fit(const Matrix& x, const std::vector<int>& y, Rng& rng) override;
  int predict_one(RowView x) const override;
  double predict_proba_one(RowView x) const override;
  bool converged() const override { return converged_; }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LinearModelParams params_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool converged_ = false;
};

class LinearSvm : public Classifier {
 public:
  LinearSvm() = default;
  explicit LinearSvm(const LinearModelParams& params) : params_(params) {}

  void fit(const Matrix& x, const std::vector<int>& y, Rng& rng) override;
  int predict_one(RowView x) const override;
  /// Platt-scaled probability: sigmoid(a * margin + b) with (a, b) fit on
  /// the training margins.
  double predict_proba_one(RowView x) const override;
  bool converged() const override { return converged_; }

  double decision_value(RowView x) const;
  double final_mean_hinge() const { return mean_hinge_; }

  // Trained-model export, consumed by the flat linear inference engine
  // (core/flat_linear.h) when it packs members into its weight matrix.
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  double platt_a() const { return platt_a_; }
  double platt_b() const { return platt_b_; }

 private:
  LinearModelParams params_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  double platt_a_ = -2.0;
  double platt_b_ = 0.0;
  double mean_hinge_ = 0.0;
  bool converged_ = false;
};

}  // namespace hmd::ml
