#include "ml/preprocessing.h"

#include <cmath>

#include "common/error.h"

namespace hmd::ml {

void StandardScaler::fit(const Matrix& x) {
  HMD_REQUIRE(x.rows() > 0, "StandardScaler::fit: empty matrix");
  const std::size_t cols = x.cols();
  means_.assign(cols, 0.0);
  scales_.assign(cols, 0.0);
  const double n = static_cast<double>(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.row_ptr(r);
    for (std::size_t c = 0; c < cols; ++c) means_[c] += row[c];
  }
  for (std::size_t c = 0; c < cols; ++c) means_[c] /= n;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.row_ptr(r);
    for (std::size_t c = 0; c < cols; ++c) {
      const double d = row[c] - means_[c];
      scales_[c] += d * d;
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    scales_[c] = std::sqrt(scales_[c] / n);
    if (scales_[c] < 1e-12) scales_[c] = 1.0;  // constant feature
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  HMD_REQUIRE(fitted(), "StandardScaler::transform before fit");
  HMD_REQUIRE(x.cols() == means_.size(),
              "StandardScaler::transform: column mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* src = x.row_ptr(r);
    double* dst = out.row_ptr(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      dst[c] = (src[c] - means_[c]) / scales_[c];
    }
  }
  return out;
}

void StandardScaler::transform_row(RowView x,
                                   std::vector<double>& out) const {
  HMD_REQUIRE(fitted(), "StandardScaler::transform_row before fit");
  HMD_REQUIRE(x.size() == means_.size(),
              "StandardScaler::transform_row: column mismatch");
  out.resize(x.size());
  for (std::size_t c = 0; c < x.size(); ++c) {
    out[c] = (x[c] - means_[c]) / scales_[c];
  }
}

}  // namespace hmd::ml
