#include "ml/metrics.h"

#include "common/error.h"

namespace hmd::ml {

double accuracy_score(const std::vector<int>& y_true,
                      const std::vector<int>& y_pred) {
  HMD_REQUIRE(!y_true.empty() && y_true.size() == y_pred.size(),
              "accuracy_score: size mismatch");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    hits += y_true[i] == y_pred[i];
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

BinaryMetrics binary_metrics(const std::vector<int>& y_true,
                             const std::vector<int>& y_pred) {
  HMD_REQUIRE(!y_true.empty() && y_true.size() == y_pred.size(),
              "binary_metrics: size mismatch");
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (y_pred[i] == 1) {
      (y_true[i] == 1 ? tp : fp) += 1;
    } else {
      (y_true[i] == 1 ? fn : tn) += 1;
    }
  }
  BinaryMetrics m;
  m.accuracy = static_cast<double>(tp + tn) /
               static_cast<double>(y_true.size());
  m.precision = tp + fp > 0
                    ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                    : 0.0;
  m.recall = tp + fn > 0
                 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                 : 0.0;
  m.f1 = m.precision + m.recall > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

}  // namespace hmd::ml
