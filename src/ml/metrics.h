#pragma once
// Classification metrics over hard binary predictions.

#include <vector>

namespace hmd::ml {

struct BinaryMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Fraction of matching labels. Requires equal non-zero lengths.
double accuracy_score(const std::vector<int>& y_true,
                      const std::vector<int>& y_pred);

/// Precision / recall / F1 with class 1 as the positive class. Degenerate
/// denominators (no positive predictions / labels) yield 0.
BinaryMetrics binary_metrics(const std::vector<int>& y_true,
                             const std::vector<int>& y_pred);

}  // namespace hmd::ml
