#pragma once
// CART decision tree (gini impurity) — the base learner of the random
// forest ensemble. The node array is exposed read-only so the flat-forest
// compiler in core/ can re-pack trained trees into its arena layout.

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace hmd::ml {

struct DecisionTreeParams {
  int max_depth = 0;            ///< 0 = grow until pure / leaf floor
  int min_samples_leaf = 1;     ///< smallest admissible leaf
  /// Features examined per split: >0 explicit count, 0 = sqrt heuristic
  /// (random-forest style per-split subsampling), -1 = all features.
  int max_features = 0;
};

class DecisionTree : public Classifier {
 public:
  /// Binary tree node; children are indices into nodes(). Leaves have
  /// feature == -1 and carry the empirical P(class 1) of their samples.
  struct Node {
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double p1 = 0.0;
  };

  DecisionTree() = default;
  explicit DecisionTree(const DecisionTreeParams& params) : params_(params) {}

  void fit(const Matrix& x, const std::vector<int>& y, Rng& rng) override;
  int predict_one(RowView x) const override;
  double predict_proba_one(RowView x) const override;

  const std::vector<Node>& nodes() const { return nodes_; }
  const DecisionTreeParams& params() const { return params_; }

 private:
  std::int32_t build(const Matrix& x, const std::vector<int>& y,
                     std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, int depth, Rng& rng);
  std::int32_t leaf_index(RowView x) const;

  DecisionTreeParams params_;
  std::vector<Node> nodes_;
};

}  // namespace hmd::ml
