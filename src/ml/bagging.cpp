#include "ml/bagging.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "core/thread_pool.h"

namespace hmd::ml {

namespace {

/// Decorrelate the per-member streams from consecutive member indices.
std::uint64_t member_seed(std::uint64_t seed, std::size_t m) {
  return seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL * (m + 1);
}

}  // namespace

Bagging::Bagging(ClassifierFactory factory, BaggingParams params)
    : factory_(std::move(factory)), params_(params) {
  HMD_REQUIRE(params_.n_members >= 1, "Bagging: n_members must be >= 1");
  HMD_REQUIRE(params_.sample_fraction > 0.0 && params_.sample_fraction <= 1.0,
              "Bagging: sample_fraction must lie in (0, 1]");
  HMD_REQUIRE(params_.feature_fraction > 0.0 &&
                  params_.feature_fraction <= 1.0,
              "Bagging: feature_fraction must lie in (0, 1]");
}

void Bagging::fit(const Matrix& x, const std::vector<int>& y,
                  core::ThreadPool* pool) {
  HMD_REQUIRE(x.rows() > 1 && x.rows() == y.size(),
              "Bagging::fit: bad shapes");
  n_features_ = x.cols();
  const auto n_members = static_cast<std::size_t>(params_.n_members);
  members_.clear();
  members_.resize(n_members);
  feature_maps_.assign(n_members, {});

  const auto n_rows = x.rows();
  const auto n_draw = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::llround(static_cast<double>(n_rows) *
                          params_.sample_fraction)));
  const bool subspace = params_.feature_fraction < 1.0;
  const auto n_cols_sub = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(static_cast<double>(n_features_) *
                          params_.feature_fraction)));

  auto fit_member = [&](std::size_t m) {
    Rng rng(member_seed(params_.seed, m));
    // Row resample: bootstrap (with replacement) or subagging (without).
    std::vector<std::size_t> rows;
    if (params_.bootstrap) {
      rows.resize(n_draw);
      for (auto& r : rows) r = rng.uniform_index(n_rows);
    } else if (n_draw >= n_rows) {
      rows.resize(n_rows);
      for (std::size_t r = 0; r < n_rows; ++r) rows[r] = r;
    } else {
      rows = rng.sample_without_replacement(n_rows, n_draw);
    }
    // Column subspace.
    std::vector<std::int32_t> columns;
    if (subspace) {
      auto drawn = rng.sample_without_replacement(n_features_, n_cols_sub);
      std::sort(drawn.begin(), drawn.end());
      columns.assign(drawn.begin(), drawn.end());
    }
    const std::size_t width = subspace ? columns.size() : n_features_;
    Matrix sub_x(rows.size(), width);
    std::vector<int> sub_y(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double* src = x.row_ptr(rows[i]);
      double* dst = sub_x.row_ptr(i);
      if (subspace) {
        for (std::size_t c = 0; c < width; ++c) {
          dst[c] = src[columns[c]];
        }
      } else {
        std::copy(src, src + width, dst);
      }
      sub_y[i] = y[rows[i]];
    }
    auto member = factory_();
    member->fit(sub_x, sub_y, rng);
    members_[m] = std::move(member);
    feature_maps_[m] = std::move(columns);
  };

  if (pool != nullptr) {
    pool->parallel_for(n_members, [&](std::size_t begin, std::size_t end) {
      for (std::size_t m = begin; m < end; ++m) fit_member(m);
    });
  } else {
    core::ThreadPool local(params_.n_threads);
    local.parallel_for(n_members, [&](std::size_t begin, std::size_t end) {
      for (std::size_t m = begin; m < end; ++m) fit_member(m);
    });
  }
}

void Bagging::gather(RowView x, std::size_t m,
                     std::vector<double>& scratch) const {
  const auto& map = feature_maps_[m];
  scratch.resize(map.size());
  for (std::size_t c = 0; c < map.size(); ++c) {
    scratch[c] = x[static_cast<std::size_t>(map[c])];
  }
}

int Bagging::vote_count_one(RowView x) const {
  HMD_REQUIRE(fitted(), "Bagging: predict before fit");
  int votes = 0;
  std::vector<double> scratch;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    if (feature_maps_[m].empty()) {
      votes += members_[m]->predict_one(x);
    } else {
      gather(x, m, scratch);
      votes += members_[m]->predict_one(
          RowView(scratch.data(), scratch.size()));
    }
  }
  return votes;
}

std::vector<int> Bagging::predict(const Matrix& x) const {
  std::vector<int> out(x.rows());
  const int majority = static_cast<int>(members_.size() / 2);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = vote_count_one(x.row(r)) > majority ? 1 : 0;
  }
  return out;
}

void Bagging::member_probabilities(RowView x,
                                   std::vector<double>& out) const {
  HMD_REQUIRE(fitted(), "Bagging: predict before fit");
  out.resize(members_.size());
  std::vector<double> scratch;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    if (feature_maps_[m].empty()) {
      out[m] = members_[m]->predict_proba_one(x);
    } else {
      gather(x, m, scratch);
      out[m] = members_[m]->predict_proba_one(
          RowView(scratch.data(), scratch.size()));
    }
  }
}

double Bagging::converged_fraction() const {
  HMD_REQUIRE(fitted(), "Bagging: converged_fraction before fit");
  std::size_t n = 0;
  for (const auto& member : members_) n += member->converged();
  return static_cast<double>(n) / static_cast<double>(members_.size());
}

}  // namespace hmd::ml
