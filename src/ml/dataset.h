#pragma once
// Labelled dataset: a feature matrix, binary labels, and (optionally) the
// id of the application each sample was collected from — the taxonomy
// tables report per-split app counts.

#include <vector>

#include "common/matrix.h"

namespace hmd::ml {

struct Dataset {
  Matrix X;
  std::vector<int> y;        ///< 0 = benign, 1 = malware
  std::vector<int> app_ids;  ///< optional; empty or one entry per row

  std::size_t size() const { return X.rows(); }
};

}  // namespace hmd::ml
