#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace hmd::ml {

namespace {

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double impurity = std::numeric_limits<double>::infinity();
  std::size_t n_left = 0;
};

double gini_pair(double n1, double n_total) {
  if (n_total <= 0.0) return 0.0;
  const double p = n1 / n_total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y,
                       Rng& rng) {
  HMD_REQUIRE(x.rows() > 0 && x.rows() == y.size(),
              "DecisionTree::fit: bad shapes");
  nodes_.clear();
  std::vector<std::size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  build(x, y, indices, 0, indices.size(), 0, rng);
}

std::int32_t DecisionTree::build(const Matrix& x, const std::vector<int>& y,
                                 std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end,
                                 int depth, Rng& rng) {
  const std::size_t n = end - begin;
  std::size_t n1 = 0;
  for (std::size_t i = begin; i < end; ++i) n1 += y[indices[i]] == 1;

  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].p1 = static_cast<double>(n1) / static_cast<double>(n);

  const bool pure = n1 == 0 || n1 == n;
  const bool depth_capped = params_.max_depth > 0 && depth >= params_.max_depth;
  const auto leaf_floor = static_cast<std::size_t>(
      std::max(1, params_.min_samples_leaf));
  if (pure || depth_capped || n < 2 * leaf_floor) return node_index;

  // Per-split feature subset.
  const auto n_features = static_cast<int>(x.cols());
  int n_candidates = n_features;
  if (params_.max_features > 0) {
    n_candidates = std::min(params_.max_features, n_features);
  } else if (params_.max_features == 0) {
    n_candidates = std::max(
        1, static_cast<int>(std::lround(std::sqrt(n_features))));
  }
  std::vector<std::size_t> features;
  if (n_candidates >= n_features) {
    features.resize(n_features);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(
        n_features, static_cast<std::size_t>(n_candidates));
  }

  SplitCandidate best;
  std::vector<std::pair<double, int>> column(n);
  for (std::size_t f : features) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = indices[begin + i];
      column[i] = {x(row, f), y[row]};
    }
    std::sort(column.begin(), column.end());
    double left_n1 = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_n1 += column[i].second;
      const auto n_left = static_cast<double>(i + 1);
      const auto n_right = static_cast<double>(n - i - 1);
      if (i + 1 < leaf_floor || n - i - 1 < leaf_floor) continue;
      if (column[i].first == column[i + 1].first) continue;
      const double impurity =
          (n_left * gini_pair(left_n1, n_left) +
           n_right * gini_pair(static_cast<double>(n1) - left_n1, n_right)) /
          static_cast<double>(n);
      if (impurity < best.impurity) {
        best.impurity = impurity;
        best.feature = static_cast<int>(f);
        best.threshold = 0.5 * (column[i].first + column[i + 1].first);
        best.n_left = i + 1;
      }
    }
  }
  if (best.feature < 0) return node_index;  // no admissible split

  const auto mid = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return x(row, static_cast<std::size_t>(best.feature)) <=
               best.threshold;
      });
  const auto split =
      static_cast<std::size_t>(mid - indices.begin());
  if (split == begin || split == end) return node_index;  // degenerate

  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  const std::int32_t left =
      build(x, y, indices, begin, split, depth + 1, rng);
  nodes_[node_index].left = left;
  const std::int32_t right =
      build(x, y, indices, split, end, depth + 1, rng);
  nodes_[node_index].right = right;
  return node_index;
}

std::int32_t DecisionTree::leaf_index(RowView x) const {
  std::int32_t i = 0;
  while (nodes_[static_cast<std::size_t>(i)].feature >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    i = x[static_cast<std::size_t>(node.feature)] <= node.threshold
            ? node.left
            : node.right;
  }
  return i;
}

int DecisionTree::predict_one(RowView x) const {
  HMD_REQUIRE(!nodes_.empty(), "DecisionTree: predict before fit");
  return nodes_[static_cast<std::size_t>(leaf_index(x))].p1 > 0.5 ? 1 : 0;
}

double DecisionTree::predict_proba_one(RowView x) const {
  HMD_REQUIRE(!nodes_.empty(), "DecisionTree: predict before fit");
  return nodes_[static_cast<std::size_t>(leaf_index(x))].p1;
}

}  // namespace hmd::ml
