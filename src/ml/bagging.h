#pragma once
// Bagging ensemble over an arbitrary base-learner factory. This is the
// *reference* (pointer-chasing) implementation: member models are owned
// polymorphically and queried one sample at a time. The flat struct-of-
// arrays engine in core/flat_forest.h is compiled from a trained Bagging
// and must agree with it bit-for-bit — the parity tests assert exactly
// that.
//
// Diversity sources (the A2 ablation sweeps these):
//   bootstrap        — resample n * sample_fraction rows with replacement
//   subagging        — bootstrap=false draws without replacement
//   feature subspace — feature_fraction < 1 trains each member on a
//                      random sorted subset of the columns

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace hmd::core {
class ThreadPool;
}  // namespace hmd::core

namespace hmd::ml {

struct BaggingParams {
  int n_members = 100;
  std::uint64_t seed = 0;
  int n_threads = 0;          ///< member-parallel fit; <= 0 = all cores
  bool bootstrap = true;
  double sample_fraction = 1.0;
  double feature_fraction = 1.0;
};

class Bagging {
 public:
  Bagging(ClassifierFactory factory, BaggingParams params);

  /// Train every member on its own resample; members are trained in
  /// parallel on `pool` when given (falling back to an internal pool
  /// sized by params.n_threads).
  void fit(const Matrix& x, const std::vector<int>& y,
           core::ThreadPool* pool = nullptr);

  /// Majority-vote predictions for every row.
  std::vector<int> predict(const Matrix& x) const;

  /// Number of members voting class 1 for one sample.
  int vote_count_one(RowView x) const;

  /// Per-member P(class 1) for one sample, in member order.
  void member_probabilities(RowView x, std::vector<double>& out) const;

  std::size_t n_members() const { return members_.size(); }
  const Classifier& member(std::size_t m) const { return *members_[m]; }
  /// Sorted column subset member m was trained on; empty = all columns.
  const std::vector<std::int32_t>& feature_map(std::size_t m) const {
    return feature_maps_[m];
  }
  std::size_t n_features() const { return n_features_; }
  bool fitted() const { return !members_.empty(); }

  /// Fraction of members whose training converged.
  double converged_fraction() const;

  const BaggingParams& params() const { return params_; }

 private:
  void gather(RowView x, std::size_t m, std::vector<double>& scratch) const;

  ClassifierFactory factory_;
  BaggingParams params_;
  std::vector<std::unique_ptr<Classifier>> members_;
  std::vector<std::vector<std::int32_t>> feature_maps_;
  std::size_t n_features_ = 0;
};

}  // namespace hmd::ml
