#pragma once
// Base-learner interface for the bagging ensemble. Members are binary
// classifiers exposing a hard prediction and a probability for class 1;
// the convergence flag feeds the paper's SVM-on-HPC exclusion (Section
// V.B): an ensemble whose members failed to converge must say so instead
// of emitting degenerate uncertainty estimates.

#include <functional>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace hmd::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on the given matrix/labels. `rng` drives any internal
  /// randomness (per-split feature subsampling, init) so members seeded
  /// differently diversify.
  virtual void fit(const Matrix& x, const std::vector<int>& y, Rng& rng) = 0;

  /// Hard class prediction (0 or 1).
  virtual int predict_one(RowView x) const = 0;

  /// P(class == 1 | x).
  virtual double predict_proba_one(RowView x) const = 0;

  /// Did training reach its convergence criterion?
  virtual bool converged() const { return true; }
};

/// Factory producing fresh, untrained members.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace hmd::ml
