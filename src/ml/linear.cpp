#include "ml/linear.h"

#include <cmath>

#include "common/error.h"

namespace hmd::ml {

namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double dot_row(const std::vector<double>& w, RowView x) {
  double sum = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) sum += w[i] * x[i];
  return sum;
}

}  // namespace

void LogisticRegression::fit(const Matrix& x, const std::vector<int>& y,
                             Rng& rng) {
  HMD_REQUIRE(x.rows() > 0 && x.rows() == y.size(),
              "LogisticRegression::fit: bad shapes");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  weights_.assign(d, 0.0);
  for (auto& w : weights_) w = rng.normal(0.0, 1e-2);
  bias_ = 0.0;
  converged_ = false;

  std::vector<double> grad(d);
  double previous_loss = 1e300;
  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    double loss = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double* row = x.row_ptr(r);
      double z = bias_;
      for (std::size_t c = 0; c < d; ++c) z += weights_[c] * row[c];
      const double p = sigmoid(z);
      const double target = y[r];
      const double err = p - target;
      for (std::size_t c = 0; c < d; ++c) grad[c] += err * row[c];
      grad_bias += err;
      loss -= target > 0.5 ? std::log(std::max(p, 1e-12))
                           : std::log(std::max(1.0 - p, 1e-12));
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    loss *= inv_n;
    for (std::size_t c = 0; c < d; ++c) {
      loss += 0.5 * params_.l2 * weights_[c] * weights_[c];
    }
    const double step =
        params_.learning_rate / (1.0 + 0.01 * static_cast<double>(iter));
    for (std::size_t c = 0; c < d; ++c) {
      weights_[c] -= step * (grad[c] * inv_n + params_.l2 * weights_[c]);
    }
    bias_ -= step * grad_bias * inv_n;
    if (std::abs(previous_loss - loss) < params_.tolerance) {
      converged_ = true;
      break;
    }
    previous_loss = loss;
  }
}

int LogisticRegression::predict_one(RowView x) const {
  return predict_proba_one(x) > 0.5 ? 1 : 0;
}

double LogisticRegression::predict_proba_one(RowView x) const {
  HMD_REQUIRE(!weights_.empty(), "LogisticRegression: predict before fit");
  return sigmoid(dot_row(weights_, x) + bias_);
}

void LinearSvm::fit(const Matrix& x, const std::vector<int>& y, Rng& rng) {
  HMD_REQUIRE(x.rows() > 0 && x.rows() == y.size(),
              "LinearSvm::fit: bad shapes");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  weights_.assign(d, 0.0);
  for (auto& w : weights_) w = rng.normal(0.0, 1e-2);
  bias_ = 0.0;

  std::vector<double> grad(d);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    double hinge = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double* row = x.row_ptr(r);
      double z = bias_;
      for (std::size_t c = 0; c < d; ++c) z += weights_[c] * row[c];
      const double target = y[r] == 1 ? 1.0 : -1.0;
      const double margin = target * z;
      if (margin < 1.0) {
        hinge += 1.0 - margin;
        for (std::size_t c = 0; c < d; ++c) grad[c] -= target * row[c];
        grad_bias -= target;
      }
    }
    mean_hinge_ = hinge * inv_n;
    const double step =
        params_.learning_rate / (1.0 + 0.05 * static_cast<double>(iter));
    for (std::size_t c = 0; c < d; ++c) {
      weights_[c] -= step * (grad[c] * inv_n + params_.l2 * weights_[c]);
    }
    bias_ -= step * grad_bias * inv_n;
  }
  converged_ = mean_hinge_ < params_.hinge_convergence_threshold;

  // Platt scaling: 1-D logistic fit of P(y=1 | decision value) on the
  // training margins.
  platt_a_ = -2.0;
  platt_b_ = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    double grad_a = 0.0, grad_b = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double value = decision_value(x.row(r));
      const double p = sigmoid(-(platt_a_ * value + platt_b_));
      const double err = p - (y[r] == 1 ? 1.0 : 0.0);
      grad_a += -err * value;
      grad_b += -err;
    }
    platt_a_ -= 0.5 * grad_a * inv_n;
    platt_b_ -= 0.5 * grad_b * inv_n;
  }
}

double LinearSvm::decision_value(RowView x) const {
  HMD_REQUIRE(!weights_.empty(), "LinearSvm: predict before fit");
  return dot_row(weights_, x) + bias_;
}

int LinearSvm::predict_one(RowView x) const {
  return decision_value(x) > 0.0 ? 1 : 0;
}

double LinearSvm::predict_proba_one(RowView x) const {
  return sigmoid(-(platt_a_ * decision_value(x) + platt_b_));
}

}  // namespace hmd::ml
