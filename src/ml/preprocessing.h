#pragma once
// Feature preprocessing shared by the linear base learners, the t-SNE
// bench, and the diversity ablation.

#include <vector>

#include "common/matrix.h"
#include "ml/dataset.h"

namespace hmd::ml {

/// Per-feature standardisation to zero mean / unit variance.
class StandardScaler {
 public:
  /// Learn means and scales from `x`.
  void fit(const Matrix& x);

  /// Apply the learned transform. Requires fit() first.
  Matrix transform(const Matrix& x) const;
  void transform_row(RowView x, std::vector<double>& out) const;

  Matrix fit_transform(const Matrix& x) {
    fit(x);
    return transform(x);
  }

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

  /// Rebuild a scaler from previously learned moments (model-artifact
  /// loading) without re-seeing any training data.
  static StandardScaler from_moments(std::vector<double> means,
                                     std::vector<double> scales) {
    HMD_REQUIRE(means.size() == scales.size(),
                "StandardScaler::from_moments: size mismatch");
    StandardScaler scaler;
    scaler.means_ = std::move(means);
    scaler.scales_ = std::move(scales);
    return scaler;
  }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace hmd::ml
