#include "sim/app_profiles.h"

#include <algorithm>
#include <cmath>

namespace hmd::sim {

Workload AppProfile::sample(Rng& rng, double target_ms) const {
  Workload workload;
  double elapsed = 0.0;
  while (elapsed < target_ms) {
    const double cycle = period_ms * rng.uniform(0.8, 1.2);
    Phase active;
    active.duration_ms = std::max(2.0, cycle * duty);
    active.cpu_util =
        std::clamp(util_active + rng.normal(0.0, util_jitter), 0.0, 1.0);
    active.mem_intensity =
        std::clamp(mem_intensity + rng.normal(0.0, 0.03), 0.0, 1.0);
    active.branch_irregularity =
        std::clamp(branch_irregularity + rng.normal(0.0, 0.03), 0.0, 1.0);
    workload.phases.push_back(active);
    elapsed += active.duration_ms;

    Phase idle;
    idle.duration_ms = std::max(2.0, cycle * (1.0 - duty));
    idle.cpu_util =
        std::clamp(util_idle + rng.normal(0.0, util_jitter), 0.0, 1.0);
    idle.mem_intensity =
        std::clamp(0.5 * mem_intensity + rng.normal(0.0, 0.02), 0.0, 1.0);
    idle.branch_irregularity = active.branch_irregularity;
    workload.phases.push_back(idle);
    elapsed += idle.duration_ms;
  }
  return workload;
}

HpcWindow HpcAppProfile::sample_window(Rng& rng) const {
  const double window_util =
      std::clamp(util + rng.normal(0.0, spread), 0.02, 1.0);
  const double window_mem =
      std::clamp(mem + rng.normal(0.0, 0.6 * spread), 0.0, 1.0);
  const double window_branch =
      std::clamp(branch + rng.normal(0.0, 0.6 * spread), 0.0, 1.0);
  const double freq = std::clamp(rng.normal(0.70, 0.12), 0.4, 1.0);

  HpcWindow window;
  window.cycles = 1.0e7 * freq;
  const double ipc = std::max(
      0.1, 1.8 * window_util * (1.0 - 0.5 * window_mem) +
               rng.normal(0.0, 0.05));
  window.instructions = window.cycles * ipc;
  window.branches = window.instructions * 0.18;
  window.branch_misses =
      window.branches *
      std::clamp(0.02 + 0.1 * window_branch + rng.normal(0.0, 0.004), 0.0,
                 1.0);
  window.cache_references = window.instructions * 0.32;
  window.cache_misses =
      window.cache_references *
      std::clamp(0.03 + 0.25 * window_mem + rng.normal(0.0, 0.01), 0.0,
                 1.0);
  window.mem_accesses = window.instructions * 0.27 * window_mem;
  window.page_faults =
      std::max(0.0, 20.0 * window_mem + rng.normal(0.0, 3.0));
  return window;
}

// ---------------------------------------------------------------------------
// DVFS rosters. Benign rhythms live in the low/mid utilisation band,
// known malware pegs the top states, and the zero-day roster occupies the
// mid-high band (~0.60-0.75) that neither training class visits.

const std::vector<AppProfile>& dvfs_benign_apps() {
  static const std::vector<AppProfile> apps = {
      {"browser", 0, 0.45, 0.08, 0.05, 90.0, 0.45, 0.35, 0.40},
      {"video_player", 0, 0.38, 0.15, 0.04, 40.0, 0.75, 0.45, 0.20},
      {"audio_stream", 0, 0.18, 0.05, 0.03, 25.0, 0.60, 0.20, 0.15},
      {"game_2d", 0, 0.55, 0.20, 0.05, 60.0, 0.65, 0.40, 0.45},
      {"maps_nav", 0, 0.42, 0.12, 0.05, 120.0, 0.50, 0.50, 0.35},
      {"camera_app", 0, 0.50, 0.18, 0.04, 35.0, 0.80, 0.55, 0.25},
      {"messaging", 0, 0.30, 0.05, 0.05, 150.0, 0.30, 0.25, 0.30},
      {"sync_daemon", 0, 0.25, 0.06, 0.04, 200.0, 0.35, 0.30, 0.20},
  };
  return apps;
}

const std::vector<AppProfile>& dvfs_malware_apps() {
  static const std::vector<AppProfile> apps = {
      {"cryptominer", 1, 0.97, 0.90, 0.02, 100.0, 0.95, 0.60, 0.30},
      {"ransomware_enc", 1, 0.92, 0.75, 0.04, 70.0, 0.85, 0.75, 0.40},
      {"adware_flood", 1, 0.88, 0.70, 0.05, 50.0, 0.80, 0.45, 0.60},
      {"sms_trojan", 1, 0.90, 0.65, 0.04, 140.0, 0.75, 0.40, 0.50},
      {"botnet_ddos", 1, 0.95, 0.80, 0.03, 30.0, 0.90, 0.35, 0.55},
  };
  return apps;
}

const std::vector<AppProfile>& dvfs_unknown_apps() {
  static const std::vector<AppProfile> apps = {
      {"throttled_miner", 1, 0.68, 0.55, 0.04, 90.0, 0.85, 0.55, 0.35},
      {"duty_cycled_miner", 1, 0.72, 0.35, 0.05, 45.0, 0.55, 0.60, 0.30},
      {"stealth_exfil", 1, 0.62, 0.50, 0.04, 160.0, 0.70, 0.45, 0.45},
      {"covert_crypter", 1, 0.66, 0.45, 0.05, 60.0, 0.65, 0.70, 0.40},
  };
  return apps;
}

// ---------------------------------------------------------------------------
// HPC rosters. The class centres differ by well under the within-app
// spread, so benign and malware windows overlap heavily, and the unknown
// roster is drawn from inside that overlap — zero-days are
// in-distribution for this sensor (Fig. 5 / Fig. 9b).

const std::vector<HpcAppProfile>& hpc_benign_apps() {
  static const std::vector<HpcAppProfile> apps = {
      {"browser", 0, 0.40, 0.30, 0.30, 0.18},
      {"video_player", 0, 0.48, 0.42, 0.22, 0.16},
      {"game_2d", 0, 0.55, 0.38, 0.40, 0.18},
      {"office_suite", 0, 0.35, 0.25, 0.35, 0.17},
      {"photo_editor", 0, 0.52, 0.45, 0.28, 0.18},
      {"file_indexer", 0, 0.45, 0.50, 0.25, 0.16},
  };
  return apps;
}

const std::vector<HpcAppProfile>& hpc_malware_apps() {
  static const std::vector<HpcAppProfile> apps = {
      {"spyware_keylog", 1, 0.50, 0.38, 0.42, 0.18},
      {"rootkit_hook", 1, 0.58, 0.45, 0.38, 0.17},
      {"worm_scanner", 1, 0.62, 0.40, 0.45, 0.18},
      {"trojan_dropper", 1, 0.55, 0.52, 0.35, 0.17},
      {"backdoor_shell", 1, 0.48, 0.42, 0.48, 0.18},
  };
  return apps;
}

const std::vector<HpcAppProfile>& hpc_unknown_apps() {
  static const std::vector<HpcAppProfile> apps = {
      {"zero_day_miner", 1, 0.56, 0.44, 0.40, 0.17},
      {"zero_day_stealer", 1, 0.52, 0.40, 0.44, 0.18},
      {"zero_day_wiper", 1, 0.58, 0.48, 0.37, 0.17},
      {"zero_day_rat", 1, 0.50, 0.43, 0.42, 0.18},
  };
  return apps;
}

}  // namespace hmd::sim
