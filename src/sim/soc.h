#pragma once
// Behavioural SoC simulator: a DVFS governor responding to a workload's
// utilisation trace, plus hardware performance counter (HPC) windows.
// The DVFS-based HMD observes only the governor state sequence — the
// signature is the governor's *response* to the workload, which is why
// pinned policies (performance/powersave) destroy the signal (ablation
// A5).

#include <string>
#include <vector>

#include "common/rng.h"

namespace hmd::sim {

struct SocParams {
  /// Governor policy: "ondemand", "conservative", "performance",
  /// "powersave".
  std::string governor = "ondemand";
  int n_states = 8;               ///< DVFS frequency states 0..n-1
  double sample_period_ms = 1.0;  ///< governor decision interval
  double up_threshold = 0.80;     ///< ondemand jump-to-max utilisation
  double down_threshold = 0.30;   ///< ondemand step-down utilisation
  double util_noise = 0.04;       ///< measurement noise on utilisation
  double hpc_window_ms = 10.0;    ///< HPC aggregation window
};

/// One workload phase with stationary behaviour.
struct Phase {
  double duration_ms = 10.0;
  double cpu_util = 0.5;             ///< mean utilisation in [0, 1]
  double mem_intensity = 0.3;        ///< memory traffic per instruction
  double branch_irregularity = 0.3;  ///< branch misprediction propensity
};

struct Workload {
  std::vector<Phase> phases;

  double total_duration_ms() const {
    double total = 0.0;
    for (const auto& phase : phases) total += phase.duration_ms;
    return total;
  }
};

/// Aggregated hardware counters over one window.
struct HpcWindow {
  double instructions = 0.0;
  double cycles = 0.0;
  double cache_references = 0.0;
  double cache_misses = 0.0;
  double branches = 0.0;
  double branch_misses = 0.0;
  double mem_accesses = 0.0;
  double page_faults = 0.0;
};

struct Trace {
  int n_states = 0;
  std::vector<int> states;            ///< governor state per sample period
  std::vector<double> utilisation;    ///< observed utilisation per period
  std::vector<HpcWindow> hpc_windows;
};

class SocSim {
 public:
  SocSim() = default;
  explicit SocSim(SocParams params);

  /// Simulate the workload and return the full trace.
  Trace run(const Workload& workload, Rng& rng) const;

  const SocParams& params() const { return params_; }

 private:
  int next_state(int state, double util) const;

  SocParams params_;
};

}  // namespace hmd::sim
