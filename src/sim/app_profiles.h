#pragma once
// Application rosters behind the Table I datasets. A DVFS profile is a
// stochastic workload generator whose utilisation rhythm the governor
// transduces into state sequences; an HPC profile is a counter-window
// distribution. Benign and malware DVFS families separate cleanly, the
// DVFS zero-day roster occupies a utilisation band the training rosters
// never visit (OOD), and the HPC rosters overlap heavily — the three
// geometries the paper's figures hinge on.

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/soc.h"

namespace hmd::sim {

/// Workload generator for one application.
struct AppProfile {
  std::string name;
  int label = 0;  ///< 0 = benign, 1 = malware
  // Active/idle duty cycle: active bursts at util_active, gaps near
  // util_idle, alternating with the given period and duty fraction.
  double util_active = 0.5;
  double util_idle = 0.1;
  double util_jitter = 0.05;
  double period_ms = 80.0;
  double duty = 0.5;
  double mem_intensity = 0.3;
  double branch_irregularity = 0.3;

  /// Draw ~target_ms worth of phases.
  Workload sample(Rng& rng, double target_ms = 400.0) const;
};

/// Counter-window distribution for one application (HPC dataset).
struct HpcAppProfile {
  std::string name;
  int label = 0;
  double util = 0.5;     ///< mean utilisation driving instruction volume
  double mem = 0.3;      ///< cache-pressure centre
  double branch = 0.3;   ///< branch-irregularity centre
  double spread = 0.18;  ///< within-app variability (the overlap knob)

  HpcWindow sample_window(Rng& rng) const;
};

// DVFS dataset rosters (train/test share these...)
const std::vector<AppProfile>& dvfs_benign_apps();
const std::vector<AppProfile>& dvfs_malware_apps();
// ...and the zero-day roster is disjoint from both.
const std::vector<AppProfile>& dvfs_unknown_apps();

// HPC dataset rosters; benign and malware distributions overlap, and the
// unknown roster sits inside the overlap region.
const std::vector<HpcAppProfile>& hpc_benign_apps();
const std::vector<HpcAppProfile>& hpc_malware_apps();
const std::vector<HpcAppProfile>& hpc_unknown_apps();

}  // namespace hmd::sim
