#include "sim/soc.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hmd::sim {

SocSim::SocSim(SocParams params) : params_(std::move(params)) {
  HMD_REQUIRE(params_.n_states >= 2, "SocSim: need >= 2 DVFS states");
  HMD_REQUIRE(params_.governor == "ondemand" ||
                  params_.governor == "conservative" ||
                  params_.governor == "performance" ||
                  params_.governor == "powersave",
              "SocSim: unknown governor policy");
}

int SocSim::next_state(int state, double util) const {
  const int top = params_.n_states - 1;
  if (params_.governor == "performance") return top;
  if (params_.governor == "powersave") return 0;
  const int target = static_cast<int>(
      std::lround(util * static_cast<double>(top)));
  if (params_.governor == "conservative") {
    // One step toward the demand at a time.
    if (target > state) return state + 1;
    if (target < state) return state - 1;
    return state;
  }
  // ondemand: jump straight to max on high demand, decay gradually,
  // otherwise track the demand proportionally.
  if (util > params_.up_threshold) return top;
  if (util < params_.down_threshold) return std::max(0, state - 1);
  return target;
}

Trace SocSim::run(const Workload& workload, Rng& rng) const {
  HMD_REQUIRE(!workload.phases.empty(), "SocSim::run: empty workload");
  Trace trace;
  trace.n_states = params_.n_states;

  const double top = params_.n_states - 1;
  int state = 0;
  HpcWindow window;
  double window_elapsed_ms = 0.0;

  for (const auto& phase : workload.phases) {
    const auto n_steps = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(phase.duration_ms / params_.sample_period_ms)));
    for (std::size_t step = 0; step < n_steps; ++step) {
      const double util = std::clamp(
          phase.cpu_util + rng.normal(0.0, params_.util_noise), 0.0, 1.0);
      state = std::clamp(next_state(state, util), 0, params_.n_states - 1);
      trace.states.push_back(state);
      trace.utilisation.push_back(util);

      // Counter micro-model: work scales with utilisation and the
      // frequency the governor granted; stalls scale with memory traffic.
      const double freq = 0.4 + 0.6 * static_cast<double>(state) / top;
      const double cycles = 1.0e6 * freq * params_.sample_period_ms;
      const double ipc =
          std::max(0.1, 1.8 * util * (1.0 - 0.5 * phase.mem_intensity) +
                            rng.normal(0.0, 0.05));
      const double instructions = cycles * ipc;
      window.cycles += cycles;
      window.instructions += instructions;
      window.branches += instructions * 0.18;
      window.branch_misses +=
          instructions * 0.18 *
          std::clamp(0.02 + 0.1 * phase.branch_irregularity +
                         rng.normal(0.0, 0.004),
                     0.0, 1.0);
      window.cache_references += instructions * 0.32;
      window.cache_misses +=
          instructions * 0.32 *
          std::clamp(0.03 + 0.25 * phase.mem_intensity +
                         rng.normal(0.0, 0.01),
                     0.0, 1.0);
      window.mem_accesses += instructions * 0.27 * phase.mem_intensity;
      window.page_faults +=
          std::max(0.0, phase.mem_intensity * 2.0 + rng.normal(0.0, 0.3));

      window_elapsed_ms += params_.sample_period_ms;
      if (window_elapsed_ms >= params_.hpc_window_ms) {
        trace.hpc_windows.push_back(window);
        window = HpcWindow{};
        window_elapsed_ms = 0.0;
      }
    }
  }
  if (window_elapsed_ms > 0.0) trace.hpc_windows.push_back(window);
  return trace;
}

}  // namespace hmd::sim
