#pragma once
// Feature extraction from hardware performance counter windows: the
// derived rates (IPC, miss rates, memory traffic) the HPC-based HMD
// classifies on.

#include <vector>

#include "sim/soc.h"

namespace hmd::features {

class HpcFeaturizer {
 public:
  static std::size_t n_features() { return 8; }

  std::vector<double> features(const sim::HpcWindow& window) const;
};

}  // namespace hmd::features
