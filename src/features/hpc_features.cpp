#include "features/hpc_features.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hmd::features {

std::vector<double> HpcFeaturizer::features(
    const sim::HpcWindow& window) const {
  HMD_REQUIRE(window.cycles > 0.0, "HpcFeaturizer: empty window");
  const double instructions = std::max(window.instructions, 1.0);
  std::vector<double> out;
  out.reserve(n_features());
  out.push_back(window.instructions / window.cycles);  // IPC
  out.push_back(window.cache_misses /
                std::max(window.cache_references, 1.0));
  out.push_back(window.branch_misses / std::max(window.branches, 1.0));
  out.push_back(window.cache_references / instructions);
  out.push_back(window.mem_accesses / instructions);
  out.push_back(window.page_faults / (instructions * 1e-6));
  out.push_back(std::log(instructions));
  out.push_back(std::log(std::max(window.mem_accesses, 1.0)));
  return out;
}

}  // namespace hmd::features
