#include "features/dvfs_features.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hmd::features {

std::size_t DvfsFeaturizer::n_features(int n_states) {
  return static_cast<std::size_t>(n_states) + 6;
}

std::vector<double> DvfsFeaturizer::features(const sim::Trace& trace) const {
  HMD_REQUIRE(!trace.states.empty() && trace.n_states >= 2,
              "DvfsFeaturizer: empty trace");
  const auto n = static_cast<double>(trace.states.size());
  const int top = trace.n_states - 1;

  std::vector<double> residency(static_cast<std::size_t>(trace.n_states),
                                0.0);
  double sum = 0.0, sum_sq = 0.0, transitions = 0.0;
  std::size_t longest_top_run = 0, current_top_run = 0;
  for (std::size_t i = 0; i < trace.states.size(); ++i) {
    const int state = trace.states[i];
    residency[static_cast<std::size_t>(state)] += 1.0;
    const double s = static_cast<double>(state) / static_cast<double>(top);
    sum += s;
    sum_sq += s * s;
    if (i > 0) transitions += trace.states[i] != trace.states[i - 1];
    if (state == top) {
      ++current_top_run;
      longest_top_run = std::max(longest_top_run, current_top_run);
    } else {
      current_top_run = 0;
    }
  }
  for (auto& r : residency) r /= n;

  const double mean_state = sum / n;
  const double var_state = std::max(0.0, sum_sq / n - mean_state * mean_state);

  std::vector<double> out;
  out.reserve(n_features(trace.n_states));
  out.insert(out.end(), residency.begin(), residency.end());
  out.push_back(mean_state);
  out.push_back(std::sqrt(var_state));
  out.push_back(transitions / n);
  out.push_back(residency.back());                       // top-state share
  out.push_back(residency.front());                      // idle-state share
  out.push_back(static_cast<double>(longest_top_run) / n);
  return out;
}

}  // namespace hmd::features
