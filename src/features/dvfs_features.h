#pragma once
// Feature extraction from DVFS state traces. The detector observes only
// the governor's state sequence (the paper's DVFS sensor): residency
// histogram plus temporal statistics of the state signal.

#include <vector>

#include "sim/soc.h"

namespace hmd::features {

class DvfsFeaturizer {
 public:
  /// Number of emitted features for a trace with `n_states` states.
  static std::size_t n_features(int n_states);

  /// Featurize one trace: per-state residency histogram, normalised mean
  /// and dispersion, transition statistics and run-length structure.
  std::vector<double> features(const sim::Trace& trace) const;
};

}  // namespace hmd::features
