#pragma once
// Vectorised transcendental kernels with a proven accuracy bound — the
// fast tier of the two-tier accuracy contract (api/score.h).
//
// ## What these are
//
// Array forms of exp / log / sigmoid / binary entropy, written as fully
// branchless straight-line code (fdlibm-style range reduction +
// polynomial, with every special case folded into lane-wise selects) and
// compiled once per ISA level: the same source builds as a scalar
// x86-64-baseline translation unit, an AVX2 unit, and an AVX-512 unit
// (see CMakeLists.txt), so the compiler's vectoriser emits 2/4/8-lane
// double code from one definition. kernels() returns the table matching
// simd::active_isa() — engines capture it once at construction.
//
// ## The accuracy contract
//
//  - exp_array / log_array: each element is within 2 units in the last
//    place (ULP) of the correctly rounded result, lane position
//    irrelevant. The core approximations (fdlibm's) are sub-ulp; the
//    budget covers the one extra rounding the two-step 2^k scaling pays
//    when exp underflows into the denormal range. Special values are
//    exact: exp(±0)=1, exp(-inf)=0, exp(+inf)=+inf, log(±0)=-inf,
//    log(1)=0, log(+inf)=+inf, log of a negative is NaN, NaN propagates.
//    Denormal inputs are handled at full precision (log pre-scales by
//    2^54; exp produces denormals through the two-step scaling).
//  - sigmoid_array: matches the exact tier's saturation shortcuts
//    *exactly* — t >= 40 yields 1.0 and t <= -745 yields 0.0, the same
//    thresholds (and the same bit patterns) FlatLinearEngine's reference
//    link_probability produces. Between the thresholds the value is
//    1/(1+exp(-t)) with the fast exp: ≤ 2 ULP from exp plus one
//    rounding each for the add and divide.
//  - binary_entropy_array: H(p) = -p·ln(p) - (1-p)·ln(1-p) in nats with
//    H(p)=0 for p outside (0,1), composed from the fast log.
//
// All four are deterministic: the same input array yields the same bits
// on every call and every ISA level. The whole library is built with
// -ffp-contract=off, so the scalar, AVX2, and AVX-512 builds of the one
// shared kernel body execute identical IEEE-754 operation sequences —
// lane-for-lane bit parity across levels is by construction, and
// tests/test_simd.cpp asserts it.
//
// ## Who uses them
//
// Accuracy::kFast requests only (core/inference_engine.h). The exact
// tier never calls into this header — its bit-parity-with-libm contract
// is untouched.

#include <cstddef>

#include "simd/cpu.h"

namespace hmd::simd {

/// One ISA level's kernel table. All functions write out[i] = f(in[i])
/// for i in [0, n); in and out may alias exactly (in == out) but must
/// not partially overlap.
struct VmathKernels {
  using ArrayFn = void (*)(const double* in, double* out, std::size_t n);

  ArrayFn exp_array = nullptr;
  ArrayFn log_array = nullptr;
  ArrayFn sigmoid_array = nullptr;
  ArrayFn binary_entropy_array = nullptr;
  /// The level the table was compiled for (isa_name() of it appears in
  /// serving logs and the bench metadata).
  IsaLevel level = IsaLevel::kScalar;
};

/// The kernel table for simd::active_isa() right now. Engines call this
/// once at construction and keep the reference (tables are immutable
/// statics with process lifetime).
const VmathKernels& kernels();

/// The kernel table for a specific level, clamped to detected_isa() —
/// asking for a level the host cannot execute returns the best legal
/// table, never an illegal-instruction trap.
const VmathKernels& kernels(IsaLevel level);

}  // namespace hmd::simd
