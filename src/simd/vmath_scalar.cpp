// The x86-64-baseline (SSE2) build of the shared vmath kernel body — the
// forced-fallback level (HMD_SIMD=scalar / --simd=scalar) and the only
// level on non-x86 targets. On x86 hosts CMakeLists.txt compiles this
// unit with -march=x86-64, overriding any -march=native, so "scalar" is
// a true lowest-common-denominator build, not the host's.
#define HMD_VMATH_ISA_NS scalar_kernels
#define HMD_VMATH_ISA_LEVEL ::hmd::simd::IsaLevel::kScalar
#include "simd/vmath_kernels.inc"
