#pragma once
// Runtime ISA detection for the vectorised math kernels (simd/vmath.h).
//
// One CPUID/xgetbv probe at first use classifies the host into a small
// ladder of ISA levels; every engine picks its kernel table from the
// *active* level at construction (the same construction-time dispatch
// shape as the forest JIT's kernel table, so the two compose). Three
// knobs, strongest first:
//
//   --simd=scalar|avx2|avx512   (serving tools; set_isa_override())
//   HMD_SIMD=scalar|avx2|avx512 (environment)
//   hardware detection          (CPUID leaf 1 + leaf 7, xgetbv OS state)
//
// An override can only lower the level, never raise it past what the
// hardware (and the OS's saved-register state) supports: requesting
// avx512 on an AVX2 host clamps to avx2 and is reported as such, not an
// error — forced *fallback* is the testing contract (the HMD_SIMD=scalar
// CI leg), forced illegal instructions are not. On non-x86-64 builds
// detection always answers kScalar and the overrides are no-ops.
//
// Safety: the per-ISA kernel translation units are compiled with their
// level's -m flags (see CMakeLists.txt), so a kernel must only run when
// detection proves its level. The scalar kernels are compiled at the
// x86-64 baseline (not the build host's -march=native) so the scalar
// level is a true lowest-common-denominator fallback.

#include <optional>
#include <string_view>

namespace hmd::simd {

/// The kernel ISA ladder, lowest first. Values are ordered: a level
/// serves on any host whose detected level is >= it.
enum class IsaLevel : int {
  kScalar = 0,  ///< x86-64 baseline (SSE2) or any non-x86 target
  kAvx2 = 1,    ///< AVX2 + FMA, OS YMM state saved
  kAvx512 = 2,  ///< AVX-512 F/DQ/VL/BW, OS ZMM state saved
};

/// Short display name: "scalar" / "avx2" / "avx512".
const char* isa_name(IsaLevel level);

/// Parse a user spelling of an ISA level (the --simd flag and HMD_SIMD
/// environment values). Unknown spellings return nullopt.
std::optional<IsaLevel> parse_isa(std::string_view text);

/// The hardware's capability as probed by CPUID/xgetbv (cached after the
/// first call). Ignores overrides.
IsaLevel detected_isa();

/// The level kernels actually dispatch on: detection clamped by the
/// HMD_SIMD environment variable and any set_isa_override(). Engines
/// read this once at construction.
IsaLevel active_isa();

/// Programmatic override (the serving tools' --simd flag). Takes
/// precedence over HMD_SIMD; nullopt restores env-then-detection.
/// Affects engines constructed afterwards, not live ones.
void set_isa_override(std::optional<IsaLevel> level);

}  // namespace hmd::simd
