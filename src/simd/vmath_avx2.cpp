// The AVX2 build of the shared vmath kernel body: compiled with
// -march=x86-64 -mavx2 -mfma (CMakeLists.txt) so the vectoriser emits
// 4-lane double code, while the explicit baseline keeps the unit honest
// on hosts whose -march=native would imply more. Only dispatched when
// CPUID proves AVX2+FMA and the OS saves YMM state (simd/cpu.cpp).
#define HMD_VMATH_ISA_NS avx2_kernels
#define HMD_VMATH_ISA_LEVEL ::hmd::simd::IsaLevel::kAvx2
#include "simd/vmath_kernels.inc"
