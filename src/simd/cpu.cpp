#include "simd/cpu.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define HMD_SIMD_X86_64 1
#else
#define HMD_SIMD_X86_64 0
#endif

namespace hmd::simd {

namespace {

#if HMD_SIMD_X86_64

/// XCR0 via xgetbv — which register state the OS saves/restores. CPUID
/// alone is not enough: a kernel that does not context-switch ZMM state
/// makes AVX-512 unusable even on capable silicon.
std::uint64_t read_xcr0() {
  std::uint32_t lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

IsaLevel probe_hardware() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return IsaLevel::kScalar;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx) return IsaLevel::kScalar;
  const std::uint64_t xcr0 = read_xcr0();
  const bool ymm_saved = (xcr0 & 0x6) == 0x6;          // XMM + YMM
  const bool zmm_saved = (xcr0 & 0xe6) == 0xe6;        // + opmask/ZMM
  if (!ymm_saved) return IsaLevel::kScalar;

  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) == 0) {
    return IsaLevel::kScalar;
  }
  const bool avx2 = (ebx7 & (1u << 5)) != 0;
  if (!avx2 || !fma) return IsaLevel::kScalar;

  const bool avx512f = (ebx7 & (1u << 16)) != 0;
  const bool avx512dq = (ebx7 & (1u << 17)) != 0;
  const bool avx512bw = (ebx7 & (1u << 30)) != 0;
  const bool avx512vl = (ebx7 & (1u << 31)) != 0;
  if (zmm_saved && avx512f && avx512dq && avx512bw && avx512vl) {
    return IsaLevel::kAvx512;
  }
  return IsaLevel::kAvx2;
}

#else

IsaLevel probe_hardware() { return IsaLevel::kScalar; }

#endif  // HMD_SIMD_X86_64

/// Programmatic override slot. Encoded as int: -1 = none. Relaxed is
/// enough — the flag is set during single-threaded tool startup and only
/// read at engine construction.
std::atomic<int> g_override{-1};

IsaLevel env_clamp(IsaLevel detected) {
  const char* env = std::getenv("HMD_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  const std::optional<IsaLevel> wanted = parse_isa(env);
  if (!wanted) return detected;  // unknown spelling: ignore, stay detected
  return *wanted < detected ? *wanted : detected;
}

}  // namespace

const char* isa_name(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar: return "scalar";
    case IsaLevel::kAvx2: return "avx2";
    case IsaLevel::kAvx512: return "avx512";
  }
  return "scalar";
}

std::optional<IsaLevel> parse_isa(std::string_view text) {
  if (text == "scalar" || text == "off") return IsaLevel::kScalar;
  if (text == "avx2") return IsaLevel::kAvx2;
  if (text == "avx512") return IsaLevel::kAvx512;
  return std::nullopt;
}

IsaLevel detected_isa() {
  static const IsaLevel level = probe_hardware();
  return level;
}

IsaLevel active_isa() {
  const IsaLevel detected = detected_isa();
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const auto wanted = static_cast<IsaLevel>(forced);
    return wanted < detected ? wanted : detected;
  }
  return env_clamp(detected);
}

void set_isa_override(std::optional<IsaLevel> level) {
  g_override.store(level ? static_cast<int>(*level) : -1,
                   std::memory_order_relaxed);
}

}  // namespace hmd::simd
