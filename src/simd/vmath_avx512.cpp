// The AVX-512 build of the shared vmath kernel body: compiled with
// -march=x86-64 -mavx512f -mavx512dq -mavx512vl -mavx512bw
// (CMakeLists.txt) for 8-lane double code with native 64-bit arithmetic
// shifts and int64 conversions. Only dispatched when CPUID proves the
// F/DQ/VL/BW subsets and the OS saves ZMM state (simd/cpu.cpp).
#define HMD_VMATH_ISA_NS avx512_kernels
#define HMD_VMATH_ISA_LEVEL ::hmd::simd::IsaLevel::kAvx512
#include "simd/vmath_kernels.inc"
