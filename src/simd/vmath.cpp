#include "simd/vmath.h"

namespace hmd::simd {

// The three per-ISA builds of the one kernel body (vmath_kernels.inc).
namespace scalar_kernels {
const VmathKernels& table();
}
namespace avx2_kernels {
const VmathKernels& table();
}
namespace avx512_kernels {
const VmathKernels& table();
}

const VmathKernels& kernels(IsaLevel level) {
  // Clamp to what the host can actually execute: the AVX2/AVX-512 units
  // are compiled with their level's -m flags, so running one on a
  // lesser host would be an illegal instruction, not a slow path.
  const IsaLevel detected = detected_isa();
  const IsaLevel safe = level < detected ? level : detected;
  switch (safe) {
    case IsaLevel::kAvx512: return avx512_kernels::table();
    case IsaLevel::kAvx2: return avx2_kernels::table();
    case IsaLevel::kScalar: break;
  }
  return scalar_kernels::table();
}

const VmathKernels& kernels() { return kernels(active_isa()); }

}  // namespace hmd::simd
