#include "core/uncertainty.h"

#include <algorithm>

#include "common/error.h"
#include "core/inference_engine.h"

namespace hmd::core {

std::string uncertainty_mode_name(UncertaintyMode mode) {
  switch (mode) {
    case UncertaintyMode::kVoteEntropy: return "vote_entropy";
    case UncertaintyMode::kSoftEntropy: return "soft_entropy";
    case UncertaintyMode::kExpectedEntropy: return "expected_entropy";
    case UncertaintyMode::kMutualInformation: return "mutual_information";
    case UncertaintyMode::kVariationRatio: return "variation_ratio";
    case UncertaintyMode::kMaxProbability: return "max_probability";
  }
  throw InvalidArgument("uncertainty_mode_name: bad mode");
}

VoteEntropyTable::VoteEntropyTable(int n_members) {
  HMD_REQUIRE(n_members >= 1, "VoteEntropyTable: n_members must be >= 1");
  table_.resize(static_cast<std::size_t>(n_members) + 1);
  for (int k = 0; k <= n_members; ++k) {
    table_[static_cast<std::size_t>(k)] = binary_entropy(
        static_cast<double>(k) / static_cast<double>(n_members));
  }
}

double uncertainty_score(UncertaintyMode mode, const EnsembleStats& stats,
                         int n_members, const VoteEntropyTable* lut) {
  const double m = static_cast<double>(n_members);
  switch (mode) {
    case UncertaintyMode::kVoteEntropy:
      return lut != nullptr
                 ? (*lut)[stats.votes1]
                 : binary_entropy(static_cast<double>(stats.votes1) / m);
    case UncertaintyMode::kSoftEntropy:
      return binary_entropy(stats.sum_p1 / m);
    case UncertaintyMode::kExpectedEntropy:
      return stats.sum_entropy / m;
    case UncertaintyMode::kMutualInformation:
      return binary_entropy(stats.sum_p1 / m) - stats.sum_entropy / m;
    case UncertaintyMode::kVariationRatio: {
      const auto votes = static_cast<double>(stats.votes1);
      return 1.0 - std::max(votes, m - votes) / m;
    }
    case UncertaintyMode::kMaxProbability: {
      const double p1 = stats.sum_p1 / m;
      return 1.0 - std::max(p1, 1.0 - p1);
    }
  }
  throw InvalidArgument("uncertainty_score: bad mode");
}

EnsembleStats accumulate_stats(const std::vector<double>& probabilities) {
  EnsembleStats stats;
  for (const double p1 : probabilities) {
    stats.votes1 += p1 > 0.5;
    stats.sum_p1 += p1;
    stats.sum_entropy += binary_entropy(p1);
  }
  return stats;
}

UncertaintyEstimator::UncertaintyEstimator(EnsembleView view)
    : view_(view) {
  HMD_REQUIRE(view_.ensemble().fitted(),
              "UncertaintyEstimator: ensemble not fitted");
}

EnsembleStats UncertaintyEstimator::reference_stats(RowView x) const {
  std::vector<double> probabilities;
  view_.ensemble().member_probabilities(x, probabilities);
  return accumulate_stats(probabilities);
}

std::vector<double> UncertaintyEstimator::scores(
    const Matrix& x, UncertaintyMode mode) const {
  const auto n_members =
      static_cast<int>(view_.ensemble().n_members());
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(uncertainty_score(mode, reference_stats(x.row(r)),
                                    n_members, nullptr));
  }
  return out;
}

}  // namespace hmd::core
