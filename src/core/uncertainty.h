#pragma once
// Ensemble uncertainty scores (Section IV of the paper, plus the soft
// decomposition of the A3 ablation) and the reference estimator used for
// parity-checking the flat engine.

#include <cmath>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "ml/bagging.h"

namespace hmd::core {

struct EnsembleStats;

enum class UncertaintyMode {
  kVoteEntropy,        ///< H of the hard-vote fraction (the paper's score)
  kSoftEntropy,        ///< H of the mean member posterior
  kExpectedEntropy,    ///< mean member entropy (aleatoric)
  kMutualInformation,  ///< soft - expected (epistemic)
  kVariationRatio,     ///< 1 - modal vote fraction
  kMaxProbability,     ///< 1 - max mean-posterior probability
};

std::string uncertainty_mode_name(UncertaintyMode mode);

/// Does scoring under `mode` read EnsembleStats::sum_entropy? Callers that
/// only need votes / posterior sums pass this to the engine batch path so
/// it can skip per-member entropy work (a log() pair per member for
/// engines without precomputed leaf entropies).
inline bool uncertainty_mode_needs_entropy(UncertaintyMode mode) {
  return mode == UncertaintyMode::kExpectedEntropy ||
         mode == UncertaintyMode::kMutualInformation;
}

/// Does scoring under `mode` read EnsembleStats::sum_p1? Vote-based modes
/// never do, so a masked request under them lets the engine drop the
/// posterior accumulate as well.
inline bool uncertainty_mode_needs_posterior(UncertaintyMode mode) {
  return mode == UncertaintyMode::kSoftEntropy ||
         mode == UncertaintyMode::kMutualInformation ||
         mode == UncertaintyMode::kMaxProbability;
}

/// Binary entropy H(p) in nats; H(0) = H(1) = 0.
inline double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

/// O(1) vote entropy: h[k] = H(k / M) precomputed for k = 0..M. Entries
/// equal binary_entropy(k / M) exactly, so the table is a pure lookup
/// replacement for the log evaluation on the hot path.
class VoteEntropyTable {
 public:
  VoteEntropyTable() = default;
  explicit VoteEntropyTable(int n_members);

  double operator[](std::int32_t votes) const {
    return table_[static_cast<std::size_t>(votes)];
  }
  int n_members() const { return static_cast<int>(table_.size()) - 1; }

 private:
  std::vector<double> table_;
};

/// One uncertainty score from ensemble statistics. `lut`, when given, must
/// be sized for n_members and is used for the vote-entropy mode.
double uncertainty_score(UncertaintyMode mode, const EnsembleStats& stats,
                         int n_members, const VoteEntropyTable* lut);

/// Accumulate per-member P(class 1) values (in member order) into ensemble
/// statistics. This is the single definition of the vote / posterior /
/// entropy accumulation that the flat engine must reproduce bit-for-bit;
/// every non-flat path (reference estimator, linear-ensemble fallback)
/// goes through it.
EnsembleStats accumulate_stats(const std::vector<double>& probabilities);

/// Non-owning view of a trained ensemble, decoupling the estimator from
/// how the ensemble is hosted.
class EnsembleView {
 public:
  static EnsembleView of(const ml::Bagging& ensemble) {
    return EnsembleView(&ensemble);
  }
  const ml::Bagging& ensemble() const { return *ensemble_; }

 private:
  explicit EnsembleView(const ml::Bagging* ensemble) : ensemble_(ensemble) {}
  const ml::Bagging* ensemble_;
};

/// Reference (pointer-path) uncertainty scorer: queries members one sample
/// at a time. The flat engine must reproduce these values bit-for-bit.
class UncertaintyEstimator {
 public:
  explicit UncertaintyEstimator(EnsembleView view);

  /// Ensemble statistics for one sample via member-by-member queries.
  EnsembleStats reference_stats(RowView x) const;

  /// Scores for every row of x under the given mode.
  std::vector<double> scores(const Matrix& x, UncertaintyMode mode) const;

 private:
  EnsembleView view_;
};

}  // namespace hmd::core
