#pragma once
// Flattened inference engine for bagged linear members (logistic
// regression and Platt-scaled linear SVM).
//
// compile() packs all M trained members into one contiguous M×d weight
// matrix plus bias / Platt coefficient vectors, and keeps a transposed
// (d×M) copy of the weights for the batch kernel. The engine owns the
// standardisation moments the members were trained under, so — like every
// InferenceEngine — it consumes raw feature rows.
//
// stats_batch is a blocked matrix product: for each tile of rows, each row
// is standardised once into scratch, then the member pre-activations
// z[m] = Σ_c w[m][c]·xs[c] are accumulated feature-major over the
// transposed weights — the compiler vectorises across members (lanes are
// members, each lane's additions stay in ascending feature order, so every
// z is bit-identical to the reference dot_row). The link function then
// runs per member in ascending order, reproducing the reference
// expressions verbatim:
//
//   LR :  p = 1 / (1 + exp(-(z + bias)))
//   SVM:  p = 1 / (1 + exp(-t)),  t = -(platt_a·(z + bias) + platt_b)
//
// Two exactness shortcuts keep the hot path cheap without breaking
// bit-parity (proofs in the .cpp):
//   t >= 40   ⇒ p == 1.0 exactly (exp(-t) < 2^-53 vanishes into 1 + ε)
//   t <= -745 ⇒ p == 0.0 exactly (exp(-t) overflows to +inf)
// and EnsembleStats fields the caller's StatsMask never reads are skipped
// entirely: a vote-entropy detection drops the per-member log() pair of
// binary_entropy, a prediction-only request additionally drops the
// posterior accumulate (the sigmoid itself still runs — votes need p).
//
// Under the fast tier (StatsMask bit kStatsFastMath, i.e.
// Accuracy::kFast), the per-member sigmoid/entropy loop is replaced by
// the runtime-ISA-dispatched array kernels of simd/vmath.h: one
// sigmoid_array pass over the tile's link arguments and (when selected)
// one binary_entropy_array pass over the probabilities, each within
// 2 ULP of the exact value with the same saturation shortcuts applied
// exactly. Accumulation stays in member order, so fast-tier results are
// deterministic too. The dispatch table is captured at engine
// construction (like the forest's JIT kernel table) and shared by every
// tile.
//
// Tiles are distributed over the thread pool; each tile writes a disjoint
// output range, so results are deterministic for any worker count.
//
// Storage is view-based, like FlatForestEngine: every hot-path array —
// including the feature-major transpose, which the `.hmdf` v2 layout
// stores alongside the member-major weights precisely so the batch-kernel
// layout maps in place — is a std::span pointing either at engine-owned
// vectors (training / v1 stream load) or straight into a `.hmdf` v2
// ArtifactBuffer (from_buffer), which the engine pins via shared_ptr.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "common/mapped_file.h"
#include "common/matrix.h"
#include "core/inference_engine.h"
#include "ml/bagging.h"
#include "ml/preprocessing.h"
#include "simd/vmath.h"

namespace hmd::io {
class ByteReader;
}  // namespace hmd::io

namespace hmd::core {

class FlatLinearEngine final : public InferenceEngine {
 public:
  /// Which link function the members use. A compiled engine is
  /// homogeneous — mixed ensembles fall back to the reference path.
  enum class MemberKind : std::uint8_t { kLogistic = 0, kSvm = 1 };

  /// Pack a trained bagged LR / SVM ensemble. Returns nullptr when any
  /// member is not a linear model of a single kind, or when members were
  /// trained on feature subspaces (feature_fraction < 1) — the dense
  /// re-expansion would perturb accumulation order.
  static std::unique_ptr<FlatLinearEngine> compile(
      const ml::Bagging& ensemble, const ml::StandardScaler& scaler);

  /// Reconstruct from a save_blob() payload (standardisation moments
  /// included); throws IoError on truncation or inconsistent geometry.
  /// The engine owns its storage (the v1 stream path).
  static std::unique_ptr<FlatLinearEngine> load_blob(
      std::istream& in, const std::string& context);

  /// Reconstruct from a `.hmdf` v2 save_blob_v2() payload, viewing every
  /// array — the M×d weight matrix, its feature-major transpose, the
  /// bias / Platt / moment vectors — in place inside `keepalive`'s
  /// buffer. No copies, no transpose rebuild at load.
  static std::unique_ptr<FlatLinearEngine> from_buffer(
      io::ByteReader& in,
      std::shared_ptr<const io::ArtifactBuffer> keepalive);

  std::string name() const override {
    return kind_ == MemberKind::kLogistic ? "flat_linear_lr"
                                          : "flat_linear_svm";
  }
  EngineId engine_id() const override { return EngineId::kFlatLinear; }
  std::size_t n_members() const override { return n_members_; }
  EnsembleStats stats_one(RowView x) const override;
  void stats_batch(const Matrix& x, ThreadPool* pool,
                   std::vector<EnsembleStats>& out,
                   StatsMask mask) const override;
  void save_blob(std::ostream& out) const override;
  void save_blob_v2(io::AlignedWriter& out) const override;
  bool zero_copy() const override {
    return buffer_ != nullptr && buffer_->mapped();
  }
  std::size_t memory_bytes() const override {
    return (weights_.size() + weights_t_.size() + bias_.size() +
            platt_a_.size() + platt_b_.size() + means_.size() +
            scales_.size()) *
           sizeof(double);
  }

  MemberKind member_kind() const { return kind_; }
  std::size_t n_features() const override { return n_features_; }

  static constexpr std::size_t kTileRows = 256;

 private:
  /// Rebuild the feature-major weights_t_ copy from the member-major
  /// weights_ (after compile and after v1 load, so the two paths can
  /// never diverge on the batch-kernel layout; a v2 artifact carries the
  /// transpose on disk and maps it instead).
  void rebuild_transpose();

  /// Point the hot-path spans at the engine-owned storage vectors.
  void adopt_storage();

  template <bool kNeedPosterior, bool kNeedEntropy>
  void tile_kernel(const Matrix& x, std::size_t row_begin,
                   std::size_t row_end, EnsembleStats* out,
                   bool fast) const;

  MemberKind kind_ = MemberKind::kLogistic;
  std::size_t n_members_ = 0;
  std::size_t n_features_ = 0;

  /// Fast-tier kernel table, resolved for the active ISA once at engine
  /// construction (the in-class initialiser covers every construction
  /// path: compile, load_blob, from_buffer). Exact-tier requests never
  /// consult it.
  const simd::VmathKernels* vmath_ = &simd::kernels();

  // Hot-path views. Either into the storage vectors below (training /
  // v1 stream load) or straight into buffer_'s mapped bytes (v2 load).
  std::span<const double> weights_;    ///< member-major M×d (serialised)
  std::span<const double> weights_t_;  ///< feature-major d×M (batch kernel)
  std::span<const double> bias_;       ///< per-member intercept
  std::span<const double> platt_a_;    ///< SVM Platt slope (unused for LR)
  std::span<const double> platt_b_;    ///< SVM Platt offset (unused for LR)
  std::span<const double> means_;      ///< standardisation means
  std::span<const double> scales_;     ///< standardisation scales

  // Owned backing (empty for zero-copy engines).
  std::vector<double> weights_storage_;
  std::vector<double> weights_t_storage_;
  std::vector<double> bias_storage_;
  std::vector<double> platt_a_storage_;
  std::vector<double> platt_b_storage_;
  std::vector<double> means_storage_;
  std::vector<double> scales_storage_;
  /// Pins the mapped/read artifact bytes the spans view (null when the
  /// storage vectors back them).
  std::shared_ptr<const io::ArtifactBuffer> buffer_;
};

}  // namespace hmd::core
