#include "core/flat_linear.h"

#include <cmath>

#include "common/binary_io.h"
#include "common/error.h"
#include "core/thread_pool.h"
#include "core/uncertainty.h"
#include "ml/linear.h"

namespace hmd::core {

namespace {

// Exactness thresholds for the sigmoid shortcuts (see link_probability).
//
//   t >= 40: exp(-t) <= exp(-40) ≈ 4.25e-18, far below 2^-53 ≈ 1.11e-16
//   even for a libm off by many ulps, so fl(1 + exp(-t)) == 1.0 under
//   round-to-nearest (increments <= half an ulp of 1.0 vanish, ties go to
//   even) and p = 1/1 == 1.0 exactly — the value the full evaluation
//   would produce.
//
//   t <= -745: -t >= 745 > 709.79, past the IEEE-754 double overflow
//   bound of exp, so exp(-t) == +inf and p = 1/(1 + inf) == 0.0 exactly.
constexpr double kSigmoidOneAt = 40.0;
constexpr double kSigmoidZeroAt = -745.0;

/// The reference member probability, expression for expression:
/// sigmoid(t) = 1 / (1 + exp(-t)) with the exact shortcuts above.
inline double link_probability(double t) {
  if (t >= kSigmoidOneAt) return 1.0;
  if (t <= kSigmoidZeroAt) return 0.0;
  return 1.0 / (1.0 + std::exp(-t));
}

}  // namespace

std::unique_ptr<FlatLinearEngine> FlatLinearEngine::compile(
    const ml::Bagging& ensemble, const ml::StandardScaler& scaler) {
  HMD_REQUIRE(ensemble.fitted(),
              "FlatLinearEngine::compile: ensemble not fitted");
  HMD_REQUIRE(scaler.fitted(),
              "FlatLinearEngine::compile: scaler not fitted");

  const std::size_t n_members = ensemble.n_members();
  const std::size_t d = ensemble.n_features();
  HMD_REQUIRE(scaler.means().size() == d,
              "FlatLinearEngine::compile: scaler/ensemble width mismatch");

  auto engine = std::make_unique<FlatLinearEngine>();
  engine->n_members_ = n_members;
  engine->n_features_ = d;
  engine->weights_storage_.reserve(n_members * d);
  engine->bias_storage_.reserve(n_members);
  engine->platt_a_storage_.assign(n_members, 0.0);
  engine->platt_b_storage_.assign(n_members, 0.0);

  bool kind_known = false;
  for (std::size_t m = 0; m < n_members; ++m) {
    // Subspace members would need a dense re-expansion whose interleaved
    // zero terms change nothing numerically for finite features but are
    // not worth the parity argument — such ensembles keep the reference
    // path. (The detectors never configure feature_fraction < 1.)
    if (!ensemble.feature_map(m).empty()) return nullptr;

    const ml::Classifier& member = ensemble.member(m);
    MemberKind kind;
    const std::vector<double>* weights = nullptr;
    if (const auto* lr =
            dynamic_cast<const ml::LogisticRegression*>(&member)) {
      kind = MemberKind::kLogistic;
      weights = &lr->weights();
      engine->bias_storage_.push_back(lr->bias());
    } else if (const auto* svm = dynamic_cast<const ml::LinearSvm*>(&member)) {
      kind = MemberKind::kSvm;
      weights = &svm->weights();
      engine->bias_storage_.push_back(svm->bias());
      engine->platt_a_storage_[m] = svm->platt_a();
      engine->platt_b_storage_[m] = svm->platt_b();
    } else {
      return nullptr;
    }
    if (weights->size() != d) return nullptr;
    if (!kind_known) {
      engine->kind_ = kind;
      kind_known = true;
    } else if (engine->kind_ != kind) {
      return nullptr;  // mixed link functions: stay on the reference path
    }
    engine->weights_storage_.insert(engine->weights_storage_.end(),
                                    weights->begin(), weights->end());
  }

  engine->means_storage_ = scaler.means();
  engine->scales_storage_ = scaler.scales();
  engine->adopt_storage();
  engine->rebuild_transpose();
  return engine;
}

void FlatLinearEngine::adopt_storage() {
  weights_ = weights_storage_;
  weights_t_ = weights_t_storage_;
  bias_ = bias_storage_;
  platt_a_ = platt_a_storage_;
  platt_b_ = platt_b_storage_;
  means_ = means_storage_;
  scales_ = scales_storage_;
  buffer_ = nullptr;
}

void FlatLinearEngine::rebuild_transpose() {
  weights_t_storage_.assign(n_members_ * n_features_, 0.0);
  for (std::size_t m = 0; m < n_members_; ++m) {
    for (std::size_t c = 0; c < n_features_; ++c) {
      weights_t_storage_[c * n_members_ + m] =
          weights_[m * n_features_ + c];
    }
  }
  weights_t_ = weights_t_storage_;
}

void FlatLinearEngine::save_blob(std::ostream& out) const {
  io::write_pod(out, static_cast<std::uint8_t>(kind_));
  io::write_pod(out, static_cast<std::uint64_t>(n_members_));
  io::write_pod(out, static_cast<std::uint64_t>(n_features_));
  io::write_span(out, weights_.data(), weights_.size());
  io::write_span(out, bias_.data(), bias_.size());
  io::write_span(out, platt_a_.data(), platt_a_.size());
  io::write_span(out, platt_b_.data(), platt_b_.size());
  io::write_span(out, means_.data(), means_.size());
  io::write_span(out, scales_.data(), scales_.size());
}

void FlatLinearEngine::save_blob_v2(io::AlignedWriter& out) const {
  // Counts first, then every array on a 64-byte file offset. The
  // feature-major transpose is serialised too — it is derived data (like
  // the forest's leaf entropies), but carrying it on disk lets the batch
  // kernel's exact layout map in place, so a v2 load does no O(M·d)
  // rebuild at all.
  out.write_pod(static_cast<std::uint8_t>(kind_));
  out.write_pod(static_cast<std::uint64_t>(n_members_));
  out.write_pod(static_cast<std::uint64_t>(n_features_));
  for (const std::span<const double> array :
       {weights_, weights_t_, bias_, platt_a_, platt_b_, means_, scales_}) {
    out.pad_to(64);
    out.write_span(array.data(), array.size());
  }
}

std::unique_ptr<FlatLinearEngine> FlatLinearEngine::load_blob(
    std::istream& in, const std::string& context) {
  auto engine = std::make_unique<FlatLinearEngine>();
  std::uint8_t kind = 0;
  std::uint64_t n_members = 0, d = 0;
  io::read_pod(in, kind, context);
  io::read_pod(in, n_members, context);
  io::read_pod(in, d, context);
  if (kind > static_cast<std::uint8_t>(MemberKind::kSvm))
    throw LoadError(LoadErrorCode::kBadStructure, context,
                    "unknown linear member kind");
  if (n_members == 0 || d == 0 || n_members > (1u << 24) || d > (1u << 24))
    throw LoadError(LoadErrorCode::kBadStructure, context,
                    "implausible linear-engine geometry");
  engine->kind_ = static_cast<MemberKind>(kind);
  engine->n_members_ = static_cast<std::size_t>(n_members);
  engine->n_features_ = static_cast<std::size_t>(d);
  engine->weights_storage_.resize(engine->n_members_ * engine->n_features_);
  engine->bias_storage_.resize(engine->n_members_);
  engine->platt_a_storage_.resize(engine->n_members_);
  engine->platt_b_storage_.resize(engine->n_members_);
  engine->means_storage_.resize(engine->n_features_);
  engine->scales_storage_.resize(engine->n_features_);
  for (std::vector<double>* array :
       {&engine->weights_storage_, &engine->bias_storage_,
        &engine->platt_a_storage_, &engine->platt_b_storage_,
        &engine->means_storage_, &engine->scales_storage_}) {
    io::read_span(in, array->data(), array->size(), context);
  }
  engine->adopt_storage();
  engine->rebuild_transpose();
  return engine;
}

std::unique_ptr<FlatLinearEngine> FlatLinearEngine::from_buffer(
    io::ByteReader& in, std::shared_ptr<const io::ArtifactBuffer> keepalive) {
  auto engine = std::make_unique<FlatLinearEngine>();
  const auto kind = in.read_pod<std::uint8_t>();
  const auto n_members = in.read_pod<std::uint64_t>();
  const auto d = in.read_pod<std::uint64_t>();
  if (kind > static_cast<std::uint8_t>(MemberKind::kSvm))
    throw LoadError(LoadErrorCode::kBadStructure, in.context(),
                    "unknown linear member kind");
  if (n_members == 0 || d == 0 || n_members > (1u << 24) || d > (1u << 24))
    throw LoadError(LoadErrorCode::kBadStructure, in.context(),
                    "implausible linear-engine geometry");
  engine->kind_ = static_cast<MemberKind>(kind);
  engine->n_members_ = static_cast<std::size_t>(n_members);
  engine->n_features_ = static_cast<std::size_t>(d);
  const std::size_t m_by_d = engine->n_members_ * engine->n_features_;
  const auto view = [&](std::span<const double>& dst, std::size_t n) {
    in.align_to(64);
    dst = {in.view_span<double>(n), n};
  };
  view(engine->weights_, m_by_d);
  view(engine->weights_t_, m_by_d);
  view(engine->bias_, engine->n_members_);
  view(engine->platt_a_, engine->n_members_);
  view(engine->platt_b_, engine->n_members_);
  view(engine->means_, engine->n_features_);
  view(engine->scales_, engine->n_features_);
  engine->buffer_ = std::move(keepalive);
  return engine;
}

EnsembleStats FlatLinearEngine::stats_one(RowView x) const {
  HMD_REQUIRE(x.size() == n_features_,
              "FlatLinearEngine::stats_one: feature width mismatch");
  // Standardise exactly like StandardScaler::transform_row.
  std::vector<double> xs(n_features_);
  for (std::size_t c = 0; c < n_features_; ++c) {
    xs[c] = (x[c] - means_[c]) / scales_[c];
  }
  EnsembleStats stats;
  for (std::size_t m = 0; m < n_members_; ++m) {
    // dot_row: single accumulator in ascending feature order.
    const double* w = weights_.data() + m * n_features_;
    double sum = 0.0;
    for (std::size_t c = 0; c < n_features_; ++c) sum += w[c] * xs[c];
    const double z = sum + bias_[m];
    const double t =
        kind_ == MemberKind::kLogistic ? z : -(platt_a_[m] * z + platt_b_[m]);
    const double p = link_probability(t);
    stats.votes1 += p > 0.5;
    stats.sum_p1 += p;
    stats.sum_entropy += binary_entropy(p);
  }
  return stats;
}

template <bool kNeedPosterior, bool kNeedEntropy>
void FlatLinearEngine::tile_kernel(const Matrix& x, std::size_t row_begin,
                                   std::size_t row_end, EnsembleStats* out,
                                   bool fast) const {
  const std::size_t m_count = n_members_;
  const std::size_t d = n_features_;
  const bool svm = kind_ == MemberKind::kSvm;
  const double* wt = weights_t_.data();

  std::vector<double> xs(d);
  std::vector<double> z(m_count);
  std::vector<double> t(m_count);
  // Fast-tier scratch: member probabilities and entropies, batched so
  // the vectorised kernels get contiguous arrays.
  std::vector<double> p, h;
  if (fast) {
    p.resize(m_count);
    if constexpr (kNeedEntropy) h.resize(m_count);
  }

  const auto scale_row = [&](std::size_t row, double* dst) {
    const double* src = x.row_ptr(row);
    for (std::size_t c = 0; c < d; ++c) {
      dst[c] = (src[c] - means_[c]) / scales_[c];
    }
  };

  // Blocked product over the feature-major weights: 16 members' chains
  // are held in a register block the compiler packs into SIMD lanes, so
  // the feature sweep never round-trips partial sums through memory. Each
  // chain is still one accumulator adding w[m][c]·xs[c] in ascending
  // feature order, so every pre-activation is bit-identical to the
  // reference dot_row.
  const auto gemv = [&](const double* x0) {
    constexpr std::size_t kMemberBlock = 16;
    std::size_t m = 0;
    for (; m + kMemberBlock <= m_count; m += kMemberBlock) {
      double a[kMemberBlock] = {};
      for (std::size_t c = 0; c < d; ++c) {
        const double xc = x0[c];
        const double* w = wt + c * m_count + m;
        for (std::size_t k = 0; k < kMemberBlock; ++k) a[k] += w[k] * xc;
      }
      for (std::size_t k = 0; k < kMemberBlock; ++k) z[m + k] = a[k];
    }
    for (; m < m_count; ++m) {
      double a = 0.0;
      for (std::size_t c = 0; c < d; ++c) a += wt[c * m_count + m] * x0[c];
      z[m] = a;
    }
  };

  // Per-row epilogue in three phases so everything around the exp() calls
  // vectorises: (1) the affine link argument t[m] — elementwise, same
  // expressions as the reference, per-member order untouched; (2) the
  // sigmoid — the scalar libm loop on the exact tier (exp is the only
  // part the compiler cannot vectorise without changing results), one
  // sigmoid_array / binary_entropy_array pass on the fast tier; (3)
  // in-member-order accumulation, identical for both tiers.
  const auto finish_row = [&](const double* zj) {
    if (svm) {
      for (std::size_t m = 0; m < m_count; ++m) {
        t[m] = -(platt_a_[m] * (zj[m] + bias_[m]) + platt_b_[m]);
      }
    } else {
      for (std::size_t m = 0; m < m_count; ++m) t[m] = zj[m] + bias_[m];
    }
    EnsembleStats stats;
    if (fast) {
      vmath_->sigmoid_array(t.data(), p.data(), m_count);
      if constexpr (kNeedEntropy) {
        vmath_->binary_entropy_array(p.data(), h.data(), m_count);
      }
      for (std::size_t m = 0; m < m_count; ++m) {
        stats.votes1 += p[m] > 0.5;
        if constexpr (kNeedPosterior) stats.sum_p1 += p[m];
        if constexpr (kNeedEntropy) stats.sum_entropy += h[m];
      }
    } else {
      for (std::size_t m = 0; m < m_count; ++m) {
        const double pm = link_probability(t[m]);
        stats.votes1 += pm > 0.5;
        if constexpr (kNeedPosterior) stats.sum_p1 += pm;
        if constexpr (kNeedEntropy) stats.sum_entropy += binary_entropy(pm);
      }
    }
    return stats;
  };

  for (std::size_t r = row_begin; r < row_end; ++r) {
    scale_row(r, xs.data());
    gemv(xs.data());
    out[r - row_begin] = finish_row(z.data());
  }
}

void FlatLinearEngine::stats_batch(const Matrix& x, ThreadPool* pool,
                                   std::vector<EnsembleStats>& out,
                                   StatsMask mask) const {
  HMD_REQUIRE(x.cols() == n_features_ || x.rows() == 0,
              "FlatLinearEngine::stats_batch: feature width mismatch");
  out.assign(x.rows(), EnsembleStats{});
  const bool posterior = (mask & kStatsPosterior) != 0;
  const bool entropy = (mask & kStatsEntropy) != 0;
  const bool fast = (mask & kStatsFastMath) != 0;
  const std::size_t n_tiles = (x.rows() + kTileRows - 1) / kTileRows;
  auto run_tiles = [&](std::size_t tile_begin, std::size_t tile_end) {
    for (std::size_t t = tile_begin; t < tile_end; ++t) {
      const std::size_t tile_row_begin = t * kTileRows;
      const std::size_t tile_row_end =
          std::min(x.rows(), tile_row_begin + kTileRows);
      EnsembleStats* dst = out.data() + tile_row_begin;
      if (posterior && entropy) {
        tile_kernel<true, true>(x, tile_row_begin, tile_row_end, dst, fast);
      } else if (posterior) {
        tile_kernel<true, false>(x, tile_row_begin, tile_row_end, dst, fast);
      } else if (entropy) {
        tile_kernel<false, true>(x, tile_row_begin, tile_row_end, dst, fast);
      } else {
        tile_kernel<false, false>(x, tile_row_begin, tile_row_end, dst,
                                  fast);
      }
    }
  };
  if (pool != nullptr && n_tiles > 1) {
    pool->parallel_for(n_tiles, run_tiles);
  } else {
    run_tiles(0, n_tiles);
  }
}

}  // namespace hmd::core
