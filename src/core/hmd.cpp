#include "core/hmd.h"

#include <algorithm>

#include "common/error.h"
#include "core/flat_linear.h"

namespace hmd::core {

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandomForest: return "RF";
    case ModelKind::kBaggedLogistic: return "LR";
    case ModelKind::kBaggedSvm: return "SVM";
  }
  throw InvalidArgument("model_kind_name: bad kind");
}

namespace {

void validate_config(const HmdConfig& config) {
  HMD_REQUIRE(config.n_members >= 1, "HmdConfig: n_members must be >= 1");
  HMD_REQUIRE(config.entropy_threshold >= 0.0,
              "HmdConfig: entropy_threshold must be >= 0");
}

/// A pool only pays for itself with real workers; at an effective width
/// of one every batch runs inline on the caller.
std::unique_ptr<ThreadPool> make_pool(int n_threads) {
  if (ThreadPool::effective_threads(n_threads) == 1) return nullptr;
  return std::make_unique<ThreadPool>(n_threads);
}

}  // namespace

UntrustedHmd::UntrustedHmd(HmdConfig config) : config_(std::move(config)) {
  validate_config(config_);
}

UntrustedHmd::UntrustedHmd(HmdConfig config,
                           std::unique_ptr<InferenceEngine> engine,
                           ml::StandardScaler scaler,
                           double converged_fraction)
    : config_(std::move(config)),
      pool_(make_pool(config_.n_threads)),
      engine_(std::move(engine)),
      vote_lut_(config_.n_members),
      scaler_(std::move(scaler)),
      serving_converged_fraction_(converged_fraction) {
  validate_config(config_);
  HMD_REQUIRE(engine_ != nullptr, "UntrustedHmd: serving engine is null");
  HMD_REQUIRE(engine_->n_members() ==
                  static_cast<std::size_t>(config_.n_members),
              "UntrustedHmd: engine/config member count mismatch");
  scale_inputs_ = config_.model != ModelKind::kRandomForest;
}

ml::ClassifierFactory UntrustedHmd::member_factory() const {
  switch (config_.model) {
    case ModelKind::kRandomForest: {
      ml::DecisionTreeParams tree;
      tree.max_features = 0;  // sqrt per-split subsampling
      tree.min_samples_leaf = std::max(1, config_.tree_min_samples_leaf);
      tree.max_depth = config_.tree_max_depth;
      return [tree]() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::DecisionTree>(tree);
      };
    }
    case ModelKind::kBaggedLogistic:
      return []() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::LogisticRegression>();
      };
    case ModelKind::kBaggedSvm:
      return []() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::LinearSvm>();
      };
  }
  throw InvalidArgument("UntrustedHmd: bad model kind");
}

std::unique_ptr<InferenceEngine> UntrustedHmd::compile_engine() const {
  switch (config_.model) {
    case ModelKind::kRandomForest:
      return FlatForestEngine::compile(*ensemble_);
    case ModelKind::kBaggedLogistic:
    case ModelKind::kBaggedSvm:
      return FlatLinearEngine::compile(*ensemble_, scaler_);
  }
  return nullptr;
}

void UntrustedHmd::fit(const ml::Dataset& train) {
  HMD_REQUIRE(train.size() > 1, "UntrustedHmd::fit: need >= 2 samples");
  HMD_REQUIRE(engine_ == nullptr || ensemble_ != nullptr,
              "UntrustedHmd::fit: serving-only detector cannot be re-fit");
  pool_ = make_pool(config_.n_threads);

  // Linear members need standardised inputs; trees see raw features so
  // the flat engine can traverse dataset rows in place. (The compiled
  // linear engine owns a copy of these moments and standardises
  // internally — every engine consumes raw rows.)
  scale_inputs_ = config_.model != ModelKind::kRandomForest;
  const Matrix* fit_x = &train.X;
  Matrix scaled;
  if (scale_inputs_) {
    scaled = scaler_.fit_transform(train.X);
    fit_x = &scaled;
  }

  ml::BaggingParams params;
  params.n_members = config_.n_members;
  params.seed = config_.seed;
  params.n_threads = config_.n_threads;
  ensemble_ = std::make_unique<ml::Bagging>(member_factory(), params);
  // pool_ is null at an effective width of one; Bagging's own fallback
  // pool is then also workerless, so members fit inline on the caller.
  ensemble_->fit(*fit_x, train.y, pool_.get());

  engine_ = compile_engine();
  vote_lut_ = VoteEntropyTable(config_.n_members);
}

const ml::Bagging& UntrustedHmd::ensemble() const {
  HMD_REQUIRE(fitted(), "UntrustedHmd: no reference ensemble "
                        "(serving-only or unfitted detector)");
  return *ensemble_;
}

const InferenceEngine& UntrustedHmd::engine() const {
  HMD_REQUIRE(engine_ != nullptr, "UntrustedHmd: no compiled engine");
  return *engine_;
}

const FlatForestEngine& UntrustedHmd::flat_forest() const {
  const auto* forest = dynamic_cast<const FlatForestEngine*>(&engine());
  HMD_REQUIRE(forest != nullptr,
              "UntrustedHmd: engine is not a FlatForestEngine");
  return *forest;
}

bool UntrustedHmd::converged() const {
  return converged_fraction() >= 0.999;
}

double UntrustedHmd::converged_fraction() const {
  HMD_REQUIRE(ready(), "UntrustedHmd: not fitted");
  if (!fitted()) return serving_converged_fraction_;
  return ensemble_->converged_fraction();
}

EnsembleStats UntrustedHmd::stats_one(RowView x) const {
  HMD_REQUIRE(ready(), "UntrustedHmd: detect before fit");
  if (engine_ != nullptr) return engine_->stats_one(x);
  std::vector<double> scaled;
  if (scale_inputs_) {
    scaler_.transform_row(x, scaled);
    x = RowView(scaled.data(), scaled.size());
  }
  std::vector<double> probabilities;
  ensemble_->member_probabilities(x, probabilities);
  return accumulate_stats(probabilities);
}

void UntrustedHmd::stats_batch(const Matrix& x,
                               std::vector<EnsembleStats>& out,
                               bool need_entropy) const {
  HMD_REQUIRE(ready(), "UntrustedHmd: detect before fit");
  if (engine_ != nullptr) {
    engine_->stats_batch(x, pool_.get(), out, need_entropy);
    return;
  }
  const Matrix scaled = scale_inputs_ ? scaler_.transform(x) : Matrix();
  const Matrix& input = scale_inputs_ ? scaled : x;
  out.assign(input.rows(), EnsembleStats{});
  auto body = [&](std::size_t begin, std::size_t end) {
    std::vector<double> probabilities;
    for (std::size_t r = begin; r < end; ++r) {
      ensemble_->member_probabilities(input.row(r), probabilities);
      out[r] = accumulate_stats(probabilities);
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(input.rows(), body);
  } else {
    body(0, input.rows());
  }
}

Detection UntrustedHmd::detection_from_stats(
    const EnsembleStats& stats) const {
  Detection detection;
  const int m = config_.n_members;
  detection.prediction = 2 * stats.votes1 > m ? 1 : 0;
  const double p1 = stats.sum_p1 / static_cast<double>(m);
  detection.confidence = detection.prediction == 1 ? p1 : 1.0 - p1;
  detection.score = uncertainty_score(config_.mode, stats, m, &vote_lut_);
  detection.trusted = detection.score <= config_.entropy_threshold;
  return detection;
}

Detection UntrustedHmd::detect(RowView x) const {
  return detection_from_stats(stats_one(x));
}

std::vector<Detection> UntrustedHmd::detect_batch(const Matrix& x) const {
  std::vector<EnsembleStats> stats;
  stats_batch(x, stats, uncertainty_mode_needs_entropy(config_.mode));
  std::vector<Detection> out;
  out.reserve(stats.size());
  for (const auto& s : stats) out.push_back(detection_from_stats(s));
  return out;
}

Estimate TrustedHmd::estimate_from_stats(const EnsembleStats& stats) const {
  Estimate estimate;
  const int m = config_.n_members;
  estimate.prediction = 2 * stats.votes1 > m ? 1 : 0;
  estimate.votes_malware = stats.votes1;
  estimate.vote_entropy =
      uncertainty_score(UncertaintyMode::kVoteEntropy, stats, m, vote_lut());
  estimate.soft_entropy =
      uncertainty_score(UncertaintyMode::kSoftEntropy, stats, m, nullptr);
  estimate.expected_entropy = uncertainty_score(
      UncertaintyMode::kExpectedEntropy, stats, m, nullptr);
  estimate.mutual_information = uncertainty_score(
      UncertaintyMode::kMutualInformation, stats, m, nullptr);
  estimate.variation_ratio = uncertainty_score(
      UncertaintyMode::kVariationRatio, stats, m, nullptr);
  estimate.max_probability = uncertainty_score(
      UncertaintyMode::kMaxProbability, stats, m, nullptr);
  estimate.score =
      uncertainty_score(config_.mode, stats, m, vote_lut());
  estimate.trusted = estimate.score <= config_.entropy_threshold;
  return estimate;
}

Estimate TrustedHmd::estimate(RowView x) const {
  return estimate_from_stats(stats_one(x));
}

std::vector<Estimate> TrustedHmd::estimate_batch(const Matrix& x) const {
  std::vector<EnsembleStats> stats;
  stats_batch(x, stats, /*need_entropy=*/true);
  std::vector<Estimate> out;
  out.reserve(stats.size());
  for (const auto& s : stats) out.push_back(estimate_from_stats(s));
  return out;
}

std::vector<double> TrustedHmd::scores(const Matrix& x,
                                       UncertaintyMode mode) const {
  std::vector<EnsembleStats> stats;
  stats_batch(x, stats, uncertainty_mode_needs_entropy(mode));
  std::vector<double> out;
  out.reserve(stats.size());
  for (const auto& s : stats) {
    out.push_back(
        uncertainty_score(mode, s, config_.n_members, vote_lut()));
  }
  return out;
}

}  // namespace hmd::core
