#include "core/hmd.h"

#include <algorithm>

#include "common/error.h"

namespace hmd::core {

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandomForest: return "RF";
    case ModelKind::kBaggedLogistic: return "LR";
    case ModelKind::kBaggedSvm: return "SVM";
  }
  throw InvalidArgument("model_kind_name: bad kind");
}

UntrustedHmd::UntrustedHmd(HmdConfig config) : config_(std::move(config)) {
  HMD_REQUIRE(config_.n_members >= 1, "HmdConfig: n_members must be >= 1");
  HMD_REQUIRE(config_.entropy_threshold >= 0.0,
              "HmdConfig: entropy_threshold must be >= 0");
}

ml::ClassifierFactory UntrustedHmd::member_factory() const {
  switch (config_.model) {
    case ModelKind::kRandomForest: {
      ml::DecisionTreeParams tree;
      tree.max_features = 0;  // sqrt per-split subsampling
      tree.min_samples_leaf = std::max(1, config_.tree_min_samples_leaf);
      tree.max_depth = config_.tree_max_depth;
      return [tree]() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::DecisionTree>(tree);
      };
    }
    case ModelKind::kBaggedLogistic:
      return []() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::LogisticRegression>();
      };
    case ModelKind::kBaggedSvm:
      return []() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::LinearSvm>();
      };
  }
  throw InvalidArgument("UntrustedHmd: bad model kind");
}

void UntrustedHmd::fit(const ml::Dataset& train) {
  HMD_REQUIRE(train.size() > 1, "UntrustedHmd::fit: need >= 2 samples");
  pool_ = std::make_unique<ThreadPool>(config_.n_threads);

  // Linear members need standardised inputs; trees see raw features so
  // the flat engine can traverse dataset rows in place.
  scale_inputs_ = config_.model != ModelKind::kRandomForest;
  const Matrix* fit_x = &train.X;
  Matrix scaled;
  if (scale_inputs_) {
    scaled = scaler_.fit_transform(train.X);
    fit_x = &scaled;
  }

  ml::BaggingParams params;
  params.n_members = config_.n_members;
  params.seed = config_.seed;
  params.n_threads = config_.n_threads;
  ensemble_ = std::make_unique<ml::Bagging>(member_factory(), params);
  ensemble_->fit(*fit_x, train.y, pool_.get());

  flat_ = FlatForest::compile(*ensemble_);
  vote_lut_ = VoteEntropyTable(config_.n_members);
}

const ml::Bagging& UntrustedHmd::ensemble() const {
  HMD_REQUIRE(fitted(), "UntrustedHmd: not fitted");
  return *ensemble_;
}

bool UntrustedHmd::converged() const {
  return converged_fraction() >= 0.999;
}

double UntrustedHmd::converged_fraction() const {
  HMD_REQUIRE(fitted(), "UntrustedHmd: not fitted");
  return ensemble_->converged_fraction();
}

EnsembleStats UntrustedHmd::stats_one(RowView x) const {
  HMD_REQUIRE(fitted(), "UntrustedHmd: detect before fit");
  if (flat_.compiled()) return flat_.stats_one(x);
  std::vector<double> scaled;
  if (scale_inputs_) {
    scaler_.transform_row(x, scaled);
    x = RowView(scaled.data(), scaled.size());
  }
  std::vector<double> probabilities;
  ensemble_->member_probabilities(x, probabilities);
  return accumulate_stats(probabilities);
}

void UntrustedHmd::stats_batch(const Matrix& x,
                               std::vector<EnsembleStats>& out) const {
  HMD_REQUIRE(fitted(), "UntrustedHmd: detect before fit");
  if (flat_.compiled()) {
    flat_.stats_batch(x, pool_.get(), out);
    return;
  }
  const Matrix scaled = scale_inputs_ ? scaler_.transform(x) : Matrix();
  const Matrix& input = scale_inputs_ ? scaled : x;
  out.assign(input.rows(), EnsembleStats{});
  auto body = [&](std::size_t begin, std::size_t end) {
    std::vector<double> probabilities;
    for (std::size_t r = begin; r < end; ++r) {
      ensemble_->member_probabilities(input.row(r), probabilities);
      out[r] = accumulate_stats(probabilities);
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(input.rows(), body);
  } else {
    body(0, input.rows());
  }
}

Detection UntrustedHmd::detection_from_stats(
    const EnsembleStats& stats) const {
  Detection detection;
  const int m = config_.n_members;
  detection.prediction = 2 * stats.votes1 > m ? 1 : 0;
  const double p1 = stats.sum_p1 / static_cast<double>(m);
  detection.confidence = detection.prediction == 1 ? p1 : 1.0 - p1;
  detection.score = uncertainty_score(config_.mode, stats, m, &vote_lut_);
  detection.trusted = detection.score <= config_.entropy_threshold;
  return detection;
}

Detection UntrustedHmd::detect(RowView x) const {
  return detection_from_stats(stats_one(x));
}

std::vector<Detection> UntrustedHmd::detect_batch(const Matrix& x) const {
  std::vector<EnsembleStats> stats;
  stats_batch(x, stats);
  std::vector<Detection> out;
  out.reserve(stats.size());
  for (const auto& s : stats) out.push_back(detection_from_stats(s));
  return out;
}

Estimate TrustedHmd::estimate_from_stats(const EnsembleStats& stats) const {
  Estimate estimate;
  const int m = config_.n_members;
  estimate.prediction = 2 * stats.votes1 > m ? 1 : 0;
  estimate.votes_malware = stats.votes1;
  estimate.vote_entropy =
      uncertainty_score(UncertaintyMode::kVoteEntropy, stats, m, vote_lut());
  estimate.soft_entropy =
      uncertainty_score(UncertaintyMode::kSoftEntropy, stats, m, nullptr);
  estimate.expected_entropy = uncertainty_score(
      UncertaintyMode::kExpectedEntropy, stats, m, nullptr);
  estimate.mutual_information = uncertainty_score(
      UncertaintyMode::kMutualInformation, stats, m, nullptr);
  estimate.variation_ratio = uncertainty_score(
      UncertaintyMode::kVariationRatio, stats, m, nullptr);
  estimate.max_probability = uncertainty_score(
      UncertaintyMode::kMaxProbability, stats, m, nullptr);
  estimate.score =
      uncertainty_score(config_.mode, stats, m, vote_lut());
  estimate.trusted = estimate.score <= config_.entropy_threshold;
  return estimate;
}

Estimate TrustedHmd::estimate(RowView x) const {
  return estimate_from_stats(stats_one(x));
}

std::vector<Estimate> TrustedHmd::estimate_batch(const Matrix& x) const {
  std::vector<EnsembleStats> stats;
  stats_batch(x, stats);
  std::vector<Estimate> out;
  out.reserve(stats.size());
  for (const auto& s : stats) out.push_back(estimate_from_stats(s));
  return out;
}

std::vector<double> TrustedHmd::scores(const Matrix& x,
                                       UncertaintyMode mode) const {
  std::vector<EnsembleStats> stats;
  stats_batch(x, stats);
  std::vector<double> out;
  out.reserve(stats.size());
  for (const auto& s : stats) {
    out.push_back(
        uncertainty_score(mode, s, config_.n_members, vote_lut()));
  }
  return out;
}

}  // namespace hmd::core
