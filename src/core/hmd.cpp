#include "core/hmd.h"

#include <algorithm>
#include <cctype>

#include "common/error.h"
#include "core/flat_linear.h"
#include "simd/vmath.h"

namespace hmd::core {

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandomForest: return "RF";
    case ModelKind::kBaggedLogistic: return "LR";
    case ModelKind::kBaggedSvm: return "SVM";
  }
  throw InvalidArgument("model_kind_name: bad kind");
}

std::optional<ModelKind> parse_model_kind(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char ch) {
    return static_cast<char>(
        std::tolower(static_cast<unsigned char>(ch)));
  });
  if (lower == "rf") return ModelKind::kRandomForest;
  if (lower == "lr") return ModelKind::kBaggedLogistic;
  if (lower == "svm") return ModelKind::kBaggedSvm;
  return std::nullopt;
}

namespace {

void validate_config(const HmdConfig& config) {
  HMD_REQUIRE(config.n_members >= 1, "HmdConfig: n_members must be >= 1");
  HMD_REQUIRE(config.entropy_threshold >= 0.0,
              "HmdConfig: entropy_threshold must be >= 0");
}

/// A pool only pays for itself with real workers; at an effective width
/// of one every batch runs inline on the caller.
std::unique_ptr<ThreadPool> make_pool(int n_threads) {
  if (ThreadPool::effective_threads(n_threads) == 1) return nullptr;
  return std::make_unique<ThreadPool>(n_threads);
}

// The single definitions of the prediction / confidence derivations.
// Every surface — single-sample detect()/estimate() and the batched
// score() column fills — goes through these, so the bit-parity-critical
// expressions cannot diverge between paths.

inline int predict_from(const EnsembleStats& stats, int m) {
  return 2 * stats.votes1 > m ? 1 : 0;
}

inline double confidence_from(const EnsembleStats& stats, int prediction,
                              int m) {
  const double p1 = stats.sum_p1 / static_cast<double>(m);
  return prediction == 1 ? p1 : 1.0 - p1;
}

/// Fast-tier batched fill of the binary_entropy(sum_p1 / m) family:
/// writes p̄ into `out` row by row (the same division the exact path
/// performs), then one vectorised entropy pass in place. Soft entropy is
/// the result verbatim; mutual information subtracts sum_entropy / m
/// afterwards. ≤2 ULP of the exact column per the simd/vmath.h contract.
inline void fill_pbar_entropy(const std::vector<EnsembleStats>& stats,
                              std::size_t n, int m,
                              const simd::VmathKernels& vm, double* out) {
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = stats[r].sum_p1 / static_cast<double>(m);
  }
  vm.binary_entropy_array(out, out, n);
}

}  // namespace

UntrustedHmd::UntrustedHmd(HmdConfig config) : config_(std::move(config)) {
  validate_config(config_);
}

UntrustedHmd::UntrustedHmd(HmdConfig config,
                           std::unique_ptr<InferenceEngine> engine,
                           ml::StandardScaler scaler,
                           double converged_fraction)
    : config_(std::move(config)),
      pool_(make_pool(config_.n_threads)),
      engine_(std::move(engine)),
      vote_lut_(config_.n_members),
      scaler_(std::move(scaler)),
      serving_converged_fraction_(converged_fraction) {
  validate_config(config_);
  HMD_REQUIRE(engine_ != nullptr, "UntrustedHmd: serving engine is null");
  HMD_REQUIRE(engine_->n_members() ==
                  static_cast<std::size_t>(config_.n_members),
              "UntrustedHmd: engine/config member count mismatch");
  scale_inputs_ = config_.model != ModelKind::kRandomForest;
}

ml::ClassifierFactory UntrustedHmd::member_factory() const {
  switch (config_.model) {
    case ModelKind::kRandomForest: {
      ml::DecisionTreeParams tree;
      tree.max_features = 0;  // sqrt per-split subsampling
      tree.min_samples_leaf = std::max(1, config_.tree_min_samples_leaf);
      tree.max_depth = config_.tree_max_depth;
      return [tree]() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::DecisionTree>(tree);
      };
    }
    case ModelKind::kBaggedLogistic:
      return []() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::LogisticRegression>();
      };
    case ModelKind::kBaggedSvm:
      return []() -> std::unique_ptr<ml::Classifier> {
        return std::make_unique<ml::LinearSvm>();
      };
  }
  throw InvalidArgument("UntrustedHmd: bad model kind");
}

std::unique_ptr<InferenceEngine> UntrustedHmd::compile_engine() const {
  switch (config_.model) {
    case ModelKind::kRandomForest:
      return FlatForestEngine::compile(*ensemble_);
    case ModelKind::kBaggedLogistic:
    case ModelKind::kBaggedSvm:
      return FlatLinearEngine::compile(*ensemble_, scaler_);
  }
  return nullptr;
}

void UntrustedHmd::fit(const ml::Dataset& train) {
  HMD_REQUIRE(train.size() > 1, "UntrustedHmd::fit: need >= 2 samples");
  HMD_REQUIRE(engine_ == nullptr || ensemble_ != nullptr,
              "UntrustedHmd::fit: serving-only detector cannot be re-fit");
  pool_ = make_pool(config_.n_threads);

  // Linear members need standardised inputs; trees see raw features so
  // the flat engine can traverse dataset rows in place. (The compiled
  // linear engine owns a copy of these moments and standardises
  // internally — every engine consumes raw rows.)
  scale_inputs_ = config_.model != ModelKind::kRandomForest;
  const Matrix* fit_x = &train.X;
  Matrix scaled;
  if (scale_inputs_) {
    scaled = scaler_.fit_transform(train.X);
    fit_x = &scaled;
  }

  ml::BaggingParams params;
  params.n_members = config_.n_members;
  params.seed = config_.seed;
  params.n_threads = config_.n_threads;
  ensemble_ = std::make_unique<ml::Bagging>(member_factory(), params);
  // pool_ is null at an effective width of one; Bagging's own fallback
  // pool is then also workerless, so members fit inline on the caller.
  ensemble_->fit(*fit_x, train.y, pool_.get());

  engine_ = compile_engine();
  vote_lut_ = VoteEntropyTable(config_.n_members);
}

const ml::Bagging& UntrustedHmd::ensemble() const {
  HMD_REQUIRE(fitted(), "UntrustedHmd: no reference ensemble "
                        "(serving-only or unfitted detector)");
  return *ensemble_;
}

const InferenceEngine& UntrustedHmd::engine() const {
  HMD_REQUIRE(engine_ != nullptr, "UntrustedHmd: no compiled engine");
  return *engine_;
}

const FlatForestEngine& UntrustedHmd::flat_forest() const {
  const auto* forest = dynamic_cast<const FlatForestEngine*>(&engine());
  HMD_REQUIRE(forest != nullptr,
              "UntrustedHmd: engine is not a FlatForestEngine");
  return *forest;
}

bool UntrustedHmd::converged() const {
  return converged_fraction() >= 0.999;
}

double UntrustedHmd::converged_fraction() const {
  HMD_REQUIRE(ready(), "UntrustedHmd: not fitted");
  if (!fitted()) return serving_converged_fraction_;
  return ensemble_->converged_fraction();
}

EnsembleStats UntrustedHmd::stats_one(RowView x) const {
  HMD_REQUIRE(ready(), "UntrustedHmd: detect before fit");
  if (engine_ != nullptr) return engine_->stats_one(x);
  std::vector<double> scaled;
  if (scale_inputs_) {
    scaler_.transform_row(x, scaled);
    x = RowView(scaled.data(), scaled.size());
  }
  std::vector<double> probabilities;
  ensemble_->member_probabilities(x, probabilities);
  return accumulate_stats(probabilities);
}

void UntrustedHmd::stats_batch(const Matrix& x,
                               std::vector<EnsembleStats>& out,
                               StatsMask mask) const {
  HMD_REQUIRE(ready(), "UntrustedHmd: detect before fit");
  if (engine_ != nullptr) {
    engine_->stats_batch(x, pool_.get(), out, mask);
    return;
  }
  // The reference fallback always fills every field: it is the parity
  // baseline, and member_probabilities dominates anyway.
  const Matrix scaled = scale_inputs_ ? scaler_.transform(x) : Matrix();
  const Matrix& input = scale_inputs_ ? scaled : x;
  out.assign(input.rows(), EnsembleStats{});
  auto body = [&](std::size_t begin, std::size_t end) {
    std::vector<double> probabilities;
    for (std::size_t r = begin; r < end; ++r) {
      ensemble_->member_probabilities(input.row(r), probabilities);
      out[r] = accumulate_stats(probabilities);
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(input.rows(), body);
  } else {
    body(0, input.rows());
  }
}

Detection UntrustedHmd::detection_from_stats(
    const EnsembleStats& stats) const {
  Detection detection;
  const int m = config_.n_members;
  detection.prediction = predict_from(stats, m);
  detection.confidence = confidence_from(stats, detection.prediction, m);
  detection.score = uncertainty_score(config_.mode, stats, m, &vote_lut_);
  detection.trusted = detection.score <= config_.entropy_threshold;
  return detection;
}

Detection UntrustedHmd::detect(RowView x) const {
  return detection_from_stats(stats_one(x));
}

void UntrustedHmd::score(const api::ScoreRequest& request,
                         api::ScoreResult& result) const {
  HMD_REQUIRE(request.x != nullptr,
              "UntrustedHmd::score: request has no input matrix");
  const Matrix& x = *request.x;
  const UncertaintyMode mode = request.mode.value_or(config_.mode);
  const api::OutputMask outputs = request.outputs;
  const bool fast = request.accuracy == Accuracy::kFast;
  // Resolved once per call: the dispatch table for the active ISA (only
  // consulted on the fast tier — the exact path never touches it).
  const simd::VmathKernels* vm = fast ? &simd::kernels() : nullptr;

  StatsMask stats_mask = api::stats_mask_for(outputs, mode);
  if (fast) stats_mask |= kStatsFastMath;
  stats_batch(x, result.stats, stats_mask);
  result.shape(outputs, x.rows());

  // Column fills, one tight loop per selected output. Every column goes
  // through the same derivation the Detection / Estimate surface uses
  // (predict_from / confidence_from / uncertainty_score), so any mask
  // subset is bit-identical to the full legacy surface.
  const std::vector<EnsembleStats>& stats = result.stats;
  const std::size_t n = x.rows();
  const int m = config_.n_members;

  if (outputs & api::kOutPrediction) {
    for (std::size_t r = 0; r < n; ++r) {
      result.prediction[r] = predict_from(stats[r], m);
    }
  }
  if (outputs & api::kOutConfidence) {
    for (std::size_t r = 0; r < n; ++r) {
      result.confidence[r] =
          confidence_from(stats[r], predict_from(stats[r], m), m);
    }
  }
  if (outputs & api::kOutVotes) {
    for (std::size_t r = 0; r < n; ++r) result.votes[r] = stats[r].votes1;
  }
  if (outputs & api::kOutVoteEntropy) {
    for (std::size_t r = 0; r < n; ++r) {
      result.vote_entropy[r] = uncertainty_score(
          UncertaintyMode::kVoteEntropy, stats[r], m, vote_lut());
    }
  }
  if (outputs & api::kOutSoftEntropy) {
    if (fast) {
      fill_pbar_entropy(stats, n, m, *vm, result.soft_entropy.data());
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        result.soft_entropy[r] = uncertainty_score(
            UncertaintyMode::kSoftEntropy, stats[r], m, nullptr);
      }
    }
  }
  if (outputs & api::kOutExpectedEntropy) {
    for (std::size_t r = 0; r < n; ++r) {
      result.expected_entropy[r] = uncertainty_score(
          UncertaintyMode::kExpectedEntropy, stats[r], m, nullptr);
    }
  }
  if (outputs & api::kOutMutualInformation) {
    if (fast) {
      double* out = result.mutual_information.data();
      fill_pbar_entropy(stats, n, m, *vm, out);
      for (std::size_t r = 0; r < n; ++r) {
        out[r] -= stats[r].sum_entropy / static_cast<double>(m);
      }
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        result.mutual_information[r] = uncertainty_score(
            UncertaintyMode::kMutualInformation, stats[r], m, nullptr);
      }
    }
  }
  if (outputs & api::kOutVariationRatio) {
    for (std::size_t r = 0; r < n; ++r) {
      result.variation_ratio[r] = uncertainty_score(
          UncertaintyMode::kVariationRatio, stats[r], m, nullptr);
    }
  }
  if (outputs & api::kOutMaxProbability) {
    for (std::size_t r = 0; r < n; ++r) {
      result.max_probability[r] = uncertainty_score(
          UncertaintyMode::kMaxProbability, stats[r], m, nullptr);
    }
  }
  if (outputs & (api::kOutScore | api::kOutTrusted)) {
    const bool want_score = (outputs & api::kOutScore) != 0;
    const bool want_trusted = (outputs & api::kOutTrusted) != 0;
    // Only the soft-entropy family pays a transcendental at fill time
    // (vote entropy is a LUT read; expected entropy, variation ratio and
    // max probability are arithmetic on the sums), so only it has a
    // batched fast path.
    const bool fast_fill =
        fast && (mode == UncertaintyMode::kSoftEntropy ||
                 mode == UncertaintyMode::kMutualInformation);
    if (fast_fill) {
      if (!want_score) result.fast_scratch.resize(n);
      double* s = want_score ? result.score.data()
                             : result.fast_scratch.data();
      fill_pbar_entropy(stats, n, m, *vm, s);
      if (mode == UncertaintyMode::kMutualInformation) {
        for (std::size_t r = 0; r < n; ++r) {
          s[r] -= stats[r].sum_entropy / static_cast<double>(m);
        }
      }
      if (want_trusted) {
        for (std::size_t r = 0; r < n; ++r) {
          result.trusted[r] = s[r] <= config_.entropy_threshold ? 1 : 0;
        }
      }
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        const double s = uncertainty_score(mode, stats[r], m, vote_lut());
        if (want_score) result.score[r] = s;
        if (want_trusted) {
          result.trusted[r] = s <= config_.entropy_threshold ? 1 : 0;
        }
      }
    }
  }
}

std::vector<Detection> UntrustedHmd::detect_batch(const Matrix& x) const {
  api::ScoreRequest request;
  request.x = &x;
  request.outputs = api::kDetectionOutputs;
  api::ScoreResult result;
  score(request, result);
  std::vector<Detection> out(result.rows);
  for (std::size_t r = 0; r < result.rows; ++r) {
    out[r].prediction = result.prediction[r];
    out[r].confidence = result.confidence[r];
    out[r].score = result.score[r];
    out[r].trusted = result.trusted[r] != 0;
  }
  return out;
}

Estimate TrustedHmd::estimate_from_stats(const EnsembleStats& stats) const {
  Estimate estimate;
  const int m = config_.n_members;
  estimate.prediction = predict_from(stats, m);
  estimate.votes_malware = stats.votes1;
  estimate.vote_entropy =
      uncertainty_score(UncertaintyMode::kVoteEntropy, stats, m, vote_lut());
  estimate.soft_entropy =
      uncertainty_score(UncertaintyMode::kSoftEntropy, stats, m, nullptr);
  estimate.expected_entropy = uncertainty_score(
      UncertaintyMode::kExpectedEntropy, stats, m, nullptr);
  estimate.mutual_information = uncertainty_score(
      UncertaintyMode::kMutualInformation, stats, m, nullptr);
  estimate.variation_ratio = uncertainty_score(
      UncertaintyMode::kVariationRatio, stats, m, nullptr);
  estimate.max_probability = uncertainty_score(
      UncertaintyMode::kMaxProbability, stats, m, nullptr);
  estimate.score =
      uncertainty_score(config_.mode, stats, m, vote_lut());
  estimate.trusted = estimate.score <= config_.entropy_threshold;
  return estimate;
}

Estimate TrustedHmd::estimate(RowView x) const {
  return estimate_from_stats(stats_one(x));
}

std::vector<Estimate> TrustedHmd::estimate_batch(const Matrix& x) const {
  api::ScoreRequest request;
  request.x = &x;
  request.outputs = api::kEstimateOutputs;
  api::ScoreResult result;
  score(request, result);
  std::vector<Estimate> out(result.rows);
  for (std::size_t r = 0; r < result.rows; ++r) {
    out[r].prediction = result.prediction[r];
    out[r].votes_malware = result.votes[r];
    out[r].vote_entropy = result.vote_entropy[r];
    out[r].soft_entropy = result.soft_entropy[r];
    out[r].expected_entropy = result.expected_entropy[r];
    out[r].mutual_information = result.mutual_information[r];
    out[r].variation_ratio = result.variation_ratio[r];
    out[r].max_probability = result.max_probability[r];
    out[r].score = result.score[r];
    out[r].trusted = result.trusted[r] != 0;
  }
  return out;
}

std::vector<double> TrustedHmd::scores(const Matrix& x,
                                       UncertaintyMode mode) const {
  api::ScoreRequest request;
  request.x = &x;
  request.outputs = api::kOutScore;
  request.mode = mode;
  api::ScoreResult result;
  score(request, result);
  return std::move(result.score);
}

}  // namespace hmd::core
