#pragma once
// Evaluation of trusted detectors: entropy distributions, rejection
// curves, accept-set F1, ensemble-size sweeps and the OOD AUROC — the
// quantities behind Figs. 4-9 of the paper.

#include <vector>

#include "common/stats.h"
#include "core/hmd.h"
#include "datasets/dataset_bundle.h"

namespace hmd::core {

/// Uncertainty scores of the known (test) and unknown splits.
struct EntropyDistributions {
  std::vector<double> known;
  std::vector<double> unknown;
  BoxplotStats known_stats;
  BoxplotStats unknown_stats;
};

/// Score both splits of the bundle under the detector's configured mode
/// (batched through the flat engine) and summarise them.
EntropyDistributions entropy_distributions(const TrustedHmd& hmd,
                                           const data::DatasetBundle& bundle);

/// n evenly-spaced thresholds over [lo, hi], endpoints included.
std::vector<double> threshold_grid(double lo, double hi, std::size_t n);

/// Percentages rejected (score > threshold) at one threshold.
struct RejectionPoint {
  double threshold = 0.0;
  double rejected_known = 0.0;    ///< percent of known inputs rejected
  double rejected_unknown = 0.0;  ///< percent of unknown inputs rejected
};

std::vector<RejectionPoint> rejection_curve(
    const std::vector<double>& known, const std::vector<double>& unknown,
    const std::vector<double>& thresholds);

/// The threshold maximising unknown rejection subject to rejecting at
/// most `max_known_pct` percent of known inputs (ties -> larger
/// threshold). Falls back to the largest threshold if none qualifies.
RejectionPoint best_operating_point(const std::vector<double>& known,
                                    const std::vector<double>& unknown,
                                    const std::vector<double>& thresholds,
                                    double max_known_pct);

/// F1 over the accepted subset of a labelled split, per threshold.
struct F1CurvePoint {
  double threshold = 0.0;
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double fraction_rejected = 0.0;
};

std::vector<F1CurvePoint> f1_vs_threshold(
    const TrustedHmd& hmd, const ml::Dataset& split,
    const std::vector<double>& thresholds);

/// Mean split entropies as the ensemble grows (Fig. 9a).
struct EnsembleSizePoint {
  int n_members = 0;
  double mean_entropy_known = 0.0;
  double mean_entropy_unknown = 0.0;
};

std::vector<EnsembleSizePoint> ensemble_size_sweep(
    const HmdConfig& base_config, const data::DatasetBundle& bundle,
    const std::vector<int>& sizes);

/// AUROC of separating unknown from known inputs by score (rank-based,
/// ties share credit).
double ood_auroc(const EntropyDistributions& distributions);

/// One-stop summary used by the governor ablation.
struct DetectorSummary {
  double accuracy = 0.0;
  double f1 = 0.0;
  double auroc = 0.0;
  RejectionPoint operating_point;
  double median_entropy_known = 0.0;
  double median_entropy_unknown = 0.0;
};

DetectorSummary evaluate_detector(ModelKind kind,
                                  const data::DatasetBundle& bundle,
                                  HmdConfig config);

}  // namespace hmd::core
