#pragma once
// Small reusable thread pool. One pool is created per ensemble (sized by
// HmdConfig::n_threads) and reused across fit and every batched inference
// call, so the hot path never pays thread start-up costs. parallel_for
// hands out contiguous index ranges: callers that write disjoint ranges
// get deterministic results regardless of the worker count.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hmd::core {

class ThreadPool {
 public:
  /// n_threads <= 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The lane count a pool built with `n_threads` would use (resolves the
  /// <= 0 = all-cores convention). Callers can skip building a pool
  /// entirely when this is 1 — the single-lane path is pure inline.
  static std::size_t effective_threads(int n_threads);

  std::size_t size() const { return workers_.size() + 1; }

  /// True when the pool spawned no workers (effective width 1, e.g. the
  /// 1-core CI host): every parallel_for runs inline on the caller with
  /// no queue, locks, or wakeups.
  bool inline_only() const { return workers_.empty(); }

  /// Run body(begin, end) over [0, n) split into contiguous chunks, one
  /// per worker plus the calling thread; blocks until all chunks finish.
  /// Exceptions from the body are rethrown on the calling thread.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Task {
    std::function<void(std::size_t, std::size_t)> body;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<Task> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace hmd::core
