#pragma once
// Versioned on-disk model artifact — the train-once / serve-many split.
//
// A `.hmdf` file holds everything a serving process needs and nothing the
// trainer used. Two format versions are live:
//
// ## Format v2 (current, written by default): the zero-copy layout
//
// All integers little-endian. Every section starts on a 64-byte file
// offset, and inside the engine section every large array is padded to a
// 64-byte file offset too. mmap returns a page-aligned base, so file-
// offset alignment == memory alignment: the node arena and the M×d weight
// matrices are directly usable in place, and a serving process's model
// residency cost is O(page faults actually touched), not O(bytes copied).
//
//   [ 0.. 4)  magic "HMDF"
//   [ 4.. 8)  u32 version = 2
//   [ 8..12)  u32 section_count = 3
//   [12..16)  u32 reserved = 0
//   [16..64)  section table: section_count × { u64 offset, u64 size }
//             sections in order: config, scaler, engine. Offsets are
//             64-byte aligned and in-bounds; sizes are exact payload
//             bytes (loaders reject misaligned or out-of-range entries).
//
//   config section:
//     u32 model_kind | i32 n_members | u32 uncertainty_mode
//     f64 entropy_threshold | u64 seed | i32 tree_min_samples_leaf
//     i32 tree_max_depth | f64 converged_fraction
//   scaler section:
//     u8 has_scaler | [u64 d | align64 | f64 means[d] | align64 |
//     f64 scales[d]]
//   engine section:
//     u32 engine_id | engine v2 blob (see the engine's save_blob_v2):
//       flat_forest: u64 n_features | u64 n_nodes | u64 n_roots
//                    | align64 | Node nodes[n_nodes]
//                    | align64 | f64 leaf_entropy[n_nodes]
//                    | align64 | i32 roots[n_roots]
//       flat_linear: u8 kind | u64 M | u64 d
//                    | align64 | f64 weights[M*d]      (member-major)
//                    | align64 | f64 weights_t[M*d]    (feature-major —
//                      the batch-kernel layout, carried on disk so it
//                      maps in place instead of being rebuilt at load)
//                    | align64 | f64 bias[M] | align64 | f64 platt_a[M]
//                    | align64 | f64 platt_b[M] | align64 | f64 means[d]
//                    | align64 | f64 scales[d]
//
// A v2 load parses the file through an ArtifactBuffer (mmap by default,
// full buffer read as fallback / on request) and the engines hold
// non-owning views into it; the stump table is re-derived at load.
//
// ## Format v1 (still loadable, writable on request): the stream layout
//
//   magic "HMDF" | u32 version=1 | config (as above, packed) |
//   u8 has_scaler [u64 d | means | scales] | u32 engine_id | engine blob
//
// v1 files always load through the std::istream copy path.
//
// save_model() writes atomically and durably: temp file + fsync(file) +
// rename + fsync(directory), so a crash mid-field-update can never leave
// a torn artifact under the real name for DetectorRegistry::refresh() to
// pick up. The rename discipline is also what makes hot-swap safe for
// mapped artifacts: replacing the directory entry leaves the old inode —
// and every live mapping of it — intact until the last reader drops it.
// (Overwriting a served artifact *in place* is a contract violation: a
// process still mapping the old bytes would see torn data or SIGBUS.)
//
// Loaders throw IoError on missing files, bad magic, unsupported
// versions, unknown engine tags, truncation, or misaligned/out-of-range
// v2 section offsets.

#include <cstdint>
#include <string>

#include "core/hmd.h"

namespace hmd::core {

/// Current artifact version (the default save format). Bump when the
/// layout changes; load_model also accepts kModelFormatV1.
inline constexpr std::uint32_t kModelFormatVersion = 2;
inline constexpr std::uint32_t kModelFormatV1 = 1;

/// How load_model materialises the artifact bytes.
enum class LoadMode {
  /// v2: mmap, falling back to a full buffer read if mapping fails.
  /// v1: stream read. The serving default.
  kAuto,
  /// v2: mmap or throw IoError. v1: stream read (v1 predates the
  /// zero-copy layout; there is nothing to map in place).
  kMmap,
  /// Never map: v2 parses from a full heap read, v1 streams. The
  /// full-copy baseline the bench compares against.
  kStream,
};

/// Path of the model artifact for a stem ("<stem>.hmdf").
std::string model_path(const std::string& stem);

/// True iff an artifact exists at `path` *and* carries the magic and a
/// loadable version (v1 or v2) — stale artifacts look absent so callers
/// re-train.
bool model_exists(const std::string& path);

/// Persist a fitted detector (config + scaler + compiled engine) to
/// `path`. The detector must be using a flat engine. `format_version`
/// selects the on-disk layout (v2 by default; v1 kept for migration
/// tests and old readers). Writes are atomic and durable (see header).
void save_model(const UntrustedHmd& hmd, const std::string& path,
                std::uint32_t format_version = kModelFormatVersion);

/// Reconstruct a serving-only detector from an artifact. `n_threads`
/// sizes the serving thread pool (<= 0 = all cores) — it intentionally
/// does not come from the artifact, since the training host's core count
/// is meaningless to the serving host. `mode` picks how the bytes are
/// materialised (see LoadMode); every mode yields bit-identical outputs.
TrustedHmd load_model(const std::string& path, int n_threads = 0,
                      LoadMode mode = LoadMode::kAuto);

}  // namespace hmd::core
