#pragma once
// Versioned on-disk model artifact — the train-once / serve-many split.
//
// A `.hmdf` file holds everything a serving process needs and nothing the
// trainer used. Two format versions are live:
//
// ## Format v2 (current, written by default): the zero-copy layout
//
// All integers little-endian. Every section starts on a 64-byte file
// offset, and inside the engine section every large array is padded to a
// 64-byte file offset too. mmap returns a page-aligned base, so file-
// offset alignment == memory alignment: the node arena and the M×d weight
// matrices are directly usable in place, and a serving process's model
// residency cost is O(page faults actually touched), not O(bytes copied).
//
//   [ 0.. 4)  magic "HMDF"
//   [ 4.. 8)  u32 version = 2
//   [ 8..12)  u32 section_count = 3
//   [12..16)  u32 flags (bit 0 = kArtifactFlagSectionChecksums)
//   then the section table, whose entry layout depends on bit 0:
//
//   flags bit 0 SET (the default since the fault-tolerance PR):
//   [16..88)  section table: section_count × { u64 offset, u64 size,
//             u64 xxh64 } — the checksum is XXH64 (common/checksum.h,
//             seed 0) over the section's exact [offset, offset+size)
//             bytes, internal alignment padding included.
//   [88..96)  u64 header_xxh64: XXH64 over bytes [0, 88) — magic,
//             version, counts, flags, and the whole table — so a bit
//             flip in a stored offset/size/checksum is itself caught.
//
//   flags bit 0 CLEAR (pre-checksum v2 files, still loadable and still
//   writable via save_model's section_checksums=false for migration and
//   benchmarking):
//   [16..64)  section table: section_count × { u64 offset, u64 size }
//
//   Sections in order: config, scaler, engine. Offsets are 64-byte
//   aligned and in-bounds; sizes are exact payload bytes (loaders reject
//   misaligned or out-of-range entries).
//
//   config section:
//     u32 model_kind | i32 n_members | u32 uncertainty_mode
//     f64 entropy_threshold | u64 seed | i32 tree_min_samples_leaf
//     i32 tree_max_depth | f64 converged_fraction
//   scaler section:
//     u8 has_scaler | [u64 d | align64 | f64 means[d] | align64 |
//     f64 scales[d]]
//   engine section:
//     u32 engine_id | engine v2 blob (see the engine's save_blob_v2):
//       flat_forest: u64 n_features | u64 n_nodes | u64 n_roots
//                    | align64 | Node nodes[n_nodes]
//                    | align64 | f64 leaf_entropy[n_nodes]
//                    | align64 | i32 roots[n_roots]
//       flat_linear: u8 kind | u64 M | u64 d
//                    | align64 | f64 weights[M*d]      (member-major)
//                    | align64 | f64 weights_t[M*d]    (feature-major —
//                      the batch-kernel layout, carried on disk so it
//                      maps in place instead of being rebuilt at load)
//                    | align64 | f64 bias[M] | align64 | f64 platt_a[M]
//                    | align64 | f64 platt_b[M] | align64 | f64 means[d]
//                    | align64 | f64 scales[d]
//
// ## Integrity and trust (the verify-once-then-trust contract)
//
// A checksummed v2 load verifies the header hash, then every section's
// hash, *before* parsing — one sequential, prefetcher-friendly sweep of
// the bytes — and then trusts the content: the O(n_nodes) structural
// validation walk of the forest arena is skipped (only the O(M) root
// checks remain), so any single bit flip anywhere in any section —
// including flips the old walk could never see, like a weight double or
// a leaf probability — is rejected with LoadError{kChecksum}, and cold
// start stops paying a pointer-chasing walk over every node page.
// Checksum-less v2 files keep the full structural walk.
//
// Threat model: the checksum is an *integrity* check (bit rot, torn or
// interrupted writes, flaky storage), not an *authenticity* check — a
// writer who controls the file can recompute XXH64, exactly as they
// could simply write a well-formed artifact with hostile weights. Only
// load artifacts from writers you already trust to choose your model.
//
// ## Format v1 (still loadable, writable on request): the stream layout
//
//   magic "HMDF" | u32 version=1 | config (as above, packed) |
//   u8 has_scaler [u64 d | means | scales] | u32 engine_id | engine blob
//
// v1 files always load through the std::istream copy path; they predate
// checksums and keep the full structural validation.
//
// save_model() writes atomically and durably: temp file + fsync(file) +
// rename + fsync(directory), so a crash mid-field-update can never leave
// a torn artifact under the real name for DetectorRegistry::refresh() to
// pick up. The rename discipline is also what makes hot-swap safe for
// mapped artifacts: replacing the directory entry leaves the old inode —
// and every live mapping of it — intact until the last reader drops it.
// (Overwriting a served artifact *in place* is a contract violation: a
// process still mapping the old bytes would see torn data or SIGBUS.)
//
// Loaders throw a typed LoadError (common/error.h) naming the failure
// class: kIo (missing/unreadable file), kBadMagic, kBadVersion,
// kChecksum, kTruncated, kBadStructure (misaligned / out-of-range /
// implausible geometry), kMmapFailed (LoadMode::kMmap only — kAuto falls
// back to the stream read itself).

#include <cstdint>
#include <string>
#include <vector>

#include "core/hmd.h"

namespace hmd::core {

/// Current artifact version (the default save format). Bump when the
/// layout changes; load_model also accepts kModelFormatV1.
inline constexpr std::uint32_t kModelFormatVersion = 2;
inline constexpr std::uint32_t kModelFormatV1 = 1;

/// Header flags word (bytes [12..16) of a v2 artifact).
inline constexpr std::uint32_t kArtifactFlagSectionChecksums = 1u;

/// How load_model materialises the artifact bytes.
enum class LoadMode {
  /// v2: mmap, falling back to a full buffer read if mapping fails.
  /// v1: stream read. The serving default.
  kAuto,
  /// v2: mmap or throw LoadError{kMmapFailed}. v1: stream read (v1
  /// predates the zero-copy layout; there is nothing to map in place).
  kMmap,
  /// Never map: v2 parses from a full heap read, v1 streams. The
  /// full-copy baseline the bench compares against.
  kStream,
};

/// Path of the model artifact for a stem ("<stem>.hmdf").
std::string model_path(const std::string& stem);

/// True iff an artifact exists at `path` *and* carries the magic and a
/// loadable version (v1 or v2) — stale artifacts look absent so callers
/// re-train.
bool model_exists(const std::string& path);

/// Persist a fitted detector (config + scaler + compiled engine) to
/// `path`. The detector must be using a flat engine. `format_version`
/// selects the on-disk layout (v2 by default; v1 kept for migration
/// tests and old readers); `section_checksums` selects the checksummed
/// v2 table (ignored for v1; false reproduces the pre-checksum v2 layout
/// for migration tests and the checksum-vs-walk bench). Writes are
/// atomic and durable (see header).
void save_model(const UntrustedHmd& hmd, const std::string& path,
                std::uint32_t format_version = kModelFormatVersion,
                bool section_checksums = true);

/// Reconstruct a serving-only detector from an artifact. `n_threads`
/// sizes the serving thread pool (<= 0 = all cores) — it intentionally
/// does not come from the artifact, since the training host's core count
/// is meaningless to the serving host. `mode` picks how the bytes are
/// materialised (see LoadMode); every mode yields bit-identical outputs.
TrustedHmd load_model(const std::string& path, int n_threads = 0,
                      LoadMode mode = LoadMode::kAuto);

/// Header-level description of an artifact on disk, read without parsing
/// (or validating) any section payload. The introspection surface behind
/// tools/hmd_faultgen and the per-section corruption tests: sections are
/// reported in table order (config, scaler, engine) with their exact
/// byte ranges, so a test or corruption tool can target "one byte of the
/// engine section" without hard-coding layout offsets. Empty for v1
/// (which has no section table). `checksum` is meaningful only when
/// `section_checksums` is true.
struct ArtifactSectionInfo {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

struct ArtifactInfo {
  std::uint32_t version = 0;
  bool section_checksums = false;
  std::uint64_t file_bytes = 0;
  std::vector<ArtifactSectionInfo> sections;
};

/// Read an artifact's header + section table. Throws LoadError on a
/// missing file, bad magic, unsupported version, or a v2 table that is
/// truncated/out-of-range — but does NOT verify section checksums or
/// parse payloads (that is load_model's job).
ArtifactInfo inspect_model(const std::string& path);

}  // namespace hmd::core
