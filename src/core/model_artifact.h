#pragma once
// Versioned on-disk model artifact — the train-once / serve-many split.
//
// Format v1: a single little-endian binary file (`<stem>.hmdf`) holding
// everything a serving process needs and nothing the trainer used,
// mirroring the `.hmdb` dataset-cache design in datasets/io.h:
//
//   magic "HMDF" | u32 version
//   config: u32 model_kind | i32 n_members | u32 uncertainty_mode
//           f64 entropy_threshold | u64 seed | i32 tree_min_samples_leaf
//           i32 tree_max_depth | f64 converged_fraction
//   scaler: u8 has_scaler | [u64 d | f64 means[d] | f64 scales[d]]
//   engine: u32 engine_id | engine blob (see the engine's save_blob)
//
// save_model() streams a fitted detector's compiled engine; load_model()
// reconstructs a *serving-only* TrustedHmd straight from the engine blob —
// no ml::Bagging, no base learners, no training code on the path — whose
// detections and estimates are bit-identical to the detector that was
// saved. Writes are atomic (temp file + rename). Loaders throw IoError on
// missing files, bad magic, version mismatch, unknown engine tags, or
// truncation.

#include <string>

#include "core/hmd.h"

namespace hmd::core {

/// Current artifact version. Bump when the layout changes.
inline constexpr std::uint32_t kModelFormatVersion = 1;

/// Path of the model artifact for a stem ("<stem>.hmdf").
std::string model_path(const std::string& stem);

/// True iff an artifact exists at `path` *and* carries the current
/// magic/version — stale artifacts look absent so callers re-train.
bool model_exists(const std::string& path);

/// Persist a fitted detector (config + scaler + compiled engine) to
/// `path`. The detector must be using a flat engine.
void save_model(const UntrustedHmd& hmd, const std::string& path);

/// Reconstruct a serving-only detector from an artifact. `n_threads`
/// sizes the serving thread pool (<= 0 = all cores) — it intentionally
/// does not come from the artifact, since the training host's core count
/// is meaningless to the serving host.
TrustedHmd load_model(const std::string& path, int n_threads = 0);

}  // namespace hmd::core
