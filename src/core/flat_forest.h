#pragma once
// Flattened struct-of-arrays inference engine for tree ensembles.
//
// After fit(), every member tree of the bagging ensemble is re-packed into
// one contiguous arena of 16-byte node records (threshold double + packed
// feature / left-child indices), trees concatenated back to back. The
// traversal-hot fields of a node span a single 16-byte load, and children
// are allocated adjacently, so a traversal step is branch-free:
//
//   next = node.left + !(x[node.feature] <= node.threshold)
//
// (negated <=, so NaN descends right exactly like the reference tree).
//
// Leaves store the member's P(class 1) in the threshold slot and its
// precomputed binary entropy in a cold side array (touched once per walk),
// which makes the batched estimate path a pure accumulate — no log() on
// the hot path.
//
// predict_batch traverses *tree-major over sample tiles*: for each tile of
// rows, every tree is walked for all rows in the tile before moving to the
// next tree, so a tree's nodes stay cache-resident while they are reused.
// The tile is transposed to column-major scratch first, which turns the
// per-tree row loop into unit-stride loads. Trees of depth <= 1 (common on
// well-separated data, where most members are decision stumps) are
// compiled into a dedicated stump table evaluated as a branchless select —
// one compare + two blends per row that the compiler vectorises across
// rows. Lanes are rows, trees still run in ascending member order, so
// per-sample accumulation order is untouched and results stay bit-
// identical to the reference path.
// Tiles are distributed over a thread pool; each tile writes a disjoint
// output range, so results are deterministic for any worker count.
//
// The engine is an exact re-encoding of the pointer trees: predictions,
// vote counts and accumulated probabilities are bit-identical to the
// reference ml::Bagging path (asserted by the parity test suite).

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "ml/bagging.h"

namespace hmd::core {

class ThreadPool;

/// Per-sample ensemble sufficient statistics. sum_p1 and sum_entropy are
/// accumulated in member order (member 0 first), matching the reference
/// implementation exactly.
struct EnsembleStats {
  std::int32_t votes1 = 0;     ///< members voting class 1
  double sum_p1 = 0.0;         ///< sum of member P(class 1)
  double sum_entropy = 0.0;    ///< sum of member leaf entropies H(p_m)
};

class FlatForest {
 public:
  /// Re-pack a trained tree ensemble. Returns an engine with n_trees() == 0
  /// when any member is not a DecisionTree (linear ensembles fall back to
  /// the reference path).
  static FlatForest compile(const ml::Bagging& ensemble);

  bool compiled() const { return !roots_.empty(); }
  std::size_t n_trees() const { return roots_.size(); }
  std::size_t n_nodes() const { return nodes_.size(); }
  std::size_t n_stumps() const { return n_stumps_; }
  std::size_t arena_bytes() const {
    return nodes_.size() * (sizeof(Node) + sizeof(double)) +
           stumps_.size() * sizeof(Stump);
  }

  /// Ensemble statistics for a single sample (member-order accumulation).
  EnsembleStats stats_one(RowView x) const;

  /// Batched statistics: tree-major over `kTileRows` sample tiles,
  /// parallelised over `pool` when given. `out` is resized to x.rows().
  void stats_batch(const Matrix& x, ThreadPool* pool,
                   std::vector<EnsembleStats>& out) const;

  static constexpr std::size_t kTileRows = 256;

 private:
  /// One arena slot. feature < 0 marks a leaf; for leaves, threshold holds
  /// P(class 1). For internal nodes, left is the arena index of the left
  /// child and the right child sits at left + 1.
  struct alignas(16) Node {
    double threshold = 0.0;
    std::int32_t feature = -1;
    std::int32_t left = -1;
  };

  /// Specialised encoding of a depth <= 1 tree: evaluated branchlessly as
  ///   hi = !(x[feature] <= threshold);  p1 = hi ? p_hi : p_lo
  /// A pure-leaf tree uses threshold = +inf so the select always takes the
  /// lo branch. Payloads are the exact leaf doubles from the arena, so the
  /// stump path is bit-identical to walking the same tree. The leaf's vote
  /// (p1 > 0.5) is precomputed as 0.0/1.0 so the whole evaluation — select,
  /// vote, and the three accumulates — stays in the FP domain and
  /// vectorises as one compare plus three blends and adds per row.
  struct Stump {
    std::int32_t feature = 0;
    double threshold = 0.0;
    double p_lo = 0.0, p_hi = 0.0;
    double e_lo = 0.0, e_hi = 0.0;
    double v_lo = 0.0, v_hi = 0.0;
  };

  void tile_kernel(const Matrix& x, std::size_t row_begin,
                   std::size_t row_end, EnsembleStats* out) const;

  std::vector<Node> nodes_;
  /// Per-slot binary entropy of the leaf P(class 1); meaningful (and read)
  /// only at leaves, kept out of the Node record to halve traversal reads.
  std::vector<double> leaf_entropy_;
  std::vector<std::int32_t> roots_;
  /// stumps_[m] is valid iff is_stump_[m]; general trees walk the arena.
  std::vector<Stump> stumps_;
  std::vector<std::uint8_t> is_stump_;
  std::size_t n_stumps_ = 0;
};

}  // namespace hmd::core
