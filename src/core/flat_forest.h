#pragma once
// Flattened struct-of-arrays inference engine for tree ensembles.
//
// After fit(), every member tree of the bagging ensemble is re-packed into
// one contiguous arena of 16-byte node records (threshold double + packed
// feature / left-child indices), trees concatenated back to back. The
// traversal-hot fields of a node span a single 16-byte load, and children
// are allocated adjacently, so a traversal step is branch-free:
//
//   next = node.left + !(x[node.feature] <= node.threshold)
//
// (negated <=, so NaN descends right exactly like the reference tree).
//
// Leaves store the member's P(class 1) in the threshold slot and its
// precomputed binary entropy in a cold side array (touched once per walk),
// which makes the batched estimate path a pure accumulate — no log() on
// the hot path.
//
// stats_batch traverses *tree-major over sample tiles*: for each tile of
// rows, every tree is walked for all rows in the tile before moving to the
// next tree, so a tree's nodes stay cache-resident while they are reused.
// The tile is transposed to column-major scratch first, which turns the
// per-tree row loop into unit-stride loads. Trees of depth <= 1 (common on
// well-separated data, where most members are decision stumps) are
// compiled into a dedicated stump table evaluated as a branchless select —
// one compare + two blends per row that the compiler vectorises across
// rows. Lanes are rows, trees still run in ascending member order, so
// per-sample accumulation order is untouched and results stay bit-
// identical to the reference path.
// Tiles are distributed over a thread pool; each tile writes a disjoint
// output range, so results are deterministic for any worker count.
//
// The engine is an exact re-encoding of the pointer trees: predictions,
// vote counts and accumulated probabilities are bit-identical to the
// reference ml::Bagging path (asserted by the parity test suite).
//
// Serialisation: the arena, leaf entropies and roots are the whole model —
// save_blob() streams them and load_blob() rebuilds the engine (the stump
// table is re-derived from the arena), so a serving process reconstructs
// inference without any training objects.
//
// Storage is view-based: the hot-path arrays (node arena, leaf entropies,
// roots) are std::spans. A training-built or v1-stream-loaded engine
// points them at its own vectors; an engine built from a `.hmdf` v2
// ArtifactBuffer (from_buffer) points them straight into the mapped file
// — zero copies, residency paid in page faults actually touched — and
// holds a shared_ptr keepalive so the mapping outlives the engine. The
// stump table is always re-derived at load; it is never serialised.
//
// Kernel dispatch: stats_batch lowers its StatsMask to one of four tile
// kernels through a per-engine dispatch table selected once at load time
// (select_kernels). The table rows share one uniform signature — a tile
// transposed at the fixed kTileRows stride, the live row count, and
// dense vote/posterior/entropy accumulators — so a backend is just a set
// of four rows: the interpreted arena kernels always exist, and when the
// tree JIT is available and enabled (src/jit/jit.h) the table instead
// points at natively compiled kernels that are bit-identical to the
// interpreter (asserted by the JitParity suite). kernel_backend()
// reports which rows are installed; everything above stats_batch
// (score() lowering, the StatsMask contract) is backend-blind.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "common/mapped_file.h"
#include "common/matrix.h"
#include "core/inference_engine.h"
#include "ml/bagging.h"

namespace hmd::io {
class ByteReader;
}  // namespace hmd::io

namespace hmd::jit {
class ForestProgram;
}  // namespace hmd::jit

namespace hmd::core {

class FlatForestEngine final : public InferenceEngine {
 public:
  /// Re-pack a trained tree ensemble. Returns nullptr when any member is
  /// not a DecisionTree (the caller should try another engine).
  static std::unique_ptr<FlatForestEngine> compile(
      const ml::Bagging& ensemble);

  /// Reconstruct an engine from a save_blob() payload; `context` names the
  /// source file in errors. Throws IoError on truncation or implausible
  /// geometry. The engine owns its storage (the v1 stream path).
  static std::unique_ptr<FlatForestEngine> load_blob(
      std::istream& in, const std::string& context);

  /// Reconstruct an engine from a `.hmdf` v2 save_blob_v2() payload,
  /// viewing the arena / entropies / roots *in place* inside `keepalive`'s
  /// buffer (no copies; the engine pins the buffer). Bit-identical outputs
  /// to the stream path. `deep_validate=false` skips the O(n_nodes)
  /// structural walk of the arena (keeping the O(n_trees) root checks) —
  /// only valid when the caller has already proven the bytes intact, i.e.
  /// the artifact's section checksums verified (model_artifact.h's
  /// verify-once-then-trust contract).
  static std::unique_ptr<FlatForestEngine> from_buffer(
      io::ByteReader& in,
      std::shared_ptr<const io::ArtifactBuffer> keepalive,
      bool deep_validate = true);

  ~FlatForestEngine() override;

  std::string name() const override { return "flat_forest"; }
  EngineId engine_id() const override { return EngineId::kFlatForest; }
  std::size_t n_members() const override { return roots_.size(); }
  EnsembleStats stats_one(RowView x) const override;
  void stats_batch(const Matrix& x, ThreadPool* pool,
                   std::vector<EnsembleStats>& out,
                   StatsMask mask) const override;
  void save_blob(std::ostream& out) const override;
  void save_blob_v2(io::AlignedWriter& out) const override;
  bool zero_copy() const override {
    return buffer_ != nullptr && buffer_->mapped();
  }
  std::size_t memory_bytes() const override {
    return nodes_.size() * (sizeof(Node) + sizeof(double)) +
           stumps_.size() * sizeof(Stump);
  }

  /// Which batch-kernel rows the dispatch table holds: "jit" when the
  /// tree JIT compiled this forest, else "arena" (the interpreter).
  std::string kernel_backend() const override;

  std::size_t n_trees() const { return roots_.size(); }
  std::size_t n_nodes() const { return nodes_.size(); }
  std::size_t n_stumps() const { return n_stumps_; }
  std::size_t n_features() const override { return n_features_; }

  /// Wall-clock cost of the JIT compile at load (0 when interpreted) and
  /// the sealed code size — bench_latency's jit series reports both.
  double jit_compile_ms() const;
  std::size_t jit_code_bytes() const;

  static constexpr std::size_t kTileRows = 256;

  /// One arena slot. feature < 0 marks a leaf; for leaves, threshold holds
  /// P(class 1). For internal nodes, left is the arena index of the left
  /// child and the right child sits at left + 1. Public so the tree JIT
  /// (src/jit) can walk the arena it compiles.
  struct alignas(16) Node {
    double threshold = 0.0;
    std::int32_t feature = -1;
    std::int32_t left = -1;
  };
  static_assert(sizeof(Node) == 16, "arena nodes are streamed raw");

  /// Read-only arena views for the JIT compiler (and the parity suite).
  std::span<const Node> nodes_view() const { return nodes_; }
  std::span<const double> leaf_entropy_view() const { return leaf_entropy_; }
  std::span<const std::int32_t> roots_view() const { return roots_; }

 private:
  /// Specialised encoding of a depth <= 1 tree: evaluated branchlessly as
  ///   hi = !(x[feature] <= threshold);  p1 = hi ? p_hi : p_lo
  /// A pure-leaf tree uses threshold = +inf so the select always takes the
  /// lo branch. Payloads are the exact leaf doubles from the arena, so the
  /// stump path is bit-identical to walking the same tree. The leaf's vote
  /// (p1 > 0.5) is precomputed as 0.0/1.0 so the whole evaluation — select,
  /// vote, and the three accumulates — stays in the FP domain and
  /// vectorises as one compare plus three blends and adds per row.
  struct Stump {
    std::int32_t feature = 0;
    double threshold = 0.0;
    double p_lo = 0.0, p_hi = 0.0;
    double e_lo = 0.0, e_hi = 0.0;
    double v_lo = 0.0, v_hi = 0.0;
  };

  /// Populate the stump table from the arena (used after compile and
  /// after load, so the specialisation never needs serialising).
  void derive_stumps();

  /// Point the hot-path spans at the engine-owned storage vectors (the
  /// training / v1-stream ownership mode).
  void adopt_storage();

  /// Structural validation shared by both load paths: feature indices
  /// stay inside the input row and child links point strictly forward, so
  /// a corrupt arena can never be *traversed* wrong (and every walk
  /// terminates). `deep=false` keeps only the O(1) consistency and
  /// O(n_trees) root checks (the checksummed-load mode, where intactness
  /// is already proven). Throws LoadError{kBadStructure} naming `context`.
  void validate_geometry(const std::string& context, bool deep) const;

  /// The uniform batch-kernel row signature. `xt` is the tile transposed
  /// at the fixed kTileRows stride (feature c's column starts at
  /// xt + c * kTileRows); `tile` is the live row count (<= kTileRows);
  /// the accumulators are zeroed by the caller, and a row whose StatsMask
  /// shape excludes a field receives nullptr for it and must not touch
  /// it. Rows are plain functions so the table is data, not virtual
  /// dispatch.
  using BatchKernelFn = void (*)(const FlatForestEngine& self,
                                 const double* xt, std::size_t tile,
                                 double* votes, double* sum_p1,
                                 double* sum_entropy);

  /// Interpreted rows: the arena/stump walk, templated on shape.
  template <bool kNeedPosterior, bool kNeedEntropy>
  static void arena_kernel(const FlatForestEngine& self, const double* xt,
                           std::size_t tile, double* votes, double* sum_p1,
                           double* sum_entropy);

  /// JIT rows: trampolines into the ForestProgram's native entry points.
  template <int kShape>
  static void jit_kernel(const FlatForestEngine& self, const double* xt,
                         std::size_t tile, double* votes, double* sum_p1,
                         double* sum_entropy);

  /// Fill the dispatch table — interpreted rows, then, when the JIT is
  /// enabled and compilation succeeds, the native rows. Called once by
  /// every construction path (compile / load_blob / from_buffer), which
  /// on the registry path runs under the per-entry load mutex: at most
  /// one compile per load, off the registry-wide lock.
  void select_kernels();

  // Hot-path views. Either into the storage vectors below (training /
  // v1 stream load) or straight into buffer_'s mapped bytes (v2 load).
  std::span<const Node> nodes_;
  /// Per-slot binary entropy of the leaf P(class 1); meaningful (and read)
  /// only at leaves, kept out of the Node record to halve traversal reads.
  std::span<const double> leaf_entropy_;
  std::span<const std::int32_t> roots_;

  // Owned backing (empty for zero-copy engines).
  std::vector<Node> nodes_storage_;
  std::vector<double> leaf_entropy_storage_;
  std::vector<std::int32_t> roots_storage_;
  /// Pins the mapped/read artifact bytes the spans view (null when the
  /// storage vectors back them).
  std::shared_ptr<const io::ArtifactBuffer> buffer_;

  /// stumps_[m] is valid iff is_stump_[m]; general trees walk the arena.
  /// Always owned — the specialisation is re-derived at every load.
  std::vector<Stump> stumps_;
  std::vector<std::uint8_t> is_stump_;
  std::size_t n_stumps_ = 0;

  /// The per-engine kernel dispatch table, indexed by StatsMask shape
  /// (posterior ? 1 : 0) | (entropy ? 2 : 0). Filled by select_kernels().
  BatchKernelFn kernels_[4] = {nullptr, nullptr, nullptr, nullptr};
  /// Owns the native code when the JIT rows are installed; null keeps
  /// the interpreted rows (and is the automatic fallback everywhere the
  /// JIT is unavailable, disabled, or declined the forest).
  std::unique_ptr<jit::ForestProgram> jit_;
  /// Expected input width; every node's feature index is < this (checked
  /// at load, so a corrupt artifact can never drive out-of-bounds reads).
  std::size_t n_features_ = 0;
};

}  // namespace hmd::core
