#include "core/model_artifact.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/binary_io.h"
#include "common/error.h"
#include "core/flat_forest.h"
#include "core/flat_linear.h"

namespace hmd::core {

namespace {

constexpr char kMagic[4] = {'H', 'M', 'D', 'F'};

bool header_matches(std::istream& in) {
  char magic[4] = {};
  std::uint32_t version = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  return in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
         version == kModelFormatVersion;
}

}  // namespace

std::string model_path(const std::string& stem) { return stem + ".hmdf"; }

bool model_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  return header_matches(in);
}

void save_model(const UntrustedHmd& hmd, const std::string& path) {
  HMD_REQUIRE(hmd.uses_flat_engine(),
              "save_model: detector has no compiled engine");
  const InferenceEngine& engine = hmd.engine();
  const HmdConfig& config = hmd.config();

  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path());
  }
  // Write to a sibling temp file and rename into place, so an interrupted
  // save never leaves a half-written artifact under the real name.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("save_model: cannot open " + tmp_path);
    out.write(kMagic, sizeof(kMagic));
    io::write_pod(out, kModelFormatVersion);

    io::write_pod(out, static_cast<std::uint32_t>(config.model));
    io::write_pod(out, static_cast<std::int32_t>(config.n_members));
    io::write_pod(out, static_cast<std::uint32_t>(config.mode));
    io::write_pod(out, config.entropy_threshold);
    io::write_pod(out, config.seed);
    io::write_pod(out, static_cast<std::int32_t>(config.tree_min_samples_leaf));
    io::write_pod(out, static_cast<std::int32_t>(config.tree_max_depth));
    io::write_pod(out, hmd.converged_fraction());

    const ml::StandardScaler& scaler = hmd.input_scaler();
    const std::uint8_t has_scaler = scaler.fitted() ? 1 : 0;
    io::write_pod(out, has_scaler);
    if (has_scaler) {
      io::write_pod(out, static_cast<std::uint64_t>(scaler.means().size()));
      io::write_span(out, scaler.means().data(), scaler.means().size());
      io::write_span(out, scaler.scales().data(), scaler.scales().size());
    }

    io::write_pod(out, static_cast<std::uint32_t>(engine.engine_id()));
    engine.save_blob(out);
    if (!out) throw IoError("save_model: write failed for " + tmp_path);
  }
  std::filesystem::rename(tmp_path, path);
}

TrustedHmd load_model(const std::string& path, int n_threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("load_model: missing artifact " + path);
  if (!header_matches(in)) {
    throw IoError("load_model: bad magic or version mismatch in " + path +
                  " (expected v" + std::to_string(kModelFormatVersion) + ")");
  }

  HmdConfig config;
  std::uint32_t model_kind = 0, mode = 0;
  std::int32_t n_members = 0, min_leaf = 1, max_depth = 0;
  double converged_fraction = 1.0;
  io::read_pod(in, model_kind, path);
  io::read_pod(in, n_members, path);
  io::read_pod(in, mode, path);
  io::read_pod(in, config.entropy_threshold, path);
  io::read_pod(in, config.seed, path);
  io::read_pod(in, min_leaf, path);
  io::read_pod(in, max_depth, path);
  io::read_pod(in, converged_fraction, path);
  if (model_kind > static_cast<std::uint32_t>(ModelKind::kBaggedSvm))
    throw IoError("load_model: unknown model kind in " + path);
  if (mode > static_cast<std::uint32_t>(UncertaintyMode::kMaxProbability))
    throw IoError("load_model: unknown uncertainty mode in " + path);
  if (n_members < 1)
    throw IoError("load_model: implausible member count in " + path);
  config.model = static_cast<ModelKind>(model_kind);
  config.n_members = n_members;
  config.mode = static_cast<UncertaintyMode>(mode);
  config.tree_min_samples_leaf = min_leaf;
  config.tree_max_depth = max_depth;
  config.n_threads = n_threads;

  ml::StandardScaler scaler;
  std::uint8_t has_scaler = 0;
  io::read_pod(in, has_scaler, path);
  if (has_scaler) {
    std::uint64_t d = 0;
    io::read_pod(in, d, path);
    if (d == 0 || d > (1u << 24))
      throw IoError("load_model: implausible scaler width in " + path);
    std::vector<double> means(d), scales(d);
    io::read_span(in, means.data(), means.size(), path);
    io::read_span(in, scales.data(), scales.size(), path);
    scaler = ml::StandardScaler::from_moments(std::move(means),
                                              std::move(scales));
  }

  std::uint32_t engine_id = 0;
  io::read_pod(in, engine_id, path);
  std::unique_ptr<InferenceEngine> engine;
  switch (static_cast<EngineId>(engine_id)) {
    case EngineId::kFlatForest:
      engine = FlatForestEngine::load_blob(in, path);
      break;
    case EngineId::kFlatLinear:
      engine = FlatLinearEngine::load_blob(in, path);
      break;
    default:
      throw IoError("load_model: unknown engine id " +
                    std::to_string(engine_id) + " in " + path);
  }

  return TrustedHmd(std::move(config), std::move(engine), std::move(scaler),
                    converged_fraction);
}

}  // namespace hmd::core
