#include "core/model_artifact.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>

#include "common/binary_io.h"
#include "common/checksum.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/mapped_file.h"
#include "core/flat_forest.h"
#include "core/flat_linear.h"

namespace hmd::core {

namespace {

constexpr char kMagic[4] = {'H', 'M', 'D', 'F'};
constexpr std::uint32_t kSectionCount = 3;  // config | scaler | engine
constexpr std::uint64_t kSectionTableOffset = 16;
constexpr std::size_t kSectionAlignment = 64;
const char* const kSectionNames[kSectionCount] = {"config", "scaler",
                                                 "engine"};

/// Pre-checksum v2 table entry (flags bit 0 clear): 16 bytes.
struct SectionEntry {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

/// Checksummed v2 table entry (flags bit 0 set): 24 bytes.
struct ChecksumSectionEntry {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(ChecksumSectionEntry) == 24,
              "table entries are streamed raw");

/// Byte offset of the header hash in a checksummed artifact: right after
/// the 24-byte-entry table. The hash covers bytes [0, kHeaderHashOffset).
constexpr std::uint64_t kHeaderHashOffset =
    kSectionTableOffset + kSectionCount * sizeof(ChecksumSectionEntry);
/// Total header region of a checksummed artifact (hash included).
constexpr std::uint64_t kChecksumHeaderBytes = kHeaderHashOffset + 8;

std::string hex_u64(std::uint64_t value) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// Read and validate the 8-byte magic+version prefix, throwing the typed
/// error that names what is actually wrong (not-an-artifact vs
/// future-version vs too-short-to-tell).
std::uint32_t read_header_version(std::istream& in, const std::string& path) {
  char magic[4] = {};
  std::uint32_t version = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) {
    throw LoadError(LoadErrorCode::kTruncated, path,
                    "file shorter than the 8-byte artifact header");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw LoadError(LoadErrorCode::kBadMagic, path,
                    "bad magic (not a .hmdf artifact)");
  }
  if (version != kModelFormatV1 && version != kModelFormatVersion) {
    throw LoadError(LoadErrorCode::kBadVersion, path,
                    "unsupported format version " + std::to_string(version) +
                        " (expected " + std::to_string(kModelFormatV1) +
                        " or " + std::to_string(kModelFormatVersion) + ")");
  }
  return version;
}

bool header_matches(std::istream& in, std::uint32_t& version) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  return in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
         (version == kModelFormatV1 || version == kModelFormatVersion);
}

/// fsync the file (or directory) at `path`; throws IoError on failure so
/// a save that could not be made durable is never reported as done.
void fsync_path(const std::string& path, bool directory) {
  const int flags =
      O_RDONLY | O_CLOEXEC | (directory ? O_DIRECTORY : 0);
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    throw IoError("save_model: cannot open for fsync: " + path + ": " +
                  std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw IoError("save_model: fsync failed for " + path + ": " +
                  std::strerror(errno));
  }
}

// Config codec shared by the v1 stream and v2 buffer paths: one field
// list, two byte sources, so the layouts cannot drift apart. `Source`
// provides read_pod<T>() (io::ByteReader does; StreamSource adapts an
// istream).

struct StreamSource {
  std::istream& in;
  const std::string& context;
  template <typename T>
  T read_pod() {
    T value;
    io::read_pod(in, value, context);
    return value;
  }
};

template <typename Source>
HmdConfig read_config(Source& in, const std::string& path, int n_threads,
                      double& converged_fraction) {
  HmdConfig config;
  const auto model_kind = in.template read_pod<std::uint32_t>();
  const auto n_members = in.template read_pod<std::int32_t>();
  const auto mode = in.template read_pod<std::uint32_t>();
  config.entropy_threshold = in.template read_pod<double>();
  config.seed = in.template read_pod<std::uint64_t>();
  const auto min_leaf = in.template read_pod<std::int32_t>();
  const auto max_depth = in.template read_pod<std::int32_t>();
  converged_fraction = in.template read_pod<double>();
  if (model_kind > static_cast<std::uint32_t>(ModelKind::kBaggedSvm))
    throw LoadError(LoadErrorCode::kBadStructure, path,
                    "unknown model kind " + std::to_string(model_kind));
  if (mode > static_cast<std::uint32_t>(UncertaintyMode::kMaxProbability))
    throw LoadError(LoadErrorCode::kBadStructure, path,
                    "unknown uncertainty mode " + std::to_string(mode));
  if (n_members < 1)
    throw LoadError(LoadErrorCode::kBadStructure, path,
                    "implausible member count " + std::to_string(n_members));
  config.model = static_cast<ModelKind>(model_kind);
  config.n_members = n_members;
  config.mode = static_cast<UncertaintyMode>(mode);
  config.tree_min_samples_leaf = min_leaf;
  config.tree_max_depth = max_depth;
  config.n_threads = n_threads;
  return config;
}

void write_config(io::AlignedWriter& out, const HmdConfig& config,
                  double converged_fraction) {
  out.write_pod(static_cast<std::uint32_t>(config.model));
  out.write_pod(static_cast<std::int32_t>(config.n_members));
  out.write_pod(static_cast<std::uint32_t>(config.mode));
  out.write_pod(config.entropy_threshold);
  out.write_pod(config.seed);
  out.write_pod(static_cast<std::int32_t>(config.tree_min_samples_leaf));
  out.write_pod(static_cast<std::int32_t>(config.tree_max_depth));
  out.write_pod(converged_fraction);
}

/// The v1 layout, byte for byte what every pre-v2 reader expects.
void save_model_v1(std::ostream& out, const UntrustedHmd& hmd) {
  const InferenceEngine& engine = hmd.engine();
  const HmdConfig& config = hmd.config();
  out.write(kMagic, sizeof(kMagic));
  io::write_pod(out, kModelFormatV1);

  io::AlignedWriter writer(out);  // v1 never pads; used for the one codec
  write_config(writer, config, hmd.converged_fraction());

  const ml::StandardScaler& scaler = hmd.input_scaler();
  const std::uint8_t has_scaler = scaler.fitted() ? 1 : 0;
  io::write_pod(out, has_scaler);
  if (has_scaler) {
    io::write_pod(out, static_cast<std::uint64_t>(scaler.means().size()));
    io::write_span(out, scaler.means().data(), scaler.means().size());
    io::write_span(out, scaler.scales().data(), scaler.scales().size());
  }

  io::write_pod(out, static_cast<std::uint32_t>(engine.engine_id()));
  engine.save_blob(out);
}

/// The v2 zero-copy layout (contract in model_artifact.h): header +
/// section table, then 64-byte-aligned config / scaler / engine sections.
/// Offsets, sizes, and checksums are patched in once known. Section
/// hashes are computed *in-stream* by the AlignedWriter as the bytes go
/// out (begin_hash/end_hash around each section), so the checksummed save
/// never re-reads the temp file — one write pass, one seekp to patch the
/// finished header.
void save_model_v2(std::ostream& out, const UntrustedHmd& hmd,
                   bool section_checksums) {
  const InferenceEngine& engine = hmd.engine();
  io::AlignedWriter writer(out);
  writer.write_span(kMagic, sizeof(kMagic));
  writer.write_pod(kModelFormatVersion);
  writer.write_pod(kSectionCount);
  writer.write_pod(section_checksums ? kArtifactFlagSectionChecksums
                                     : std::uint32_t{0});
  // Placeholder section table (and, when checksummed, header hash),
  // patched below once offsets are known.
  ChecksumSectionEntry sections[kSectionCount] = {};
  if (section_checksums) {
    writer.write_span(sections, kSectionCount);
    writer.write_pod(std::uint64_t{0});  // header hash placeholder
  } else {
    for (const ChecksumSectionEntry& entry : sections) {
      writer.write_pod(entry.offset);
      writer.write_pod(entry.size);
    }
  }

  // Pad to the section boundary *before* begin_hash so the hash covers
  // exactly [entry.offset, entry.offset + entry.size) — the same bytes
  // the load-path verifier sweeps.
  const auto begin_section = [&](ChecksumSectionEntry& entry) {
    writer.pad_to(kSectionAlignment);
    entry.offset = writer.offset();
    if (section_checksums) writer.begin_hash();
  };
  const auto end_section = [&](ChecksumSectionEntry& entry) {
    entry.size = writer.offset() - entry.offset;
    if (section_checksums) entry.checksum = writer.end_hash();
  };

  begin_section(sections[0]);
  write_config(writer, hmd.config(), hmd.converged_fraction());
  end_section(sections[0]);

  begin_section(sections[1]);
  const ml::StandardScaler& scaler = hmd.input_scaler();
  const std::uint8_t has_scaler = scaler.fitted() ? 1 : 0;
  writer.write_pod(has_scaler);
  if (has_scaler) {
    writer.write_pod(static_cast<std::uint64_t>(scaler.means().size()));
    writer.pad_to(kSectionAlignment);
    writer.write_span(scaler.means().data(), scaler.means().size());
    writer.pad_to(kSectionAlignment);
    writer.write_span(scaler.scales().data(), scaler.scales().size());
  }
  end_section(sections[1]);

  begin_section(sections[2]);
  writer.write_pod(static_cast<std::uint32_t>(engine.engine_id()));
  engine.save_blob_v2(writer);
  end_section(sections[2]);

  out.seekp(static_cast<std::streamoff>(kSectionTableOffset));
  if (section_checksums) {
    // Assemble the finished 96-byte header in memory so the header hash
    // can cover the *patched* table, then write table + hash in one go.
    // Bytes [0, kSectionTableOffset) are identical to what streamed out
    // above, so the file ends up byte-for-byte what the two-pass patcher
    // used to produce.
    unsigned char header[kChecksumHeaderBytes];
    std::memcpy(header, kMagic, sizeof(kMagic));
    std::memcpy(header + 4, &kModelFormatVersion, 4);
    std::memcpy(header + 8, &kSectionCount, 4);
    constexpr std::uint32_t kFlags = kArtifactFlagSectionChecksums;
    std::memcpy(header + 12, &kFlags, 4);
    std::memcpy(header + kSectionTableOffset, sections, sizeof(sections));
    const std::uint64_t header_hash = io::xxhash64(header, kHeaderHashOffset);
    std::memcpy(header + kHeaderHashOffset, &header_hash,
                sizeof(header_hash));
    out.write(reinterpret_cast<const char*>(header + kSectionTableOffset),
              static_cast<std::streamsize>(kChecksumHeaderBytes -
                                           kSectionTableOffset));
  } else {
    for (const ChecksumSectionEntry& entry : sections) {
      out.write(reinterpret_cast<const char*>(&entry.offset), 8);
      out.write(reinterpret_cast<const char*>(&entry.size), 8);
    }
  }
}

/// Parse a v2 artifact in place over `buffer` (mapped or heap-read; the
/// engines keep views into it either way). Checksummed artifacts are
/// verified here — header hash, then every section hash — *before* any
/// payload parsing, and then parsed with the deep structural walk
/// skipped (the verify-once-then-trust contract in model_artifact.h).
TrustedHmd load_model_v2(std::shared_ptr<const io::ArtifactBuffer> buffer,
                         const std::string& path, int n_threads) {
  io::ByteReader in(buffer->data(), buffer->size(), path);
  // Re-check magic and version from the buffer itself: the caller's
  // stream peek and this mapping are two opens, and a file swapped in
  // between must be rejected, not misparsed.
  char magic[4];
  std::memcpy(magic, in.view_span<char>(4), 4);
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw LoadError(LoadErrorCode::kBadMagic, path,
                    "bad magic (file replaced mid-load?)");
  }
  if (in.read_pod<std::uint32_t>() != kModelFormatVersion) {
    throw LoadError(LoadErrorCode::kBadVersion, path,
                    "version mismatch (file replaced mid-load?)");
  }
  const auto section_count = in.read_pod<std::uint32_t>();
  const auto flags = in.read_pod<std::uint32_t>();
  if (section_count != kSectionCount) {
    throw LoadError(LoadErrorCode::kBadStructure, path,
                    "bad section count " + std::to_string(section_count));
  }
  if ((flags & ~kArtifactFlagSectionChecksums) != 0) {
    throw LoadError(LoadErrorCode::kBadVersion, path,
                    "unknown header flags " + hex_u64(flags) +
                        " (written by a newer version?)");
  }
  const bool checksummed = (flags & kArtifactFlagSectionChecksums) != 0;

  ChecksumSectionEntry sections[kSectionCount];
  for (ChecksumSectionEntry& entry : sections) {
    entry.offset = in.read_pod<std::uint64_t>();
    entry.size = in.read_pod<std::uint64_t>();
    entry.checksum = checksummed ? in.read_pod<std::uint64_t>() : 0;
  }
  if (checksummed) {
    // Header hash first: it vouches for the table the section hashes are
    // about to be read through, so a flipped bit in a stored offset/size/
    // checksum is caught here rather than surfacing as a bounds error.
    const auto stored = in.read_pod<std::uint64_t>();
    const std::uint64_t actual =
        io::xxhash64(buffer->data(), kHeaderHashOffset);
    if (actual != stored) {
      throw LoadError(LoadErrorCode::kChecksum, path,
                      "header checksum mismatch (expected " +
                          hex_u64(stored) + ", got " + hex_u64(actual) + ")");
    }
  }
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    const ChecksumSectionEntry& entry = sections[i];
    if (entry.offset + entry.size < entry.offset ||  // u64 overflow
        entry.offset + entry.size > buffer->size()) {
      throw LoadError(LoadErrorCode::kTruncated, path,
                      "section '" + std::string(kSectionNames[i]) +
                          "' ends at byte " +
                          std::to_string(entry.offset + entry.size) +
                          ", past end of file (" +
                          std::to_string(buffer->size()) + " bytes)");
    }
  }
  if (checksummed) {
    for (std::uint32_t i = 0; i < kSectionCount; ++i) {
      const ChecksumSectionEntry& entry = sections[i];
      const std::uint64_t actual =
          io::xxhash64(buffer->data() + entry.offset,
                       static_cast<std::size_t>(entry.size));
      if (actual != entry.checksum) {
        throw LoadError(LoadErrorCode::kChecksum, path,
                        "section '" + std::string(kSectionNames[i]) +
                            "' checksum mismatch (expected " +
                            hex_u64(entry.checksum) + ", got " +
                            hex_u64(actual) + ")");
      }
    }
  }

  in.seek(sections[0].offset, kSectionAlignment);
  double converged_fraction = 1.0;
  HmdConfig config = read_config(in, path, n_threads, converged_fraction);

  in.seek(sections[1].offset, kSectionAlignment);
  ml::StandardScaler scaler;
  if (in.read_pod<std::uint8_t>() != 0) {
    const auto d = in.read_pod<std::uint64_t>();
    if (d == 0 || d > (1u << 24))
      throw LoadError(LoadErrorCode::kBadStructure, path,
                      "implausible scaler width " + std::to_string(d));
    // The scaler moments are tiny (d doubles each); they are copied out
    // of the buffer rather than viewed, because StandardScaler owns its
    // vectors and the engines carry their own moments anyway.
    in.align_to(kSectionAlignment);
    const double* means = in.view_span<double>(d);
    in.align_to(kSectionAlignment);
    const double* scales = in.view_span<double>(d);
    scaler = ml::StandardScaler::from_moments(
        std::vector<double>(means, means + d),
        std::vector<double>(scales, scales + d));
  }

  in.seek(sections[2].offset, kSectionAlignment);
  const auto engine_id = in.read_pod<std::uint32_t>();
  std::unique_ptr<InferenceEngine> engine;
  switch (static_cast<EngineId>(engine_id)) {
    case EngineId::kFlatForest:
      engine = FlatForestEngine::from_buffer(in, buffer,
                                             /*deep_validate=*/!checksummed);
      break;
    case EngineId::kFlatLinear:
      engine = FlatLinearEngine::from_buffer(in, buffer);
      break;
    default:
      throw LoadError(LoadErrorCode::kBadStructure, path,
                      "unknown engine id " + std::to_string(engine_id));
  }

  return TrustedHmd(std::move(config), std::move(engine), std::move(scaler),
                    converged_fraction);
}

TrustedHmd load_model_v1(std::istream& in, const std::string& path,
                         int n_threads) {
  StreamSource source{in, path};
  double converged_fraction = 1.0;
  HmdConfig config = read_config(source, path, n_threads, converged_fraction);

  ml::StandardScaler scaler;
  std::uint8_t has_scaler = 0;
  io::read_pod(in, has_scaler, path);
  if (has_scaler) {
    std::uint64_t d = 0;
    io::read_pod(in, d, path);
    if (d == 0 || d > (1u << 24))
      throw LoadError(LoadErrorCode::kBadStructure, path,
                      "implausible scaler width " + std::to_string(d));
    std::vector<double> means(d), scales(d);
    io::read_span(in, means.data(), means.size(), path);
    io::read_span(in, scales.data(), scales.size(), path);
    scaler = ml::StandardScaler::from_moments(std::move(means),
                                              std::move(scales));
  }

  std::uint32_t engine_id = 0;
  io::read_pod(in, engine_id, path);
  std::unique_ptr<InferenceEngine> engine;
  switch (static_cast<EngineId>(engine_id)) {
    case EngineId::kFlatForest:
      engine = FlatForestEngine::load_blob(in, path);
      break;
    case EngineId::kFlatLinear:
      engine = FlatLinearEngine::load_blob(in, path);
      break;
    default:
      throw LoadError(LoadErrorCode::kBadStructure, path,
                      "unknown engine id " + std::to_string(engine_id));
  }

  return TrustedHmd(std::move(config), std::move(engine), std::move(scaler),
                    converged_fraction);
}

}  // namespace

std::string model_path(const std::string& stem) { return stem + ".hmdf"; }

bool model_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint32_t version = 0;
  return header_matches(in, version);
}

void save_model(const UntrustedHmd& hmd, const std::string& path,
                std::uint32_t format_version, bool section_checksums) {
  HMD_REQUIRE(hmd.uses_flat_engine(),
              "save_model: detector has no compiled engine");
  HMD_REQUIRE(format_version == kModelFormatV1 ||
                  format_version == kModelFormatVersion,
              "save_model: unsupported format version");

  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path());
  }
  // Write to a sibling temp file and rename into place, so an interrupted
  // save never leaves a half-written artifact under the real name — and
  // so replacing a *served* artifact gives the new bytes a fresh inode,
  // leaving live mappings of the old version untouched.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("save_model: cannot open " + tmp_path);
    if (format_version == kModelFormatV1) {
      save_model_v1(out, hmd);
    } else {
      save_model_v2(out, hmd, section_checksums);
    }
    // Flush explicitly before the stream check: the destructor's implicit
    // flush swallows errors, and a short tail lost to ENOSPC here would
    // otherwise be fsynced and renamed over the good artifact below.
    out.flush();
    if (!out) throw IoError("save_model: write failed for " + tmp_path);
  }
  // Durability before visibility: flush the temp file's bytes to stable
  // storage *before* the rename publishes them, then flush the directory
  // entry itself — a crash at any point leaves either the complete old
  // artifact or the complete new one, never a torn file for refresh().
  fsync_path(tmp_path, /*directory=*/false);
  std::filesystem::rename(tmp_path, path);
  fsync_path(fs_path.has_parent_path() ? fs_path.parent_path().string()
                                       : std::string("."),
             /*directory=*/true);
}

TrustedHmd load_model(const std::string& path, int n_threads, LoadMode mode) {
  // Armed with error:io (etc.) this simulates the whole artifact tier
  // failing — the seam the registry's retry/quarantine tests drive.
  HMD_FAILPOINT("artifact.load", path.c_str());
  std::uint32_t version = 0;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw LoadError(LoadErrorCode::kIo, path,
                      std::string("cannot open artifact: ") +
                          std::strerror(errno));
    }
    version = read_header_version(in, path);
    if (version == kModelFormatV1) {
      // v1 predates the aligned layout: always the stream copy path.
      return load_model_v1(in, path, n_threads);
    }
  }
  auto buffer = std::make_shared<io::ArtifactBuffer>([&] {
    switch (mode) {
      case LoadMode::kMmap:
        return io::ArtifactBuffer::map_file(path);
      case LoadMode::kStream:
        return io::ArtifactBuffer::read_file(path);
      case LoadMode::kAuto:
        break;
    }
    return io::ArtifactBuffer::map_or_read(path);
  }());
  return load_model_v2(std::move(buffer), path, n_threads);
}

ArtifactInfo inspect_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw LoadError(LoadErrorCode::kIo, path,
                    std::string("cannot open artifact: ") +
                        std::strerror(errno));
  }
  ArtifactInfo info;
  info.file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  info.version = read_header_version(in, path);
  if (info.version == kModelFormatV1) return info;  // v1 has no table

  std::uint32_t section_count = 0;
  std::uint32_t flags = 0;
  io::read_pod(in, section_count, path);
  io::read_pod(in, flags, path);
  if (section_count != kSectionCount) {
    throw LoadError(LoadErrorCode::kBadStructure, path,
                    "bad section count " + std::to_string(section_count));
  }
  if ((flags & ~kArtifactFlagSectionChecksums) != 0) {
    throw LoadError(LoadErrorCode::kBadVersion, path,
                    "unknown header flags " + hex_u64(flags) +
                        " (written by a newer version?)");
  }
  info.section_checksums = (flags & kArtifactFlagSectionChecksums) != 0;
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    ArtifactSectionInfo section;
    section.name = kSectionNames[i];
    io::read_pod(in, section.offset, path);
    io::read_pod(in, section.size, path);
    if (info.section_checksums) io::read_pod(in, section.checksum, path);
    if (section.offset + section.size < section.offset ||
        section.offset + section.size > info.file_bytes) {
      throw LoadError(LoadErrorCode::kTruncated, path,
                      "section '" + section.name + "' ends at byte " +
                          std::to_string(section.offset + section.size) +
                          ", past end of file (" +
                          std::to_string(info.file_bytes) + " bytes)");
    }
    info.sections.push_back(section);
  }
  return info;
}

}  // namespace hmd::core
