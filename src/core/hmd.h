#pragma once
// The hardware malware detectors of the paper.
//
//   UntrustedHmd — the conventional detector: an ensemble used as a plain
//                  classifier emitting a label and a point-estimate
//                  confidence (no uncertainty awareness).
//   TrustedHmd   — the same ensemble plus the online uncertainty
//                  estimator: estimate() returns the full family of
//                  ensemble scores and flags whether the prediction is
//                  trustworthy under the configured threshold.
//
// Inference spine: after fit(), tree ensembles are compiled into the flat
// struct-of-arrays engine (core/flat_forest.h); detect()/estimate() and
// the batched detect_batch()/estimate_batch() all route through it. The
// batch entry points traverse tree-major over sample tiles and are
// parallelised by a reusable thread pool sized by HmdConfig::n_threads.
// Linear ensembles (LR / SVM bagging) use the reference member path.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flat_forest.h"
#include "core/thread_pool.h"
#include "core/uncertainty.h"
#include "ml/bagging.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/linear.h"
#include "ml/preprocessing.h"

namespace hmd::core {

enum class ModelKind {
  kRandomForest,    ///< bagged CART trees with per-split feature sampling
  kBaggedLogistic,  ///< bagged logistic regression
  kBaggedSvm,       ///< bagged linear SVM with Platt-scaled confidences
};

/// Short display name: "RF", "LR", "SVM".
std::string model_kind_name(ModelKind kind);

struct HmdConfig {
  ModelKind model = ModelKind::kRandomForest;
  int n_members = 100;
  /// Worker threads for fit and batched inference; <= 0 = all cores.
  int n_threads = 0;
  /// Reject predictions whose uncertainty score exceeds this.
  double entropy_threshold = 0.40;
  UncertaintyMode mode = UncertaintyMode::kVoteEntropy;
  std::uint64_t seed = 0;
  /// Leaf-size floor of the member trees (>1 keeps empirical leaf
  /// distributions, required by the soft decomposition).
  int tree_min_samples_leaf = 1;
  int tree_max_depth = 0;  ///< 0 = unlimited
};

/// Output of the conventional detector.
struct Detection {
  int prediction = 0;        ///< 0 = benign, 1 = malware
  double confidence = 0.0;   ///< mean member probability of the prediction
  double score = 0.0;        ///< uncertainty score under config.mode
  bool trusted = false;      ///< score <= config.entropy_threshold
};

/// Output of the online uncertainty estimator.
struct Estimate {
  int prediction = 0;
  int votes_malware = 0;
  double vote_entropy = 0.0;
  double soft_entropy = 0.0;
  double expected_entropy = 0.0;
  double mutual_information = 0.0;
  double variation_ratio = 0.0;
  double max_probability = 0.0;
  double score = 0.0;  ///< the score selected by config.mode
  bool trusted = false;
};

class UntrustedHmd {
 public:
  explicit UntrustedHmd(HmdConfig config);
  virtual ~UntrustedHmd() = default;

  /// Train the ensemble (and compile the flat engine for tree models).
  void fit(const ml::Dataset& train);

  /// Classify one sample.
  Detection detect(RowView x) const;

  /// Classify every row of x through the batched tile path.
  std::vector<Detection> detect_batch(const Matrix& x) const;

  /// True when every member's training converged.
  bool converged() const;
  double converged_fraction() const;

  const HmdConfig& config() const { return config_; }
  /// The trained reference ensemble (parity tests compare against it).
  const ml::Bagging& ensemble() const;
  /// Is inference routed through the flat struct-of-arrays engine?
  bool uses_flat_engine() const { return flat_.compiled(); }
  const FlatForest& flat_forest() const { return flat_; }

 protected:
  EnsembleStats stats_one(RowView x) const;
  void stats_batch(const Matrix& x, std::vector<EnsembleStats>& out) const;
  Detection detection_from_stats(const EnsembleStats& stats) const;
  bool fitted() const { return ensemble_ != nullptr && ensemble_->fitted(); }
  int n_members() const { return config_.n_members; }
  const VoteEntropyTable* vote_lut() const { return &vote_lut_; }

  HmdConfig config_;

 private:
  ml::ClassifierFactory member_factory() const;

  std::unique_ptr<ml::Bagging> ensemble_;
  std::unique_ptr<ThreadPool> pool_;
  FlatForest flat_;
  VoteEntropyTable vote_lut_;
  ml::StandardScaler scaler_;
  bool scale_inputs_ = false;
};

class TrustedHmd : public UntrustedHmd {
 public:
  explicit TrustedHmd(HmdConfig config) : UntrustedHmd(std::move(config)) {}

  /// Full uncertainty estimate for one sample.
  Estimate estimate(RowView x) const;

  /// Batched estimates for every row of x.
  std::vector<Estimate> estimate_batch(const Matrix& x) const;

  /// Uncertainty scores for every row under an explicit mode (batched).
  std::vector<double> scores(const Matrix& x, UncertaintyMode mode) const;

 private:
  Estimate estimate_from_stats(const EnsembleStats& stats) const;
};

}  // namespace hmd::core
