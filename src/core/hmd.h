#pragma once
// The hardware malware detectors of the paper.
//
//   UntrustedHmd — the conventional detector: an ensemble used as a plain
//                  classifier emitting a label and a point-estimate
//                  confidence (no uncertainty awareness).
//   TrustedHmd   — the same ensemble plus the online uncertainty
//                  estimator: estimate() returns the full family of
//                  ensemble scores and flags whether the prediction is
//                  trustworthy under the configured threshold.
//
// Inference spine: after fit(), the trained ensemble is compiled into a
// pluggable InferenceEngine (core/inference_engine.h) — tree ensembles
// into the flat struct-of-arrays FlatForestEngine, bagged LR / SVM into
// the FlatLinearEngine weight-matrix engine. The one batched entry point
// is score(ScoreRequest, ScoreResult) (api/score.h): the request's
// OutputMask selects which columns are computed, the result's buffers are
// caller-owned and reusable, and the mask is lowered to an engine-level
// StatsMask so unrequested per-member work is never done. detect(),
// detect_batch(), estimate(), estimate_batch() and scores() are thin
// compatibility wrappers over that spine with preset masks. Batch entry
// points are parallelised by a reusable thread pool sized by
// HmdConfig::n_threads. The reference ml::Bagging member path is retained
// for parity testing and as a fallback for exotic ensembles.
//
// Train-once / serve-many: save_model()/load_model()
// (core/model_artifact.h) persist config + scaler + engine as a `.hmdf`
// artifact; a detector loaded from one is *serving-only* — it carries an
// engine but no ml::Bagging and cannot be re-fit, yet emits bit-identical
// detections and estimates.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/score.h"
#include "core/flat_forest.h"
#include "core/inference_engine.h"
#include "core/thread_pool.h"
#include "core/uncertainty.h"
#include "ml/bagging.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/linear.h"
#include "ml/preprocessing.h"

namespace hmd::core {

enum class ModelKind {
  kRandomForest,    ///< bagged CART trees with per-split feature sampling
  kBaggedLogistic,  ///< bagged logistic regression
  kBaggedSvm,       ///< bagged linear SVM with Platt-scaled confidences
};

/// Short display name: "RF", "LR", "SVM".
std::string model_kind_name(ModelKind kind);

/// Parse a model-kind spelling — the CLI's "rf" / "lr" / "svm" or the
/// display name, case-insensitively — into a ModelKind. Returns nullopt
/// for anything else. Round-trips model_kind_name for every kind.
std::optional<ModelKind> parse_model_kind(const std::string& name);

struct HmdConfig {
  ModelKind model = ModelKind::kRandomForest;
  int n_members = 100;
  /// Worker threads for fit and batched inference; <= 0 = all cores.
  int n_threads = 0;
  /// Reject predictions whose uncertainty score exceeds this.
  double entropy_threshold = 0.40;
  UncertaintyMode mode = UncertaintyMode::kVoteEntropy;
  std::uint64_t seed = 0;
  /// Leaf-size floor of the member trees (>1 keeps empirical leaf
  /// distributions, required by the soft decomposition).
  int tree_min_samples_leaf = 1;
  int tree_max_depth = 0;  ///< 0 = unlimited
};

/// Output of the conventional detector.
struct Detection {
  int prediction = 0;        ///< 0 = benign, 1 = malware
  double confidence = 0.0;   ///< mean member probability of the prediction
  double score = 0.0;        ///< uncertainty score under config.mode
  bool trusted = false;      ///< score <= config.entropy_threshold
};

/// Output of the online uncertainty estimator.
struct Estimate {
  int prediction = 0;
  int votes_malware = 0;
  double vote_entropy = 0.0;
  double soft_entropy = 0.0;
  double expected_entropy = 0.0;
  double mutual_information = 0.0;
  double variation_ratio = 0.0;
  double max_probability = 0.0;
  double score = 0.0;  ///< the score selected by config.mode
  bool trusted = false;
};

class UntrustedHmd {
 public:
  explicit UntrustedHmd(HmdConfig config);

  /// Serving-only construction: adopt a pre-compiled engine (typically
  /// from a `.hmdf` artifact) with no training ensemble behind it.
  /// `converged_fraction` is the value recorded at training time.
  UntrustedHmd(HmdConfig config, std::unique_ptr<InferenceEngine> engine,
               ml::StandardScaler scaler, double converged_fraction);

  virtual ~UntrustedHmd() = default;
  UntrustedHmd(UntrustedHmd&&) = default;
  UntrustedHmd& operator=(UntrustedHmd&&) = default;

  /// Train the ensemble and compile the inference engine. Not available
  /// on serving-only detectors.
  void fit(const ml::Dataset& train);

  /// The unified batched entry point: fill the result columns selected by
  /// request.outputs for every row of *request.x, computing only what the
  /// mask demands (see the OutputMask contract in api/score.h). Reusing
  /// one ScoreResult across calls makes the steady state allocation-free.
  void score(const api::ScoreRequest& request, api::ScoreResult& result) const;

  /// Classify one sample. (Compatibility wrapper over the score() spine's
  /// per-stat derivations.)
  Detection detect(RowView x) const;

  /// Classify every row of x. (Compatibility wrapper: score() with
  /// api::kDetectionOutputs, re-packed into AoS Detection records.)
  std::vector<Detection> detect_batch(const Matrix& x) const;

  /// True when every member's training converged.
  bool converged() const;
  double converged_fraction() const;

  const HmdConfig& config() const { return config_; }
  /// The trained reference ensemble (parity tests compare against it).
  /// Throws on serving-only detectors — they have none by design.
  const ml::Bagging& ensemble() const;
  /// Does this detector carry a reference training ensemble? (false for
  /// detectors reconstructed from a model artifact).
  bool has_ensemble() const { return ensemble_ != nullptr; }
  /// Is inference routed through a compiled flat engine?
  bool uses_flat_engine() const { return engine_ != nullptr; }
  /// The compiled engine; throws when inference is on the reference path.
  const InferenceEngine& engine() const;
  /// The compiled engine as a FlatForestEngine (tree models only; the
  /// parity suite inspects arena geometry through this).
  const FlatForestEngine& flat_forest() const;
  /// Standardisation owned by the detector (fitted for linear models).
  const ml::StandardScaler& input_scaler() const { return scaler_; }

 protected:
  EnsembleStats stats_one(RowView x) const;
  /// Batched stats; `mask` names the EnsembleStats fields the caller will
  /// read (engines skip the work feeding unselected fields).
  void stats_batch(const Matrix& x, std::vector<EnsembleStats>& out,
                   StatsMask mask) const;
  Detection detection_from_stats(const EnsembleStats& stats) const;
  /// Has a usable inference path (engine or reference ensemble)?
  bool ready() const { return engine_ != nullptr || fitted(); }
  bool fitted() const { return ensemble_ != nullptr && ensemble_->fitted(); }
  int n_members() const { return config_.n_members; }
  const VoteEntropyTable* vote_lut() const { return &vote_lut_; }
  ThreadPool* pool() const { return pool_.get(); }

  HmdConfig config_;

 private:
  ml::ClassifierFactory member_factory() const;
  std::unique_ptr<InferenceEngine> compile_engine() const;

  std::unique_ptr<ml::Bagging> ensemble_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<InferenceEngine> engine_;
  VoteEntropyTable vote_lut_;
  ml::StandardScaler scaler_;
  bool scale_inputs_ = false;
  /// Training-time convergence, carried by serving-only detectors.
  double serving_converged_fraction_ = 1.0;
};

class TrustedHmd : public UntrustedHmd {
 public:
  explicit TrustedHmd(HmdConfig config) : UntrustedHmd(std::move(config)) {}

  /// Serving-only construction (see UntrustedHmd).
  TrustedHmd(HmdConfig config, std::unique_ptr<InferenceEngine> engine,
             ml::StandardScaler scaler, double converged_fraction)
      : UntrustedHmd(std::move(config), std::move(engine), std::move(scaler),
                     converged_fraction) {}

  /// Full uncertainty estimate for one sample.
  Estimate estimate(RowView x) const;

  /// Batched estimates for every row of x. (Compatibility wrapper:
  /// score() with api::kEstimateOutputs, re-packed into AoS Estimates.)
  std::vector<Estimate> estimate_batch(const Matrix& x) const;

  /// Uncertainty scores for every row under an explicit mode (batched).
  /// (Compatibility wrapper: score() with api::kOutScore and the request
  /// mode overridden.)
  std::vector<double> scores(const Matrix& x, UncertaintyMode mode) const;

 private:
  Estimate estimate_from_stats(const EnsembleStats& stats) const;
};

}  // namespace hmd::core
