#include "core/flat_forest.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/binary_io.h"
#include "common/error.h"
#include "core/thread_pool.h"
#include "core/uncertainty.h"
#include "jit/jit.h"
#include "ml/decision_tree.h"

namespace hmd::core {

FlatForestEngine::~FlatForestEngine() = default;

std::unique_ptr<FlatForestEngine> FlatForestEngine::compile(
    const ml::Bagging& ensemble) {
  HMD_REQUIRE(ensemble.fitted(),
              "FlatForestEngine::compile: ensemble not fitted");
  // Every member must be a decision tree; otherwise signal "not
  // compilable" and let the caller pick another engine.
  std::vector<const ml::DecisionTree*> trees;
  trees.reserve(ensemble.n_members());
  for (std::size_t m = 0; m < ensemble.n_members(); ++m) {
    const auto* tree =
        dynamic_cast<const ml::DecisionTree*>(&ensemble.member(m));
    if (tree == nullptr) return nullptr;
    trees.push_back(tree);
  }

  auto flat = std::make_unique<FlatForestEngine>();
  flat->n_features_ = ensemble.n_features();
  std::size_t total_nodes = 0;
  for (const auto* tree : trees) total_nodes += tree->nodes().size();
  flat->nodes_storage_.reserve(total_nodes);
  flat->leaf_entropy_storage_.reserve(total_nodes);
  flat->roots_storage_.reserve(trees.size());

  auto append_slot = [&flat]() {
    flat->nodes_storage_.emplace_back();
    flat->leaf_entropy_storage_.push_back(0.0);
    return static_cast<std::int32_t>(flat->nodes_storage_.size() - 1);
  };

  for (std::size_t m = 0; m < trees.size(); ++m) {
    const auto& nodes = trees[m]->nodes();
    const auto& feature_map = ensemble.feature_map(m);
    flat->roots_storage_.push_back(append_slot());

    // Breadth-first re-layout; both children of a node are allocated
    // together so right == left + 1 everywhere.
    std::deque<std::pair<std::int32_t, std::int32_t>> frontier;
    frontier.emplace_back(0, flat->roots_storage_.back());
    while (!frontier.empty()) {
      const auto [src, dst] = frontier.front();
      frontier.pop_front();
      const auto& node = nodes[static_cast<std::size_t>(src)];
      if (node.feature < 0) {
        flat->nodes_storage_[dst].feature = -1;
        flat->nodes_storage_[dst].threshold = node.p1;
        flat->leaf_entropy_storage_[dst] = binary_entropy(node.p1);
        continue;
      }
      const std::int32_t global_feature =
          feature_map.empty()
              ? node.feature
              : feature_map[static_cast<std::size_t>(node.feature)];
      flat->nodes_storage_[dst].feature = global_feature;
      flat->nodes_storage_[dst].threshold = node.threshold;
      const std::int32_t left = append_slot();
      append_slot();  // right child at left + 1
      flat->nodes_storage_[dst].left = left;
      frontier.emplace_back(node.left, left);
      frontier.emplace_back(node.right, left + 1);
    }
  }

  flat->adopt_storage();
  flat->derive_stumps();
  flat->select_kernels();
  return flat;
}

void FlatForestEngine::adopt_storage() {
  nodes_ = nodes_storage_;
  leaf_entropy_ = leaf_entropy_storage_;
  roots_ = roots_storage_;
  buffer_ = nullptr;
}

void FlatForestEngine::derive_stumps() {
  stumps_.assign(roots_.size(), Stump{});
  is_stump_.assign(roots_.size(), 0);
  n_stumps_ = 0;
  for (std::size_t m = 0; m < roots_.size(); ++m) {
    const std::int32_t root = roots_[m];
    const Node& node = nodes_[static_cast<std::size_t>(root)];
    Stump& stump = stumps_[m];
    if (node.feature < 0) {  // single-leaf tree: select is constant
      stump.feature = 0;
      stump.threshold = std::numeric_limits<double>::infinity();
      stump.p_lo = stump.p_hi = node.threshold;
      stump.e_lo = stump.e_hi = leaf_entropy_[static_cast<std::size_t>(root)];
      stump.v_lo = stump.v_hi = node.threshold > 0.5 ? 1.0 : 0.0;
      is_stump_[m] = 1;
      ++n_stumps_;
      continue;
    }
    // Bounds guard rather than assumption: under a checksummed load the
    // deep walk is skipped, and this is the only arena dereference that
    // happens at load time — keep it in-bounds even for impossible input.
    if (node.left <= 0 ||
        node.left >= static_cast<std::int32_t>(nodes_.size()) - 1) {
      continue;
    }
    const Node& lo = nodes_[static_cast<std::size_t>(node.left)];
    const Node& hi = nodes_[static_cast<std::size_t>(node.left) + 1];
    if (lo.feature < 0 && hi.feature < 0) {
      stump.feature = node.feature;
      stump.threshold = node.threshold;
      stump.p_lo = lo.threshold;
      stump.p_hi = hi.threshold;
      stump.e_lo = leaf_entropy_[static_cast<std::size_t>(node.left)];
      stump.e_hi = leaf_entropy_[static_cast<std::size_t>(node.left) + 1];
      stump.v_lo = lo.threshold > 0.5 ? 1.0 : 0.0;
      stump.v_hi = hi.threshold > 0.5 ? 1.0 : 0.0;
      is_stump_[m] = 1;
      ++n_stumps_;
    }
  }
}

void FlatForestEngine::save_blob(std::ostream& out) const {
  io::write_pod(out, static_cast<std::uint64_t>(n_features_));
  io::write_pod(out, static_cast<std::uint64_t>(nodes_.size()));
  io::write_span(out, nodes_.data(), nodes_.size());
  io::write_pod(out, static_cast<std::uint64_t>(leaf_entropy_.size()));
  io::write_span(out, leaf_entropy_.data(), leaf_entropy_.size());
  io::write_pod(out, static_cast<std::uint64_t>(roots_.size()));
  io::write_span(out, roots_.data(), roots_.size());
}

void FlatForestEngine::save_blob_v2(io::AlignedWriter& out) const {
  // Counts first, then each array on a 64-byte file offset — the arena
  // and its side tables are served straight out of the mapping.
  out.write_pod(static_cast<std::uint64_t>(n_features_));
  out.write_pod(static_cast<std::uint64_t>(nodes_.size()));
  out.write_pod(static_cast<std::uint64_t>(roots_.size()));
  out.pad_to(64);
  out.write_span(nodes_.data(), nodes_.size());
  out.pad_to(64);
  out.write_span(leaf_entropy_.data(), leaf_entropy_.size());
  out.pad_to(64);
  out.write_span(roots_.data(), roots_.size());
}

namespace {

/// Geometry caps shared by both load paths. 2^26 16-byte nodes is a 1 GiB
/// model, far above any real ensemble — a corrupt length field must
/// throw, not trigger an OOM-sized allocation (v1) or an absurd view
/// (v2, where ByteReader's bounds check would also catch it).
constexpr std::uint64_t kMaxNodes = std::uint64_t{1} << 26;
constexpr std::uint64_t kMaxFeatures = std::uint64_t{1} << 24;

}  // namespace

void FlatForestEngine::validate_geometry(const std::string& context,
                                         bool deep) const {
  if (roots_.empty() || leaf_entropy_.size() != nodes_.size())
    throw LoadError(LoadErrorCode::kBadStructure, context,
                    "inconsistent flat-forest geometry");
  const auto n_nodes = static_cast<std::int32_t>(nodes_.size());
  if (deep) {
    // Structural validation so a corrupt arena can never be *traversed*
    // wrong: feature indices stay inside the input row, and child links
    // point strictly forward (the BFS re-layout guarantees this), which
    // also guarantees every walk terminates. Checksummed loads skip this
    // O(n_nodes) page walk — bit-level intactness is already proven, and
    // the writer only ever serialises arenas that pass it.
    for (std::int32_t i = 0; i < n_nodes; ++i) {
      const Node& node = nodes_[static_cast<std::size_t>(i)];
      if (node.feature < 0) continue;
      if (static_cast<std::uint64_t>(node.feature) >= n_features_)
        throw LoadError(LoadErrorCode::kBadStructure, context,
                        "out-of-range feature index");
      // `left >= n_nodes - 1` (not `left + 1 >= n_nodes`): a crafted arena
      // with left == INT32_MAX must be rejected, not signed-overflow UB.
      if (node.left <= i || node.left >= n_nodes - 1)
        throw LoadError(LoadErrorCode::kBadStructure, context,
                        "out-of-arena child index");
    }
  }
  for (const std::int32_t root : roots_) {
    if (root < 0 || root >= n_nodes)
      throw LoadError(LoadErrorCode::kBadStructure, context,
                      "out-of-arena root index");
  }
}

std::unique_ptr<FlatForestEngine> FlatForestEngine::load_blob(
    std::istream& in, const std::string& context) {
  auto flat = std::make_unique<FlatForestEngine>();
  std::uint64_t n_features = 0;
  io::read_pod(in, n_features, context);
  if (n_features == 0 || n_features > kMaxFeatures)
    throw LoadError(LoadErrorCode::kBadStructure, context,
                    "implausible flat-forest feature width " +
                        std::to_string(n_features));
  flat->n_features_ = static_cast<std::size_t>(n_features);
  io::read_vec(in, flat->nodes_storage_, context, kMaxNodes);
  io::read_vec(in, flat->leaf_entropy_storage_, context,
               flat->nodes_storage_.size());
  io::read_vec(in, flat->roots_storage_, context,
               flat->nodes_storage_.size());
  flat->adopt_storage();
  flat->validate_geometry(context, /*deep=*/true);
  flat->derive_stumps();
  flat->select_kernels();
  return flat;
}

std::unique_ptr<FlatForestEngine> FlatForestEngine::from_buffer(
    io::ByteReader& in, std::shared_ptr<const io::ArtifactBuffer> keepalive,
    bool deep_validate) {
  auto flat = std::make_unique<FlatForestEngine>();
  const auto n_features = in.read_pod<std::uint64_t>();
  const auto n_nodes = in.read_pod<std::uint64_t>();
  const auto n_roots = in.read_pod<std::uint64_t>();
  if (n_features == 0 || n_features > kMaxFeatures)
    throw LoadError(LoadErrorCode::kBadStructure, in.context(),
                    "implausible flat-forest feature width " +
                        std::to_string(n_features));
  if (n_nodes == 0 || n_nodes > kMaxNodes || n_roots > n_nodes)
    throw LoadError(LoadErrorCode::kBadStructure, in.context(),
                    "implausible flat-forest geometry");
  flat->n_features_ = static_cast<std::size_t>(n_features);
  // Views straight into the artifact bytes — the zero-copy path. The
  // buffer keepalive pins the mapping for the engine's lifetime.
  in.align_to(64);
  flat->nodes_ = {in.view_span<Node>(n_nodes),
                  static_cast<std::size_t>(n_nodes)};
  in.align_to(64);
  flat->leaf_entropy_ = {in.view_span<double>(n_nodes),
                         static_cast<std::size_t>(n_nodes)};
  in.align_to(64);
  flat->roots_ = {in.view_span<std::int32_t>(n_roots),
                  static_cast<std::size_t>(n_roots)};
  flat->buffer_ = std::move(keepalive);
  flat->validate_geometry(in.context(), deep_validate);
  flat->derive_stumps();
  flat->select_kernels();
  return flat;
}

EnsembleStats FlatForestEngine::stats_one(RowView x) const {
  HMD_REQUIRE(x.size() == n_features_,
              "FlatForestEngine::stats_one: feature width mismatch");
  EnsembleStats stats;
  const Node* nodes = nodes_.data();
  const double* entropy = leaf_entropy_.data();
  for (const std::int32_t root : roots_) {
    std::int32_t i = root;
    Node node = nodes[i];
    while (node.feature >= 0) {
      // !(x <= t), not (x > t): matches the reference tree's `<= ? left :
      // right` step for NaN inputs too (both send NaN right).
      i = node.left + !(x[static_cast<std::size_t>(node.feature)] <=
                        node.threshold);
      node = nodes[i];
    }
    const double p1 = node.threshold;
    stats.votes1 += p1 > 0.5;
    stats.sum_p1 += p1;
    stats.sum_entropy += entropy[i];
  }
  return stats;
}

template <bool kNeedPosterior, bool kNeedEntropy>
void FlatForestEngine::arena_kernel(const FlatForestEngine& self,
                                    const double* xt, std::size_t tile,
                                    double* votes, double* sum_p1,
                                    double* sum_entropy) {
  const Node* nodes = self.nodes_.data();
  const double* entropy = self.leaf_entropy_.data();

  // Tree-major: each tree's nodes stay hot while the whole tile reuses
  // them. Trees run in ascending member order and lanes are rows, so
  // per-sample accumulation order matches stats_one and the reference
  // path exactly. Masked-out fields get no accumulate: a prediction-only
  // request runs the stump loop as one compare plus a single blend and
  // add per row.
  for (std::size_t m = 0; m < self.roots_.size(); ++m) {
    if (self.is_stump_[m]) {
      const Stump stump = self.stumps_[m];
      const double* column =
          xt + static_cast<std::size_t>(stump.feature) * kTileRows;
      for (std::size_t r = 0; r < tile; ++r) {
        const bool hi = !(column[r] <= stump.threshold);  // NaN goes hi
        votes[r] += hi ? stump.v_hi : stump.v_lo;
        if constexpr (kNeedPosterior) sum_p1[r] += hi ? stump.p_hi : stump.p_lo;
        if constexpr (kNeedEntropy) sum_entropy[r] += hi ? stump.e_hi : stump.e_lo;
      }
      continue;
    }
    const std::int32_t root = self.roots_[m];
    for (std::size_t r = 0; r < tile; ++r) {
      std::int32_t i = root;
      Node node = nodes[i];
      while (node.feature >= 0) {
        i = node.left +
            !(xt[static_cast<std::size_t>(node.feature) * kTileRows + r] <=
              node.threshold);
        node = nodes[i];
      }
      const double p1 = node.threshold;
      votes[r] += p1 > 0.5 ? 1.0 : 0.0;
      if constexpr (kNeedPosterior) sum_p1[r] += p1;
      if constexpr (kNeedEntropy) sum_entropy[r] += entropy[i];
    }
  }
}

template <int kShape>
void FlatForestEngine::jit_kernel(const FlatForestEngine& self,
                                  const double* xt, std::size_t tile,
                                  double* votes, double* sum_p1,
                                  double* sum_entropy) {
  self.jit_->kernel(kShape)(xt, tile, votes, sum_p1, sum_entropy);
}

void FlatForestEngine::select_kernels() {
  kernels_[0] = &arena_kernel<false, false>;
  kernels_[1] = &arena_kernel<true, false>;
  kernels_[2] = &arena_kernel<false, true>;
  kernels_[3] = &arena_kernel<true, true>;
  jit_.reset();
  if (!jit::should_compile(*this)) return;
  jit_ = jit::compile_forest(*this);
  if (jit_ == nullptr) return;  // fallback: interpreted rows stay
  kernels_[0] = &jit_kernel<0>;
  kernels_[1] = &jit_kernel<1>;
  kernels_[2] = &jit_kernel<2>;
  kernels_[3] = &jit_kernel<3>;
}

std::string FlatForestEngine::kernel_backend() const {
  if (jit_ != nullptr) return "jit";
  return zero_copy() ? "arena" : "stream-fallback";
}

double FlatForestEngine::jit_compile_ms() const {
  return jit_ != nullptr ? jit_->compile_ms() : 0.0;
}

std::size_t FlatForestEngine::jit_code_bytes() const {
  return jit_ != nullptr ? jit_->code_bytes() : 0;
}

void FlatForestEngine::stats_batch(const Matrix& x, ThreadPool* pool,
                                   std::vector<EnsembleStats>& out,
                                   StatsMask mask) const {
  HMD_REQUIRE(x.cols() == n_features_ || x.rows() == 0,
              "FlatForestEngine::stats_batch: feature width mismatch");
  out.assign(x.rows(), EnsembleStats{});
  const std::size_t n_tiles = (x.rows() + kTileRows - 1) / kTileRows;
  // Leaf posteriors/entropies are precomputed, so a masked-out field saves
  // only its blend + add — but on stump-heavy ensembles those are the bulk
  // of the per-row work, so the prediction-only specialisation is real.
  const bool posterior = (mask & kStatsPosterior) != 0;
  const bool entropy = (mask & kStatsEntropy) != 0;
  const BatchKernelFn kernel =
      kernels_[(posterior ? 1 : 0) | (entropy ? 2 : 0)];
  const std::size_t cols = x.cols();
  auto run_tiles = [&](std::size_t tile_begin, std::size_t tile_end) {
    // Per-worker scratch, reused across this worker's tiles: the
    // transposed tile at the fixed kTileRows stride (feature c's column
    // at xt + c * kTileRows — a compile-time displacement for the JIT
    // rows) plus the struct-of-arrays accumulators. Votes accumulate as
    // 0.0/1.0 doubles (exact for any ensemble size) so every kernel
    // stays in the FP domain end to end.
    std::vector<double> xt(cols * kTileRows);
    std::vector<double> votes(kTileRows);
    std::vector<double> sum_p1(posterior ? kTileRows : 0);
    std::vector<double> sum_entropy(entropy ? kTileRows : 0);
    for (std::size_t t = tile_begin; t < tile_end; ++t) {
      const std::size_t row_begin = t * kTileRows;
      const std::size_t row_end = std::min(x.rows(), row_begin + kTileRows);
      const std::size_t tile = row_end - row_begin;
      for (std::size_t r = 0; r < tile; ++r) {
        const double* row = x.row_ptr(row_begin + r);
        for (std::size_t c = 0; c < cols; ++c) xt[c * kTileRows + r] = row[c];
      }
      std::fill_n(votes.begin(), tile, 0.0);
      if (posterior) std::fill_n(sum_p1.begin(), tile, 0.0);
      if (entropy) std::fill_n(sum_entropy.begin(), tile, 0.0);
      kernel(*this, xt.data(), tile, votes.data(),
             posterior ? sum_p1.data() : nullptr,
             entropy ? sum_entropy.data() : nullptr);
      EnsembleStats* dst = out.data() + row_begin;
      for (std::size_t r = 0; r < tile; ++r) {
        dst[r].votes1 = static_cast<std::int32_t>(votes[r]);
        if (posterior) dst[r].sum_p1 = sum_p1[r];
        if (entropy) dst[r].sum_entropy = sum_entropy[r];
      }
    }
  };
  if (pool != nullptr && n_tiles > 1) {
    pool->parallel_for(n_tiles, run_tiles);
  } else {
    run_tiles(0, n_tiles);
  }
}

}  // namespace hmd::core
