#include "core/thread_pool.h"

#include <algorithm>

namespace hmd::core {

std::size_t ThreadPool::effective_threads(int n_threads) {
  return n_threads > 0
             ? static_cast<std::size_t>(n_threads)
             : std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int n_threads) {
  // Effective width 1 spawns nothing: the pool stays inline-only and
  // parallel_for never touches the queue machinery.
  const std::size_t total = effective_threads(n_threads);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    try {
      task.body(task.begin, task.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  // Inline fast path: a workerless pool (or a single work item) runs the
  // whole range on the caller — no lock, no queue, no condition variable.
  const std::size_t n_lanes = std::min(size(), n);
  if (inline_only() || n_lanes == 1) {
    body(0, n);
    return;
  }
  const std::size_t chunk = (n + n_lanes - 1) / n_lanes;
  // Enqueue every chunk but the first; the calling thread runs chunk 0.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    first_error_ = nullptr;
    for (std::size_t lane = 1; lane < n_lanes; ++lane) {
      Task task;
      task.body = body;
      task.begin = lane * chunk;
      task.end = std::min(n, (lane + 1) * chunk);
      if (task.begin >= task.end) continue;
      queue_.push_back(std::move(task));
      ++in_flight_;
    }
  }
  work_ready_.notify_all();
  std::exception_ptr caller_error;
  try {
    body(0, std::min(n, chunk));
  } catch (...) {
    caller_error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [this] { return in_flight_ == 0; });
    if (!caller_error) caller_error = first_error_;
    first_error_ = nullptr;
  }
  if (caller_error) std::rethrow_exception(caller_error);
}

}  // namespace hmd::core
