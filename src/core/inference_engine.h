#pragma once
// The pluggable inference spine. After training, an ensemble is compiled
// into an InferenceEngine — a self-contained, trainer-free representation
// that produces the per-sample EnsembleStats every Detection and Estimate
// is derived from. Engines consume *raw* feature rows (an engine that
// needs standardised inputs owns its scaler) so callers never have to know
// which preprocessing a model family requires.
//
// Implementations:
//   FlatForestEngine  (core/flat_forest.h) — tree ensembles re-packed into
//                     a struct-of-arrays node arena.
//   FlatLinearEngine  (core/flat_linear.h) — bagged LR / SVM members
//                     compiled into one contiguous M×d weight matrix.
//
// Every engine serialises itself into the `.hmdf` model artifact
// (core/model_artifact.h): `engine_id()` tags the blob on disk and
// `save_blob()` writes it; the artifact loader dispatches on the tag to
// the matching engine's load routine, reconstructing a serving-only
// detector with no ml::Bagging (and no training code) on the path.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/matrix.h"

namespace hmd::io {
class AlignedWriter;
}  // namespace hmd::io

namespace hmd::core {

class ThreadPool;

/// Per-sample ensemble sufficient statistics. sum_p1 and sum_entropy are
/// accumulated in member order (member 0 first), matching the reference
/// implementation exactly.
struct EnsembleStats {
  std::int32_t votes1 = 0;     ///< members voting class 1
  double sum_p1 = 0.0;         ///< sum of member P(class 1)
  double sum_entropy = 0.0;    ///< sum of member entropies H(p_m)
};

/// On-disk engine tags (u32 in the `.hmdf` blob header). Never reuse a
/// retired value.
enum class EngineId : std::uint32_t {
  kFlatForest = 1,
  kFlatLinear = 2,
};

/// The two-tier accuracy contract, carried per request through the
/// score() spine (api/score.h) down into the engine kernels:
///
///  - kExact (the default): today's guarantee, unchanged — every output
///    is bit-identical to the reference member-by-member path, libm
///    transcendentals included. Old wire-protocol clients, the legacy
///    wrapper surface, and any request that does not say otherwise get
///    this tier.
///  - kFast: transcendentals (the linear engines' sigmoid, every binary
///    entropy) are evaluated by the vectorised kernels in simd/vmath.h
///    under their documented ≤2-ULP bound. Saturated sigmoid values and
///    all special cases stay exact; which rows share a batch still
///    cannot change a row's result (per-row determinism holds per
///    tier). Engines without hot-path transcendentals (the flat forest:
///    precomputed leaf entropies, vote LUT) serve kFast bit-identical
///    to kExact.
enum class Accuracy : std::uint8_t {
  kExact = 0,
  kFast = 1,
};

/// Which EnsembleStats fields the caller will actually read, plus how.
/// Engines may leave an unselected field zero and skip the work that
/// feeds it — the per-member entropy log() pair, or the posterior
/// accumulate of a prediction-only request. votes1 is always exact:
/// every selected field is bit-identical to a full computation, an
/// unselected field is unspecified (zero in practice).
enum StatsField : std::uint32_t {
  kStatsVotes = 1u << 0,      ///< votes1 (always computed; one compare)
  kStatsPosterior = 1u << 1,  ///< sum_p1
  kStatsEntropy = 1u << 2,    ///< sum_entropy
  /// Modifier, not a field: the request is Accuracy::kFast, so the
  /// engine may fill the selected fields with the vectorised bounded-ULP
  /// kernels (simd/vmath.h) instead of libm. Without it the bit-parity
  /// contract above is unchanged.
  kStatsFastMath = 1u << 3,
};
using StatsMask = std::uint32_t;

/// Every *field* bit (kStatsFastMath is a modifier, never implied).
inline constexpr StatsMask kStatsAll =
    kStatsVotes | kStatsPosterior | kStatsEntropy;

class InferenceEngine {
 public:
  virtual ~InferenceEngine() = default;

  /// Short display name, e.g. "flat_forest".
  virtual std::string name() const = 0;
  virtual EngineId engine_id() const = 0;
  virtual std::size_t n_members() const = 0;

  /// Expected input width. Rows narrower than this would read features
  /// out of bounds, so serving layers validate request shapes against it
  /// before ever building a Matrix from untrusted bytes.
  virtual std::size_t n_features() const = 0;

  /// Full ensemble statistics (votes, posterior sum, entropy sum) for a
  /// single raw-feature sample, accumulated in member order — bit-identical
  /// to the reference member-by-member path.
  virtual EnsembleStats stats_one(RowView x) const = 0;

  /// Batched statistics for every row of `x`, parallelised over `pool`
  /// when given; `out` is resized to x.rows(). `mask` names the
  /// EnsembleStats fields the caller will read (see StatsField): a
  /// vote-entropy detection never reads sum_entropy, a prediction-only
  /// score() request reads nothing but votes1, and the engine may skip
  /// the per-member work feeding an unselected field entirely. Selected
  /// fields are bit-identical to a kStatsAll computation.
  virtual void stats_batch(const Matrix& x, ThreadPool* pool,
                           std::vector<EnsembleStats>& out,
                           StatsMask mask) const = 0;

  /// Serialise the engine payload (everything after the artifact's
  /// engine-id tag) to `out` in the v1 stream layout.
  virtual void save_blob(std::ostream& out) const = 0;

  /// Serialise the engine payload in the `.hmdf` v2 layout: counts first,
  /// then every large array padded to a 64-byte file offset so a mapped
  /// artifact serves it in place (see core/model_artifact.h for the
  /// on-disk contract).
  virtual void save_blob_v2(io::AlignedWriter& out) const = 0;

  /// True when the hot-path arrays are non-owning views into a *mapped*
  /// artifact (residency = pages actually touched). Engines viewing a
  /// heap-read ArtifactBuffer report false — the bytes were fully
  /// copied from disk, exactly the cost this flag distinguishes.
  virtual bool zero_copy() const { return false; }

  /// Which batch-kernel implementation this engine dispatches to: "jit"
  /// when a backend compiled the model to native code at load (see
  /// FlatForestEngine's kernel dispatch table), "arena" for the
  /// interpreted default over a zero-copy mapping, "stream-fallback" for
  /// the interpreted default over fully-copied bytes (the mmap-failed /
  /// --mmap=off load path). Observability only — outputs are
  /// bit-identical across all three, and serving layers log it per model.
  virtual std::string kernel_backend() const {
    return zero_copy() ? "arena" : "stream-fallback";
  }

  /// Bytes of model state touched on the hot path (arena, weight matrix).
  virtual std::size_t memory_bytes() const = 0;
};

}  // namespace hmd::core
