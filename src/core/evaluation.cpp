#include "core/evaluation.h"

#include <algorithm>

#include "common/error.h"
#include "ml/metrics.h"

namespace hmd::core {

EntropyDistributions entropy_distributions(
    const TrustedHmd& hmd, const data::DatasetBundle& bundle) {
  EntropyDistributions distributions;
  distributions.known = hmd.scores(bundle.test.X, hmd.config().mode);
  distributions.unknown = hmd.scores(bundle.unknown.X, hmd.config().mode);
  distributions.known_stats = boxplot_stats(distributions.known);
  distributions.unknown_stats = boxplot_stats(distributions.unknown);
  return distributions;
}

std::vector<double> threshold_grid(double lo, double hi, std::size_t n) {
  HMD_REQUIRE(n >= 2 && hi > lo, "threshold_grid: bad range");
  std::vector<double> grid(n);
  for (std::size_t i = 0; i < n; ++i) {
    grid[i] = lo + (hi - lo) * static_cast<double>(i) /
                       static_cast<double>(n - 1);
  }
  return grid;
}

namespace {

double percent_above(const std::vector<double>& scores, double threshold) {
  if (scores.empty()) return 0.0;
  std::size_t rejected = 0;
  for (const double s : scores) rejected += s > threshold;
  return 100.0 * static_cast<double>(rejected) /
         static_cast<double>(scores.size());
}

}  // namespace

std::vector<RejectionPoint> rejection_curve(
    const std::vector<double>& known, const std::vector<double>& unknown,
    const std::vector<double>& thresholds) {
  std::vector<RejectionPoint> curve;
  curve.reserve(thresholds.size());
  for (const double threshold : thresholds) {
    RejectionPoint point;
    point.threshold = threshold;
    point.rejected_known = percent_above(known, threshold);
    point.rejected_unknown = percent_above(unknown, threshold);
    curve.push_back(point);
  }
  return curve;
}

RejectionPoint best_operating_point(const std::vector<double>& known,
                                    const std::vector<double>& unknown,
                                    const std::vector<double>& thresholds,
                                    double max_known_pct) {
  HMD_REQUIRE(!thresholds.empty(), "best_operating_point: empty grid");
  const auto curve = rejection_curve(known, unknown, thresholds);
  const RejectionPoint* best = nullptr;
  for (const auto& point : curve) {
    if (point.rejected_known > max_known_pct) continue;
    if (best == nullptr || point.rejected_unknown >= best->rejected_unknown) {
      best = &point;
    }
  }
  return best != nullptr ? *best : curve.back();
}

std::vector<F1CurvePoint> f1_vs_threshold(
    const TrustedHmd& hmd, const ml::Dataset& split,
    const std::vector<double>& thresholds) {
  HMD_REQUIRE(split.size() > 0 && split.y.size() == split.size(),
              "f1_vs_threshold: bad split");
  const auto estimates = hmd.estimate_batch(split.X);
  std::vector<F1CurvePoint> curve;
  curve.reserve(thresholds.size());
  for (const double threshold : thresholds) {
    F1CurvePoint point;
    point.threshold = threshold;
    std::vector<int> y_true, y_pred;
    for (std::size_t i = 0; i < estimates.size(); ++i) {
      if (estimates[i].score > threshold) continue;
      y_true.push_back(split.y[i]);
      y_pred.push_back(estimates[i].prediction);
    }
    point.fraction_rejected =
        1.0 - static_cast<double>(y_true.size()) /
                  static_cast<double>(estimates.size());
    if (!y_true.empty()) {
      const auto metrics = ml::binary_metrics(y_true, y_pred);
      point.f1 = metrics.f1;
      point.precision = metrics.precision;
      point.recall = metrics.recall;
    }
    curve.push_back(point);
  }
  return curve;
}

std::vector<EnsembleSizePoint> ensemble_size_sweep(
    const HmdConfig& base_config, const data::DatasetBundle& bundle,
    const std::vector<int>& sizes) {
  std::vector<EnsembleSizePoint> sweep;
  sweep.reserve(sizes.size());
  for (const int size : sizes) {
    HmdConfig config = base_config;
    config.n_members = size;
    TrustedHmd hmd(config);
    hmd.fit(bundle.train);
    EnsembleSizePoint point;
    point.n_members = size;
    point.mean_entropy_known =
        mean(hmd.scores(bundle.test.X, config.mode));
    point.mean_entropy_unknown =
        mean(hmd.scores(bundle.unknown.X, config.mode));
    sweep.push_back(point);
  }
  return sweep;
}

double ood_auroc(const EntropyDistributions& distributions) {
  const auto& known = distributions.known;
  const auto& unknown = distributions.unknown;
  HMD_REQUIRE(!known.empty() && !unknown.empty(), "ood_auroc: empty split");
  // Rank-sum formulation over the pooled scores; ties get half credit.
  std::vector<double> sorted_known = known;
  std::sort(sorted_known.begin(), sorted_known.end());
  double rank_credit = 0.0;
  for (const double u : unknown) {
    const auto lower = std::lower_bound(sorted_known.begin(),
                                        sorted_known.end(), u);
    const auto upper =
        std::upper_bound(lower, sorted_known.end(), u);
    rank_credit += static_cast<double>(lower - sorted_known.begin()) +
                   0.5 * static_cast<double>(upper - lower);
  }
  return rank_credit / (static_cast<double>(known.size()) *
                        static_cast<double>(unknown.size()));
}

DetectorSummary evaluate_detector(ModelKind kind,
                                  const data::DatasetBundle& bundle,
                                  HmdConfig config) {
  config.model = kind;
  TrustedHmd hmd(config);
  hmd.fit(bundle.train);

  DetectorSummary summary;
  const auto detections = hmd.detect_batch(bundle.test.X);
  std::vector<int> predictions;
  predictions.reserve(detections.size());
  for (const auto& d : detections) predictions.push_back(d.prediction);
  const auto metrics = ml::binary_metrics(bundle.test.y, predictions);
  summary.accuracy = metrics.accuracy;
  summary.f1 = metrics.f1;

  const auto distributions = entropy_distributions(hmd, bundle);
  summary.auroc = ood_auroc(distributions);
  summary.operating_point = best_operating_point(
      distributions.known, distributions.unknown,
      threshold_grid(0.0, 0.75, 151), 5.0);
  summary.median_entropy_known = distributions.known_stats.median;
  summary.median_entropy_unknown = distributions.unknown_stats.median;
  return summary;
}

}  // namespace hmd::core
