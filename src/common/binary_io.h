#pragma once
// Little-endian binary stream helpers shared by every on-disk artefact
// (the `.hmdb` dataset cache and the `.hmdf` model artifact). Readers
// throw a typed LoadError (common/error.h) on truncation or misparse —
// kTruncated / kBadStructure, reporting the file, the byte offset, and
// expected vs actual sizes — so a short file can never be misread as a
// smaller-but-valid payload and callers can tell a torn publish from a
// corrupt one.
//
// Two layers live here:
//   - write_pod/read_pod/write_span/read_span/write_vec/read_vec stream
//     helpers (the v1 artifact + dataset-cache path), and
//   - AlignedWriter / ByteReader, the offset-tracking pair behind the
//     `.hmdf` v2 layout: the writer pads sections and arrays to explicit
//     alignment boundaries, the reader hands out *views into the buffer*
//     (bounds- and alignment-checked) instead of copying, so a mapped
//     artifact is parsed in place.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/checksum.h"
#include "common/error.h"

static_assert(std::endian::native == std::endian::little,
              "binary artefacts assume a little-endian host");

namespace hmd::io {

/// Build the typed truncation error for a failed stream read: where the
/// read stopped, how many bytes it wanted, how many it got. `in` is dead
/// after a short read; clearing its state is only to recover tellg() for
/// the report.
inline LoadError short_read_error(std::istream& in, std::size_t wanted,
                                  const std::string& context) {
  const auto got = static_cast<long long>(in.gcount());
  in.clear();
  const auto pos = static_cast<long long>(in.tellg());
  return LoadError(
      LoadErrorCode::kTruncated, context,
      "short read" +
          (pos >= 0 ? " at byte offset " + std::to_string(pos - got) : "") +
          ": expected " + std::to_string(wanted) + " bytes, got " +
          std::to_string(got));
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Read one POD value; `context` names the file in the truncation error.
template <typename T>
void read_pod(std::istream& in, T& value, const std::string& context) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw short_read_error(in, sizeof(T), context);
}

/// Write `n` contiguous POD elements with one stream operation.
template <typename T>
void write_span(std::ostream& out, const T* data, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
void read_span(std::istream& in, T* data, std::size_t n,
               const std::string& context) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw short_read_error(in, n * sizeof(T), context);
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& values) {
  write_pod(out, static_cast<std::uint64_t>(values.size()));
  write_span(out, values.data(), values.size());
}

/// Read a u64-prefixed vector; `max_elems` bounds the allocation so a
/// corrupt length field cannot trigger an absurd resize.
template <typename T>
void read_vec(std::istream& in, std::vector<T>& values,
              const std::string& context,
              std::uint64_t max_elems = std::uint64_t{1} << 32) {
  std::uint64_t n = 0;
  read_pod(in, n, context);
  if (n > max_elems) {
    throw LoadError(LoadErrorCode::kBadStructure, context,
                    "implausible element count " + std::to_string(n) +
                        " (max " + std::to_string(max_elems) + ")");
  }
  values.resize(n);
  read_span(in, values.data(), values.size(), context);
}

/// Stream wrapper that tracks the absolute file offset of every write and
/// can pad to alignment boundaries — the writer half of the `.hmdf` v2
/// layout, whose big arrays must land on 64-byte file offsets so a mapped
/// artifact can serve them in place.
class AlignedWriter {
 public:
  explicit AlignedWriter(std::ostream& out) : out_(out) {}

  std::uint64_t offset() const { return offset_; }

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
    absorb(&value, sizeof(T));
    offset_ += sizeof(T);
  }

  template <typename T>
  void write_span(const T* data, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(n * sizeof(T)));
    absorb(data, n * sizeof(T));
    offset_ += n * sizeof(T);
  }

  /// Zero-pad so the next write lands on an `alignment`-byte offset.
  void pad_to(std::size_t alignment) {
    static constexpr char kZeros[64] = {};
    while (offset_ % alignment != 0) {
      const std::size_t pad = std::min<std::size_t>(
          sizeof(kZeros), alignment - offset_ % alignment);
      out_.write(kZeros, static_cast<std::streamsize>(pad));
      absorb(kZeros, pad);
      offset_ += pad;
    }
  }

  /// Start hashing every byte written from here on (including padding).
  /// This is how the checksummed `.hmdf` save computes its section XXH64s
  /// in-stream, as the bytes go out, instead of re-reading the temp file
  /// afterwards to patch them in.
  void begin_hash() {
    hash_.reset();
    hashing_ = true;
  }

  /// Stop hashing and return the XXH64 of everything since begin_hash().
  std::uint64_t end_hash() {
    hashing_ = false;
    return hash_.digest();
  }

 private:
  void absorb(const void* data, std::size_t n) {
    if (hashing_) hash_.update(data, n);
  }

  std::ostream& out_;
  std::uint64_t offset_ = 0;
  Xxhash64Stream hash_;
  bool hashing_ = false;
};

/// Bounds- and alignment-checked cursor over an in-memory artifact. The
/// reader half of the v2 layout: view_span() returns a pointer *into the
/// buffer* (no copy) after checking that the span is inside the buffer
/// and naturally aligned — a corrupt section offset throws IoError, never
/// a misaligned or out-of-bounds load. `context` names the file in
/// errors, like the stream helpers above.
class ByteReader {
 public:
  ByteReader(const std::byte* data, std::size_t size, std::string context)
      : base_(data), size_(size), context_(std::move(context)) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Jump to an absolute offset (a section-table entry). Throws when the
  /// offset is outside the buffer or not `alignment`-byte aligned.
  void seek(std::uint64_t offset, std::size_t alignment) {
    if (offset > size_) {
      throw LoadError(LoadErrorCode::kTruncated, context_,
                      "section offset " + std::to_string(offset) +
                          " past end of file (" + std::to_string(size_) +
                          " bytes)");
    }
    if (offset % alignment != 0) {
      throw LoadError(LoadErrorCode::kBadStructure, context_,
                      "misaligned section offset " + std::to_string(offset));
    }
    pos_ = static_cast<std::size_t>(offset);
  }

  /// Advance past padding so the cursor sits on an `alignment`-byte
  /// offset (the mirror of AlignedWriter::pad_to).
  void align_to(std::size_t alignment) {
    const std::size_t rem = pos_ % alignment;
    if (rem == 0) return;
    const std::size_t pad = alignment - rem;
    if (pad > remaining()) throw truncated_error(pad);
    pos_ += pad;
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > remaining()) throw truncated_error(sizeof(T));
    T value;
    std::memcpy(&value, base_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// A view of `n` elements of T starting at the cursor — no copy. The
  /// cursor must be aligned for T (callers align_to() first); the span
  /// must fit in the buffer.
  template <typename T>
  const T* view_span(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (n > remaining() / sizeof(T)) {
      throw truncated_error(n * sizeof(T));
    }
    if (reinterpret_cast<std::uintptr_t>(base_ + pos_) % alignof(T) != 0) {
      throw LoadError(LoadErrorCode::kBadStructure, context_,
                      "misaligned array at byte offset " +
                          std::to_string(pos_));
    }
    const T* view = reinterpret_cast<const T*>(base_ + pos_);
    pos_ += n * sizeof(T);
    return view;
  }

  const std::string& context() const { return context_; }

 private:
  LoadError truncated_error(std::size_t wanted) const {
    return LoadError(LoadErrorCode::kTruncated, context_,
                     "need " + std::to_string(wanted) +
                         " bytes at byte offset " + std::to_string(pos_) +
                         ", only " + std::to_string(remaining()) + " left");
  }

  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::string context_;
};

}  // namespace hmd::io
