#pragma once
// Little-endian binary stream helpers shared by every on-disk artefact
// (the `.hmdb` dataset cache and the `.hmdf` model artifact). Readers
// throw IoError on truncation so a short file can never be misread as a
// smaller-but-valid payload.

#include <bit>
#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.h"

static_assert(std::endian::native == std::endian::little,
              "binary artefacts assume a little-endian host");

namespace hmd::io {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Read one POD value; `context` names the file in the truncation error.
template <typename T>
void read_pod(std::istream& in, T& value, const std::string& context) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw IoError("truncated " + context);
}

/// Write `n` contiguous POD elements with one stream operation.
template <typename T>
void write_span(std::ostream& out, const T* data, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
void read_span(std::istream& in, T* data, std::size_t n,
               const std::string& context) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw IoError("truncated " + context);
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& values) {
  write_pod(out, static_cast<std::uint64_t>(values.size()));
  write_span(out, values.data(), values.size());
}

/// Read a u64-prefixed vector; `max_elems` bounds the allocation so a
/// corrupt length field cannot trigger an absurd resize.
template <typename T>
void read_vec(std::istream& in, std::vector<T>& values,
              const std::string& context,
              std::uint64_t max_elems = std::uint64_t{1} << 32) {
  std::uint64_t n = 0;
  read_pod(in, n, context);
  if (n > max_elems) throw IoError("implausible element count in " + context);
  values.resize(n);
  read_span(in, values.data(), values.size(), context);
}

}  // namespace hmd::io
