#pragma once
// Little-endian binary stream helpers shared by every on-disk artefact
// (the `.hmdb` dataset cache and the `.hmdf` model artifact). Readers
// throw IoError on truncation so a short file can never be misread as a
// smaller-but-valid payload.
//
// Two layers live here:
//   - write_pod/read_pod/write_span/read_span/write_vec/read_vec stream
//     helpers (the v1 artifact + dataset-cache path), and
//   - AlignedWriter / ByteReader, the offset-tracking pair behind the
//     `.hmdf` v2 layout: the writer pads sections and arrays to explicit
//     alignment boundaries, the reader hands out *views into the buffer*
//     (bounds- and alignment-checked) instead of copying, so a mapped
//     artifact is parsed in place.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.h"

static_assert(std::endian::native == std::endian::little,
              "binary artefacts assume a little-endian host");

namespace hmd::io {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Read one POD value; `context` names the file in the truncation error.
template <typename T>
void read_pod(std::istream& in, T& value, const std::string& context) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw IoError("truncated " + context);
}

/// Write `n` contiguous POD elements with one stream operation.
template <typename T>
void write_span(std::ostream& out, const T* data, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
void read_span(std::istream& in, T* data, std::size_t n,
               const std::string& context) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw IoError("truncated " + context);
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& values) {
  write_pod(out, static_cast<std::uint64_t>(values.size()));
  write_span(out, values.data(), values.size());
}

/// Read a u64-prefixed vector; `max_elems` bounds the allocation so a
/// corrupt length field cannot trigger an absurd resize.
template <typename T>
void read_vec(std::istream& in, std::vector<T>& values,
              const std::string& context,
              std::uint64_t max_elems = std::uint64_t{1} << 32) {
  std::uint64_t n = 0;
  read_pod(in, n, context);
  if (n > max_elems) throw IoError("implausible element count in " + context);
  values.resize(n);
  read_span(in, values.data(), values.size(), context);
}

/// Stream wrapper that tracks the absolute file offset of every write and
/// can pad to alignment boundaries — the writer half of the `.hmdf` v2
/// layout, whose big arrays must land on 64-byte file offsets so a mapped
/// artifact can serve them in place.
class AlignedWriter {
 public:
  explicit AlignedWriter(std::ostream& out) : out_(out) {}

  std::uint64_t offset() const { return offset_; }

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
    offset_ += sizeof(T);
  }

  template <typename T>
  void write_span(const T* data, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(n * sizeof(T)));
    offset_ += n * sizeof(T);
  }

  /// Zero-pad so the next write lands on an `alignment`-byte offset.
  void pad_to(std::size_t alignment) {
    static constexpr char kZeros[64] = {};
    while (offset_ % alignment != 0) {
      const std::size_t pad = std::min<std::size_t>(
          sizeof(kZeros), alignment - offset_ % alignment);
      out_.write(kZeros, static_cast<std::streamsize>(pad));
      offset_ += pad;
    }
  }

 private:
  std::ostream& out_;
  std::uint64_t offset_ = 0;
};

/// Bounds- and alignment-checked cursor over an in-memory artifact. The
/// reader half of the v2 layout: view_span() returns a pointer *into the
/// buffer* (no copy) after checking that the span is inside the buffer
/// and naturally aligned — a corrupt section offset throws IoError, never
/// a misaligned or out-of-bounds load. `context` names the file in
/// errors, like the stream helpers above.
class ByteReader {
 public:
  ByteReader(const std::byte* data, std::size_t size, std::string context)
      : base_(data), size_(size), context_(std::move(context)) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Jump to an absolute offset (a section-table entry). Throws when the
  /// offset is outside the buffer or not `alignment`-byte aligned.
  void seek(std::uint64_t offset, std::size_t alignment) {
    if (offset > size_) {
      throw IoError("section offset past end of " + context_);
    }
    if (offset % alignment != 0) {
      throw IoError("misaligned section offset in " + context_);
    }
    pos_ = static_cast<std::size_t>(offset);
  }

  /// Advance past padding so the cursor sits on an `alignment`-byte
  /// offset (the mirror of AlignedWriter::pad_to).
  void align_to(std::size_t alignment) {
    const std::size_t rem = pos_ % alignment;
    if (rem == 0) return;
    const std::size_t pad = alignment - rem;
    if (pad > remaining()) throw IoError("truncated " + context_);
    pos_ += pad;
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > remaining()) throw IoError("truncated " + context_);
    T value;
    std::memcpy(&value, base_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// A view of `n` elements of T starting at the cursor — no copy. The
  /// cursor must be aligned for T (callers align_to() first); the span
  /// must fit in the buffer.
  template <typename T>
  const T* view_span(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (n > remaining() / sizeof(T)) {
      throw IoError("truncated " + context_);
    }
    if (reinterpret_cast<std::uintptr_t>(base_ + pos_) % alignof(T) != 0) {
      throw IoError("misaligned array in " + context_);
    }
    const T* view = reinterpret_cast<const T*>(base_ + pos_);
    pos_ += n * sizeof(T);
    return view;
  }

  const std::string& context() const { return context_; }

 private:
  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::string context_;
};

}  // namespace hmd::io
