#pragma once
// 64-bit content checksum for on-disk artefact sections (`.hmdf` v2
// carries one per section in its table — core/model_artifact.h).
//
// The function is XXH64 (Yann Collet's xxHash, public-domain algorithm):
// a non-cryptographic hash that runs at memory speed by keeping four
// independent 64-bit lanes in flight, so verifying an artifact costs one
// sequential sweep of its bytes — prefetcher-friendly, unlike the
// pointer-chasing structural walk it replaces on the load path. Any
// single-bit difference in the input changes the digest (for integrity
// purposes; this is NOT a MAC — an adversary who can write the file can
// recompute the hash, see the trust note in core/model_artifact.h).
//
// The digest is part of the on-disk format: this implementation must
// match the reference XXH64 bit for bit forever (asserted against the
// published test vectors in tests/test_fault_injection.cpp).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace hmd::io {

namespace detail {

inline constexpr std::uint64_t kXxPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr std::uint64_t kXxPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr std::uint64_t kXxPrime3 = 0x165667B19E3779F9ULL;
inline constexpr std::uint64_t kXxPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr std::uint64_t kXxPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t xx_read64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));  // artefacts are little-endian, as is
  return v;                       // every supported host (static_assert
}                                 // in binary_io.h)

inline std::uint32_t xx_read32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t xx_round(std::uint64_t acc, std::uint64_t input) {
  acc += input * kXxPrime2;
  acc = std::rotl(acc, 31);
  return acc * kXxPrime1;
}

inline std::uint64_t xx_merge_round(std::uint64_t acc, std::uint64_t val) {
  acc ^= xx_round(0, val);
  return acc * kXxPrime1 + kXxPrime4;
}

}  // namespace detail

/// XXH64 of `size` bytes at `data` with the given seed.
inline std::uint64_t xxhash64(const void* data, std::size_t size,
                              std::uint64_t seed = 0) {
  using namespace detail;
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + size;
  std::uint64_t h;

  if (size >= 32) {
    std::uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
    std::uint64_t v2 = seed + kXxPrime2;
    std::uint64_t v3 = seed + 0;
    std::uint64_t v4 = seed - kXxPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = xx_round(v1, xx_read64(p));
      v2 = xx_round(v2, xx_read64(p + 8));
      v3 = xx_round(v3, xx_read64(p + 16));
      v4 = xx_round(v4, xx_read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) +
        std::rotl(v4, 18);
    h = xx_merge_round(h, v1);
    h = xx_merge_round(h, v2);
    h = xx_merge_round(h, v3);
    h = xx_merge_round(h, v4);
  } else {
    h = seed + kXxPrime5;
  }

  h += static_cast<std::uint64_t>(size);
  while (p + 8 <= end) {
    h ^= xx_round(0, xx_read64(p));
    h = std::rotl(h, 27) * kXxPrime1 + kXxPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(xx_read32(p)) * kXxPrime1;
    h = std::rotl(h, 23) * kXxPrime2 + kXxPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kXxPrime5;
    h = std::rotl(h, 11) * kXxPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxPrime2;
  h ^= h >> 29;
  h *= kXxPrime3;
  h ^= h >> 32;
  return h;
}

/// Incremental XXH64: feed bytes in arbitrary chunks, read the digest at
/// the end. digest() is bit-identical to the one-shot xxhash64() over the
/// concatenated input for every chunking (asserted against random split
/// points in the test suite) — this is what lets the artifact writer hash
/// sections *as they stream out* instead of re-reading the finished file.
/// digest() does not consume the state: more update() calls may follow.
class Xxhash64Stream {
 public:
  explicit Xxhash64Stream(std::uint64_t seed = 0) { reset(seed); }

  void reset(std::uint64_t seed = 0) {
    using namespace detail;
    seed_ = seed;
    v1_ = seed + kXxPrime1 + kXxPrime2;
    v2_ = seed + kXxPrime2;
    v3_ = seed;
    v4_ = seed - kXxPrime1;
    total_ = 0;
    buffered_ = 0;
  }

  void update(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    total_ += size;
    if (buffered_ + size < sizeof(buffer_)) {  // still short of one stripe
      std::memcpy(buffer_ + buffered_, p, size);
      buffered_ += size;
      return;
    }
    if (buffered_ != 0) {
      const std::size_t fill = sizeof(buffer_) - buffered_;
      std::memcpy(buffer_ + buffered_, p, fill);
      consume_stripe(buffer_);
      p += fill;
      size -= fill;
      buffered_ = 0;
    }
    while (size >= sizeof(buffer_)) {
      consume_stripe(p);
      p += sizeof(buffer_);
      size -= sizeof(buffer_);
    }
    std::memcpy(buffer_, p, size);
    buffered_ = size;
  }

  std::uint64_t digest() const {
    using namespace detail;
    std::uint64_t h;
    if (total_ >= 32) {
      h = std::rotl(v1_, 1) + std::rotl(v2_, 7) + std::rotl(v3_, 12) +
          std::rotl(v4_, 18);
      h = xx_merge_round(h, v1_);
      h = xx_merge_round(h, v2_);
      h = xx_merge_round(h, v3_);
      h = xx_merge_round(h, v4_);
    } else {
      h = seed_ + kXxPrime5;
    }
    h += total_;
    const unsigned char* p = buffer_;
    const unsigned char* const end = buffer_ + buffered_;
    while (p + 8 <= end) {
      h ^= xx_round(0, xx_read64(p));
      h = std::rotl(h, 27) * kXxPrime1 + kXxPrime4;
      p += 8;
    }
    if (p + 4 <= end) {
      h ^= static_cast<std::uint64_t>(xx_read32(p)) * kXxPrime1;
      h = std::rotl(h, 23) * kXxPrime2 + kXxPrime3;
      p += 4;
    }
    while (p < end) {
      h ^= static_cast<std::uint64_t>(*p) * kXxPrime5;
      h = std::rotl(h, 11) * kXxPrime1;
      ++p;
    }
    h ^= h >> 33;
    h *= kXxPrime2;
    h ^= h >> 29;
    h *= kXxPrime3;
    h ^= h >> 32;
    return h;
  }

 private:
  void consume_stripe(const unsigned char* p) {
    using namespace detail;
    v1_ = xx_round(v1_, xx_read64(p));
    v2_ = xx_round(v2_, xx_read64(p + 8));
    v3_ = xx_round(v3_, xx_read64(p + 16));
    v4_ = xx_round(v4_, xx_read64(p + 24));
  }

  std::uint64_t seed_ = 0;
  std::uint64_t v1_ = 0, v2_ = 0, v3_ = 0, v4_ = 0;
  std::uint64_t total_ = 0;
  unsigned char buffer_[32];
  std::size_t buffered_ = 0;
};

}  // namespace hmd::io
