#pragma once
// Error types and the HMD_REQUIRE precondition macro used across the
// library. Preconditions throw (rather than abort) so that callers — tests
// in particular — can assert on rejected inputs.

#include <stdexcept>
#include <string>

namespace hmd {

/// Base class of every error thrown by the library.
class HmdError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition.
class InvalidArgument : public HmdError {
 public:
  using HmdError::HmdError;
};

/// An on-disk artefact (dataset cache, results file) is unusable.
class IoError : public HmdError {
 public:
  using HmdError::HmdError;
};

}  // namespace hmd

#define HMD_REQUIRE(condition, message)                      \
  do {                                                       \
    if (!(condition)) {                                      \
      throw ::hmd::InvalidArgument(std::string(message));    \
    }                                                        \
  } while (false)
