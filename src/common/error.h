#pragma once
// Error types and the HMD_REQUIRE precondition macro used across the
// library. Preconditions throw (rather than abort) so that callers — tests
// in particular — can assert on rejected inputs.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hmd {

/// Base class of every error thrown by the library.
class HmdError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition.
class InvalidArgument : public HmdError {
 public:
  using HmdError::HmdError;
};

/// An on-disk artefact (dataset cache, results file) is unusable.
class IoError : public HmdError {
 public:
  using HmdError::HmdError;
};

/// Why a load of an on-disk artefact (`.hmdf` model, `.hmdb` bundle)
/// failed. The split that matters operationally is transient vs
/// persistent (load_error_transient below): a transient error is worth a
/// bounded retry (the file may be mid-publish, the filesystem flaky); a
/// persistent one means the bytes themselves are wrong and retrying the
/// same inode can only fail again.
enum class LoadErrorCode : std::uint8_t {
  kBadMagic = 0,      ///< not an artefact of this kind at all
  kBadVersion,        ///< recognised magic, unsupported format version
  kChecksum,          ///< a section's stored hash does not match its bytes
  kTruncated,         ///< payload ends before the layout says it should
  kBadStructure,      ///< well-formed bytes carrying impossible geometry
  kIo,                ///< open/read/stat failed (ENOENT, EIO, ...)
  kMmapFailed,        ///< mmap specifically failed (stream read may work)
};

inline const char* load_error_code_name(LoadErrorCode code) {
  switch (code) {
    case LoadErrorCode::kBadMagic: return "bad-magic";
    case LoadErrorCode::kBadVersion: return "bad-version";
    case LoadErrorCode::kChecksum: return "checksum";
    case LoadErrorCode::kTruncated: return "truncated";
    case LoadErrorCode::kBadStructure: return "bad-structure";
    case LoadErrorCode::kIo: return "io";
    case LoadErrorCode::kMmapFailed: return "mmap-failed";
  }
  return "unknown";
}

/// True for errors a retry can plausibly fix: the file may be torn by a
/// non-atomic foreign writer still mid-write (kTruncated), the read may
/// have hit a flaky filesystem (kIo), or only the mapping path failed
/// (kMmapFailed — callers should fall back to a stream read first).
/// Checksum / magic / version / structure failures are properties of the
/// bytes on disk; retrying the same file cannot change them.
inline bool load_error_transient(LoadErrorCode code) {
  return code == LoadErrorCode::kTruncated || code == LoadErrorCode::kIo ||
         code == LoadErrorCode::kMmapFailed;
}

/// A typed artefact-load failure: which file, which failure class, and a
/// human-readable detail. Derives from IoError so every pre-taxonomy
/// `catch (const IoError&)` keeps working; new code should switch on
/// code() instead of parsing what().
class LoadError : public IoError {
 public:
  LoadError(LoadErrorCode code, std::string path, std::string detail)
      : IoError("load error [" + std::string(load_error_code_name(code)) +
                "] " + path + ": " + detail),
        code_(code),
        path_(std::move(path)),
        detail_(std::move(detail)) {}

  LoadErrorCode code() const { return code_; }
  const std::string& path() const { return path_; }
  const std::string& detail() const { return detail_; }
  bool transient() const { return load_error_transient(code_); }

 private:
  LoadErrorCode code_;
  std::string path_;
  std::string detail_;
};

}  // namespace hmd

#define HMD_REQUIRE(condition, message)                      \
  do {                                                       \
    if (!(condition)) {                                      \
      throw ::hmd::InvalidArgument(std::string(message));    \
    }                                                        \
  } while (false)
