#pragma once
// Console table rendering and small text-file helpers for the bench layer.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hmd {

/// Fixed-header table rendered with aligned columns; also exports CSV.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  std::size_t n_rows() const { return rows_.size(); }

  /// CSV rendering (headers + rows, comma-separated, '\n' line ends).
  std::string to_csv() const;

  /// Fixed-precision float formatting ("0.693").
  static std::string fmt(double value, int precision = 3);

  friend std::ostream& operator<<(std::ostream& os, const ConsoleTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write `content` to `path`, creating parent directories as needed.
void write_text_file(const std::string& path, const std::string& content);

/// Read a whole file; throws IoError if missing.
std::string read_text_file(const std::string& path);

}  // namespace hmd
