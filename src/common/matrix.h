#pragma once
// Dense row-major matrix. One contiguous buffer — the library's struct-of-
// arrays layouts (flat forest arena, binary dataset cache) rely on rows
// being adjacent so a whole dataset can be read or traversed with a single
// streaming pass.

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace hmd {

/// Non-owning view of one matrix row (or any contiguous double span).
class RowView {
 public:
  RowView() = default;
  RowView(const double* data, std::size_t size) : data_(data), size_(size) {}

  double operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  const double* data() const { return data_; }
  const double* begin() const { return data_; }
  const double* end() const { return data_ + size_; }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
};

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  RowView row(std::size_t r) const {
    return RowView(data_.data() + r * cols_, cols_);
  }
  const double* row_ptr(std::size_t r) const {
    return data_.data() + r * cols_;
  }
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }

  /// Append a row; the first push fixes the column count.
  void push_row(const std::vector<double>& values) {
    push_row(RowView(values.data(), values.size()));
  }
  void push_row(RowView values) {
    if (rows_ == 0 && cols_ == 0) cols_ = values.size();
    HMD_REQUIRE(values.size() == cols_, "push_row: column count mismatch");
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
  }

  void reserve_rows(std::size_t n) { data_.reserve(n * cols_); }

  /// The contiguous row-major buffer (rows * cols doubles).
  const std::vector<double>& storage() const { return data_; }
  std::vector<double>& storage() { return data_; }

  /// Rebuild from a raw buffer (used by the binary dataset cache).
  static Matrix from_storage(std::size_t rows, std::size_t cols,
                             std::vector<double> data) {
    HMD_REQUIRE(data.size() == rows * cols, "from_storage: size mismatch");
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Squared euclidean distance between two equal-length views.
inline double squared_distance(RowView a, RowView b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace hmd
