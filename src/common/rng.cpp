#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace hmd {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  HMD_REQUIRE(n > 0, "uniform_index: n must be > 0");
  return static_cast<std::size_t>(uniform() * static_cast<double>(n));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  HMD_REQUIRE(k <= n, "sample_without_replacement: k must be <= n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

}  // namespace hmd
