#include "common/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>

#include "common/error.h"
#include "common/failpoint.h"

namespace hmd::io {

namespace {

/// close() that preserves the caller's errno (no retry on EINTR — on
/// Linux the fd is gone either way, and retrying risks a double close).
void close_quietly(int fd) {
  const int saved = errno;
  ::close(fd);
  errno = saved;
}

}  // namespace

MappedFile MappedFile::map(const std::string& path) {
  // Armed with error:mmap-failed this simulates a filesystem without
  // mmap support — the seam the stream-fallback paths are tested through.
  HMD_FAILPOINT("mmap.map", path.c_str());
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw LoadError(LoadErrorCode::kIo, path,
                    std::string("cannot open for mapping: ") +
                        std::strerror(errno));
  }
  struct ::stat st = {};
  if (::fstat(fd, &st) != 0) {
    close_quietly(fd);
    throw LoadError(LoadErrorCode::kIo, path,
                    std::string("cannot stat: ") + std::strerror(errno));
  }
  if (st.st_size <= 0) {
    close_quietly(fd);
    throw LoadError(LoadErrorCode::kTruncated, path,
                    "empty file (no artifact is 0 bytes)");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  // MAP_PRIVATE: the serving process never writes through the mapping,
  // and private mappings keep reading the *mapped inode* even after a
  // rename replaces the directory entry — the hot-swap guarantee.
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  close_quietly(fd);  // the mapping keeps its own reference to the inode
  if (base == MAP_FAILED) {
    throw LoadError(LoadErrorCode::kMmapFailed, path,
                    std::string("mmap failed: ") + std::strerror(errno));
  }
  MappedFile mapped;
  mapped.data_ = static_cast<const std::byte*>(base);
  mapped.size_ = size;
  return mapped;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<std::byte*>(data_), size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

ArtifactBuffer ArtifactBuffer::map_file(const std::string& path) {
  ArtifactBuffer buffer;
  buffer.mapping_ = std::make_unique<MappedFile>(MappedFile::map(path));
  buffer.size_ = buffer.mapping_->size();
  return buffer;
}

ArtifactBuffer ArtifactBuffer::read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw LoadError(LoadErrorCode::kIo, path,
                    std::string("cannot open: ") + std::strerror(errno));
  }
  struct ::stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    close_quietly(fd);
    throw LoadError(LoadErrorCode::kIo, path, "cannot stat or empty file");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  ArtifactBuffer buffer;
  buffer.blob_.reset(static_cast<std::byte*>(
      ::operator new[](size, std::align_val_t{64})));
  buffer.size_ = size;
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t n =
        ::read(fd, buffer.blob_.get() + done, size - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close_quietly(fd);
      throw LoadError(LoadErrorCode::kIo, path,
                      "short read: expected " + std::to_string(size) +
                          " bytes, got " + std::to_string(done));
    }
    done += static_cast<std::size_t>(n);
  }
  close_quietly(fd);
  return buffer;
}

ArtifactBuffer ArtifactBuffer::map_or_read(const std::string& path) {
  try {
    return map_file(path);
  } catch (const IoError&) {
    return read_file(path);
  }
}

}  // namespace hmd::io
