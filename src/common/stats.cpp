#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hmd {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  HMD_REQUIRE(!sorted.empty(), "quantile_sorted: empty input");
  HMD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile_sorted: q out of [0, 1]");
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(position));
  const auto hi = static_cast<std::size_t>(std::ceil(position));
  const double t = position - static_cast<double>(lo);
  return sorted[lo] + t * (sorted[hi] - sorted[lo]);
}

double median(std::vector<double> values) {
  HMD_REQUIRE(!values.empty(), "median: empty input");
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, 0.5);
}

double mean(const std::vector<double>& values) {
  HMD_REQUIRE(!values.empty(), "mean: empty input");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

BoxplotStats boxplot_stats(std::vector<double> values) {
  HMD_REQUIRE(!values.empty(), "boxplot_stats: empty input");
  BoxplotStats stats;
  stats.n = values.size();
  stats.mean = mean(values);
  std::sort(values.begin(), values.end());
  stats.median = quantile_sorted(values, 0.5);
  stats.q1 = quantile_sorted(values, 0.25);
  stats.q3 = quantile_sorted(values, 0.75);
  const double iqr = stats.q3 - stats.q1;
  const double lo_fence = stats.q1 - 1.5 * iqr;
  const double hi_fence = stats.q3 + 1.5 * iqr;
  stats.whisker_low = stats.q3;
  stats.whisker_high = stats.q1;
  for (double v : values) {
    if (v >= lo_fence && v < stats.whisker_low) stats.whisker_low = v;
    if (v <= hi_fence && v > stats.whisker_high) stats.whisker_high = v;
  }
  return stats;
}

}  // namespace hmd
