#pragma once
// Unified --flag=value command-line parsing for the hmd_* tools.
//
// Every tool in tools/ takes the same flag shape — `--name=value` options,
// optional `--name[=on|off]` toggles, and bare positionals — and used to
// hand-roll the same rfind/atoi loop with subtly different validation
// (atoi silently turning "abc" into 0, unchecked ranges). This header is
// the one copy: a Parser walks argv token by token and the tool's loop
// tries typed matchers against the current token. Matchers either don't
// match (wrong option name — try the next matcher), or match and
// parse+validate the value, reporting any malformed value through the
// tool's usage handler so every usage error behaves identically: one
// diagnostic, exit code 2.
//
//   args::Parser cli(argc, argv, [](const std::string& bad) {
//     usage_error(bad);  // prints usage, std::exit(2)
//   });
//   while (cli.next()) {
//     if (cli.match_choice("--dataset", {"dvfs", "hpc"}, a.dataset)) continue;
//     if (cli.match_int("--batches", a.batches, 1)) continue;
//     if (cli.is_option()) cli.reject();  // unknown --flag
//     a.positionals.push_back(std::string(cli.token()));
//   }
//
// Numeric parsing is strict (the whole value must parse; range checked),
// unlike the old atoi paths. The usage handler must not return — it is
// expected to exit or throw (tests throw to observe rejects); a handler
// that does return trips an abort rather than silently continuing with a
// half-parsed value.

#include <cstdlib>
#include <functional>
#include <initializer_list>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

namespace hmd::args {

/// HOST:PORT split on the last ':' (IPv6-tolerant the cheap way), with
/// the port range-checked. `min_port` 0 admits the kernel-assigned
/// ephemeral port (servers); clients pass 1. nullopt = malformed.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};
inline std::optional<HostPort> parse_host_port(std::string_view spec,
                                               int min_port = 0) {
  const auto colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return std::nullopt;
  HostPort out;
  out.host = std::string(spec.substr(0, colon));
  const std::string port_text(spec.substr(colon + 1));
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || end == nullptr || *end != '\0') return std::nullopt;
  if (port < min_port || port > 65535) return std::nullopt;
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

class Parser {
 public:
  using UsageHandler = std::function<void(const std::string& bad_token)>;

  /// `on_usage_error` receives the offending raw token and must not
  /// return normally (exit or throw). `first` is the argv index of the
  /// first token to parse (tools with a subcommand start past it).
  Parser(int argc, char** argv, UsageHandler on_usage_error, int first = 1)
      : argc_(argc), argv_(argv), index_(first - 1),
        fail_(std::move(on_usage_error)) {}

  /// Advance to the next token; false once argv is exhausted.
  bool next() { return ++index_ < argc_; }

  /// The current raw token.
  std::string_view token() const { return argv_[index_]; }

  /// Does the current token look like an option (leading "--")?
  bool is_option() const { return token().rfind("--", 0) == 0; }

  /// Report the current token as a usage error. [[noreturn]] in spirit:
  /// the handler exits or throws.
  void reject() const {
    fail_(std::string(token()));
    std::abort();  // the usage handler must not return
  }

  /// --name=S with S nonempty (an empty value is a usage error, not an
  /// unmatched token: `--out=` is a typo, not a request for "").
  bool match(std::string_view name, std::string& out) {
    std::string_view value;
    if (!split_value(name, value)) return false;
    if (value.empty()) reject();
    out = std::string(value);
    return true;
  }

  /// --name=A|B|C from a closed set.
  bool match_choice(std::string_view name,
                    std::initializer_list<std::string_view> allowed,
                    std::string& out) {
    std::string_view value;
    if (!split_value(name, value)) return false;
    for (const std::string_view choice : allowed) {
      if (value == choice) {
        out = std::string(value);
        return true;
      }
    }
    reject();
    return false;  // unreachable
  }

  /// Bare `--name` toggle.
  bool match_switch(std::string_view name, bool& out) {
    if (token() != name) return false;
    out = true;
    return true;
  }

  /// `--name` or `--name=V`: out is "" for the bare spelling, V (possibly
  /// "") otherwise. For on/off/auto-style toggles whose interpretation is
  /// the tool's business.
  bool match_toggle(std::string_view name, std::string& out) {
    if (token() == name) {
      out.clear();
      return true;
    }
    std::string_view value;
    if (!split_value(name, value)) return false;
    out = std::string(value);
    return true;
  }

  /// --name=N parsed as a base-10 integer into any integral type, range
  /// checked against [min, max] (and against T's own limits).
  template <typename T>
  bool match_int(std::string_view name, T& out,
                 long long min = std::numeric_limits<long long>::min(),
                 long long max = std::numeric_limits<long long>::max()) {
    std::string_view value;
    if (!split_value(name, value)) return false;
    const std::string text(value);
    char* end = nullptr;
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end == nullptr || *end != '\0') reject();
    if (parsed < min || parsed > max) reject();
    if (parsed < static_cast<long long>(std::numeric_limits<T>::min()) ||
        (parsed > 0 && static_cast<unsigned long long>(parsed) >
                           static_cast<unsigned long long>(
                               std::numeric_limits<T>::max()))) {
      reject();
    }
    out = static_cast<T>(parsed);
    return true;
  }

  /// --name=F parsed as a double in [min, max], or (min, max] with
  /// `min_exclusive` (e.g. --scale must be strictly positive).
  bool match_double(std::string_view name, double& out,
                    double min = std::numeric_limits<double>::lowest(),
                    double max = std::numeric_limits<double>::max(),
                    bool min_exclusive = false) {
    std::string_view value;
    if (!split_value(name, value)) return false;
    const std::string text(value);
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (text.empty() || end == nullptr || *end != '\0') reject();
    if (parsed < min || (min_exclusive && parsed == min) || parsed > max) {
      reject();
    }
    out = parsed;
    return true;
  }

 private:
  /// True iff the current token is `name=<value>`; yields the value.
  bool split_value(std::string_view name, std::string_view& value) const {
    const std::string_view tok = token();
    if (tok.size() <= name.size() || tok.substr(0, name.size()) != name ||
        tok[name.size()] != '=') {
      return false;
    }
    value = tok.substr(name.size() + 1);
    return true;
  }

  int argc_;
  char** argv_;
  int index_;
  UsageHandler fail_;
};

}  // namespace hmd::args
