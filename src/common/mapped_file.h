#pragma once
// Zero-copy artifact memory: a RAII read-only file mapping and the
// ArtifactBuffer that the `.hmdf` v2 loader parses in place.
//
// MappedFile wraps mmap(PROT_READ, MAP_PRIVATE) of a whole file. The
// mapping base is page-aligned, so any file offset that is 64-byte
// aligned on disk is 64-byte aligned in memory — the property the v2
// artifact layout (core/model_artifact.h) is built around. Unmapping
// happens in the destructor; a mapping outlives any rename that replaces
// the file's directory entry (the inode stays live until the last
// mapping drops), which is what lets DetectorRegistry hot-swap an
// artifact while in-flight snapshots keep serving the old bytes.
//
// ArtifactBuffer owns artifact bytes either as a MappedFile (zero-copy:
// residency cost is the page faults actually touched) or as a 64-byte-
// aligned heap blob (full-copy: one read() of the whole file). Both give
// the same (data, size) view, so the v2 parser is a single code path and
// mmap-loaded engines are trivially bit-identical to buffer-read ones.
//
// The discipline callers must keep: a writer replacing a mapped file must
// publish via temp-file + rename (save_model does). Truncating or
// rewriting the mapped inode in place yields SIGBUS / torn reads in
// processes still holding the old mapping — rename never does.

#include <cstddef>
#include <memory>
#include <string>

namespace hmd::io {

/// RAII read-only memory mapping of an entire file. Move-only; the
/// destructor unmaps. Throws IoError when the file cannot be opened,
/// statted, or mapped (an empty file is unmappable and also throws —
/// no artifact is 0 bytes).
class MappedFile {
 public:
  /// Map `path` read-only in whole.
  static MappedFile map(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedFile() = default;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Owns one artifact's bytes — either a file mapping or a heap blob —
/// and exposes them as a contiguous read-only span. Heap blobs are
/// allocated 64-byte aligned so the v2 parser's alignment checks hold
/// for both ownership modes.
class ArtifactBuffer {
 public:
  /// mmap `path`; throws IoError on failure.
  static ArtifactBuffer map_file(const std::string& path);

  /// Read `path` in full into an aligned heap blob (the stream-style
  /// full-copy load); throws IoError on open/short-read failure.
  static ArtifactBuffer read_file(const std::string& path);

  /// map_file, falling back to read_file when the mapping fails (e.g.
  /// a filesystem without mmap support).
  static ArtifactBuffer map_or_read(const std::string& path);

  ArtifactBuffer(ArtifactBuffer&&) noexcept = default;
  ArtifactBuffer& operator=(ArtifactBuffer&&) noexcept = default;

  const std::byte* data() const {
    return mapping_ ? mapping_->data() : blob_.get();
  }
  std::size_t size() const { return size_; }
  /// True when the bytes are a live file mapping (zero-copy residency).
  bool mapped() const { return mapping_ != nullptr; }

 private:
  ArtifactBuffer() = default;

  /// Matches the over-aligned allocation of read_file's blob.
  struct AlignedDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };

  std::unique_ptr<MappedFile> mapping_;
  std::unique_ptr<std::byte[], AlignedDelete> blob_;  ///< 64-byte-aligned
  std::size_t size_ = 0;
};

}  // namespace hmd::io
