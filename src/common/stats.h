#pragma once
// Order statistics shared by the bench harness and the evaluation layer.

#include <cstddef>
#include <vector>

namespace hmd {

/// Five-number summary plus mean, in the Tukey boxplot convention
/// (whiskers at the farthest points within 1.5 IQR of the quartiles).
struct BoxplotStats {
  double median = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  double whisker_low = 0.0;
  double whisker_high = 0.0;
  double mean = 0.0;
  std::size_t n = 0;
};

/// Median of the values (by value: sorts a copy). Requires non-empty input.
double median(std::vector<double> values);

/// Linear-interpolation quantile of sorted values, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Mean of the values. Requires non-empty input.
double mean(const std::vector<double>& values);

/// Full boxplot summary. Requires non-empty input.
BoxplotStats boxplot_stats(std::vector<double> values);

}  // namespace hmd
