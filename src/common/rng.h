#pragma once
// Deterministic random number generation. The library never uses
// std::random_device or the std distributions: every stream is seeded
// explicitly and the transforms are implemented here, so identical seeds
// give identical datasets and ensembles on every platform and compiler.

#include <cstdint>
#include <vector>

namespace hmd {

/// xoshiro256++ with a splitmix64 seeding sequence.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 1);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Standard normal via Box-Muller (deterministic, cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// k distinct indices drawn uniformly from [0, n), in draw order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace hmd
