#pragma once
// Deterministic fault-injection seam for the artifact / registry / serving
// tiers. A failpoint is a named site in library code; tests (and tools,
// via the HMD_FAILPOINTS environment variable) arm a site with an action —
// throw a typed LoadError, or sleep — optionally limited to the first N
// hits. Nothing is armed by default.
//
// Cost discipline: every instrumented site is the HMD_FAILPOINT macro,
// whose disarmed fast path is a single relaxed atomic load of a global
// counter (no lock, no map lookup, no string work). Sites live only on
// cold paths (artifact open, mmap, registry load) — never per-sample.
// Building with -DHMD_NO_FAILPOINTS compiles every site out entirely for
// deployments that want literal zero cost.
//
// Environment syntax (parsed by arm_from_env, called by the tools'
// main()):
//
//   HMD_FAILPOINTS="<name>=<action>[;<name>=<action>...]"
//   action := error:<code>[:<count>] | delay:<ms>[:<count>]
//   code   := io | truncated | checksum | bad-magic | bad-version |
//             bad-structure | mmap-failed
//
// e.g. HMD_FAILPOINTS="mmap.map=error:mmap-failed:1;registry.load=delay:50"
// makes the first mmap attempt fail (exercising the stream fallback) and
// every registry load 50 ms slow. A count of 0 / omitted count means
// "every hit".
//
// Instrumented sites: artifact.load (core::load_model entry),
// mmap.map (MappedFile::map), registry.load (DetectorRegistry's per-entry
// load attempt, before the loader runs).

#include <atomic>
#include <cstddef>
#include <string>

#include "common/error.h"

namespace hmd::fail {

/// What an armed failpoint does when its site is hit.
struct Spec {
  enum class Action : std::uint8_t { kError, kDelay };
  Action action = Action::kError;
  /// For kError: the LoadError code to throw.
  LoadErrorCode code = LoadErrorCode::kIo;
  /// For kDelay: how long to sleep per hit.
  int delay_ms = 0;
  /// Fire this many times then auto-disarm; <= 0 means every hit.
  int count = 0;
};

/// Arm `name` with `spec` (replacing any previous arming).
void arm(const std::string& name, const Spec& spec);

/// Disarm one site / every site. Hit counters survive disarm (tests
/// assert on them after the run); arm() resets the site's counter.
void disarm(const std::string& name);
void disarm_all();

/// Times `name` actually fired (threw or slept) since it was last armed.
int hit_count(const std::string& name);

/// Parse HMD_FAILPOINTS (see header comment) and arm accordingly.
/// Returns the number of sites armed; malformed entries are skipped with
/// a one-line stderr warning rather than aborting the tool.
std::size_t arm_from_env(const char* env_var = "HMD_FAILPOINTS");

namespace detail {
extern std::atomic<int> n_armed;
/// Slow path: look `name` up and apply its action (may throw LoadError
/// carrying `context` as the path). No-op when the site is not armed.
void point(const char* name, const char* context);
}  // namespace detail

/// True when any site is armed (the macro's fast-path check).
inline bool armed_any() {
  return detail::n_armed.load(std::memory_order_relaxed) != 0;
}

}  // namespace hmd::fail

#if defined(HMD_NO_FAILPOINTS)
#define HMD_FAILPOINT(name, context) \
  do {                               \
  } while (false)
#else
#define HMD_FAILPOINT(name, context)                   \
  do {                                                 \
    if (::hmd::fail::armed_any()) {                    \
      ::hmd::fail::detail::point((name), (context));   \
    }                                                  \
  } while (false)
#endif
