#include "common/table.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace hmd {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HMD_REQUIRE(!headers_.empty(), "ConsoleTable: need at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  HMD_REQUIRE(cells.size() == headers_.size(),
              "ConsoleTable::add_row: cell count != header count");
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string ConsoleTable::fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ConsoleTable& t) {
  std::vector<std::size_t> widths(t.headers_.size());
  for (std::size_t c = 0; c < t.headers_.size(); ++c) {
    widths[c] = t.headers_[c].size();
    for (const auto& row : t.rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(t.headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : t.rows_) emit(row);
  return os;
}

void write_text_file(const std::string& path, const std::string& content) {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("write_text_file: cannot open " + path);
  out << content;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("read_text_file: cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace hmd
