#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace hmd::fail {

namespace {

struct Site {
  Spec spec;
  bool armed = false;
  int hits = 0;
};

/// One global table; failpoints are cold-path only, so a single mutex is
/// plenty and keeps arm/disarm/point trivially race-free (the TSan job
/// covers the registry suite that uses them).
std::mutex& table_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Site>& table() {
  static std::map<std::string, Site> t;
  return t;
}

bool parse_code(const std::string& text, LoadErrorCode& code) {
  for (const LoadErrorCode candidate :
       {LoadErrorCode::kBadMagic, LoadErrorCode::kBadVersion,
        LoadErrorCode::kChecksum, LoadErrorCode::kTruncated,
        LoadErrorCode::kBadStructure, LoadErrorCode::kIo,
        LoadErrorCode::kMmapFailed}) {
    if (text == load_error_code_name(candidate)) {
      code = candidate;
      return true;
    }
  }
  return false;
}

/// Parse "error:<code>[:<count>]" or "delay:<ms>[:<count>]".
bool parse_action(const std::string& text, Spec& spec) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t colon = text.find(':', begin);
    parts.push_back(text.substr(
        begin, colon == std::string::npos ? std::string::npos : colon - begin));
    if (colon == std::string::npos) break;
    begin = colon + 1;
  }
  if (parts.empty()) return false;
  if (parts[0] == "error") {
    spec.action = Spec::Action::kError;
    if (parts.size() < 2 || !parse_code(parts[1], spec.code)) return false;
  } else if (parts[0] == "delay") {
    spec.action = Spec::Action::kDelay;
    if (parts.size() < 2) return false;
    spec.delay_ms = std::atoi(parts[1].c_str());
    if (spec.delay_ms < 0) return false;
  } else {
    return false;
  }
  spec.count = parts.size() > 2 ? std::atoi(parts[2].c_str()) : 0;
  return true;
}

}  // namespace

namespace detail {

std::atomic<int> n_armed{0};

void point(const char* name, const char* context) {
  Spec spec;
  {
    const std::lock_guard<std::mutex> lock(table_mutex());
    const auto it = table().find(name);
    if (it == table().end() || !it->second.armed) return;
    Site& site = it->second;
    ++site.hits;
    spec = site.spec;
    if (site.spec.count > 0 && site.hits >= site.spec.count) {
      site.armed = false;  // fired its quota: auto-disarm
      n_armed.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Act outside the table lock: a delay must not serialise other sites,
  // and the throw must not unwind through a held mutex.
  if (spec.action == Spec::Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
    return;
  }
  throw LoadError(spec.code, context == nullptr ? "<failpoint>" : context,
                  std::string("injected by failpoint '") + name + "'");
}

}  // namespace detail

void arm(const std::string& name, const Spec& spec) {
  const std::lock_guard<std::mutex> lock(table_mutex());
  Site& site = table()[name];
  if (!site.armed) detail::n_armed.fetch_add(1, std::memory_order_relaxed);
  site.spec = spec;
  site.armed = true;
  site.hits = 0;
}

void disarm(const std::string& name) {
  const std::lock_guard<std::mutex> lock(table_mutex());
  const auto it = table().find(name);
  if (it == table().end() || !it->second.armed) return;
  it->second.armed = false;
  detail::n_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  const std::lock_guard<std::mutex> lock(table_mutex());
  for (auto& [name, site] : table()) {
    if (site.armed) {
      site.armed = false;
      detail::n_armed.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

int hit_count(const std::string& name) {
  const std::lock_guard<std::mutex> lock(table_mutex());
  const auto it = table().find(name);
  return it == table().end() ? 0 : it->second.hits;
}

std::size_t arm_from_env(const char* env_var) {
  const char* value = std::getenv(env_var);
  if (value == nullptr || value[0] == '\0') return 0;
  std::size_t armed = 0;
  const std::string text(value);
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    Spec spec;
    if (eq == std::string::npos || eq == 0 ||
        !parse_action(entry.substr(eq + 1), spec)) {
      std::fprintf(stderr, "failpoint: ignoring malformed entry '%s' in %s\n",
                   entry.c_str(), env_var);
      continue;
    }
    arm(entry.substr(0, eq), spec);
    ++armed;
  }
  return armed;
}

}  // namespace hmd::fail
