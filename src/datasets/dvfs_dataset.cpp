#include "datasets/dvfs_dataset.h"

#include "common/error.h"
#include "features/dvfs_features.h"
#include "sim/app_profiles.h"

namespace hmd::data {

namespace {

/// Alternate benign/malware apps so every split is roughly class-balanced
/// and every roster member contributes.
ml::Dataset build_known_split(const sim::SocSim& soc, std::size_t n,
                              double workload_ms, Rng& rng) {
  const auto& benign = sim::dvfs_benign_apps();
  const auto& malware = sim::dvfs_malware_apps();
  const features::DvfsFeaturizer featurizer;
  ml::Dataset split;
  for (std::size_t i = 0; i < n; ++i) {
    const bool is_malware = i % 2 == 1;
    const auto& roster = is_malware ? malware : benign;
    const std::size_t app = (i / 2) % roster.size();
    const auto trace = soc.run(roster[app].sample(rng, workload_ms), rng);
    split.X.push_row(featurizer.features(trace));
    split.y.push_back(roster[app].label);
    split.app_ids.push_back(static_cast<int>(
        is_malware ? benign.size() + app : app));
  }
  return split;
}

ml::Dataset build_unknown_split(const sim::SocSim& soc, std::size_t n,
                                double workload_ms, Rng& rng) {
  const auto& unknown = sim::dvfs_unknown_apps();
  const auto base_id = static_cast<int>(sim::dvfs_benign_apps().size() +
                                        sim::dvfs_malware_apps().size());
  const features::DvfsFeaturizer featurizer;
  ml::Dataset split;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t app = i % unknown.size();
    const auto trace = soc.run(unknown[app].sample(rng, workload_ms), rng);
    split.X.push_row(featurizer.features(trace));
    split.y.push_back(unknown[app].label);
    split.app_ids.push_back(base_id + static_cast<int>(app));
  }
  return split;
}

}  // namespace

DatasetBundle build_dvfs_dataset(const DvfsDatasetConfig& config) {
  HMD_REQUIRE(config.n_train > 0 && config.n_test > 0 && config.n_unknown > 0,
              "build_dvfs_dataset: empty split requested");
  const sim::SocSim soc(config.soc);
  Rng rng(config.seed);
  DatasetBundle bundle;
  bundle.name = "DVFS";
  bundle.train =
      build_known_split(soc, config.n_train, config.workload_ms, rng);
  bundle.test =
      build_known_split(soc, config.n_test, config.workload_ms, rng);
  bundle.unknown =
      build_unknown_split(soc, config.n_unknown, config.workload_ms, rng);
  return bundle;
}

}  // namespace hmd::data
