#pragma once
// The HPC dataset of Table I: hardware-counter windows of benign and
// malware applications. Unlike the DVFS dataset the class distributions
// overlap, and the unknown (zero-day) split is drawn from inside the
// overlap region.

#include <cstdint>

#include "datasets/dataset_bundle.h"

namespace hmd::data {

struct HpcDatasetConfig {
  std::uint64_t seed = 13;
  std::size_t n_train = 44605;
  std::size_t n_test = 6372;
  std::size_t n_unknown = 12727;
};

DatasetBundle build_hpc_dataset(const HpcDatasetConfig& config);

}  // namespace hmd::data
