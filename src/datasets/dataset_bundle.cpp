#include "datasets/dataset_bundle.h"

#include <set>

namespace hmd::data {

namespace {

TaxonomyRow summarise(const std::string& dataset, const std::string& split,
                      const ml::Dataset& d) {
  TaxonomyRow row;
  row.dataset = dataset;
  row.split = split;
  row.n_samples = d.size();
  for (const int label : d.y) (label == 1 ? row.n_malware : row.n_benign)++;
  row.n_apps = std::set<int>(d.app_ids.begin(), d.app_ids.end()).size();
  return row;
}

}  // namespace

std::vector<TaxonomyRow> DatasetBundle::taxonomy() const {
  return {summarise(name, "train", train), summarise(name, "test", test),
          summarise(name, "unknown", unknown)};
}

}  // namespace hmd::data
