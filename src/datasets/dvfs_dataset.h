#pragma once
// The DVFS dataset of Table I: governor state traces of benign and
// malware applications, featurized per sample. The unknown split holds
// zero-day malware families absent from training.

#include <cstdint>

#include "datasets/dataset_bundle.h"
#include "sim/soc.h"

namespace hmd::data {

struct DvfsDatasetConfig {
  std::uint64_t seed = 7;
  std::size_t n_train = 2100;
  std::size_t n_test = 700;
  std::size_t n_unknown = 284;
  double workload_ms = 400.0;  ///< simulated duration per sample
  sim::SocParams soc;
};

DatasetBundle build_dvfs_dataset(const DvfsDatasetConfig& config);

}  // namespace hmd::data
