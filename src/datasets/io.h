#pragma once
// On-disk dataset-bundle cache.
//
// Format v2 (current): a single versioned little-endian binary file
// (`<stem>.hmdb`) holding the three splits back to back. Each split's
// feature block is the Matrix's contiguous row-major buffer, written and
// read with one stream operation — loading is a handful of freads into
// preallocated storage instead of a text parse.
//
//   magic "HMDB" | u32 version | u32 n_splits (=3)
//   per split: u64 rows | u64 cols | u8 has_app_ids
//              f64 X[rows*cols] | i32 y[rows] | i32 app_ids[rows]?
//
// A cache whose magic or version does not match is *invalid*, never
// misread: bundle_exists() returns false for it (so benches regenerate)
// and load_bundle() throws IoError.
//
// The legacy v1 CSV format (`<stem>_{train,test,unknown}.csv`) is kept as
// save_bundle_csv()/load_bundle_csv() for the load-time comparison bench
// and migration tests; new caches are always written as v2 binary.

#include <string>

#include "datasets/dataset_bundle.h"

namespace hmd::data {

/// Current binary cache version. Bump when the layout changes.
inline constexpr std::uint32_t kBundleFormatVersion = 2;

/// Path of the binary cache file for a stem.
std::string bundle_path(const std::string& stem);

/// True iff a cache file exists at the stem *and* carries the current
/// magic/version — stale caches look absent so callers rebuild them.
bool bundle_exists(const std::string& stem);

/// Write the bundle as versioned binary (creates parent directories).
void save_bundle(const DatasetBundle& bundle, const std::string& stem);

/// Load a binary bundle; throws IoError on missing file, bad magic,
/// version mismatch or truncation.
DatasetBundle load_bundle(const std::string& name, const std::string& stem);

/// Legacy CSV writer/reader (v1 format), retained for benchmarks/tests.
void save_bundle_csv(const DatasetBundle& bundle, const std::string& stem);
DatasetBundle load_bundle_csv(const std::string& name,
                              const std::string& stem);

}  // namespace hmd::data
