#include "datasets/io.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/binary_io.h"
#include "common/error.h"

namespace hmd::data {

namespace {

constexpr char kMagic[4] = {'H', 'M', 'D', 'B'};

void ensure_parent(const std::string& path) {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path());
  }
}

void write_split(std::ofstream& out, const ml::Dataset& split) {
  const auto rows = static_cast<std::uint64_t>(split.X.rows());
  const auto cols = static_cast<std::uint64_t>(split.X.cols());
  const std::uint8_t has_apps = split.app_ids.empty() ? 0 : 1;
  io::write_pod(out, rows);
  io::write_pod(out, cols);
  io::write_pod(out, has_apps);
  io::write_span(out, split.X.storage().data(), rows * cols);
  std::vector<std::int32_t> labels(split.y.begin(), split.y.end());
  io::write_span(out, labels.data(), labels.size());
  if (has_apps) {
    std::vector<std::int32_t> apps(split.app_ids.begin(),
                                   split.app_ids.end());
    io::write_span(out, apps.data(), apps.size());
  }
}

ml::Dataset read_split(std::ifstream& in, const std::string& path) {
  const std::string context = "cache " + path;
  std::uint64_t rows = 0, cols = 0;
  std::uint8_t has_apps = 0;
  io::read_pod(in, rows, context);
  io::read_pod(in, cols, context);
  io::read_pod(in, has_apps, context);
  ml::Dataset split;
  std::vector<double> storage(rows * cols);
  io::read_span(in, storage.data(), storage.size(), context);
  split.X = Matrix::from_storage(rows, cols, std::move(storage));
  std::vector<std::int32_t> labels(rows);
  io::read_span(in, labels.data(), labels.size(), context);
  split.y.assign(labels.begin(), labels.end());
  if (has_apps) {
    std::vector<std::int32_t> apps(rows);
    io::read_span(in, apps.data(), apps.size(), context);
    split.app_ids.assign(apps.begin(), apps.end());
  }
  return split;
}

bool header_matches(std::ifstream& in) {
  char magic[4] = {};
  std::uint32_t version = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  return in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
         version == kBundleFormatVersion;
}

}  // namespace

std::string bundle_path(const std::string& stem) { return stem + ".hmdb"; }

bool bundle_exists(const std::string& stem) {
  std::ifstream in(bundle_path(stem), std::ios::binary);
  if (!in) return false;
  return header_matches(in);
}

void save_bundle(const DatasetBundle& bundle, const std::string& stem) {
  const std::string path = bundle_path(stem);
  ensure_parent(path);
  // Write to a sibling temp file and rename into place, so an interrupted
  // save never leaves a half-written cache under the real name.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("save_bundle: cannot open " + tmp_path);
    out.write(kMagic, sizeof(kMagic));
    io::write_pod(out, kBundleFormatVersion);
    const std::uint32_t n_splits = 3;
    io::write_pod(out, n_splits);
    write_split(out, bundle.train);
    write_split(out, bundle.test);
    write_split(out, bundle.unknown);
    if (!out) throw IoError("save_bundle: write failed for " + tmp_path);
  }
  std::filesystem::rename(tmp_path, path);
}

DatasetBundle load_bundle(const std::string& name, const std::string& stem) {
  const std::string path = bundle_path(stem);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw LoadError(LoadErrorCode::kIo, path, "missing cache");
  // Typed header rejection: a non-bundle file, a future bundle version,
  // and a header-length truncation are three different operator actions
  // (wrong path / upgrade mismatch / torn write), so they get three
  // different codes — mirroring the .hmdf loader's taxonomy.
  {
    char magic[4] = {};
    std::uint32_t version = 0;
    in.read(magic, sizeof(magic));
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    if (!in) {
      throw LoadError(LoadErrorCode::kTruncated, path,
                      "file shorter than the 8-byte bundle header");
    }
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      throw LoadError(LoadErrorCode::kBadMagic, path,
                      "bad magic (not a .hmdb bundle)");
    }
    if (version != kBundleFormatVersion) {
      throw LoadError(LoadErrorCode::kBadVersion, path,
                      "unsupported bundle version " + std::to_string(version) +
                          " (expected " +
                          std::to_string(kBundleFormatVersion) + ")");
    }
  }
  std::uint32_t n_splits = 0;
  io::read_pod(in, n_splits, "cache " + path);
  if (n_splits != 3) {
    throw LoadError(LoadErrorCode::kBadStructure, path,
                    "unexpected split count " + std::to_string(n_splits) +
                        " (expected 3)");
  }
  DatasetBundle bundle;
  bundle.name = name;
  bundle.train = read_split(in, path);
  bundle.test = read_split(in, path);
  bundle.unknown = read_split(in, path);
  return bundle;
}

// ---------------------------------------------------------------------------
// Legacy v1 CSV format.

namespace {

const char* const kSplitSuffix[3] = {"_train.csv", "_test.csv",
                                     "_unknown.csv"};

void write_split_csv(const ml::Dataset& split, const std::string& path) {
  ensure_parent(path);
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("save_bundle_csv: cannot open " + path);
  out.precision(17);
  out << split.X.rows() << ',' << split.X.cols() << '\n';
  for (std::size_t r = 0; r < split.X.rows(); ++r) {
    const double* row = split.X.row_ptr(r);
    for (std::size_t c = 0; c < split.X.cols(); ++c) out << row[c] << ',';
    out << split.y[r] << ','
        << (split.app_ids.empty() ? -1 : split.app_ids[r]) << '\n';
  }
}

ml::Dataset read_split_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("load_bundle_csv: missing " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw IoError("load_bundle_csv: empty file " + path);
  }
  std::size_t rows = 0, cols = 0;
  {
    std::istringstream header(line);
    char comma = 0;
    header >> rows >> comma >> cols;
  }
  ml::Dataset split;
  split.X = Matrix(rows, cols);
  split.y.resize(rows);
  split.app_ids.resize(rows);
  bool any_app = false;
  for (std::size_t r = 0; r < rows; ++r) {
    if (!std::getline(in, line)) {
      throw IoError("load_bundle_csv: truncated " + path);
    }
    std::istringstream cells(line);
    std::string cell;
    double* row = split.X.row_ptr(r);
    for (std::size_t c = 0; c < cols; ++c) {
      if (!std::getline(cells, cell, ',')) {
        throw IoError("load_bundle_csv: short row in " + path);
      }
      row[c] = std::stod(cell);
    }
    if (!std::getline(cells, cell, ',')) {
      throw IoError("load_bundle_csv: missing label in " + path);
    }
    split.y[r] = std::stoi(cell);
    if (std::getline(cells, cell, ',')) {
      split.app_ids[r] = std::stoi(cell);
      any_app = any_app || split.app_ids[r] >= 0;
    }
  }
  if (!any_app) split.app_ids.clear();
  return split;
}

}  // namespace

void save_bundle_csv(const DatasetBundle& bundle, const std::string& stem) {
  const ml::Dataset* splits[3] = {&bundle.train, &bundle.test,
                                  &bundle.unknown};
  for (int i = 0; i < 3; ++i) {
    write_split_csv(*splits[i], stem + kSplitSuffix[i]);
  }
}

DatasetBundle load_bundle_csv(const std::string& name,
                              const std::string& stem) {
  DatasetBundle bundle;
  bundle.name = name;
  bundle.train = read_split_csv(stem + kSplitSuffix[0]);
  bundle.test = read_split_csv(stem + kSplitSuffix[1]);
  bundle.unknown = read_split_csv(stem + kSplitSuffix[2]);
  return bundle;
}

}  // namespace hmd::data
