#include "datasets/hpc_dataset.h"

#include "common/error.h"
#include "features/hpc_features.h"
#include "sim/app_profiles.h"

namespace hmd::data {

namespace {

ml::Dataset build_split(const std::vector<sim::HpcAppProfile>& benign,
                        const std::vector<sim::HpcAppProfile>& malware,
                        int app_id_base, std::size_t n, Rng& rng) {
  const features::HpcFeaturizer featurizer;
  ml::Dataset split;
  for (std::size_t i = 0; i < n; ++i) {
    const bool is_malware = !malware.empty() && i % 2 == 1;
    const auto& roster =
        is_malware ? malware : benign;
    const std::size_t app = (i / 2) % roster.size();
    split.X.push_row(featurizer.features(roster[app].sample_window(rng)));
    split.y.push_back(roster[app].label);
    split.app_ids.push_back(app_id_base +
                            static_cast<int>(is_malware
                                                 ? benign.size() + app
                                                 : app));
  }
  return split;
}

}  // namespace

DatasetBundle build_hpc_dataset(const HpcDatasetConfig& config) {
  HMD_REQUIRE(config.n_train > 0 && config.n_test > 0 && config.n_unknown > 0,
              "build_hpc_dataset: empty split requested");
  Rng rng(config.seed);
  DatasetBundle bundle;
  bundle.name = "HPC";
  const auto& benign = sim::hpc_benign_apps();
  const auto& malware = sim::hpc_malware_apps();
  const auto& unknown = sim::hpc_unknown_apps();
  bundle.train = build_split(benign, malware, 0, config.n_train, rng);
  bundle.test = build_split(benign, malware, 0, config.n_test, rng);
  // Unknown split: zero-day roster only, all malware.
  const auto base = static_cast<int>(benign.size() + malware.size());
  bundle.unknown = build_split(unknown, {}, base, config.n_unknown, rng);
  return bundle;
}

}  // namespace hmd::data
