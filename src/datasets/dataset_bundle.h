#pragma once
// A dataset bundle is the paper's Table I unit: train / test (known) /
// unknown (zero-day) splits of one sensor modality.

#include <string>
#include <vector>

#include "ml/dataset.h"

namespace hmd::data {

/// One row of the Table I taxonomy.
struct TaxonomyRow {
  std::string dataset;
  std::string split;
  std::size_t n_samples = 0;
  std::size_t n_benign = 0;
  std::size_t n_malware = 0;
  std::size_t n_apps = 0;
};

struct DatasetBundle {
  std::string name;  ///< "DVFS" or "HPC"
  ml::Dataset train;
  ml::Dataset test;     ///< known inputs (same apps as training)
  ml::Dataset unknown;  ///< zero-day inputs (apps unseen in training)

  /// Per-split sample/class/app counts, in train/test/unknown order.
  std::vector<TaxonomyRow> taxonomy() const;
};

}  // namespace hmd::data
