// Unit and integration tests for the tree-to-native JIT backend
// (src/jit/): the executable CodeBuffer's W^X life cycle, the x86-64
// emitter's label/constant-pool fixups (asserted by executing a
// hand-emitted kernel), the three-state compile policy and its
// profitability heuristic, fallback-to-arena behaviour, and — for the
// TSan job — concurrent first-get() compiles through the registry.
//
// Everything here is a no-op-but-green on targets where the JIT is
// compiled out (-DHMD_NO_JIT / non-x86-64): the availability-dependent
// assertions are gated on jit::available(), and the behavioural ones
// (fallback, policy bookkeeping, concurrency) hold either way.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/detector_registry.h"
#include "core/flat_forest.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "jit/code_buffer.h"
#include "jit/jit.h"
#include "jit/x64_emitter.h"
#include "test_support.h"

namespace {

using namespace hmd;

struct PolicyGuard {
  jit::Policy saved = jit::policy();
  ~PolicyGuard() { jit::set_policy(saved); }
};

/// "m<k>" built without operator+(const char*, string&&) — GCC 12's
/// -Wrestrict false-positives on that overload when it inlines into the
/// thread lambdas below, and CI compiles with -Werror.
std::string model_key(int k) {
  std::string key = "m";
  key += std::to_string(k);
  return key;
}

core::HmdConfig rf_config(int members) {
  core::HmdConfig config;
  config.model = core::ModelKind::kRandomForest;
  config.n_members = members;
  config.seed = 42;
  return config;
}

#if HMD_JIT_SUPPORTED

TEST(JitCodeBuffer, EmitProtectExecute) {
  jit::CodeBuffer code;
  code.put8(0xC3);  // ret
  ASSERT_TRUE(code.ok());
  ASSERT_TRUE(code.protect());
  const auto fn = reinterpret_cast<void (*)()>(
      const_cast<void*>(code.entry(0)));
  fn();  // returning at all is the assertion
}

TEST(JitCodeBuffer, GrowsPastInitialMappingAndStaysExecutable) {
  // Force several remap-and-copy growths (initial capacity is 64 KiB),
  // then prove the surviving bytes still execute end to end.
  jit::CodeBuffer code;
  constexpr std::size_t kNops = 300 * 1000;
  for (std::size_t i = 0; i < kNops; ++i) code.put8(0x90);  // nop sled
  code.put8(0xC3);                                          // ret
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.size(), kNops + 1);
  ASSERT_TRUE(code.protect());
  const auto fn = reinterpret_cast<void (*)()>(
      const_cast<void*>(code.entry(0)));
  fn();
}

TEST(JitCodeBuffer, AlignAndPatch) {
  jit::CodeBuffer code;
  code.put8(0x01);
  code.align_to(8);
  EXPECT_EQ(code.size() % 8, 0u);
  const std::size_t at = code.size();
  code.put32(0);
  code.patch32(at, 0xDEADBEEF);
  EXPECT_TRUE(code.ok());
}

TEST(JitCodeBuffer, MoveTransfersOwnership) {
  jit::CodeBuffer a;
  a.put8(0xC3);
  jit::CodeBuffer b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  ASSERT_TRUE(b.protect());
  reinterpret_cast<void (*)()>(const_cast<void*>(b.entry(0)))();
}

TEST(JitEmitter, PoolInternsByBitPattern) {
  jit::CodeBuffer code;
  jit::X64Emitter emitter(code);
  const std::size_t a = emitter.pool_const(1.5);
  const std::size_t b = emitter.pool_const(1.5);
  const std::size_t c = emitter.pool_const(2.5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // +0.0 and -0.0 are different bit patterns and must not collapse (a
  // blended leaf payload of -0.0 vs +0.0 would select the wrong bits).
  EXPECT_NE(emitter.pool_const(0.0), emitter.pool_const(-0.0));
}

TEST(JitEmitter, HandEmittedRowLoopExecutes) {
  // The forest kernels' scaffolding in miniature: a row loop over r9
  // accumulating a pooled constant into votes[r9]. Executing it proves
  // label binding, rel32 patching, RIP-relative pool fixups, and the
  // SIB-indexed load/store encodings in one go.
  jit::CodeBuffer code;
  jit::X64Emitter emitter(code);
  const std::size_t entry_offset = emitter.offset();
  const std::size_t slot = emitter.pool_const(2.5);
  emitter.zero_r9();
  const jit::X64Emitter::Label loop = emitter.make_label();
  const jit::X64Emitter::Label done = emitter.make_label();
  emitter.bind(loop);
  emitter.cmp_r9_rsi();
  emitter.jae(done);
  emitter.movsd_load_const(0, slot);
  emitter.movsd_load_indexed(1, jit::kRdx, 0);
  emitter.addsd(1, 0);
  emitter.movsd_store_indexed(1, jit::kRdx, 0);
  emitter.inc_r9();
  emitter.jmp(loop);
  emitter.bind(done);
  emitter.ret();
  ASSERT_TRUE(emitter.finish());
  ASSERT_TRUE(code.protect());

  using KernelFn = void (*)(const double*, std::size_t, double*, double*,
                            double*);
  const auto fn = reinterpret_cast<KernelFn>(
      const_cast<void*>(code.entry(entry_offset)));
  std::vector<double> votes = {1.0, 0.0, -2.5, 10.0};
  fn(nullptr, votes.size(), votes.data(), nullptr, nullptr);
  EXPECT_EQ(votes, (std::vector<double>{3.5, 2.5, 0.0, 12.5}));
}

#endif  // HMD_JIT_SUPPORTED

TEST(JitPolicy, AvailableMatchesBuild) {
  EXPECT_EQ(jit::available(), HMD_JIT_SUPPORTED != 0);
}

TEST(JitPolicy, SetAndQueryRoundTrips) {
  const PolicyGuard guard;
  for (const auto p :
       {jit::Policy::kOn, jit::Policy::kOff, jit::Policy::kAuto}) {
    jit::set_policy(p);
    EXPECT_EQ(jit::policy(), p);
  }
}

TEST(JitPolicy, AutoDeclinesStumpForestsAndTakesDeepOnes) {
  const PolicyGuard guard;
  jit::set_policy(jit::Policy::kAuto);
  core::TrustedHmd stumpy(rf_config(100));
  stumpy.fit(test::small_dvfs().train);  // well-separated: mostly stumps
  core::TrustedHmd deep(rf_config(100));
  deep.fit(test::small_hpc().train);  // overlapping classes: deep trees
  EXPECT_FALSE(jit::should_compile(stumpy.flat_forest()));
  if (jit::available()) {
    EXPECT_TRUE(jit::should_compile(deep.flat_forest()));
    EXPECT_EQ(deep.engine().kernel_backend(), "jit");
  }
  // Off/on override the heuristic in both directions (on only where the
  // backend exists at all).
  jit::set_policy(jit::Policy::kOff);
  EXPECT_FALSE(jit::should_compile(deep.flat_forest()));
  jit::set_policy(jit::Policy::kOn);
  EXPECT_EQ(jit::should_compile(stumpy.flat_forest()), jit::available());
}

TEST(JitPolicy, OffPinsTheInterpretedArena) {
  const PolicyGuard guard;
  jit::set_policy(jit::Policy::kOff);
  core::TrustedHmd hmd(rf_config(20));
  hmd.fit(test::small_hpc().train);
  // A freshly-trained engine owns its arrays on the heap, so the
  // interpreted backend reports as the copied-bytes flavour — the point
  // here is only that kOff never produces native code.
  EXPECT_EQ(hmd.engine().kernel_backend(), "stream-fallback");
  EXPECT_EQ(hmd.flat_forest().jit_code_bytes(), 0u);
  EXPECT_EQ(hmd.flat_forest().jit_compile_ms(), 0.0);
}

TEST(JitFallback, CompileForestHonoursAvailability) {
  core::TrustedHmd hmd(rf_config(10));
  hmd.fit(test::small_dvfs().train);
  const auto program = jit::compile_forest(hmd.flat_forest());
  if (jit::available()) {
    ASSERT_NE(program, nullptr);
    EXPECT_GT(program->code_bytes(), 0u);
    for (unsigned shape = 0; shape < 4; ++shape) {
      EXPECT_NE(program->kernel(shape), nullptr);
    }
  } else {
    EXPECT_EQ(program, nullptr);
  }
}

TEST(JitConcurrency, ConcurrentFirstGetCompilesRaceClean) {
  // Several threads hit first-get() on several keys at once with the JIT
  // forced on: compiles run inside each entry's load mutex, off the
  // registry-wide lock. Every snapshot must score bit-identically to an
  // arena-loaded reference — and TSan must stay silent (this suite is in
  // the TSan CI filter).
  const PolicyGuard guard;
  const auto& bundle = test::small_hpc();
  std::string dir_name = "jit_concurrency_tmp_";
  dir_name += ::testing::UnitTest::GetInstance()->current_test_info()->name();
  const std::filesystem::path dir = dir_name;
  std::filesystem::create_directories(dir);
  core::TrustedHmd trained(rf_config(20));
  trained.fit(bundle.train);
  constexpr int kKeys = 3;
  for (int k = 0; k < kKeys; ++k) {
    core::save_model(trained, (dir / (model_key(k) + ".hmdf")).string());
  }

  jit::set_policy(jit::Policy::kOff);
  const core::TrustedHmd reference =
      core::load_model((dir / "m0.hmdf").string(), /*n_threads=*/1);
  const auto expected = reference.estimate_batch(bundle.test.X);

  jit::set_policy(jit::Policy::kOn);
  api::DetectorRegistry registry(/*n_threads=*/1);
  for (int k = 0; k < kKeys; ++k) {
    registry.add(model_key(k), (dir / (model_key(k) + ".hmdf")).string());
  }
  constexpr int kThreads = 6;
  std::vector<int> mismatches(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int k = 0; k < kKeys; ++k) {
          const auto hmd = registry.get(model_key(k % kKeys));
          const auto got = hmd->estimate_batch(bundle.test.X);
          for (std::size_t r = 0; r < got.size(); ++r) {
            if (got[r].votes_malware != expected[r].votes_malware ||
                got[r].soft_entropy != expected[r].soft_entropy ||
                got[r].score != expected[r].score) {
              ++mismatches[t];
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
  for (int k = 0; k < kKeys; ++k) {
    const auto health = registry.health(model_key(k));
    EXPECT_EQ(health.kernel_backend,
              jit::available() ? "jit" : "arena");
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
