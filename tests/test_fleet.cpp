// Fleet subsystem (src/fleet/): the dynamic cuckoo filter's no-false-
// negative and bounded-false-positive contracts across growth, the
// sharded key map under concurrent distinct-key traffic, and the
// registry-level composition — filter-fronted negative lookups, remove(),
// bounded residency with lease-pinned snapshots, eviction × quarantine
// interplay, resident-only refresh(), and a 100k-key stress pass. The
// concurrency cases here are on the TSan CI job's filter list.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/detector_registry.h"
#include "common/failpoint.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "fleet/cuckoo_filter.h"
#include "fleet/sharded_map.h"
#include "test_support.h"

namespace hmd {
namespace {

using core::ModelKind;

std::string nth_key(const char* prefix, int i) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s_%06d", prefix, i);
  return buffer;
}

/// Per-thread variant ("w3_000042"); kept out of string operator+ to
/// sidestep a GCC 12 -Wrestrict false positive on concatenated
/// temporaries under -Werror.
std::string nth_key(const char* prefix, int t, int i) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s%d_%06d", prefix, t, i);
  return buffer;
}

// ---------------------------------------------------------------------------
// DynamicCuckooFilter

TEST(CuckooFilterTest, NoFalseNegativesAcrossGrowth) {
  fleet::DynamicCuckooFilter::Options options;
  options.initial_capacity = 64;  // force many growth segments
  fleet::DynamicCuckooFilter filter(options);

  const int n = 20000;
  for (int i = 0; i < n; ++i) filter.insert(nth_key("key", i));
  EXPECT_EQ(filter.size(), static_cast<std::size_t>(n));

  const fleet::FilterStats stats = filter.stats();
  EXPECT_GT(stats.segments, 1u);  // growth actually happened
  EXPECT_GE(stats.slots, static_cast<std::size_t>(n));

  // The hard invariant: every inserted key still answers "maybe" — a
  // false negative would make the registry deny a registered model.
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(filter.may_contain(nth_key("key", i))) << i;
  }
}

TEST(CuckooFilterTest, EraseRemovesExactlyOneFingerprint) {
  fleet::DynamicCuckooFilter filter;
  filter.insert("alpha");
  filter.insert("beta");
  EXPECT_TRUE(filter.may_contain("alpha"));
  EXPECT_TRUE(filter.erase("alpha"));
  EXPECT_FALSE(filter.erase("alpha"));  // one fingerprint, one erase
  EXPECT_TRUE(filter.may_contain("beta"));
  EXPECT_EQ(filter.size(), 1u);

  // Duplicate inserts stack fingerprints; each erase removes one.
  filter.insert("beta");
  EXPECT_TRUE(filter.erase("beta"));
  EXPECT_TRUE(filter.may_contain("beta"));  // second copy still resident
  EXPECT_TRUE(filter.erase("beta"));
}

TEST(CuckooFilterTest, FalsePositiveRateBoundedAtHighOccupancy) {
  fleet::DynamicCuckooFilter::Options options;
  options.initial_capacity = 1024;  // several growths by 50k keys
  fleet::DynamicCuckooFilter filter(options);

  const int members = 50000;
  for (int i = 0; i < members; ++i) filter.insert(nth_key("member", i));

  const int probes = 50000;
  int false_positives = 0;
  for (int i = 0; i < probes; ++i) {
    if (filter.may_contain(nth_key("stranger", i))) ++false_positives;
  }
  const double rate =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  const fleet::FilterStats stats = filter.stats();
  // The acceptance bar is <= 1%; the analytic bound (segments * 8 /
  // 2^16) should both hold empirically and itself sit under that bar.
  EXPECT_LE(rate, 0.01) << "measured FP rate " << rate << " at occupancy "
                        << stats.occupancy;
  EXPECT_LE(rate, stats.fp_bound * 1.5);  // empirical ~<= analytic (slack)
  EXPECT_LE(stats.fp_bound, 0.01);
}

TEST(CuckooFilterTest, ConcurrentInsertAndProbeDuringGrowth) {
  fleet::DynamicCuckooFilter::Options options;
  options.initial_capacity = 64;  // growth happens *during* the writes
  fleet::DynamicCuckooFilter filter(options);

  const int threads = 8;
  const int per_thread = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(threads + 2);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&filter, t, per_thread] {
      for (int i = 0; i < per_thread; ++i) {
        filter.insert(nth_key("w", t, i));
      }
    });
  }
  // Concurrent readers race the growth path (TSan asserts the locking).
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&filter, &stop, r] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)filter.may_contain(nth_key("probe", (r * 100000) + (i++ % 997)));
      }
    });
  }
  for (int t = 0; t < threads; ++t) workers[t].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t t = threads; t < workers.size(); ++t) workers[t].join();

  EXPECT_EQ(filter.size(), static_cast<std::size_t>(threads * per_thread));
  for (int t = 0; t < threads; ++t) {
    for (int i = 0; i < per_thread; ++i) {
      ASSERT_TRUE(
          filter.may_contain(nth_key("w", t, i)));
    }
  }
}

TEST(CuckooFilterTest, RebuildCompactsChurnWithNoFalseNegatives) {
  fleet::DynamicCuckooFilter::Options options;
  options.initial_capacity = 64;  // churn inflates through many segments
  fleet::DynamicCuckooFilter filter(options);

  const int inserted = 20000;
  const int survivors = 1000;
  for (int i = 0; i < inserted; ++i) filter.insert(nth_key("key", i));
  for (int i = survivors; i < inserted; ++i) {
    ASSERT_TRUE(filter.erase(nth_key("key", i)));
  }
  const fleet::FilterStats before = filter.stats();
  ASSERT_GT(before.segments, 1u);  // the slack rebuild() exists to shed

  std::vector<std::string> live;
  live.reserve(survivors);
  for (int i = 0; i < survivors; ++i) live.push_back(nth_key("key", i));
  filter.rebuild({live.begin(), live.end()});

  const fleet::FilterStats after = filter.stats();
  EXPECT_EQ(after.rebuilds, 1u);
  EXPECT_EQ(after.segments, 1u);  // right-sized: one segment fits 1k keys
  EXPECT_LT(after.slots, before.slots);
  EXPECT_LE(after.fp_bound, before.fp_bound);
  EXPECT_EQ(filter.size(), static_cast<std::size_t>(survivors));

  // The hard invariant survives the swap: every live key still answers
  // "maybe"...
  for (int i = 0; i < survivors; ++i) {
    ASSERT_TRUE(filter.may_contain(nth_key("key", i))) << i;
  }
  // ...and the FP rate over strangers honours the (now single-segment)
  // bound. Erased keys are strangers too — their fingerprints are gone.
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.may_contain(nth_key("stranger", i))) ++false_positives;
  }
  const double rate =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  EXPECT_LE(rate, after.fp_bound * 1.5 + 0.001) << "measured " << rate;

  // Filter stays fully writable after a rebuild.
  filter.insert("post_rebuild");
  EXPECT_TRUE(filter.may_contain("post_rebuild"));
}

TEST(CuckooFilterTest, RebuildUnderConcurrentProbesKeepsLiveKeysVisible) {
  fleet::DynamicCuckooFilter::Options options;
  options.initial_capacity = 64;
  fleet::DynamicCuckooFilter filter(options);

  // A stable live set the probing threads assert on throughout, plus a
  // churn range the writer cycles to force growth and rebuilds.
  const int stable = 2000;
  std::vector<std::string> live;
  live.reserve(stable);
  for (int i = 0; i < stable; ++i) {
    live.push_back(nth_key("stable", i));
    filter.insert(live.back());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> false_negatives{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&filter, &live, &stop, &false_negatives] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // A false negative on a live key here is the bug the graveyard
        // and the seqlock-validated swap exist to prevent.
        if (!filter.may_contain(
                live[static_cast<std::size_t>(i++) % live.size()])) {
          false_negatives.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 3000; ++i) filter.insert(nth_key("churn", round, i));
    for (int i = 0; i < 3000; ++i) {
      ASSERT_TRUE(filter.erase(nth_key("churn", round, i)));
    }
    filter.rebuild({live.begin(), live.end()});
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(false_negatives.load(), 0);

  const fleet::FilterStats stats = filter.stats();
  EXPECT_EQ(stats.rebuilds, 8u);
  EXPECT_EQ(filter.size(), static_cast<std::size_t>(stable));
  for (const std::string& key : live) {
    ASSERT_TRUE(filter.may_contain(key));
  }
}

// ---------------------------------------------------------------------------
// ShardedKeyMap

TEST(ShardedKeyMapTest, InsertFindEraseRoundTrip) {
  fleet::ShardedKeyMap<std::shared_ptr<int>> map(8);
  EXPECT_EQ(map.shard_count(), 8u);
  EXPECT_TRUE(map.insert_or_assign("a", std::make_shared<int>(1)));
  EXPECT_FALSE(map.insert_or_assign("a", std::make_shared<int>(2)));  // assign
  EXPECT_TRUE(map.insert_or_assign("b", std::make_shared<int>(3)));

  ASSERT_NE(map.find("a"), nullptr);
  EXPECT_EQ(*map.find("a"), 2);
  EXPECT_EQ(map.find("absent"), nullptr);  // default-constructed Value
  EXPECT_TRUE(map.contains(std::string_view("b")));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.sorted_keys(), (std::vector<std::string>{"a", "b"}));

  EXPECT_TRUE(map.erase("a"));
  EXPECT_FALSE(map.erase("a"));
  EXPECT_EQ(map.size(), 1u);
}

TEST(ShardedKeyMapTest, ShardCountRoundsUpToPowerOfTwo) {
  fleet::ShardedKeyMap<std::shared_ptr<int>> map(9);
  EXPECT_EQ(map.shard_count(), 16u);
  fleet::ShardedKeyMap<std::shared_ptr<int>> one(0);
  EXPECT_EQ(one.shard_count(), 1u);
}

TEST(ShardedKeyMapTest, ConcurrentDistinctKeysNeverSerialise) {
  fleet::ShardedKeyMap<std::shared_ptr<int>> map(16);
  const int threads = 8;
  const int per_thread = 4000;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&map, t, per_thread] {
      // Each thread owns a disjoint key range: insert, read back, erase a
      // third — the pattern the TSan job checks for shard-lock races.
      for (int i = 0; i < per_thread; ++i) {
        const std::string key = nth_key("t", t, i);
        map.insert_or_assign(key, std::make_shared<int>(i));
        const auto value = map.find(key);
        ASSERT_NE(value, nullptr);
        ASSERT_EQ(*value, i);
        if (i % 3 == 0) map.erase(key);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  std::size_t expected = 0;
  for (int i = 0; i < per_thread; ++i) expected += (i % 3 != 0) ? threads : 0;
  EXPECT_EQ(map.size(), expected);
}

// ---------------------------------------------------------------------------
// DetectorRegistry × fleet composition

class FleetRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The pid suffix keeps a parallel ctest schedule safe: the same test
    // runs both as its discovered entry and inside the labelled
    // FleetSuite.All aggregate, and two processes running it at once
    // must not remove_all each other's artifacts.
    dir_ = std::filesystem::path(
        "fleet_tmp_" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
        "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fail::disarm_all();
    std::filesystem::remove_all(dir_);
  }

  /// Train a tiny detector and save it under `name` (returns the path).
  std::string save_artifact(const std::string& name, ModelKind kind,
                            int members, std::uint64_t seed = 5) {
    core::HmdConfig config;
    config.model = kind;
    config.n_members = members;
    config.n_threads = 1;
    config.seed = seed;
    core::TrustedHmd hmd(config);
    hmd.fit(test::small_dvfs().train);
    const std::string path = (dir_ / (name + ".hmdf")).string();
    core::save_model(hmd, path);
    return path;
  }

  /// A fast policy for tests: millisecond backoffs, deterministic.
  static api::RetryPolicy fast_policy(int max_attempts = 1,
                                      int quarantine_after = 2,
                                      int quarantine_ms = 60000) {
    api::RetryPolicy policy;
    policy.max_attempts = max_attempts;
    policy.initial_backoff_ms = 1;
    policy.backoff_multiplier = 1;
    policy.max_backoff_ms = 1;
    policy.jitter = 0.0;
    policy.quarantine_after = quarantine_after;
    policy.quarantine_ms = quarantine_ms;
    return policy;
  }

  /// The registry ledger's footprint of one loaded artifact.
  static std::size_t footprint(api::DetectorRegistry& registry,
                               const std::string& key) {
    return registry.get(key)->engine().memory_bytes();
  }

  std::filesystem::path dir_;
};

TEST_F(FleetRegistryTest, UnknownKeysBounceOffTheFilterFrontDoor) {
  save_artifact("real", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("real", dir_.string() + "/real.hmdf");

  EXPECT_TRUE(registry.contains("real"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(registry.try_get(nth_key("bogus", i)), nullptr);
    EXPECT_FALSE(registry.contains(nth_key("evil", i)));
  }
  const fleet::FleetStats stats = registry.fleet_stats();
  EXPECT_TRUE(stats.filter.enabled);
  EXPECT_EQ(stats.keys, 1u);
  // Nearly all 200 unknown probes must have been answered by the filter
  // alone (a handful may false-positive through to the exact map).
  EXPECT_GE(stats.filter.rejected, 190u);
  EXPECT_THROW(registry.get("nope"), IoError);
}

TEST_F(FleetRegistryTest, FilterOffStaysExact) {
  save_artifact("real", ModelKind::kRandomForest, 3);
  fleet::FleetOptions options;
  options.filter = false;
  api::DetectorRegistry registry(1, core::LoadMode::kAuto, options);
  registry.add("real", dir_.string() + "/real.hmdf");

  EXPECT_TRUE(registry.contains("real"));
  EXPECT_FALSE(registry.contains("bogus"));
  EXPECT_EQ(registry.try_get("bogus"), nullptr);
  const fleet::FleetStats stats = registry.fleet_stats();
  EXPECT_FALSE(stats.filter.enabled);
  EXPECT_EQ(stats.filter.rejected, 0u);
  EXPECT_NE(registry.get("real"), nullptr);
}

TEST_F(FleetRegistryTest, RemoveUnregistersButSnapshotsSurvive) {
  save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", dir_.string() + "/model.hmdf");

  const auto snapshot = registry.get("model");
  EXPECT_TRUE(registry.remove("model"));
  EXPECT_FALSE(registry.remove("model"));  // second remove: not registered
  EXPECT_FALSE(registry.contains("model"));
  EXPECT_EQ(registry.try_get("model"), nullptr);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_THROW(registry.get("model"), IoError);

  // The held snapshot is a lease on the old version: still scores.
  const auto& x = test::small_dvfs().test.X;
  EXPECT_EQ(snapshot->detect_batch(x).size(), x.rows());
}

TEST_F(FleetRegistryTest, KeyChurnTriggersFilterRebuild) {
  // add()/remove()/contains() never touch the filesystem, so fake paths
  // are enough to drive the churn accounting.
  api::DetectorRegistry registry(1);
  const int total = 600;
  for (int i = 0; i < total; ++i) {
    registry.add(nth_key("m", i), "unused.hmdf");
  }
  ASSERT_EQ(registry.fleet_stats().filter.rebuilds, 0u);

  // Remove until erases-since-rebuild reaches both the floor and the
  // live count — the automatic compaction point remove() documents.
  const int removed = 500;
  for (int i = 0; i < removed; ++i) {
    ASSERT_TRUE(registry.remove(nth_key("m", i)));
  }
  const fleet::FleetStats stats = registry.fleet_stats();
  EXPECT_GE(stats.filter.rebuilds, 1u);
  EXPECT_EQ(stats.keys, static_cast<std::size_t>(total - removed));
  // Post-rebuild exactness both ways: live keys answer, removed keys
  // bounce (a rebuild that lost a live fingerprint would false-negative
  // here, through the public surface).
  for (int i = removed; i < total; ++i) {
    ASSERT_TRUE(registry.contains(nth_key("m", i))) << i;
  }
  int removed_hits = 0;
  for (int i = 0; i < removed; ++i) {
    if (registry.contains(nth_key("m", i))) ++removed_hits;
  }
  EXPECT_EQ(removed_hits, 0);  // exact map answers "no" regardless of FP

  // The explicit maintenance hook compacts on demand too.
  registry.rebuild_filter();
  EXPECT_GE(registry.fleet_stats().filter.rebuilds, 2u);
  EXPECT_EQ(registry.fleet_stats().filter.keys,
            static_cast<std::size_t>(total - removed));
}

TEST_F(FleetRegistryTest, ResidencyBudgetEvictsColdestAndReloadsBitIdentical) {
  for (int i = 0; i < 4; ++i) {
    save_artifact("m" + std::to_string(i), ModelKind::kRandomForest, 3,
                  /*seed=*/10 + static_cast<std::uint64_t>(i));
  }
  api::DetectorRegistry unbounded(1);
  ASSERT_EQ(unbounded.add_directory(dir_.string()), 4u);
  const std::size_t one = footprint(unbounded, "m0");
  ASSERT_GT(one, 0u);

  fleet::FleetOptions options;
  // Room for two artifacts, not four: loading all four must evict.
  options.residency_budget_bytes = 2 * one + one / 2;
  api::DetectorRegistry registry(1, core::LoadMode::kAuto, options);
  ASSERT_EQ(registry.add_directory(dir_.string()), 4u);

  for (int i = 0; i < 4; ++i) (void)registry.get("m" + std::to_string(i));

  const fleet::ResidencyStats stats = registry.fleet_stats().residency;
  EXPECT_LE(stats.resident_bytes, options.residency_budget_bytes);
  EXPECT_GE(stats.evictions, 2u);
  // The oldest keys were the coldest: m0 must be among the evicted.
  EXPECT_FALSE(registry.health("m0").loaded);
  EXPECT_GE(registry.health("m0").evictions, 1u);

  // An evicted key transparently reloads on next get(), bit-identical to
  // the unbounded registry serving the same artifact.
  const auto& x = test::small_dvfs().test.X;
  const auto want = unbounded.get("m0")->estimate_batch(x);
  const auto got = registry.get("m0")->estimate_batch(x);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    ASSERT_EQ(want[r].prediction, got[r].prediction);
    ASSERT_EQ(want[r].votes_malware, got[r].votes_malware);
    ASSERT_EQ(want[r].score, got[r].score);
    ASSERT_EQ(want[r].soft_entropy, got[r].soft_entropy);
  }
  EXPECT_EQ(registry.health("m0").loads_ok, 2u);  // initial + post-evict
}

TEST_F(FleetRegistryTest, LeasePinnedSnapshotSurvivesEviction) {
  for (int i = 0; i < 3; ++i) {
    save_artifact("m" + std::to_string(i), ModelKind::kRandomForest, 3);
  }
  fleet::FleetOptions options;
  options.residency_budget_bytes = 1;  // everything is over budget
  api::DetectorRegistry registry(1, core::LoadMode::kAuto, options);
  ASSERT_EQ(registry.add_directory(dir_.string()), 3u);

  // Hold m0's snapshot across loads of m1 and m2, each of which sweeps.
  const auto pinned = registry.get("m0");
  (void)registry.get("m1");
  (void)registry.get("m2");

  // m0 was always the coldest candidate but is lease-pinned: never
  // evicted while held. m1 (unleased once its get() returned) was.
  EXPECT_TRUE(registry.health("m0").loaded);
  EXPECT_EQ(registry.health("m0").evictions, 0u);
  EXPECT_FALSE(registry.health("m1").loaded);
  EXPECT_GE(registry.fleet_stats().residency.pinned_skips, 1u);

  // The lease keeps serving bit-stable outputs throughout.
  const auto& x = test::small_dvfs().test.X;
  EXPECT_EQ(pinned->detect_batch(x).size(), x.rows());
}

TEST_F(FleetRegistryTest, QuarantinedEntryIsEvictableAndKeepsCachedError) {
  save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", dir_.string() + "/model.hmdf");
  registry.set_retry_policy(fast_policy(/*max_attempts=*/1,
                                        /*quarantine_after=*/2,
                                        /*quarantine_ms=*/60000));
  ASSERT_NE(registry.get("model"), nullptr);

  // Publish a replacement, then make every reload fail: two refresh()
  // probes quarantine the entry while it keeps serving last-good.
  save_artifact("model", ModelKind::kBaggedSvm, 5, /*seed=*/6);
  fail::Spec spec;
  spec.code = LoadErrorCode::kIo;
  spec.count = 0;  // every hit
  fail::arm("registry.load", spec);
  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_TRUE(registry.refresh().empty());
  ASSERT_EQ(registry.health("model").state, api::HealthState::kQuarantined);
  EXPECT_TRUE(registry.health("model").loaded);  // serving last-good

  // Quarantined entries are NOT pinned: shrinking the budget evicts the
  // last-good snapshot (nobody leases it) but keeps the health record.
  registry.set_residency_budget_bytes(1);
  const api::ModelHealth evicted = registry.health("model");
  EXPECT_FALSE(evicted.loaded);
  EXPECT_EQ(evicted.evictions, 1u);
  EXPECT_EQ(evicted.state, api::HealthState::kQuarantined);
  EXPECT_EQ(evicted.last_error_code, LoadErrorCode::kIo);

  // With no snapshot left, a get() inside the TTL fails fast on the
  // *cached* error — no I/O probe (the failpoint hit count stays put).
  fail::disarm_all();
  const int hits_before = fail::hit_count("registry.load");
  try {
    registry.get("model");
    FAIL() << "expected fail-fast LoadError from quarantine";
  } catch (const LoadError& error) {
    EXPECT_EQ(error.code(), LoadErrorCode::kIo);
    EXPECT_NE(std::string(error.what()).find("quarantined"),
              std::string::npos);
  }
  EXPECT_EQ(fail::hit_count("registry.load"), hits_before);
}

TEST_F(FleetRegistryTest, RefreshStatsOnlyResidentsAndEvictedVerifyLazily) {
  save_artifact("a", ModelKind::kRandomForest, 3);
  save_artifact("b", ModelKind::kRandomForest, 3);
  api::DetectorRegistry unbounded(1);
  unbounded.add("a", dir_.string() + "/a.hmdf");
  const std::size_t one = footprint(unbounded, "a");

  fleet::FleetOptions options;
  options.residency_budget_bytes = one + one / 2;  // exactly one fits
  api::DetectorRegistry registry(1, core::LoadMode::kAuto, options);
  registry.add("a", dir_.string() + "/a.hmdf");
  registry.add("b", dir_.string() + "/b.hmdf");
  (void)registry.get("a");
  (void)registry.get("b");  // evicts a (coldest)
  ASSERT_FALSE(registry.health("a").loaded);
  ASSERT_TRUE(registry.health("b").loaded);

  // Swap BOTH artifacts on disk. refresh() is O(resident): it re-stats
  // and reloads only b; the evicted a is not probed at all.
  save_artifact("a", ModelKind::kBaggedSvm, 5, /*seed=*/7);
  save_artifact("b", ModelKind::kBaggedSvm, 5, /*seed=*/8);
  EXPECT_EQ(registry.refresh(), std::vector<std::string>{"b"});

  // The evicted key verifies lazily: its next get() loads the *new*
  // artifact from disk (the swap is not missed, just deferred).
  const auto reloaded = registry.get("a");
  EXPECT_EQ(reloaded->config().model, ModelKind::kBaggedSvm);
  EXPECT_EQ(reloaded->config().n_members, 5);
}

TEST_F(FleetRegistryTest, HundredThousandKeyStress) {
  const std::string path = save_artifact("seed", ModelKind::kRandomForest, 3);
  fleet::FleetOptions options;
  options.shards = 64;
  options.residency_budget_bytes = 1;  // maximum eviction churn
  api::DetectorRegistry registry(1, core::LoadMode::kAuto, options);

  const int n = 100000;
  for (int i = 0; i < n; ++i) registry.add(nth_key("fleet", i), path);
  EXPECT_EQ(registry.size(), static_cast<std::size_t>(n));

  // Serve a spread of the fleet with real artifact loads (all keys alias
  // one file; each load is its own detector, so the budget evicts the
  // previous key as each new one admits); reject unknown keys across the
  // whole keyspace, almost always straight from the filter.
  const int loads = 10000;
  for (int i = 0; i < loads; ++i) {
    ASSERT_NE(registry.try_get(nth_key("fleet", i * (n / loads))), nullptr)
        << i;
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(registry.try_get(nth_key("missing", i)), nullptr) << i;
  }

  fleet::FleetStats stats = registry.fleet_stats();
  EXPECT_EQ(stats.keys, static_cast<std::size_t>(n));
  EXPECT_EQ(stats.shards, 64u);
  EXPECT_EQ(stats.filter.keys, static_cast<std::size_t>(n));
  EXPECT_LE(stats.filter.fp_bound, 0.01);
  // >= 99% of the 100k unknown probes answered by the filter alone.
  EXPECT_GE(stats.filter.rejected, static_cast<std::uint64_t>(n) * 99 / 100);
  // The 1-byte budget kept at most one entry resident at a time.
  EXPECT_LE(stats.residency.resident_entries, 1u);
  EXPECT_GE(stats.residency.evictions,
            static_cast<std::uint64_t>(loads) - 1);

  // Evict/erase interplay: remove a slice and the filter forgets it.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(registry.remove(nth_key("fleet", i)));
  }
  EXPECT_EQ(registry.size(), static_cast<std::size_t>(n - 1000));
  EXPECT_EQ(registry.try_get(nth_key("fleet", 0)), nullptr);
}

TEST_F(FleetRegistryTest, ConcurrentRegistrationLookupAndEviction) {
  const std::string path = save_artifact("seed", ModelKind::kRandomForest, 3);
  fleet::FleetOptions options;
  options.shards = 16;
  options.filter_options.initial_capacity = 64;  // grow under concurrency
  options.residency_budget_bytes = 1;            // evict constantly
  api::DetectorRegistry registry(1, core::LoadMode::kAuto, options);

  const int threads = 6;
  const int per_thread = 500;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(threads + 2);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&registry, &path, t, per_thread] {
      // Disjoint key ranges: register then immediately serve, racing the
      // other threads' loads, admits, and eviction sweeps.
      for (int i = 0; i < per_thread; ++i) {
        const std::string key =
            nth_key("c", t, i);
        registry.add(key, path);
        ASSERT_NE(registry.try_get(key), nullptr);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&registry, &stop, r] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)registry.try_get(nth_key("absent", (r * 100000) + (i++ % 997)));
      }
    });
  }
  for (int t = 0; t < threads; ++t) workers[t].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t t = threads; t < workers.size(); ++t) workers[t].join();

  EXPECT_EQ(registry.size(), static_cast<std::size_t>(threads * per_thread));
  for (int t = 0; t < threads; ++t) {
    for (int i = 0; i < per_thread; ++i) {
      ASSERT_TRUE(
          registry.contains(nth_key("c", t, i)));
    }
  }
}

}  // namespace
}  // namespace hmd
