// Golden parity suite for the flat linear engine: bagged LR and SVM
// detectors compiled into the M×d weight-matrix engine must be
// bit-identical to the reference member path (standardise, then query
// members one by one, then accumulate in member order) — per-sample and
// batched, across both dataset bundles and ensemble sizes M in {1, 5,
// 100}. This is the contract that lets detect_batch/estimate_batch route
// linear models through the flat engine with no per-member fallback.

#include <gtest/gtest.h>

#include "core/flat_linear.h"
#include "core/hmd.h"
#include "core/uncertainty.h"
#include "test_support.h"

namespace {

using namespace hmd;

core::HmdConfig config_for(core::ModelKind kind, int members) {
  core::HmdConfig config;
  config.model = kind;
  config.n_members = members;
  config.n_threads = 0;
  config.seed = 42;
  return config;
}

void expect_linear_parity(const data::DatasetBundle& bundle,
                          core::ModelKind kind, int members) {
  SCOPED_TRACE(bundle.name + " " + core::model_kind_name(kind) +
               " M=" + std::to_string(members));
  core::TrustedHmd hmd(config_for(kind, members));
  hmd.fit(bundle.train);
  ASSERT_TRUE(hmd.uses_flat_engine());
  ASSERT_EQ(hmd.engine().engine_id(), core::EngineId::kFlatLinear);

  // The reference member path queries members with *standardised* rows,
  // exactly like the pre-engine fallback did.
  const core::UncertaintyEstimator reference(
      core::EnsembleView::of(hmd.ensemble()));
  const Matrix& x = bundle.test.X;
  const Matrix scaled = hmd.input_scaler().transform(x);

  const auto detections = hmd.detect_batch(x);
  const auto estimates = hmd.estimate_batch(x);
  ASSERT_EQ(detections.size(), x.rows());
  ASSERT_EQ(estimates.size(), x.rows());

  for (std::size_t r = 0; r < x.rows(); ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    const core::EnsembleStats ref = reference.reference_stats(scaled.row(r));
    const core::EnsembleStats flat = hmd.engine().stats_one(x.row(r));

    // Per-sample engine vs member-by-member reference: bit-identical.
    EXPECT_EQ(flat.votes1, ref.votes1);
    EXPECT_EQ(flat.sum_p1, ref.sum_p1);
    EXPECT_EQ(flat.sum_entropy, ref.sum_entropy);

    // Batched vs per-sample: identical detections...
    const core::Detection one = hmd.detect(x.row(r));
    EXPECT_EQ(detections[r].prediction, one.prediction);
    EXPECT_EQ(detections[r].confidence, one.confidence);
    EXPECT_EQ(detections[r].score, one.score);
    EXPECT_EQ(detections[r].trusted, one.trusted);

    // ...and identical full estimates, entropy by entropy.
    const core::Estimate estimate = hmd.estimate(x.row(r));
    EXPECT_EQ(estimates[r].prediction, estimate.prediction);
    EXPECT_EQ(estimates[r].votes_malware, estimate.votes_malware);
    EXPECT_EQ(estimates[r].vote_entropy, estimate.vote_entropy);
    EXPECT_EQ(estimates[r].soft_entropy, estimate.soft_entropy);
    EXPECT_EQ(estimates[r].expected_entropy, estimate.expected_entropy);
    EXPECT_EQ(estimates[r].mutual_information, estimate.mutual_information);
    EXPECT_EQ(estimates[r].variation_ratio, estimate.variation_ratio);
    EXPECT_EQ(estimates[r].max_probability, estimate.max_probability);
    EXPECT_EQ(estimates[r].score, estimate.score);
    EXPECT_EQ(estimates[r].trusted, estimate.trusted);

    // Prediction / vote parity against the raw reference ensemble.
    EXPECT_EQ(estimates[r].votes_malware, ref.votes1);
    EXPECT_EQ(detections[r].prediction, 2 * ref.votes1 > members ? 1 : 0);
  }

  // Score sweep over every mode (entropy-needing and not), flat batched
  // vs reference per-sample.
  for (const auto mode :
       {core::UncertaintyMode::kVoteEntropy,
        core::UncertaintyMode::kSoftEntropy,
        core::UncertaintyMode::kExpectedEntropy,
        core::UncertaintyMode::kMutualInformation,
        core::UncertaintyMode::kVariationRatio,
        core::UncertaintyMode::kMaxProbability}) {
    const auto flat_scores = hmd.scores(x, mode);
    const auto ref_scores = reference.scores(scaled, mode);
    ASSERT_EQ(flat_scores.size(), ref_scores.size());
    for (std::size_t r = 0; r < flat_scores.size(); ++r) {
      EXPECT_EQ(flat_scores[r], ref_scores[r])
          << core::uncertainty_mode_name(mode) << " row " << r;
    }
  }
}

TEST(FlatLinearParity, LogisticDvfsAllEnsembleSizes) {
  for (const int members : {1, 5, 100}) {
    expect_linear_parity(test::small_dvfs(),
                         core::ModelKind::kBaggedLogistic, members);
  }
}

TEST(FlatLinearParity, LogisticHpcAllEnsembleSizes) {
  for (const int members : {1, 5, 100}) {
    expect_linear_parity(test::small_hpc(),
                         core::ModelKind::kBaggedLogistic, members);
  }
}

TEST(FlatLinearParity, SvmDvfsAllEnsembleSizes) {
  for (const int members : {1, 5, 100}) {
    expect_linear_parity(test::small_dvfs(), core::ModelKind::kBaggedSvm,
                         members);
  }
}

TEST(FlatLinearParity, SvmHpcAllEnsembleSizes) {
  for (const int members : {1, 5, 100}) {
    expect_linear_parity(test::small_hpc(), core::ModelKind::kBaggedSvm,
                         members);
  }
}

TEST(FlatLinearParity, BatchIsDeterministicAcrossThreadCounts) {
  const auto& bundle = test::small_dvfs();
  core::HmdConfig serial_config =
      config_for(core::ModelKind::kBaggedLogistic, 40);
  serial_config.n_threads = 1;
  core::HmdConfig threaded_config = serial_config;
  threaded_config.n_threads = 3;
  core::TrustedHmd one(serial_config);
  core::TrustedHmd three(threaded_config);
  one.fit(bundle.train);
  three.fit(bundle.train);
  const auto a = one.estimate_batch(bundle.test.X);
  const auto b = three.estimate_batch(bundle.test.X);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].votes_malware, b[r].votes_malware);
    EXPECT_EQ(a[r].vote_entropy, b[r].vote_entropy);
    EXPECT_EQ(a[r].soft_entropy, b[r].soft_entropy);
    EXPECT_EQ(a[r].expected_entropy, b[r].expected_entropy);
  }
}

TEST(FlatLinearParity, SvmMembersCarryPlattCoefficients) {
  // The engine must reproduce Platt scaling, not raw margins: a detector
  // whose members all have non-trivial Platt slopes must still match the
  // reference (covered above); here we sanity-check the engine reports
  // the SVM link and the exported coefficients exist.
  core::TrustedHmd hmd(config_for(core::ModelKind::kBaggedSvm, 5));
  hmd.fit(test::small_dvfs().train);
  const auto& engine =
      dynamic_cast<const core::FlatLinearEngine&>(hmd.engine());
  EXPECT_EQ(engine.member_kind(), core::FlatLinearEngine::MemberKind::kSvm);
  EXPECT_EQ(engine.n_features(), test::small_dvfs().train.X.cols());
  EXPECT_EQ(engine.name(), "flat_linear_svm");
}

}  // namespace
