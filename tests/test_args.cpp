// Round-trip tests for the unified tool flag parser (common/args.h):
// every matcher parses back exactly what a tool would put on a command
// line, malformed or out-of-range values hit the usage handler (the
// tools' exit-2 path — modelled here as a throw), and the host:port
// helper agrees with both the server (ephemeral port 0 allowed) and
// client (port >= 1) contracts.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/args.h"

namespace {

using namespace hmd;

/// A usage error surfaced by the parser, carrying the offending token
/// (the tools print it in their usage block before exiting 2).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Run a parse loop over `argv`-style tokens, collecting positionals.
/// The body is a callable(Parser&) -> bool returning true when it
/// consumed the current token.
template <typename Body>
std::vector<std::string> parse(const std::vector<std::string>& tokens,
                               Body&& body) {
  std::vector<char*> argv = {const_cast<char*>("tool")};
  for (const std::string& token : tokens) {
    argv.push_back(const_cast<char*>(token.c_str()));
  }
  args::Parser cli(static_cast<int>(argv.size()), argv.data(),
                   [](const std::string& bad) { throw UsageError(bad); });
  std::vector<std::string> positionals;
  while (cli.next()) {
    if (body(cli)) continue;
    if (cli.is_option()) cli.reject();
    positionals.push_back(std::string(cli.token()));
  }
  return positionals;
}

TEST(ArgsParser, RoundTripsEveryMatcherKind) {
  std::string out;
  std::string dataset;
  int batches = 0;
  std::size_t rows = 0;
  std::uint64_t seed = 0;
  double scale = 0.0;
  bool estimate = false;
  std::string mmap;
  const auto positionals = parse(
      {"--out=models/a.hmdf", "--dataset=hpc", "--batches=7", "--rows=4096",
       "--seed=12345678901234", "--scale=2.5", "--estimate", "--mmap=off",
       "a.hmdf", "b.hmdf"},
      [&](args::Parser& cli) {
        return cli.match("--out", out) ||
               cli.match_choice("--dataset", {"dvfs", "hpc"}, dataset) ||
               cli.match_int("--batches", batches, 1) ||
               cli.match_int("--rows", rows, 1) ||
               cli.match_int("--seed", seed) ||
               cli.match_double("--scale", scale, 0.0, 16.0, true) ||
               cli.match_switch("--estimate", estimate) ||
               cli.match_toggle("--mmap", mmap);
      });
  EXPECT_EQ(out, "models/a.hmdf");
  EXPECT_EQ(dataset, "hpc");
  EXPECT_EQ(batches, 7);
  EXPECT_EQ(rows, 4096u);
  EXPECT_EQ(seed, 12345678901234ull);
  EXPECT_EQ(scale, 2.5);
  EXPECT_TRUE(estimate);
  EXPECT_EQ(mmap, "off");
  EXPECT_EQ(positionals, (std::vector<std::string>{"a.hmdf", "b.hmdf"}));
}

TEST(ArgsParser, ToggleSpellings) {
  // --flag (bare), --flag=on, --flag=off all match; the value string is
  // the tool's to interpret.
  for (const auto& [token, want] :
       std::vector<std::pair<std::string, std::string>>{
           {"--jit", ""}, {"--jit=on", "on"}, {"--jit=off", "off"},
           {"--jit=auto", "auto"}}) {
    std::string got = "unset";
    parse({token}, [&](args::Parser& cli) {
      return cli.match_toggle("--jit", got);
    });
    EXPECT_EQ(got, want) << token;
  }
}

TEST(ArgsParser, StrictIntegerParsing) {
  // The atoi paths this replaces silently read "abc" as 0 and "12x" as
  // 12; the unified parser rejects anything but a full integer.
  int value = 0;
  const auto with_int = [&](args::Parser& cli) {
    return cli.match_int("--n", value, 1, 100);
  };
  EXPECT_THROW(parse({"--n=abc"}, with_int), UsageError);
  EXPECT_THROW(parse({"--n=12x"}, with_int), UsageError);
  EXPECT_THROW(parse({"--n="}, with_int), UsageError);
  EXPECT_THROW(parse({"--n=0"}, with_int), UsageError);    // below min
  EXPECT_THROW(parse({"--n=101"}, with_int), UsageError);  // above max
  parse({"--n=100"}, with_int);
  EXPECT_EQ(value, 100);
}

TEST(ArgsParser, UnsignedTargetRejectsNegatives) {
  std::size_t value = 0;
  EXPECT_THROW(parse({"--n=-3"},
                     [&](args::Parser& cli) {
                       return cli.match_int("--n", value);
                     }),
               UsageError);
}

TEST(ArgsParser, DoubleRangeAndExclusiveMinimum) {
  double value = 0.0;
  const auto with_scale = [&](args::Parser& cli) {
    return cli.match_double("--scale", value, 0.0, 16.0, true);
  };
  EXPECT_THROW(parse({"--scale=0"}, with_scale), UsageError);  // exclusive
  EXPECT_THROW(parse({"--scale=16.5"}, with_scale), UsageError);
  EXPECT_THROW(parse({"--scale=fast"}, with_scale), UsageError);
  parse({"--scale=0.25"}, with_scale);
  EXPECT_EQ(value, 0.25);
}

TEST(ArgsParser, ChoiceRejectsOutsideTheSet) {
  std::string dataset;
  EXPECT_THROW(parse({"--dataset=mnist"},
                     [&](args::Parser& cli) {
                       return cli.match_choice("--dataset", {"dvfs", "hpc"},
                                               dataset);
                     }),
               UsageError);
}

TEST(ArgsParser, UnknownOptionAndEmptyValueAreUsageErrors) {
  std::string out;
  const auto with_out = [&](args::Parser& cli) {
    return cli.match("--out", out);
  };
  EXPECT_THROW(parse({"--bogus=1"}, with_out), UsageError);
  EXPECT_THROW(parse({"--out="}, with_out), UsageError);
  // A similarly-prefixed option is not a match for --out.
  EXPECT_THROW(parse({"--output=x"}, with_out), UsageError);
}

TEST(ArgsParser, SubcommandStyleFirstIndex) {
  // hmd_faultgen parses options after `command FILE`: first=3.
  std::vector<char*> argv = {
      const_cast<char*>("hmd_faultgen"), const_cast<char*>("bitflip"),
      const_cast<char*>("model.hmdf"), const_cast<char*>("--bit=5")};
  args::Parser cli(static_cast<int>(argv.size()), argv.data(),
                   [](const std::string& bad) { throw UsageError(bad); },
                   /*first=*/3);
  int bit = 0;
  while (cli.next()) {
    if (cli.match_int("--bit", bit, 0, 7)) continue;
    cli.reject();
  }
  EXPECT_EQ(bit, 5);
}

TEST(ArgsParser, HostPortSplitsOnLastColonAndRangeChecks) {
  const auto server = args::parse_host_port("127.0.0.1:0");
  ASSERT_TRUE(server.has_value());
  EXPECT_EQ(server->host, "127.0.0.1");
  EXPECT_EQ(server->port, 0);

  // Port 0 is the kernel-assigned ephemeral port: fine for a server,
  // meaningless for a client dialing out.
  EXPECT_FALSE(args::parse_host_port("127.0.0.1:0", /*min_port=*/1));

  const auto client = args::parse_host_port("localhost:8080", 1);
  ASSERT_TRUE(client.has_value());
  EXPECT_EQ(client->host, "localhost");
  EXPECT_EQ(client->port, 8080);

  EXPECT_FALSE(args::parse_host_port("no-port"));
  EXPECT_FALSE(args::parse_host_port(":8080"));
  EXPECT_FALSE(args::parse_host_port("host:"));
  EXPECT_FALSE(args::parse_host_port("host:notaport"));
  EXPECT_FALSE(args::parse_host_port("host:65536"));
  EXPECT_FALSE(args::parse_host_port("host:-1"));
}

}  // namespace
