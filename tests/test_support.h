#pragma once
// Shared fixtures: small dataset bundles built once per test binary (the
// simulators are deterministic, so every suite sees identical data).

#include "datasets/dvfs_dataset.h"
#include "datasets/hpc_dataset.h"

namespace hmd::test {

/// Scaled-down DVFS bundle (well-separated classes, mostly stump trees).
inline const data::DatasetBundle& small_dvfs() {
  static const data::DatasetBundle bundle = [] {
    data::DvfsDatasetConfig config;
    config.seed = 7;
    config.n_train = 180;
    config.n_test = 60;
    config.n_unknown = 40;
    return data::build_dvfs_dataset(config);
  }();
  return bundle;
}

/// Scaled-down HPC bundle (overlapping classes, deeper trees).
inline const data::DatasetBundle& small_hpc() {
  static const data::DatasetBundle bundle = [] {
    data::HpcDatasetConfig config;
    config.seed = 13;
    config.n_train = 400;
    config.n_test = 120;
    config.n_unknown = 80;
    return data::build_hpc_dataset(config);
  }();
  return bundle;
}

}  // namespace hmd::test
