// The HMDW wire protocol (serve/wire.h): encode/parse round-trips for
// every OutputMask combination, the malformed-frame rejection sweep with
// its fatal/survivable split, and an over-the-socket check that a
// survivable error frame leaves the connection serving.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/detector_registry.h"
#include "api/score.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "test_support.h"

namespace hmd {
namespace {

using serve::wire::ErrorCode;
using serve::wire::Frame;
using serve::wire::FrameType;
using serve::wire::WireError;

/// Parse expecting success; returns the consumed byte count.
std::size_t parse_ok(const std::vector<unsigned char>& bytes, Frame& frame,
                     std::size_t max_payload = 16u << 20) {
  return serve::wire::parse_frame(bytes.data(), bytes.size(), max_payload,
                                  frame);
}

/// Parse expecting a WireError; returns its code (kNone on no throw).
ErrorCode parse_code(const std::vector<unsigned char>& bytes,
                     std::size_t max_payload = 16u << 20) {
  Frame frame;
  try {
    serve::wire::parse_frame(bytes.data(), bytes.size(), max_payload, frame);
  } catch (const WireError& error) {
    return error.code();
  }
  return ErrorCode::kNone;
}

/// A deterministic ScoreResult with every column filled and distinct.
api::ScoreResult filled_result(std::size_t rows) {
  api::ScoreResult result;
  result.shape(serve::wire::kKnownOutputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const double v = static_cast<double>(r);
    result.prediction[r] = static_cast<std::int32_t>(r % 2);
    result.confidence[r] = 0.5 + v;
    result.votes[r] = static_cast<std::int32_t>(3 + r);
    result.vote_entropy[r] = 0.01 + v;
    result.soft_entropy[r] = 0.02 + v;
    result.expected_entropy[r] = 0.03 + v;
    result.mutual_information[r] = 0.04 + v;
    result.variation_ratio[r] = 0.05 + v;
    result.max_probability[r] = 0.06 + v;
    result.score[r] = 0.07 + v;
    result.trusted[r] = r % 2 == 0 ? 1 : 0;
  }
  return result;
}

TEST(WireTest, RequestRoundTripCarriesEveryField) {
  const std::vector<double> features = {1.0, -2.5, 3.25, 0.0, 42.0, -0.125};
  std::vector<unsigned char> bytes;
  serve::wire::append_request(bytes, 7, "model_a", api::kDetectionOutputs,
                              core::UncertaintyMode::kMutualInformation,
                              features.data(), 2, 3);
  Frame frame;
  EXPECT_EQ(parse_ok(bytes, frame), bytes.size());
  ASSERT_EQ(frame.type, FrameType::kScoreRequest);
  EXPECT_EQ(frame.request.request_id, 7u);
  EXPECT_EQ(frame.request.model_key, "model_a");
  EXPECT_EQ(frame.request.outputs, api::kDetectionOutputs);
  ASSERT_TRUE(frame.request.mode.has_value());
  EXPECT_EQ(*frame.request.mode, core::UncertaintyMode::kMutualInformation);
  EXPECT_EQ(frame.request.rows, 2u);
  EXPECT_EQ(frame.request.cols, 3u);
  EXPECT_EQ(std::memcmp(frame.request.features, features.data(),
                        features.size() * sizeof(double)),
            0);

  // Unset mode round-trips as "model's configured mode".
  bytes.clear();
  serve::wire::append_request(bytes, 8, "m", api::kPredictionOnly,
                              std::nullopt, features.data(), 1, 6);
  EXPECT_EQ(parse_ok(bytes, frame), bytes.size());
  EXPECT_FALSE(frame.request.mode.has_value());
}

TEST(WireTest, ResultRoundTripEveryMaskCombination) {
  constexpr std::size_t kRows = 3;
  const api::ScoreResult source = filled_result(kRows);
  // All 2047 non-empty subsets of the 11 column bits.
  for (api::OutputMask mask = 1; mask <= serve::wire::kKnownOutputs; ++mask) {
    std::vector<unsigned char> bytes;
    serve::wire::append_result(bytes, mask, mask, source, 0, kRows);
    // Payload = u32 outputs + u32 rows prelude, then the packed columns.
    EXPECT_EQ(bytes.size(),
              serve::wire::kHeaderBytes + 8 +
                  serve::wire::result_payload_bytes(mask, kRows));
    Frame frame;
    ASSERT_EQ(parse_ok(bytes, frame), bytes.size()) << "mask=" << mask;
    ASSERT_EQ(frame.type, FrameType::kScoreResult);
    EXPECT_EQ(frame.result.request_id, mask);
    EXPECT_EQ(frame.result.outputs, mask);
    api::ScoreResult unpacked;
    serve::wire::unpack_result(frame.result, unpacked);
    ASSERT_EQ(unpacked.rows, kRows);
    // Selected columns byte-identical; unselected columns empty.
    const auto check = [&](api::OutputMask bit, const auto& got,
                           const auto& want) {
      if (mask & bit) {
        ASSERT_EQ(got.size(), kRows) << "mask=" << mask << " bit=" << bit;
        EXPECT_EQ(std::memcmp(got.data(), want.data(),
                              kRows * sizeof(want[0])),
                  0)
            << "mask=" << mask << " bit=" << bit;
      } else {
        EXPECT_TRUE(got.empty()) << "mask=" << mask << " bit=" << bit;
      }
    };
    check(api::kOutPrediction, unpacked.prediction, source.prediction);
    check(api::kOutConfidence, unpacked.confidence, source.confidence);
    check(api::kOutVotes, unpacked.votes, source.votes);
    check(api::kOutVoteEntropy, unpacked.vote_entropy, source.vote_entropy);
    check(api::kOutSoftEntropy, unpacked.soft_entropy, source.soft_entropy);
    check(api::kOutExpectedEntropy, unpacked.expected_entropy,
          source.expected_entropy);
    check(api::kOutMutualInformation, unpacked.mutual_information,
          source.mutual_information);
    check(api::kOutVariationRatio, unpacked.variation_ratio,
          source.variation_ratio);
    check(api::kOutMaxProbability, unpacked.max_probability,
          source.max_probability);
    check(api::kOutScore, unpacked.score, source.score);
    check(api::kOutTrusted, unpacked.trusted, source.trusted);
  }
}

TEST(WireTest, AccuracyTierRoundTripsOnRequestsAndResults) {
  const double feature = 1.0;

  // Default append (no accuracy argument) writes byte 6 = 0 — the exact
  // tier, and the exact bytes a pre-tier client emitted.
  std::vector<unsigned char> bytes;
  serve::wire::append_request(bytes, 1, "m", api::kPredictionOnly,
                              std::nullopt, &feature, 1, 1);
  EXPECT_EQ(bytes[6], 0);
  Frame frame;
  ASSERT_EQ(parse_ok(bytes, frame), bytes.size());
  EXPECT_EQ(frame.request.accuracy, core::Accuracy::kExact);

  // Explicit fast tier rides header byte 6 both directions.
  bytes.clear();
  serve::wire::append_request(bytes, 2, "m", api::kPredictionOnly,
                              std::nullopt, &feature, 1, 1,
                              core::Accuracy::kFast);
  EXPECT_EQ(bytes[6], 1);
  ASSERT_EQ(parse_ok(bytes, frame), bytes.size());
  EXPECT_EQ(frame.request.accuracy, core::Accuracy::kFast);

  const api::ScoreResult source = filled_result(2);
  bytes.clear();
  serve::wire::append_result(bytes, 3, api::kDetectionOutputs, source, 0, 2,
                             core::Accuracy::kFast);
  EXPECT_EQ(bytes[6], 1);
  ASSERT_EQ(parse_ok(bytes, frame), bytes.size());
  ASSERT_EQ(frame.type, FrameType::kScoreResult);
  EXPECT_EQ(frame.result.accuracy, core::Accuracy::kFast);

  bytes.clear();
  serve::wire::append_result(bytes, 4, api::kDetectionOutputs, source, 0, 2);
  ASSERT_EQ(parse_ok(bytes, frame), bytes.size());
  EXPECT_EQ(frame.result.accuracy, core::Accuracy::kExact);
}

TEST(WireTest, ResultSliceExtractsTheRequestedRows) {
  const api::ScoreResult source = filled_result(10);
  std::vector<unsigned char> bytes;
  serve::wire::append_result(bytes, 1, api::kDetectionOutputs, source, 4, 3);
  Frame frame;
  ASSERT_EQ(parse_ok(bytes, frame), bytes.size());
  api::ScoreResult unpacked;
  serve::wire::unpack_result(frame.result, unpacked);
  ASSERT_EQ(unpacked.rows, 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(unpacked.prediction[r], source.prediction[4 + r]);
    EXPECT_EQ(unpacked.confidence[r], source.confidence[4 + r]);
    EXPECT_EQ(unpacked.score[r], source.score[4 + r]);
    EXPECT_EQ(unpacked.trusted[r], source.trusted[4 + r]);
  }
}

TEST(WireTest, ErrorFrameRoundTripAndDetailTruncation) {
  std::vector<unsigned char> bytes;
  serve::wire::append_error(bytes, 9, ErrorCode::kUnknownModel, "no such");
  Frame frame;
  ASSERT_EQ(parse_ok(bytes, frame), bytes.size());
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.error.request_id, 9u);
  EXPECT_EQ(frame.error.code, ErrorCode::kUnknownModel);
  EXPECT_EQ(frame.error.detail, "no such");

  bytes.clear();
  serve::wire::append_error(bytes, 1, ErrorCode::kBadPayload,
                            std::string(5000, 'x'));
  ASSERT_EQ(parse_ok(bytes, frame), bytes.size());
  EXPECT_EQ(frame.error.detail.size(), 1024u);  // bounded error frames
}

TEST(WireTest, IncompleteFramesAskForMoreBytes) {
  const double feature = 1.0;
  std::vector<unsigned char> bytes;
  serve::wire::append_request(bytes, 1, "m", api::kPredictionOnly,
                              std::nullopt, &feature, 1, 1);
  Frame frame;
  for (const std::size_t cut :
       {0ul, 1ul, serve::wire::kHeaderBytes - 1, serve::wire::kHeaderBytes,
        bytes.size() - 1}) {
    const std::vector<unsigned char> prefix(bytes.begin(),
                                            bytes.begin() + cut);
    EXPECT_EQ(serve::wire::parse_frame(prefix.data(), prefix.size(),
                                       16u << 20, frame),
              0u)
        << "cut=" << cut;
  }
}

TEST(WireTest, MalformedFrameRejectionSweep) {
  const double feature = 1.0;
  std::vector<unsigned char> good;
  serve::wire::append_request(good, 3, "m", api::kPredictionOnly,
                              std::nullopt, &feature, 1, 1);

  // Fatal framing errors: the stream offset is untrustworthy afterwards.
  auto bad = good;
  bad[0] = 'X';
  EXPECT_EQ(parse_code(bad), ErrorCode::kBadMagic);
  EXPECT_TRUE(serve::wire::error_closes_connection(ErrorCode::kBadMagic));

  bad = good;
  bad[4] = 99;  // protocol version
  EXPECT_EQ(parse_code(bad), ErrorCode::kBadVersion);
  EXPECT_TRUE(serve::wire::error_closes_connection(ErrorCode::kBadVersion));

  bad = good;
  const std::uint32_t huge = 17u << 20;  // over the server cap passed below
  std::memcpy(bad.data() + 12, &huge, 4);
  EXPECT_EQ(parse_code(bad, 16u << 20), ErrorCode::kFrameTooLarge);
  EXPECT_TRUE(
      serve::wire::error_closes_connection(ErrorCode::kFrameTooLarge));

  // Survivable frame-level errors: boundary known, connection continues.
  const auto patch_u32 = [&](std::size_t offset, std::uint32_t value) {
    auto copy = good;
    std::memcpy(copy.data() + offset, &value, 4);
    return copy;
  };
  constexpr std::size_t kPayload = serve::wire::kHeaderBytes;

  bad = good;
  bad[5] = 7;  // unknown frame type
  EXPECT_EQ(parse_code(bad), ErrorCode::kBadFrameType);
  EXPECT_FALSE(
      serve::wire::error_closes_connection(ErrorCode::kBadFrameType));

  bad = good;
  bad[6] = 2;  // accuracy tier above kFast
  EXPECT_EQ(parse_code(bad), ErrorCode::kBadPayload);
  EXPECT_FALSE(serve::wire::error_closes_connection(ErrorCode::kBadPayload));

  bad = good;
  bad[7] = 1;  // the reserved byte must stay zero
  EXPECT_EQ(parse_code(bad), ErrorCode::kBadPayload);

  // Empty and unknown OutputMask bits.
  EXPECT_EQ(parse_code(patch_u32(kPayload + 0, 0)), ErrorCode::kMaskInvalid);
  EXPECT_EQ(parse_code(patch_u32(kPayload + 0, 1u << 15)),
            ErrorCode::kMaskInvalid);
  // Mode outside UncertaintyMode (and not the unset sentinel).
  EXPECT_EQ(parse_code(patch_u32(kPayload + 4, 6)), ErrorCode::kModeInvalid);
  // Row/col geometry: zero rows, zero cols, and row counts over the
  // protocol bound (which would also overflow the declared length).
  EXPECT_EQ(parse_code(patch_u32(kPayload + 8, 0)), ErrorCode::kBadPayload);
  EXPECT_EQ(parse_code(patch_u32(kPayload + 12, 0)), ErrorCode::kBadPayload);
  EXPECT_EQ(
      parse_code(patch_u32(kPayload + 8, serve::wire::kMaxRowsPerRequest + 1)),
      ErrorCode::kBadPayload);
  // rows*cols no longer matching the declared payload size.
  EXPECT_EQ(parse_code(patch_u32(kPayload + 8, 2)), ErrorCode::kBadPayload);
  // Key length zero / over bound / running past the payload.
  auto bad_key = good;
  const std::uint16_t zero_key = 0;
  std::memcpy(bad_key.data() + kPayload + 16, &zero_key, 2);
  EXPECT_EQ(parse_code(bad_key), ErrorCode::kBadPayload);
  const std::uint16_t long_key = 999;
  std::memcpy(bad_key.data() + kPayload + 16, &long_key, 2);
  EXPECT_EQ(parse_code(bad_key), ErrorCode::kBadPayload);

  // Each survivable rejection echoes the request id for the error frame.
  try {
    Frame frame;
    serve::wire::parse_frame(patch_u32(kPayload + 0, 0).data(), good.size(),
                             16u << 20, frame);
    FAIL() << "mask 0 parsed";
  } catch (const WireError& error) {
    EXPECT_EQ(error.request_id(), 3u);
    EXPECT_FALSE(error.fatal());
  }
}

TEST(WireTest, LoadErrorTaxonomyMapsIntoWireCodes) {
  EXPECT_EQ(serve::wire::error_code_for(LoadErrorCode::kChecksum),
            ErrorCode::kLoadChecksum);
  EXPECT_EQ(serve::wire::error_code_for(LoadErrorCode::kTruncated),
            ErrorCode::kLoadTruncated);
  EXPECT_EQ(serve::wire::error_code_for(LoadErrorCode::kBadMagic),
            ErrorCode::kLoadBadMagic);
  EXPECT_FALSE(
      serve::wire::error_closes_connection(ErrorCode::kLoadChecksum));
  EXPECT_STREQ(serve::wire::error_code_name(ErrorCode::kUnknownModel),
               "unknown-model");
}

// ---------------------------------------------------------------------------
// Over a real socket: a survivable error answers with a typed error frame
// and the same connection then serves a valid request; a fatal error
// answers and closes.

class WireSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path("wire_tmp");
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    core::HmdConfig config;
    config.n_members = 5;
    config.n_threads = 1;
    config.seed = 11;
    hmd_.emplace(config);
    hmd_->fit(test::small_dvfs().train);
    const std::string path = (dir_ / "m.hmdf").string();
    core::save_model(*hmd_, path);
    registry_.emplace(1);
    registry_->add("m", path);
    server_.emplace(*registry_, serve::ServerOptions{});
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    server_->request_stop();
    thread_.join();
    server_.reset();
    registry_.reset();
    std::filesystem::remove_all(dir_);
  }

  int connect_client() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  static void send_all(int fd, const std::vector<unsigned char>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Blocking-read exactly one frame (header, then payload).
  static Frame read_frame(int fd, std::vector<unsigned char>& storage) {
    storage.clear();
    const auto read_exact = [&](std::size_t want) {
      const std::size_t base = storage.size();
      storage.resize(base + want);
      std::size_t got = 0;
      while (got < want) {
        const ssize_t n = ::recv(fd, storage.data() + base + got,
                                 want - got, 0);
        ASSERT_GT(n, 0) << "connection closed mid-frame";
        got += static_cast<std::size_t>(n);
      }
    };
    Frame frame;
    read_exact(serve::wire::kHeaderBytes);
    std::uint32_t payload = 0;
    std::memcpy(&payload, storage.data() + 12, 4);
    read_exact(payload);
    EXPECT_EQ(serve::wire::parse_frame(storage.data(), storage.size(),
                                       64u << 20, frame),
              storage.size());
    return frame;
  }

  std::filesystem::path dir_;
  std::optional<core::TrustedHmd> hmd_;
  std::optional<api::DetectorRegistry> registry_;
  std::optional<serve::ScoreServer> server_;
  std::thread thread_;
};

TEST_F(WireSocketTest, SurvivableErrorThenValidRequestOnSameConnection) {
  const Matrix& x = test::small_dvfs().test.X;
  const int fd = connect_client();

  // Unknown model key: typed error frame, connection survives.
  std::vector<unsigned char> bytes;
  serve::wire::append_request(bytes, 21, "nope", api::kDetectionOutputs,
                              std::nullopt, x.row_ptr(0), 1, x.cols());
  send_all(fd, bytes);
  std::vector<unsigned char> storage;
  Frame frame = read_frame(fd, storage);
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.error.request_id, 21u);
  EXPECT_EQ(frame.error.code, ErrorCode::kUnknownModel);

  // Wrong feature width for a known model: shape mismatch, survives too.
  bytes.clear();
  serve::wire::append_request(bytes, 22, "m", api::kDetectionOutputs,
                              std::nullopt, x.row_ptr(0), 1, x.cols() - 1);
  send_all(fd, bytes);
  frame = read_frame(fd, storage);
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.error.request_id, 22u);
  EXPECT_EQ(frame.error.code, ErrorCode::kShapeMismatch);

  // The same connection still serves, bit-identical to direct score().
  bytes.clear();
  serve::wire::append_request(bytes, 23, "m", api::kDetectionOutputs,
                              std::nullopt, x.row_ptr(0), 2, x.cols());
  send_all(fd, bytes);
  frame = read_frame(fd, storage);
  ASSERT_EQ(frame.type, FrameType::kScoreResult);
  EXPECT_EQ(frame.result.request_id, 23u);
  // An old-style request (header byte 6 = 0) is served on the exact tier
  // and the result echoes it — pre-tier clients see pre-tier bytes.
  EXPECT_EQ(frame.result.accuracy, core::Accuracy::kExact);
  api::ScoreResult got;
  serve::wire::unpack_result(frame.result, got);

  api::ScoreRequest direct;
  direct.x = &x;
  direct.outputs = api::kDetectionOutputs;
  api::ScoreResult want;
  hmd_->score(direct, want);
  ASSERT_EQ(got.rows, 2u);
  EXPECT_EQ(std::memcmp(got.prediction.data(), want.prediction.data(),
                        2 * sizeof(std::int32_t)),
            0);
  EXPECT_EQ(std::memcmp(got.score.data(), want.score.data(),
                        2 * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(got.trusted.data(), want.trusted.data(), 2), 0);
  ::close(fd);
}

// Unknown-model requests are rejected by the registry's cuckoo-filter
// front door (no shard lock, no load attempt) — but the wire contract
// must not move: every bogus key still gets the same typed survivable
// kUnknownModel error frame with its request id and detail string, and
// the connection keeps serving afterwards.
TEST_F(WireSocketTest, UnknownModelFloodKeepsTypedErrorAndConnection) {
  const Matrix& x = test::small_dvfs().test.X;
  const int fd = connect_client();
  std::vector<unsigned char> bytes;
  std::vector<unsigned char> storage;

  for (std::uint32_t i = 0; i < 64; ++i) {
    const std::string key = "bogus_" + std::to_string(i);
    bytes.clear();
    serve::wire::append_request(bytes, 1000 + i, key, api::kDetectionOutputs,
                                std::nullopt, x.row_ptr(0), 1, x.cols());
    send_all(fd, bytes);
    const Frame frame = read_frame(fd, storage);
    ASSERT_EQ(frame.type, FrameType::kError) << "key " << key;
    EXPECT_EQ(frame.error.request_id, 1000u + i);
    EXPECT_EQ(frame.error.code, ErrorCode::kUnknownModel);
    EXPECT_EQ(frame.error.detail, "unknown model key '" + key + "'");
  }
  const auto stats = registry_->fleet_stats();
  EXPECT_GE(stats.filter.rejected, 1u);  // front door actually engaged

  // The flood left the connection and the known model untouched.
  bytes.clear();
  serve::wire::append_request(bytes, 2000, "m", api::kDetectionOutputs,
                              std::nullopt, x.row_ptr(0), 1, x.cols());
  send_all(fd, bytes);
  const Frame frame = read_frame(fd, storage);
  ASSERT_EQ(frame.type, FrameType::kScoreResult);
  EXPECT_EQ(frame.result.request_id, 2000u);
  ::close(fd);
}

// A fast-tier request over the socket: the result frame echoes the tier,
// integer columns match the exact direct score() bitwise, and the double
// columns sit inside the vmath ULP band — the over-the-wire half of the
// accuracy contract in api/score.h.
TEST_F(WireSocketTest, FastTierEchoedAndWithinUlpOfExact) {
  const Matrix& x = test::small_dvfs().test.X;
  const std::size_t rows = 4;
  const int fd = connect_client();

  std::vector<unsigned char> bytes;
  serve::wire::append_request(bytes, 31, "m", api::kEstimateOutputs,
                              core::UncertaintyMode::kSoftEntropy,
                              x.row_ptr(0), rows, x.cols(),
                              core::Accuracy::kFast);
  send_all(fd, bytes);
  std::vector<unsigned char> storage;
  const Frame frame = read_frame(fd, storage);
  ASSERT_EQ(frame.type, FrameType::kScoreResult);
  EXPECT_EQ(frame.result.accuracy, core::Accuracy::kFast);
  api::ScoreResult got;
  serve::wire::unpack_result(frame.result, got);
  ASSERT_EQ(got.rows, rows);

  api::ScoreRequest direct;
  direct.x = &x;
  direct.outputs = api::kEstimateOutputs;
  direct.mode = core::UncertaintyMode::kSoftEntropy;
  api::ScoreResult want;  // exact-tier oracle
  hmd_->score(direct, want);

  const auto close_enough = [](double a, double b) {
    if (a == b) return true;
    if (std::abs(a - b) <= 1e-12) return true;
    const auto rank = [](double v) {
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      return (bits >> 63) ? ~bits : (bits | 0x8000000000000000ull);
    };
    const std::uint64_t ra = rank(a), rb = rank(b);
    return (ra > rb ? ra - rb : rb - ra) <= 8;
  };
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(got.prediction[r], want.prediction[r]) << r;
    EXPECT_EQ(got.votes[r], want.votes[r]) << r;
    EXPECT_EQ(got.trusted[r], want.trusted[r]) << r;
    EXPECT_TRUE(close_enough(got.soft_entropy[r], want.soft_entropy[r]))
        << r << ": " << got.soft_entropy[r] << " vs "
        << want.soft_entropy[r];
    EXPECT_TRUE(close_enough(got.score[r], want.score[r])) << r;
    EXPECT_TRUE(close_enough(got.mutual_information[r],
                             want.mutual_information[r]))
        << r;
  }
  ::close(fd);
}

TEST_F(WireSocketTest, FatalErrorAnswersThenCloses) {
  const int fd = connect_client();
  std::vector<unsigned char> garbage(serve::wire::kHeaderBytes, 0);
  std::memcpy(garbage.data(), "NOPE", 4);
  send_all(fd, garbage);
  std::vector<unsigned char> storage;
  const Frame frame = read_frame(fd, storage);
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.error.code, ErrorCode::kBadMagic);
  // Orderly close follows the error frame.
  unsigned char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

}  // namespace
}  // namespace hmd
