// The adaptive micro-batcher (serve/batcher.h): flush triggers (rows cap
// inside enqueue, deadline via flush_due, idle via flush_all), per-model
// and per-mode queue isolation, immediate rejection of unscorable
// requests, and the scatter/gather parity claim — a response sliced out
// of a coalesced multi-connection batch is bit-identical to a direct
// score() on the request's rows, per mask.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "api/detector_registry.h"
#include "api/score.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "serve/batcher.h"
#include "serve/wire.h"
#include "test_support.h"

namespace hmd {
namespace {

using serve::BatchItem;
using serve::BatcherOptions;
using serve::MicroBatcher;
using serve::wire::ErrorCode;

/// Everything a sink saw, in callback order.
struct SinkLog {
  struct Answer {
    BatchItem item;
    api::ScoreResult batch;  ///< deep copy of the coalesced result
  };
  struct Failure {
    BatchItem item;
    ErrorCode code = ErrorCode::kNone;
    std::string detail;
  };
  std::vector<Answer> answers;
  std::vector<Failure> failures;
};

class MicroBatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: the suite must survive ctest -j running sibling
    // tests in other processes of the same binary.
    dir_ = std::filesystem::path(
        "batcher_tmp_" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    core::HmdConfig config;
    config.n_members = 7;
    config.n_threads = 1;
    config.seed = 5;
    hmd_.emplace(config);
    hmd_->fit(test::small_dvfs().train);
    core::save_model(*hmd_, (dir_ / "good.hmdf").string());
    registry_.emplace(1);
    registry_->add("good", (dir_ / "good.hmdf").string());
    // Registered but unloadable: the isolation tests' broken sibling.
    registry_->add("broken", (dir_ / "missing.hmdf").string());
  }

  void TearDown() override {
    registry_.reset();
    std::filesystem::remove_all(dir_);
  }

  MicroBatcher make(BatcherOptions options) {
    return MicroBatcher(
        *registry_, options,
        [this](const BatchItem& item, const api::ScoreResult& result) {
          log_.answers.push_back({item, result});
        },
        [this](const BatchItem& item, ErrorCode code,
               const std::string& detail) {
          log_.failures.push_back({item, code, detail});
        });
  }

  const Matrix& x() const { return test::small_dvfs().test.X; }

  const unsigned char* row_bytes(std::size_t r) const {
    return reinterpret_cast<const unsigned char*>(x().row_ptr(r));
  }

  /// Direct score() of rows [begin, begin+rows) under `outputs` — the
  /// oracle a scattered batch slice must match bit for bit.
  api::ScoreResult direct(std::size_t begin, std::size_t rows,
                          api::OutputMask outputs,
                          std::optional<core::UncertaintyMode> mode = {}) {
    Matrix slice(rows, x().cols());
    for (std::size_t r = 0; r < rows; ++r) {
      std::memcpy(slice.row_ptr(r), x().row_ptr(begin + r),
                  x().cols() * sizeof(double));
    }
    api::ScoreRequest request;
    request.x = &slice;
    request.outputs = outputs;
    request.mode = mode;
    api::ScoreResult result;
    hmd_->score(request, result);
    return result;
  }

  /// Slice `item`'s rows out of its batch with the wire encoder (the
  /// exact scatter path the server uses) and compare against `want`.
  static void expect_slice_matches(const SinkLog::Answer& answer,
                                   const api::ScoreResult& want) {
    std::vector<unsigned char> bytes;
    serve::wire::append_result(bytes, answer.item.request_id,
                               answer.item.outputs, answer.batch,
                               answer.item.row_begin, answer.item.rows);
    serve::wire::Frame frame;
    ASSERT_EQ(serve::wire::parse_frame(bytes.data(), bytes.size(), 64u << 20,
                                       frame),
              bytes.size());
    api::ScoreResult got;
    serve::wire::unpack_result(frame.result, got);
    ASSERT_EQ(got.rows, want.rows);
    const auto compare = [&](const auto& a, const auto& b, const char* name) {
      ASSERT_EQ(a.size(), b.size()) << name;
      if (!a.empty()) {
        EXPECT_EQ(std::memcmp(a.data(), b.data(),
                              a.size() * sizeof(a[0])),
                  0)
            << name;
      }
    };
    compare(got.prediction, want.prediction, "prediction");
    compare(got.confidence, want.confidence, "confidence");
    compare(got.votes, want.votes, "votes");
    compare(got.vote_entropy, want.vote_entropy, "vote_entropy");
    compare(got.soft_entropy, want.soft_entropy, "soft_entropy");
    compare(got.expected_entropy, want.expected_entropy, "expected_entropy");
    compare(got.mutual_information, want.mutual_information,
            "mutual_information");
    compare(got.variation_ratio, want.variation_ratio, "variation_ratio");
    compare(got.max_probability, want.max_probability, "max_probability");
    compare(got.score, want.score, "score");
    compare(got.trusted, want.trusted, "trusted");
  }

  std::filesystem::path dir_;
  std::optional<core::TrustedHmd> hmd_;
  std::optional<api::DetectorRegistry> registry_;
  SinkLog log_;
};

TEST_F(MicroBatcherTest, RowsCapFlushesInsideEnqueue) {
  BatcherOptions options;
  options.max_batch_rows = 4;
  options.max_delay_us = 1'000'000;  // deadline can't be the trigger here
  MicroBatcher batcher = make(options);

  batcher.enqueue(1, 100, "good", api::kDetectionOutputs, std::nullopt,
                  row_bytes(0), 2, x().cols());
  EXPECT_TRUE(log_.answers.empty());
  EXPECT_EQ(batcher.pending_rows(), 2u);

  batcher.enqueue(2, 200, "good", api::kDetectionOutputs, std::nullopt,
                  row_bytes(2), 2, x().cols());
  ASSERT_EQ(log_.answers.size(), 2u);  // cap hit: flushed synchronously
  EXPECT_EQ(batcher.pending_rows(), 0u);
  EXPECT_EQ(batcher.stats().flushed_rows_cap, 1u);
  EXPECT_EQ(batcher.stats().batches, 1u);
  EXPECT_EQ(batcher.stats().max_batch_rows_seen, 4u);

  // Both answers scatter out of ONE coalesced batch, bit-identical to
  // direct score() of each request's own rows.
  EXPECT_EQ(log_.answers[0].item.request_id, 100u);
  EXPECT_EQ(log_.answers[0].item.row_begin, 0u);
  EXPECT_EQ(log_.answers[1].item.request_id, 200u);
  EXPECT_EQ(log_.answers[1].item.row_begin, 2u);
  expect_slice_matches(log_.answers[0],
                       direct(0, 2, api::kDetectionOutputs));
  expect_slice_matches(log_.answers[1],
                       direct(2, 2, api::kDetectionOutputs));
}

TEST_F(MicroBatcherTest, DeadlineFlushViaFlushDue) {
  BatcherOptions options;
  options.max_batch_rows = 1000;
  options.max_delay_us = 500;
  MicroBatcher batcher = make(options);

  batcher.enqueue(1, 1, "good", api::kDetectionOutputs, std::nullopt,
                  row_bytes(0), 3, x().cols());
  const auto deadline = batcher.next_deadline();
  ASSERT_TRUE(deadline.has_value());

  // Before the deadline: nothing flushes.
  batcher.flush_due(*deadline - std::chrono::microseconds(100));
  EXPECT_TRUE(log_.answers.empty());
  EXPECT_EQ(batcher.pending_rows(), 3u);

  // At/after the deadline: the queue drains with the deadline trigger.
  batcher.flush_due(*deadline);
  ASSERT_EQ(log_.answers.size(), 1u);
  EXPECT_EQ(batcher.pending_rows(), 0u);
  EXPECT_EQ(batcher.stats().flushed_deadline, 1u);
  EXPECT_FALSE(batcher.next_deadline().has_value());
  expect_slice_matches(log_.answers[0], direct(0, 3, api::kDetectionOutputs));
}

TEST_F(MicroBatcherTest, IdleFlushAnswersEverythingPending) {
  MicroBatcher batcher = make(BatcherOptions{});
  batcher.enqueue(1, 1, "good", api::kDetectionOutputs, std::nullopt,
                  row_bytes(0), 1, x().cols());
  batcher.flush_all();
  ASSERT_EQ(log_.answers.size(), 1u);
  EXPECT_EQ(batcher.stats().flushed_idle, 1u);
  EXPECT_EQ(batcher.pending_rows(), 0u);
  expect_slice_matches(log_.answers[0], direct(0, 1, api::kDetectionOutputs));
}

TEST_F(MicroBatcherTest, UnknownKeyRejectedImmediatelyWithoutQueueing) {
  MicroBatcher batcher = make(BatcherOptions{});
  batcher.enqueue(1, 42, "never_registered", api::kDetectionOutputs,
                  std::nullopt, row_bytes(0), 1, x().cols());
  ASSERT_EQ(log_.failures.size(), 1u);  // answered inside enqueue()
  EXPECT_EQ(log_.failures[0].code, ErrorCode::kUnknownModel);
  EXPECT_EQ(log_.failures[0].item.request_id, 42u);
  EXPECT_EQ(batcher.pending_rows(), 0u);
  EXPECT_EQ(batcher.stats().errors, 1u);
}

TEST_F(MicroBatcherTest, BrokenModelFailsOnlyItsOwnQueue) {
  MicroBatcher batcher = make(BatcherOptions{});
  batcher.enqueue(1, 1, "good", api::kDetectionOutputs, std::nullopt,
                  row_bytes(0), 2, x().cols());
  batcher.enqueue(2, 2, "broken", api::kDetectionOutputs, std::nullopt,
                  row_bytes(2), 2, x().cols());
  batcher.flush_all();

  // The broken model's load failure maps into the kLoad* wire range and
  // fails only its own requests; the good queue still answers.
  ASSERT_EQ(log_.answers.size(), 1u);
  EXPECT_EQ(log_.answers[0].item.request_id, 1u);
  expect_slice_matches(log_.answers[0], direct(0, 2, api::kDetectionOutputs));
  ASSERT_EQ(log_.failures.size(), 1u);
  EXPECT_EQ(log_.failures[0].item.request_id, 2u);
  EXPECT_GE(static_cast<std::uint32_t>(log_.failures[0].code), 100u);
  EXPECT_EQ(batcher.pending_rows(), 0u);
}

TEST_F(MicroBatcherTest, ShapeConflictsRejectedWithoutPoisoningTheQueue) {
  MicroBatcher batcher = make(BatcherOptions{});
  batcher.enqueue(1, 1, "good", api::kDetectionOutputs, std::nullopt,
                  row_bytes(0), 2, x().cols());
  // Different width than the pending batch: rejected at enqueue.
  batcher.enqueue(2, 2, "good", api::kDetectionOutputs, std::nullopt,
                  row_bytes(0), 1, x().cols() - 1);
  ASSERT_EQ(log_.failures.size(), 1u);
  EXPECT_EQ(log_.failures[0].code, ErrorCode::kShapeMismatch);
  EXPECT_EQ(log_.failures[0].item.request_id, 2u);

  // The queued request is unharmed.
  batcher.flush_all();
  ASSERT_EQ(log_.answers.size(), 1u);
  expect_slice_matches(log_.answers[0], direct(0, 2, api::kDetectionOutputs));
}

TEST_F(MicroBatcherTest, WrongWidthForTheModelFailsTheQueueTyped) {
  MicroBatcher batcher = make(BatcherOptions{});
  // Consistent within the queue, but not the model's n_features():
  // caught against the engine at flush time.
  std::vector<double> narrow(x().cols() - 1, 0.25);
  batcher.enqueue(1, 9, "good", api::kDetectionOutputs, std::nullopt,
                  reinterpret_cast<const unsigned char*>(narrow.data()), 1,
                  x().cols() - 1);
  batcher.flush_all();
  ASSERT_EQ(log_.failures.size(), 1u);
  EXPECT_EQ(log_.failures[0].code, ErrorCode::kShapeMismatch);
  EXPECT_TRUE(log_.answers.empty());
  EXPECT_EQ(batcher.pending_rows(), 0u);
}

TEST_F(MicroBatcherTest, ModesNeverShareABatch) {
  MicroBatcher batcher = make(BatcherOptions{});
  batcher.enqueue(1, 1, "good", api::kEstimateOutputs,
                  core::UncertaintyMode::kVoteEntropy, row_bytes(0), 1,
                  x().cols());
  batcher.enqueue(1, 2, "good", api::kEstimateOutputs,
                  core::UncertaintyMode::kSoftEntropy, row_bytes(1), 1,
                  x().cols());
  batcher.enqueue(1, 3, "good", api::kEstimateOutputs, std::nullopt,
                  row_bytes(2), 1, x().cols());
  batcher.flush_all();
  // Three queues, three score() calls — kOutScore/kOutTrusted depend on
  // the mode, so merging them would change bytes.
  EXPECT_EQ(batcher.stats().batches, 3u);
  ASSERT_EQ(log_.answers.size(), 3u);
  for (const auto& answer : log_.answers) {
    const std::size_t row = answer.item.request_id - 1;
    std::optional<core::UncertaintyMode> mode;
    if (answer.item.request_id == 1) {
      mode = core::UncertaintyMode::kVoteEntropy;
    } else if (answer.item.request_id == 2) {
      mode = core::UncertaintyMode::kSoftEntropy;
    }
    expect_slice_matches(answer, direct(row, 1, api::kEstimateOutputs, mode));
  }
}

TEST_F(MicroBatcherTest, AccuracyTiersNeverShareABatch) {
  MicroBatcher batcher = make(BatcherOptions{});
  // Same model, same mode, same mask — only the tier differs. Coalescing
  // them would score the exact rows through the fast kernels (or vice
  // versa), so they must land in separate queues.
  batcher.enqueue(1, 1, "good", api::kEstimateOutputs,
                  core::UncertaintyMode::kSoftEntropy, row_bytes(0), 2,
                  x().cols(), core::Accuracy::kExact);
  batcher.enqueue(2, 2, "good", api::kEstimateOutputs,
                  core::UncertaintyMode::kSoftEntropy, row_bytes(2), 2,
                  x().cols(), core::Accuracy::kFast);
  batcher.flush_all();
  EXPECT_EQ(batcher.stats().batches, 2u);  // one score() call per tier
  ASSERT_EQ(log_.answers.size(), 2u);
  for (const auto& answer : log_.answers) {
    if (answer.item.request_id == 1) {
      EXPECT_EQ(answer.item.accuracy, core::Accuracy::kExact);
      // The exact tier keeps the bit-parity scatter/gather contract even
      // with a fast sibling in flight.
      expect_slice_matches(answer,
                           direct(0, 2, api::kEstimateOutputs,
                                  core::UncertaintyMode::kSoftEntropy));
    } else {
      EXPECT_EQ(answer.item.request_id, 2u);
      EXPECT_EQ(answer.item.accuracy, core::Accuracy::kFast);
      EXPECT_EQ(answer.batch.rows, 2u);
    }
  }
}

TEST_F(MicroBatcherTest, HeterogeneousMasksCoalesceAndScatterBitIdentical) {
  BatcherOptions options;
  options.max_batch_rows = 64;
  MicroBatcher batcher = make(options);

  // Three connections, three different masks, one model+mode queue: the
  // batch scores under the union mask, each response must carry exactly
  // its own mask's columns, bit-identical to a direct per-request score.
  const api::OutputMask masks[] = {api::kPredictionOnly | api::kOutTrusted,
                                   api::kDetectionOutputs,
                                   api::kEstimateOutputs};
  std::size_t begin = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    batcher.enqueue(/*conn_id=*/10 + i, /*request_id=*/i, "good", masks[i],
                    std::nullopt, row_bytes(begin), 3, x().cols());
    begin += 3;
  }
  batcher.flush_all();
  EXPECT_EQ(batcher.stats().batches, 1u);  // one coalesced score() call
  ASSERT_EQ(log_.answers.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& answer = log_.answers[i];
    EXPECT_EQ(answer.item.conn_id, 10u + i);
    EXPECT_EQ(answer.item.row_begin, std::size_t{3} * i);
    expect_slice_matches(answer, direct(3 * i, 3, masks[i]));
  }
}

TEST_F(MicroBatcherTest, StatsAccumulateAcrossFlushes) {
  BatcherOptions options;
  options.max_batch_rows = 2;
  MicroBatcher batcher = make(options);
  for (std::uint32_t i = 0; i < 6; ++i) {
    batcher.enqueue(1, i, "good", api::kDetectionOutputs, std::nullopt,
                    row_bytes(i), 1, x().cols());
  }
  EXPECT_EQ(batcher.stats().requests, 6u);
  EXPECT_EQ(batcher.stats().rows, 6u);
  EXPECT_EQ(batcher.stats().batches, 3u);
  EXPECT_EQ(batcher.stats().flushed_rows_cap, 3u);
  EXPECT_EQ(log_.answers.size(), 6u);
}

}  // namespace
}  // namespace hmd
