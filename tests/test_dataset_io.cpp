// Binary dataset-bundle cache: round-trip exactness, stale-cache
// rejection (bad magic / version mismatch / truncation), and the legacy
// CSV path the binary format replaced.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "datasets/io.h"
#include "test_support.h"

namespace {

using namespace hmd;

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs sibling tests of this fixture in
    // separate processes, and a shared directory would let one test's
    // SetUp delete another's live files.
    dir_ = std::filesystem::path(
        "test_io_tmp_" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    stem_ = (dir_ / "bundle").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Overwrite one byte of the cache file at `offset`.
  void corrupt_byte(std::uintmax_t offset, char value) {
    std::fstream f(data::bundle_path(stem_),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&value, 1);
  }

  std::filesystem::path dir_;
  std::string stem_;
};

void expect_split_equal(const ml::Dataset& a, const ml::Dataset& b) {
  EXPECT_TRUE(a.X == b.X);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.app_ids, b.app_ids);
}

TEST_F(DatasetIoTest, BinaryRoundTripIsExact) {
  const auto& bundle = test::small_dvfs();
  data::save_bundle(bundle, stem_);
  ASSERT_TRUE(data::bundle_exists(stem_));
  const auto loaded = data::load_bundle(bundle.name, stem_);
  EXPECT_EQ(loaded.name, bundle.name);
  expect_split_equal(loaded.train, bundle.train);
  expect_split_equal(loaded.test, bundle.test);
  expect_split_equal(loaded.unknown, bundle.unknown);
}

TEST_F(DatasetIoTest, MissingCacheLooksAbsentAndThrows) {
  EXPECT_FALSE(data::bundle_exists(stem_));
  EXPECT_THROW(data::load_bundle("DVFS", stem_), IoError);
}

TEST_F(DatasetIoTest, BadMagicIsRejectedNotMisread) {
  data::save_bundle(test::small_dvfs(), stem_);
  corrupt_byte(0, 'X');  // clobber the magic
  EXPECT_FALSE(data::bundle_exists(stem_));
  EXPECT_THROW(data::load_bundle("DVFS", stem_), IoError);
}

TEST_F(DatasetIoTest, VersionMismatchIsRejectedNotMisread) {
  data::save_bundle(test::small_dvfs(), stem_);
  // The u32 version field sits right after the 4-byte magic; a bumped or
  // stale version must make the cache look absent so benches regenerate.
  corrupt_byte(4, static_cast<char>(data::kBundleFormatVersion + 1));
  EXPECT_FALSE(data::bundle_exists(stem_));
  EXPECT_THROW(data::load_bundle("DVFS", stem_), IoError);
}

TEST_F(DatasetIoTest, TruncatedCacheThrows) {
  data::save_bundle(test::small_dvfs(), stem_);
  const auto path = data::bundle_path(stem_);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  // Header is intact, so the file still advertises itself...
  EXPECT_TRUE(data::bundle_exists(stem_));
  // ...but loading must fail loudly rather than return half a dataset.
  EXPECT_THROW(data::load_bundle("DVFS", stem_), IoError);
}

TEST_F(DatasetIoTest, LegacyCsvRoundTripStillWorks) {
  const auto& bundle = test::small_dvfs();
  data::save_bundle_csv(bundle, stem_);
  const auto loaded = data::load_bundle_csv(bundle.name, stem_);
  expect_split_equal(loaded.train, bundle.train);
  expect_split_equal(loaded.test, bundle.test);
  expect_split_equal(loaded.unknown, bundle.unknown);
}

TEST_F(DatasetIoTest, BinaryAndCsvAgree) {
  const auto& bundle = test::small_hpc();
  data::save_bundle(bundle, stem_);
  data::save_bundle_csv(bundle, stem_);
  const auto binary = data::load_bundle(bundle.name, stem_);
  const auto csv = data::load_bundle_csv(bundle.name, stem_);
  expect_split_equal(binary.train, csv.train);
  expect_split_equal(binary.test, csv.test);
  expect_split_equal(binary.unknown, csv.unknown);
}

}  // namespace
