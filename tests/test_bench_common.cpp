// Bench harness plumbing: flag parsing (--threads, the widened --scale
// range) and cache-stem collision safety across scales.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "common/error.h"

namespace {

using namespace hmd;

bench::BenchOptions parse(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& arg : args) argv.push_back(arg.data());
  return bench::parse_bench_args(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseBenchArgs, Defaults) {
  const auto options = parse({});
  EXPECT_DOUBLE_EQ(options.scale, 1.0);
  EXPECT_EQ(options.n_members, 100);
  EXPECT_EQ(options.n_threads, 0);
  EXPECT_TRUE(options.use_cache);
}

TEST(ParseBenchArgs, ThreadsFlagReachesOptions) {
  EXPECT_EQ(parse({"--threads=4"}).n_threads, 4);
  EXPECT_EQ(parse({"--threads=0"}).n_threads, 0);
  EXPECT_THROW(parse({"--threads=-1"}), InvalidArgument);
}

TEST(ParseBenchArgs, ScaleAcceptsUpTo16) {
  EXPECT_DOUBLE_EQ(parse({"--scale=0.05"}).scale, 0.05);
  EXPECT_DOUBLE_EQ(parse({"--scale=2.5"}).scale, 2.5);
  EXPECT_DOUBLE_EQ(parse({"--scale=16"}).scale, 16.0);
  EXPECT_THROW(parse({"--scale=0"}), InvalidArgument);
  EXPECT_THROW(parse({"--scale=16.5"}), InvalidArgument);
  EXPECT_THROW(parse({"--scale=-1"}), InvalidArgument);
}

TEST(CacheStem, EncodesSeedAndScale) {
  bench::BenchOptions options;
  options.cache_dir = "cache";
  options.scale = 0.05;
  EXPECT_EQ(bench::cache_stem(options, "dvfs", 7), "cache/dvfs_s7_x50000");
}

TEST(CacheStem, DistinctScalesNeverCollide) {
  // Regression: int(scale * 1000) merged nearby scales (1.0005 vs 1.0009)
  // and would have kept doing so for stress scales above 1. The stem now
  // encodes the scale at 1e-6 resolution.
  bench::BenchOptions options;
  const std::vector<double> scales = {0.0005, 0.001, 0.05,  0.5,
                                      1.0,    1.0005, 1.0009, 2.0,
                                      2.5,    4.0,   16.0};
  std::vector<std::string> stems;
  for (const double scale : scales) {
    options.scale = scale;
    stems.push_back(bench::cache_stem(options, "hpc", 13));
  }
  for (std::size_t i = 0; i < stems.size(); ++i) {
    for (std::size_t j = i + 1; j < stems.size(); ++j) {
      EXPECT_NE(stems[i], stems[j])
          << "scales " << scales[i] << " and " << scales[j];
    }
  }
}

TEST(CacheStem, SeedsNeverCollide) {
  bench::BenchOptions options;
  EXPECT_NE(bench::cache_stem(options, "dvfs", 7),
            bench::cache_stem(options, "dvfs", 8));
  EXPECT_NE(bench::cache_stem(options, "dvfs", 7),
            bench::cache_stem(options, "hpc", 7));
}

}  // namespace
