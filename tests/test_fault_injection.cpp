// Fault injection: the artifact checksum defence, the registry's
// retry / backoff / quarantine state machine, and the failpoint seam
// itself. The structural theme: any single flipped bit in a checksummed
// artifact is rejected with LoadError{kChecksum} before any payload
// parsing, transient failures are retried and healed, persistent ones
// fail fast, and a registry under sustained failure degrades to its last
// good snapshot instead of crashing or serving wrong bytes.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/detector_registry.h"
#include "common/checksum.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "datasets/io.h"
#include "test_support.h"

namespace hmd {
namespace {

using core::ModelKind;

/// Load `path` and return the LoadError code it was rejected with;
/// fails the test if the load succeeds or throws something untyped.
LoadErrorCode rejection_code(const std::string& path) {
  try {
    core::load_model(path);
  } catch (const LoadError& error) {
    return error.code();
  } catch (const std::exception& error) {
    ADD_FAILURE() << "untyped rejection: " << error.what();
    return LoadErrorCode::kIo;
  }
  ADD_FAILURE() << "corrupt artifact loaded cleanly: " << path;
  return LoadErrorCode::kIo;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(
        "fault_tmp_" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "detector.hmdf").string();
  }
  void TearDown() override {
    fail::disarm_all();
    std::filesystem::remove_all(dir_);
  }

  core::TrustedHmd train(ModelKind kind, int members = 10) {
    core::HmdConfig config;
    config.model = kind;
    config.n_members = members;
    config.n_threads = 1;
    config.seed = 9;
    core::TrustedHmd hmd(config);
    hmd.fit(test::small_dvfs().train);
    return hmd;
  }

  void flip_bit(const std::string& path, std::uint64_t byte, int bit) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(byte));
    char value = 0;
    f.read(&value, 1);
    f.seekp(static_cast<std::streamoff>(byte));
    value = static_cast<char>(value ^ (1 << bit));
    f.write(&value, 1);
  }

  /// A fast policy for tests: millisecond backoffs, no jitter variance
  /// worth waiting on.
  static api::RetryPolicy fast_policy(int max_attempts = 3,
                                      int quarantine_after = 3,
                                      int quarantine_ms = 100) {
    api::RetryPolicy policy;
    policy.max_attempts = max_attempts;
    policy.initial_backoff_ms = 1;
    policy.backoff_multiplier = 1;
    policy.max_backoff_ms = 1;
    policy.jitter = 0.0;
    policy.quarantine_after = quarantine_after;
    policy.quarantine_ms = quarantine_ms;
    return policy;
  }

  std::filesystem::path dir_;
  std::string path_;
};

// ---------------------------------------------------------------------------
// XXH64 reference vectors: the checksum the format stakes integrity on
// must match the published algorithm, not merely be self-consistent.

TEST(Xxhash64Test, MatchesPublishedVectors) {
  EXPECT_EQ(io::xxhash64(nullptr, 0), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(io::xxhash64("abc", 3), 0x44BC2CF5AD770999ull);
  // > 32 bytes exercises the four-lane stripe loop.
  const std::string long_input =
      "xxHash is an extremely fast non-cryptographic hash algorithm";
  EXPECT_NE(io::xxhash64(long_input.data(), long_input.size()),
            io::xxhash64(long_input.data(), long_input.size() - 1));
  // Seed participates.
  EXPECT_NE(io::xxhash64("abc", 3, 1), io::xxhash64("abc", 3, 0));
}

// The streaming variant is what AlignedWriter hashes sections with as it
// writes (the in-stream checksum path); its digest must be bit-identical
// to the one-shot hash for any chunking of the same bytes, or saved
// checksums would not match what the load-time verifier computes.
TEST(Xxhash64StreamTest, AnyChunkingMatchesOneShot) {
  std::vector<unsigned char> bytes(4096 + 31);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;  // cheap deterministic fill
  for (auto& b : bytes) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    b = static_cast<unsigned char>(state >> 56);
  }
  for (const std::size_t total : {0ul, 1ul, 31ul, 32ul, 33ul, 63ul, 64ul,
                                  100ul, 1000ul, bytes.size()}) {
    const std::uint64_t expected = io::xxhash64(bytes.data(), total);
    for (const std::size_t chunk : {1ul, 3ul, 7ul, 32ul, 33ul, 64ul, 997ul}) {
      io::Xxhash64Stream stream;
      for (std::size_t at = 0; at < total; at += chunk) {
        stream.update(bytes.data() + at, std::min(chunk, total - at));
      }
      EXPECT_EQ(stream.digest(), expected)
          << "total=" << total << " chunk=" << chunk;
    }
  }
}

TEST(Xxhash64StreamTest, SeedAndResetBehaveLikeOneShot) {
  const char* text = "stream me";
  io::Xxhash64Stream seeded(42);
  seeded.update(text, 9);
  EXPECT_EQ(seeded.digest(), io::xxhash64(text, 9, 42));
  // digest() is non-destructive: more updates keep accumulating.
  seeded.update(text, 9);
  io::Xxhash64Stream twice(42);
  twice.update(text, 9);
  twice.update(text, 9);
  EXPECT_EQ(seeded.digest(), twice.digest());
  seeded.reset(42);
  EXPECT_EQ(seeded.digest(), io::xxhash64(nullptr, 0, 42));
}

// ---------------------------------------------------------------------------
// inspect_model: the section table the fuzz sweep (and hmd_faultgen)
// steers by.

TEST_F(FaultInjectionTest, InspectReportsVerifiableSectionTable) {
  core::save_model(train(ModelKind::kRandomForest), path_);
  const core::ArtifactInfo info = core::inspect_model(path_);
  EXPECT_EQ(info.version, core::kModelFormatVersion);
  EXPECT_TRUE(info.section_checksums);
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(path_));
  ASSERT_EQ(info.sections.size(), 3u);
  EXPECT_EQ(info.sections[0].name, "config");
  EXPECT_EQ(info.sections[1].name, "scaler");
  EXPECT_EQ(info.sections[2].name, "engine");

  // Every advertised checksum matches a fresh hash of the bytes it spans.
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes(info.file_bytes);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  for (const auto& section : info.sections) {
    SCOPED_TRACE(section.name);
    EXPECT_GT(section.size, 0u);
    EXPECT_LE(section.offset + section.size, info.file_bytes);
    EXPECT_EQ(io::xxhash64(bytes.data() + section.offset, section.size),
              section.checksum);
  }
}

TEST_F(FaultInjectionTest, InspectHandlesV1AndChecksumlessFiles) {
  core::save_model(train(ModelKind::kBaggedLogistic), path_,
                   core::kModelFormatV1);
  const core::ArtifactInfo v1 = core::inspect_model(path_);
  EXPECT_EQ(v1.version, core::kModelFormatV1);
  EXPECT_FALSE(v1.section_checksums);
  EXPECT_TRUE(v1.sections.empty());

  core::save_model(train(ModelKind::kBaggedLogistic), path_,
                   core::kModelFormatVersion, /*section_checksums=*/false);
  const core::ArtifactInfo legacy = core::inspect_model(path_);
  EXPECT_FALSE(legacy.section_checksums);
  ASSERT_EQ(legacy.sections.size(), 3u);
  for (const auto& section : legacy.sections) {
    EXPECT_EQ(section.checksum, 0u);
  }
}

// ---------------------------------------------------------------------------
// The tentpole guarantee: a single bit flip anywhere in any section of
// any model kind's artifact is rejected as a checksum mismatch — never
// parsed, never misread, never served.

TEST_F(FaultInjectionTest, AnySingleBitFlipInAnySectionIsRejected) {
  for (const auto kind : {ModelKind::kRandomForest, ModelKind::kBaggedLogistic,
                          ModelKind::kBaggedSvm}) {
    SCOPED_TRACE(core::model_kind_name(kind));
    core::save_model(train(kind), path_);
    const core::ArtifactInfo info = core::inspect_model(path_);
    ASSERT_TRUE(info.section_checksums);

    for (const auto& section : info.sections) {
      // First, middle, and last byte of the section; a different bit
      // index per probe so both low and high bits are covered.
      const std::uint64_t probes[3] = {0, section.size / 2, section.size - 1};
      const int bits[3] = {0, 3, 7};
      for (int i = 0; i < 3; ++i) {
        SCOPED_TRACE(section.name + " byte " + std::to_string(probes[i]) +
                     " bit " + std::to_string(bits[i]));
        flip_bit(path_, section.offset + probes[i], bits[i]);
        EXPECT_EQ(rejection_code(path_), LoadErrorCode::kChecksum);
        flip_bit(path_, section.offset + probes[i], bits[i]);  // restore
      }
    }
    // Restored bit-exact: the artifact loads again.
    EXPECT_NO_THROW(core::load_model(path_));
  }
}

TEST_F(FaultInjectionTest, HeaderAndTableBitFlipsAreRejectedTyped) {
  core::save_model(train(ModelKind::kRandomForest), path_);
  // Bytes 8..96 cover section_count, flags, the table, and the header
  // hash itself. A flip anywhere in there must surface as *some* typed
  // LoadError (usually kChecksum via the header hash; kBadStructure /
  // kBadVersion for count/flags, which are checked first) — never a
  // clean load, never an untyped crash. Magic/version flips (bytes 0..8)
  // are already pinned by ModelArtifactTest.
  for (std::uint64_t byte = 8; byte < 96; byte += 7) {
    SCOPED_TRACE("byte " + std::to_string(byte));
    flip_bit(path_, byte, 2);
    try {
      core::load_model(path_);
      ADD_FAILURE() << "header flip at byte " << byte << " loaded cleanly";
    } catch (const LoadError&) {
      // typed — good
    }
    flip_bit(path_, byte, 2);  // restore
  }
  EXPECT_NO_THROW(core::load_model(path_));
}

// The checksummed counterparts of ModelArtifactTest's structural
// rejections: the same corruptions that the legacy deep walk catches as
// kBadStructure are caught earlier — and cheaper — as kChecksum.

TEST_F(FaultInjectionTest, ChecksummedArtifactCatchesStructuralCorruption) {
  core::save_model(train(ModelKind::kRandomForest), path_);
  const core::ArtifactInfo info = core::inspect_model(path_);

  // Unknown engine tag (the u32 opening the engine section).
  flip_bit(path_, info.sections[2].offset, 6);
  EXPECT_EQ(rejection_code(path_), LoadErrorCode::kChecksum);
  flip_bit(path_, info.sections[2].offset, 6);

  // Corrupt forest feature width.
  flip_bit(path_, info.sections[2].offset + 4, 0);
  EXPECT_EQ(rejection_code(path_), LoadErrorCode::kChecksum);
  flip_bit(path_, info.sections[2].offset + 4, 0);

  // A doctored section table entry trips the header hash.
  flip_bit(path_, 16 + 2, 0);  // config offset, low bytes
  EXPECT_EQ(rejection_code(path_), LoadErrorCode::kChecksum);
}

TEST_F(FaultInjectionTest, TruncationBehindValidHeaderIsTyped) {
  core::save_model(train(ModelKind::kRandomForest), path_);
  const auto full = std::filesystem::file_size(path_);
  // Cut inside the engine section: header and table still valid, so the
  // bounds check fires first — kTruncated, the transient code a registry
  // retries (the writer may still be mid-publish).
  std::filesystem::resize_file(path_, full - 32);
  EXPECT_EQ(rejection_code(path_), LoadErrorCode::kTruncated);
  // Cut inside the checksummed header itself: kTruncated too (the header
  // cannot even be read whole).
  std::filesystem::resize_file(path_, 50);
  EXPECT_EQ(rejection_code(path_), LoadErrorCode::kTruncated);
}

// ---------------------------------------------------------------------------
// Dataset bundle caches share the taxonomy.

TEST_F(FaultInjectionTest, BundleCacheRejectionsAreTyped) {
  const std::string stem = (dir_ / "bundle").string();
  const std::string path = data::bundle_path(stem);

  const auto code_of = [&](const char* when) {
    try {
      data::load_bundle("b", stem);
      ADD_FAILURE() << "bundle loaded cleanly: " << when;
    } catch (const LoadError& error) {
      return error.code();
    }
    return LoadErrorCode::kIo;
  };

  EXPECT_EQ(code_of("missing"), LoadErrorCode::kIo);

  data::save_bundle(test::small_dvfs(), stem);
  EXPECT_NO_THROW(data::load_bundle("b", stem));

  flip_bit(path, 1, 0);  // magic
  EXPECT_EQ(code_of("bad magic"), LoadErrorCode::kBadMagic);
  flip_bit(path, 1, 0);

  flip_bit(path, 4, 5);  // version
  EXPECT_EQ(code_of("bad version"), LoadErrorCode::kBadVersion);
  flip_bit(path, 4, 5);

  flip_bit(path, 8, 4);  // split count
  EXPECT_EQ(code_of("split count"), LoadErrorCode::kBadStructure);
  flip_bit(path, 8, 4);

  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_EQ(code_of("torn"), LoadErrorCode::kTruncated);
  std::filesystem::resize_file(path, 6);
  EXPECT_EQ(code_of("header cut"), LoadErrorCode::kTruncated);
}

// ---------------------------------------------------------------------------
// The failpoint seam itself.

TEST(FailpointTest, ArmFireDisarmAndCounts) {
  fail::disarm_all();
  EXPECT_FALSE(fail::armed_any());
  EXPECT_NO_THROW(fail::detail::point("site.a", "ctx"));  // disarmed: no-op

  fail::Spec spec;
  spec.action = fail::Spec::Action::kError;
  spec.code = LoadErrorCode::kChecksum;
  spec.count = 2;
  fail::arm("site.a", spec);
  EXPECT_TRUE(fail::armed_any());

  for (int hit = 0; hit < 2; ++hit) {
    try {
      fail::detail::point("site.a", "/some/path");
      ADD_FAILURE() << "armed failpoint did not throw";
    } catch (const LoadError& error) {
      EXPECT_EQ(error.code(), LoadErrorCode::kChecksum);
      EXPECT_EQ(error.path(), "/some/path");
    }
  }
  // Count exhausted: the third hit passes through.
  EXPECT_NO_THROW(fail::detail::point("site.a", "ctx"));
  EXPECT_EQ(fail::hit_count("site.a"), 2);

  // Unarmed sites are unaffected; disarm clears the arming but keeps the
  // counter until re-armed.
  EXPECT_NO_THROW(fail::detail::point("site.b", "ctx"));
  fail::disarm("site.a");
  EXPECT_EQ(fail::hit_count("site.a"), 2);
  fail::disarm_all();
}

TEST(FailpointTest, EnvParsingArmsSitesAndSkipsMalformed) {
  fail::disarm_all();
  ::setenv("HMD_FAILPOINTS_TEST",
           "a.site=error:checksum:1;b.site=delay:1;junk;c=error:nope", 1);
  // Two well-formed entries; "junk" and the unknown code are skipped.
  EXPECT_EQ(fail::arm_from_env("HMD_FAILPOINTS_TEST"), 2u);
  EXPECT_THROW(fail::detail::point("a.site", "x"), LoadError);
  EXPECT_NO_THROW(fail::detail::point("a.site", "x"));  // count=1 spent
  EXPECT_NO_THROW(fail::detail::point("b.site", "x"));  // delay, not error
  EXPECT_EQ(fail::hit_count("b.site"), 1);
  ::unsetenv("HMD_FAILPOINTS_TEST");
  fail::disarm_all();

  EXPECT_EQ(fail::arm_from_env("HMD_FAILPOINTS_UNSET"), 0u);
  EXPECT_FALSE(fail::armed_any());
}

// ---------------------------------------------------------------------------
// Registry resilience: retry, fail-fast, quarantine, fallback.

TEST_F(FaultInjectionTest, TransientErrorsAreRetriedWithinOneGet) {
  core::save_model(train(ModelKind::kRandomForest), path_);
  api::DetectorRegistry registry(1);
  registry.add("model", path_);
  registry.set_retry_policy(fast_policy());

  // First two attempts hit a transient error; the third succeeds — all
  // inside one get().
  fail::Spec spec;
  spec.code = LoadErrorCode::kIo;
  spec.count = 2;
  fail::arm("registry.load", spec);

  const auto hmd = registry.get("model");
  ASSERT_NE(hmd, nullptr);
  EXPECT_EQ(fail::hit_count("registry.load"), 2);

  const auto health = registry.health("model");
  EXPECT_EQ(health.state, api::HealthState::kHealthy);
  EXPECT_TRUE(health.loaded);
  EXPECT_EQ(health.loads_ok, 1u);
  EXPECT_EQ(health.loads_failed, 0u);
  EXPECT_EQ(health.retries, 2u);
  EXPECT_EQ(health.consecutive_failures, 0);
}

TEST_F(FaultInjectionTest, PersistentErrorsFailFastWithoutRetry) {
  core::save_model(train(ModelKind::kRandomForest), path_);
  api::DetectorRegistry registry(1);
  registry.add("model", path_);
  registry.set_retry_policy(fast_policy());

  fail::Spec spec;
  spec.code = LoadErrorCode::kChecksum;
  spec.count = 0;  // every hit
  fail::arm("registry.load", spec);

  try {
    registry.get("model");
    FAIL() << "corrupt load did not throw";
  } catch (const LoadError& error) {
    EXPECT_EQ(error.code(), LoadErrorCode::kChecksum);
  }
  // One attempt, no retries: the bytes are wrong, re-reading cannot help.
  EXPECT_EQ(fail::hit_count("registry.load"), 1);
  const auto health = registry.health("model");
  EXPECT_EQ(health.state, api::HealthState::kDegraded);
  EXPECT_FALSE(health.loaded);
  EXPECT_EQ(health.loads_failed, 1u);
  EXPECT_EQ(health.last_error_code, LoadErrorCode::kChecksum);
  EXPECT_FALSE(health.last_error.empty());
}

TEST_F(FaultInjectionTest, MmapFailureFallsBackToStreamLoad) {
  core::save_model(train(ModelKind::kRandomForest), path_);
  api::DetectorRegistry registry(1, core::LoadMode::kMmap);
  registry.add("model", path_);

  fail::Spec spec;
  spec.code = LoadErrorCode::kMmapFailed;
  fail::arm("mmap.map", spec);

  // The mmap attempt fails; the registry demotes to a stream load rather
  // than failing the model.
  const auto hmd = registry.get("model");
  ASSERT_NE(hmd, nullptr);
  EXPECT_FALSE(hmd->engine().zero_copy());
  EXPECT_GE(fail::hit_count("mmap.map"), 1);
  EXPECT_EQ(registry.health("model").state, api::HealthState::kHealthy);

  fail::disarm_all();
  // With the fault gone, a refresh after republish maps again.
  core::save_model(train(ModelKind::kBaggedSvm, 5), path_);
  ASSERT_EQ(registry.refresh(), std::vector<std::string>{"model"});
  EXPECT_TRUE(registry.get("model")->engine().zero_copy());
}

TEST_F(FaultInjectionTest, QuarantineOpensAfterConsecutiveFailuresAndReprobes) {
  core::save_model(train(ModelKind::kRandomForest), path_);
  api::DetectorRegistry registry(1);
  registry.add("model", path_);
  registry.set_retry_policy(
      fast_policy(/*max_attempts=*/1, /*quarantine_after=*/2,
                  /*quarantine_ms=*/150));

  int loader_calls = 0;
  bool loader_fails = true;
  registry.set_loader_for_testing(
      [&](const std::string& path, int n_threads) {
        ++loader_calls;
        if (loader_fails) {
          throw LoadError(LoadErrorCode::kChecksum, path, "injected");
        }
        return std::make_shared<const core::TrustedHmd>(
            core::load_model(path, n_threads));
      });

  // Two failing operations arm the quarantine.
  EXPECT_THROW(registry.get("model"), LoadError);
  EXPECT_EQ(registry.health("model").state, api::HealthState::kDegraded);
  EXPECT_THROW(registry.get("model"), LoadError);
  EXPECT_EQ(registry.health("model").state, api::HealthState::kQuarantined);
  EXPECT_EQ(loader_calls, 2);

  // Inside the TTL: get() fails fast on the cached error — no I/O, no
  // loader call — and refresh() skips the entry.
  try {
    registry.get("model");
    FAIL() << "quarantined get did not throw";
  } catch (const LoadError& error) {
    EXPECT_EQ(error.code(), LoadErrorCode::kChecksum);
    EXPECT_NE(error.detail().find("quarantined"), std::string::npos);
  }
  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_EQ(loader_calls, 2);

  // TTL expiry: exactly one re-probe, which heals the entry.
  loader_fails = false;
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto hmd = registry.get("model");
  ASSERT_NE(hmd, nullptr);
  EXPECT_EQ(loader_calls, 3);
  const auto health = registry.health("model");
  EXPECT_EQ(health.state, api::HealthState::kHealthy);
  EXPECT_EQ(health.consecutive_failures, 0);
  EXPECT_EQ(health.loads_failed, 2u);
}

TEST_F(FaultInjectionTest, TornPublishKeepsLastGoodSnapshotServing) {
  core::save_model(train(ModelKind::kRandomForest, 5), path_);
  api::DetectorRegistry registry(1);
  registry.add("model", path_);
  registry.set_retry_policy(fast_policy(/*max_attempts=*/2));
  const auto before = registry.get("model");
  ASSERT_NE(before, nullptr);

  // A foreign writer tears the publish: the file is half-written under
  // the real name (save_model's rename never does this; a naive copy
  // does). refresh() sees a changed file, fails to load it — kTruncated,
  // retried, still torn — and keeps the old snapshot serving.
  core::save_model(train(ModelKind::kBaggedSvm, 9), path_);
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full / 2);

  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_EQ(registry.get("model").get(), before.get());
  const auto degraded = registry.health("model");
  EXPECT_EQ(degraded.state, api::HealthState::kDegraded);
  EXPECT_TRUE(degraded.loaded);  // still serving (the old snapshot)
  EXPECT_EQ(degraded.last_error_code, LoadErrorCode::kTruncated);
  EXPECT_GE(degraded.retries, 1u);  // transient: it was worth retrying

  // The writer completes (a real atomic publish this time): the next
  // refresh swaps in the new model and the entry heals.
  core::save_model(train(ModelKind::kBaggedSvm, 9), path_);
  ASSERT_EQ(registry.refresh(), std::vector<std::string>{"model"});
  const auto after = registry.get("model");
  EXPECT_EQ(after->config().model, ModelKind::kBaggedSvm);
  EXPECT_EQ(after->config().n_members, 9);
  EXPECT_EQ(registry.health("model").state, api::HealthState::kHealthy);
  // The pre-corruption snapshot is still alive and bit-stable.
  EXPECT_EQ(before->config().n_members, 5);
}

TEST_F(FaultInjectionTest, BitFlippedReplacementNeverGetsServed) {
  core::save_model(train(ModelKind::kRandomForest, 5), path_);
  api::DetectorRegistry registry(1);
  registry.add("model", path_);
  registry.set_retry_policy(fast_policy(/*max_attempts=*/1,
                                        /*quarantine_after=*/0));
  const auto before = registry.get("model");
  const auto& x = test::small_dvfs().test.X;
  const auto want = before->detect_batch(x);

  // Republish with one flipped engine bit. The checksum rejects it
  // (persistent: no retry), the old snapshot keeps serving identical
  // outputs.
  core::save_model(train(ModelKind::kBaggedSvm, 9), path_);
  const core::ArtifactInfo info = core::inspect_model(path_);
  flip_bit(path_, info.sections[2].offset + info.sections[2].size / 2, 1);

  EXPECT_TRUE(registry.refresh().empty());
  const auto still = registry.get("model");
  EXPECT_EQ(still.get(), before.get());
  const auto got = still->detect_batch(x);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < got.size(); ++r) {
    EXPECT_EQ(got[r].prediction, want[r].prediction);
    EXPECT_EQ(got[r].score, want[r].score);
  }
  EXPECT_EQ(registry.health("model").last_error_code,
            LoadErrorCode::kChecksum);

  // quarantine_after=0 disables quarantine: every refresh re-probes, so
  // a repaired publish is picked up immediately.
  core::save_model(train(ModelKind::kBaggedSvm, 9), path_);
  ASSERT_EQ(registry.refresh(), std::vector<std::string>{"model"});
  EXPECT_EQ(registry.get("model")->config().n_members, 9);
}

TEST_F(FaultInjectionTest, HealthListsEveryKeySorted) {
  core::save_model(train(ModelKind::kRandomForest, 3),
                   (dir_ / "b.hmdf").string());
  core::save_model(train(ModelKind::kBaggedLogistic, 3),
                   (dir_ / "a.hmdf").string());
  api::DetectorRegistry registry(1);
  registry.add_directory(dir_.string());

  const auto all = registry.health();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].key, "a");
  EXPECT_EQ(all[1].key, "b");
  // Never-loaded keys are healthy-but-unloaded, with zeroed counters.
  for (const auto& h : all) {
    EXPECT_EQ(h.state, api::HealthState::kHealthy);
    EXPECT_FALSE(h.loaded);
    EXPECT_EQ(h.loads_ok, 0u);
  }
  EXPECT_THROW(registry.health("absent"), IoError);
}

}  // namespace
}  // namespace hmd
