// Uncertainty scores: the O(1) vote-entropy lookup table must be a pure
// (bit-exact) replacement for the log evaluation, and the score family
// must satisfy its defining identities.

#include <gtest/gtest.h>

#include <cmath>

#include "core/flat_forest.h"
#include "core/uncertainty.h"

namespace {

using namespace hmd::core;

TEST(VoteEntropyTable, MatchesBinaryEntropyExactly) {
  for (const int m : {1, 5, 20, 100, 999}) {
    const VoteEntropyTable table(m);
    ASSERT_EQ(table.n_members(), m);
    for (int k = 0; k <= m; ++k) {
      const double direct =
          binary_entropy(static_cast<double>(k) / static_cast<double>(m));
      EXPECT_EQ(table[k], direct) << "M=" << m << " k=" << k;
    }
  }
}

TEST(VoteEntropyTable, EndpointsAreZeroAndMidpointIsLn2) {
  const VoteEntropyTable table(100);
  EXPECT_EQ(table[0], 0.0);
  EXPECT_EQ(table[100], 0.0);
  EXPECT_DOUBLE_EQ(table[50], std::log(2.0));
}

TEST(UncertaintyScore, LutAndDirectVoteEntropyAgree) {
  const int m = 100;
  const VoteEntropyTable table(m);
  for (int votes = 0; votes <= m; ++votes) {
    EnsembleStats stats;
    stats.votes1 = votes;
    EXPECT_EQ(uncertainty_score(UncertaintyMode::kVoteEntropy, stats, m,
                                &table),
              uncertainty_score(UncertaintyMode::kVoteEntropy, stats, m,
                                nullptr));
  }
}

TEST(UncertaintyScore, MutualInformationIsSoftMinusExpected) {
  EnsembleStats stats;
  stats.votes1 = 37;
  stats.sum_p1 = 41.5;
  stats.sum_entropy = 12.25;
  const int m = 100;
  const double soft =
      uncertainty_score(UncertaintyMode::kSoftEntropy, stats, m, nullptr);
  const double expected =
      uncertainty_score(UncertaintyMode::kExpectedEntropy, stats, m, nullptr);
  const double mi = uncertainty_score(UncertaintyMode::kMutualInformation,
                                      stats, m, nullptr);
  EXPECT_EQ(mi, soft - expected);
}

TEST(UncertaintyScore, VariationRatioAndMaxProbability) {
  EnsembleStats stats;
  stats.votes1 = 80;
  stats.sum_p1 = 70.0;
  const int m = 100;
  EXPECT_DOUBLE_EQ(
      uncertainty_score(UncertaintyMode::kVariationRatio, stats, m, nullptr),
      0.2);
  EXPECT_DOUBLE_EQ(
      uncertainty_score(UncertaintyMode::kMaxProbability, stats, m, nullptr),
      1.0 - 0.7);
}

TEST(BinaryEntropy, DegenerateInputsAreZero) {
  EXPECT_EQ(binary_entropy(0.0), 0.0);
  EXPECT_EQ(binary_entropy(1.0), 0.0);
  EXPECT_EQ(binary_entropy(-0.1), 0.0);
  EXPECT_EQ(binary_entropy(1.1), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), std::log(2.0));
}

}  // namespace
