// DetectorRegistry (api/detector_registry.h): lazy artifact loading,
// directory scans, snapshot semantics, and mtime/size-driven hot-swap —
// a rewritten artifact is picked up by refresh() while snapshots taken
// before the swap keep serving the old model, and a vanished artifact
// never takes a serving key down.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "api/detector_registry.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "test_support.h"

namespace hmd {
namespace {

using core::ModelKind;

class DetectorRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: the suite must survive ctest -j running sibling
    // tests in other processes of the same binary.
    dir_ = std::filesystem::path(
        "registry_tmp_" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Train a tiny detector and save it under `name` (returns the path).
  std::string save_artifact(const std::string& name, ModelKind kind,
                            int members, std::uint64_t seed = 5) {
    core::HmdConfig config;
    config.model = kind;
    config.n_members = members;
    config.n_threads = 1;
    config.seed = seed;
    core::TrustedHmd hmd(config);
    hmd.fit(test::small_dvfs().train);
    const std::string path = (dir_ / (name + ".hmdf")).string();
    core::save_model(hmd, path);
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(DetectorRegistryTest, AddDirectoryScansAndLazilyLoads) {
  save_artifact("dvfs_RF_M3", ModelKind::kRandomForest, 3);
  save_artifact("dvfs_LR_M5", ModelKind::kBaggedLogistic, 5);

  api::DetectorRegistry registry(1);
  EXPECT_EQ(registry.add_directory(dir_.string()), 2u);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.keys(),
            (std::vector<std::string>{"dvfs_LR_M5", "dvfs_RF_M3"}));
  EXPECT_TRUE(registry.contains("dvfs_RF_M3"));

  const auto rf = registry.get("dvfs_RF_M3");
  const auto lr = registry.get("dvfs_LR_M5");
  EXPECT_EQ(rf->config().model, ModelKind::kRandomForest);
  EXPECT_EQ(rf->config().n_members, 3);
  EXPECT_EQ(lr->config().model, ModelKind::kBaggedLogistic);
  EXPECT_EQ(lr->config().n_members, 5);

  // get() is a snapshot: the same loaded detector until something swaps.
  EXPECT_EQ(registry.get("dvfs_RF_M3").get(), rf.get());

  // Both serve real traffic from one registry — two model families, one
  // process.
  const auto& x = test::small_dvfs().test.X;
  EXPECT_EQ(rf->detect_batch(x).size(), x.rows());
  EXPECT_EQ(lr->detect_batch(x).size(), x.rows());
}

TEST_F(DetectorRegistryTest, UnknownKeyThrowsAndTryGetReturnsNull) {
  api::DetectorRegistry registry(1);
  EXPECT_THROW(registry.get("absent"), IoError);
  EXPECT_EQ(registry.try_get("absent"), nullptr);
  EXPECT_FALSE(registry.contains("absent"));
}

TEST_F(DetectorRegistryTest, RefreshHotSwapsRewrittenArtifact) {
  const std::string path = save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", path);

  const auto before = registry.get("model");
  EXPECT_EQ(before->config().n_members, 3);
  EXPECT_TRUE(registry.refresh().empty());  // nothing changed yet

  // Retrain and drop the new artifact over the old file (different size,
  // so the swap is detected even on filesystems with coarse mtimes).
  save_artifact("model", ModelKind::kBaggedSvm, 5, /*seed=*/6);
  const auto reloaded = registry.refresh();
  ASSERT_EQ(reloaded, std::vector<std::string>{"model"});

  const auto after = registry.get("model");
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(after->config().model, ModelKind::kBaggedSvm);
  EXPECT_EQ(after->config().n_members, 5);

  // The pre-swap snapshot is pinned: still the old model, still serving.
  EXPECT_EQ(before->config().n_members, 3);
  const auto& x = test::small_dvfs().test.X;
  EXPECT_EQ(before->detect_batch(x).size(), x.rows());
  EXPECT_EQ(after->detect_batch(x).size(), x.rows());

  // A second refresh with no further writes is a no-op.
  EXPECT_TRUE(registry.refresh().empty());
}

TEST_F(DetectorRegistryTest, NeverLoadedKeysStayLazyThroughRefresh) {
  save_artifact("cold", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add_directory(dir_.string());
  // refresh() must not force-load a key nobody asked for.
  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_EQ(registry.get("cold")->config().n_members, 3);
}

TEST_F(DetectorRegistryTest, VanishedArtifactKeepsServingLastSnapshot) {
  const std::string path = save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", path);
  const auto before = registry.get("model");

  std::filesystem::remove(path);
  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_EQ(registry.get("model").get(), before.get());
}

TEST_F(DetectorRegistryTest, PathReturnsRegisteredArtifactPath) {
  const std::string path = save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", path);
  EXPECT_EQ(registry.path("model"), path);
  EXPECT_THROW(registry.path("absent"), IoError);
}

TEST_F(DetectorRegistryTest, InvalidReplacementKeepsServingLastSnapshot) {
  const std::string path = save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", path);
  const auto before = registry.get("model");

  // Corrupt the config *payload* while keeping the header valid: the
  // entropy_threshold double sits 12 bytes into the config section
  // (after the kind|members|mode u32s; the section's offset comes from
  // the v2 table at byte 16), and a negative value passes every IoError
  // check in load_model but is rejected by the detector's config
  // validation (InvalidArgument). refresh() must survive it and keep
  // the snapshot.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    std::uint64_t config_offset = 0;
    f.seekg(16);
    f.read(reinterpret_cast<char*>(&config_offset), sizeof(config_offset));
    f.seekp(static_cast<std::streamoff>(config_offset + 4 + 4 + 4));
    const double bad_threshold = -1.0;
    f.write(reinterpret_cast<const char*>(&bad_threshold),
            sizeof(bad_threshold));
  }
  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_EQ(registry.get("model").get(), before.get());
}

TEST_F(DetectorRegistryTest, RepointedKeyReloadsFromNewPath) {
  const std::string rf = save_artifact("a", ModelKind::kRandomForest, 3);
  const std::string lr = save_artifact("b", ModelKind::kBaggedLogistic, 5);
  api::DetectorRegistry registry(1);
  registry.add("model", rf);
  EXPECT_EQ(registry.get("model")->config().model, ModelKind::kRandomForest);
  registry.add("model", lr);  // re-point
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.get("model")->config().model, ModelKind::kBaggedLogistic);
}

TEST_F(DetectorRegistryTest, AddDirectoryRejectsNonDirectories) {
  api::DetectorRegistry registry(1);
  EXPECT_THROW(registry.add_directory((dir_ / "nope").string()), IoError);
}

TEST_F(DetectorRegistryTest, SlowLoadOfOneKeyDoesNotBlockOthers) {
  // The load-outside-lock contract: while key A's first load is stuck in
  // artifact I/O, get("B") must complete. The loader seam parks A's load
  // on a semaphore; under the old load-under-registry-mutex design this
  // test deadlocks (ctest's timeout turns that into a failure).
  const std::string slow_path =
      save_artifact("slow", ModelKind::kRandomForest, 3);
  save_artifact("fast", ModelKind::kBaggedLogistic, 3);

  api::DetectorRegistry registry(1);
  registry.add_directory(dir_.string());

  std::atomic<bool> slow_entered{false};
  std::atomic<bool> slow_finished{false};
  std::binary_semaphore release_slow{0};
  registry.set_loader_for_testing(
      [&](const std::string& path, int n_threads) {
        if (path == slow_path) {
          slow_entered.store(true);
          release_slow.acquire();  // park inside the "I/O"
        }
        return std::make_shared<const core::TrustedHmd>(
            core::load_model(path, n_threads));
      });

  std::thread slow_caller([&] {
    const auto hmd = registry.get("slow");
    EXPECT_EQ(hmd->config().n_members, 3);
    slow_finished.store(true);
  });
  while (!slow_entered.load()) std::this_thread::yield();

  // A's load is parked. B must load and return on this thread now.
  const auto fast = registry.get("fast");
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(fast->config().model, ModelKind::kBaggedLogistic);
  // And the hot-swap sweep must skip the parked lazy entry instead of
  // queueing behind its load mutex — a refresh() completes right now.
  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_FALSE(slow_finished.load());  // A really was still in-flight

  release_slow.release();
  slow_caller.join();
  EXPECT_EQ(registry.get("slow")->config().model, ModelKind::kRandomForest);
}

TEST_F(DetectorRegistryTest, ConcurrentFirstGetLoadsAtMostOnce) {
  save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add_directory(dir_.string());

  std::atomic<int> loads{0};
  registry.set_loader_for_testing(
      [&](const std::string& path, int n_threads) {
        loads.fetch_add(1);
        return std::make_shared<const core::TrustedHmd>(
            core::load_model(path, n_threads));
      });

  constexpr int kCallers = 8;
  std::vector<std::thread> callers;
  std::vector<std::shared_ptr<const core::TrustedHmd>> seen(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&, i] { seen[i] = registry.get("model"); });
  }
  for (auto& thread : callers) thread.join();

  // One load for the whole wave, and every caller got the same snapshot.
  EXPECT_EQ(loads.load(), 1);
  for (int i = 1; i < kCallers; ++i) EXPECT_EQ(seen[i].get(), seen[0].get());
}

TEST_F(DetectorRegistryTest, ConcurrentGetAndRefreshStress) {
  // Hammer get() on several keys from reader threads while one thread
  // refresh()es and the main thread keeps rename-publishing a retrained
  // artifact over one key — the traffic pattern of a serving process
  // taking field updates. Every snapshot must be usable, and the final
  // state must reflect the last publish. (This is the test the TSan CI
  // job exists for.)
  const std::vector<std::string> keys = {"hot", "cold_a", "cold_b"};
  save_artifact("hot", ModelKind::kRandomForest, 3);
  save_artifact("cold_a", ModelKind::kBaggedLogistic, 3);
  save_artifact("cold_b", ModelKind::kRandomForest, 5);

  api::DetectorRegistry registry(1);
  registry.add_directory(dir_.string());

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      const auto& x = test::small_dvfs().test.X;
      while (!stop.load()) {
        const auto hmd = registry.get(keys[static_cast<std::size_t>(i)]);
        ASSERT_NE(hmd, nullptr);
        // Serve a real (tiny) batch so a torn swap would be observable.
        ASSERT_EQ(hmd->detect_batch(x).size(), x.rows());
      }
    });
  }
  workers.emplace_back([&] {
    while (!stop.load()) {
      registry.refresh();
      std::this_thread::yield();
    }
  });

  // Field updates: grow the hot key's ensemble a few times mid-traffic.
  for (const int members : {5, 7, 9}) {
    save_artifact("hot", ModelKind::kRandomForest, members, /*seed=*/11);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& worker : workers) worker.join();

  registry.refresh();  // deterministic final sync
  EXPECT_EQ(registry.get("hot")->config().n_members, 9);
  EXPECT_EQ(registry.get("cold_a")->config().n_members, 3);
}

}  // namespace
}  // namespace hmd
