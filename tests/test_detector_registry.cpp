// DetectorRegistry (api/detector_registry.h): lazy artifact loading,
// directory scans, snapshot semantics, and mtime/size-driven hot-swap —
// a rewritten artifact is picked up by refresh() while snapshots taken
// before the swap keep serving the old model, and a vanished artifact
// never takes a serving key down.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "api/detector_registry.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "test_support.h"

namespace hmd {
namespace {

using core::ModelKind;

class DetectorRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: the suite must survive ctest -j running sibling
    // tests in other processes of the same binary.
    dir_ = std::filesystem::path(
        "registry_tmp_" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Train a tiny detector and save it under `name` (returns the path).
  std::string save_artifact(const std::string& name, ModelKind kind,
                            int members, std::uint64_t seed = 5) {
    core::HmdConfig config;
    config.model = kind;
    config.n_members = members;
    config.n_threads = 1;
    config.seed = seed;
    core::TrustedHmd hmd(config);
    hmd.fit(test::small_dvfs().train);
    const std::string path = (dir_ / (name + ".hmdf")).string();
    core::save_model(hmd, path);
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(DetectorRegistryTest, AddDirectoryScansAndLazilyLoads) {
  save_artifact("dvfs_RF_M3", ModelKind::kRandomForest, 3);
  save_artifact("dvfs_LR_M5", ModelKind::kBaggedLogistic, 5);

  api::DetectorRegistry registry(1);
  EXPECT_EQ(registry.add_directory(dir_.string()), 2u);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.keys(),
            (std::vector<std::string>{"dvfs_LR_M5", "dvfs_RF_M3"}));
  EXPECT_TRUE(registry.contains("dvfs_RF_M3"));

  const auto rf = registry.get("dvfs_RF_M3");
  const auto lr = registry.get("dvfs_LR_M5");
  EXPECT_EQ(rf->config().model, ModelKind::kRandomForest);
  EXPECT_EQ(rf->config().n_members, 3);
  EXPECT_EQ(lr->config().model, ModelKind::kBaggedLogistic);
  EXPECT_EQ(lr->config().n_members, 5);

  // get() is a snapshot: the same loaded detector until something swaps.
  EXPECT_EQ(registry.get("dvfs_RF_M3").get(), rf.get());

  // Both serve real traffic from one registry — two model families, one
  // process.
  const auto& x = test::small_dvfs().test.X;
  EXPECT_EQ(rf->detect_batch(x).size(), x.rows());
  EXPECT_EQ(lr->detect_batch(x).size(), x.rows());
}

TEST_F(DetectorRegistryTest, UnknownKeyThrowsAndTryGetReturnsNull) {
  api::DetectorRegistry registry(1);
  EXPECT_THROW(registry.get("absent"), IoError);
  EXPECT_EQ(registry.try_get("absent"), nullptr);
  EXPECT_FALSE(registry.contains("absent"));
}

TEST_F(DetectorRegistryTest, RefreshHotSwapsRewrittenArtifact) {
  const std::string path = save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", path);

  const auto before = registry.get("model");
  EXPECT_EQ(before->config().n_members, 3);
  EXPECT_TRUE(registry.refresh().empty());  // nothing changed yet

  // Retrain and drop the new artifact over the old file (different size,
  // so the swap is detected even on filesystems with coarse mtimes).
  save_artifact("model", ModelKind::kBaggedSvm, 5, /*seed=*/6);
  const auto reloaded = registry.refresh();
  ASSERT_EQ(reloaded, std::vector<std::string>{"model"});

  const auto after = registry.get("model");
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(after->config().model, ModelKind::kBaggedSvm);
  EXPECT_EQ(after->config().n_members, 5);

  // The pre-swap snapshot is pinned: still the old model, still serving.
  EXPECT_EQ(before->config().n_members, 3);
  const auto& x = test::small_dvfs().test.X;
  EXPECT_EQ(before->detect_batch(x).size(), x.rows());
  EXPECT_EQ(after->detect_batch(x).size(), x.rows());

  // A second refresh with no further writes is a no-op.
  EXPECT_TRUE(registry.refresh().empty());
}

TEST_F(DetectorRegistryTest, NeverLoadedKeysStayLazyThroughRefresh) {
  save_artifact("cold", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add_directory(dir_.string());
  // refresh() must not force-load a key nobody asked for.
  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_EQ(registry.get("cold")->config().n_members, 3);
}

TEST_F(DetectorRegistryTest, VanishedArtifactKeepsServingLastSnapshot) {
  const std::string path = save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", path);
  const auto before = registry.get("model");

  std::filesystem::remove(path);
  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_EQ(registry.get("model").get(), before.get());
}

TEST_F(DetectorRegistryTest, PathReturnsRegisteredArtifactPath) {
  const std::string path = save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", path);
  EXPECT_EQ(registry.path("model"), path);
  EXPECT_THROW(registry.path("absent"), IoError);
}

TEST_F(DetectorRegistryTest, InvalidReplacementKeepsServingLastSnapshot) {
  const std::string path = save_artifact("model", ModelKind::kRandomForest, 3);
  api::DetectorRegistry registry(1);
  registry.add("model", path);
  const auto before = registry.get("model");

  // Corrupt the config *payload* while keeping the header valid: the
  // entropy_threshold double sits right after magic|version|kind|members|
  // mode, and a negative value passes every IoError check in load_model
  // but is rejected by the detector's config validation
  // (InvalidArgument). refresh() must survive it and keep the snapshot.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(4 + 4 + 4 + 4 + 4);
    const double bad_threshold = -1.0;
    f.write(reinterpret_cast<const char*>(&bad_threshold),
            sizeof(bad_threshold));
  }
  EXPECT_TRUE(registry.refresh().empty());
  EXPECT_EQ(registry.get("model").get(), before.get());
}

TEST_F(DetectorRegistryTest, RepointedKeyReloadsFromNewPath) {
  const std::string rf = save_artifact("a", ModelKind::kRandomForest, 3);
  const std::string lr = save_artifact("b", ModelKind::kBaggedLogistic, 5);
  api::DetectorRegistry registry(1);
  registry.add("model", rf);
  EXPECT_EQ(registry.get("model")->config().model, ModelKind::kRandomForest);
  registry.add("model", lr);  // re-point
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.get("model")->config().model, ModelKind::kBaggedLogistic);
}

TEST_F(DetectorRegistryTest, AddDirectoryRejectsNonDirectories) {
  api::DetectorRegistry registry(1);
  EXPECT_THROW(registry.add_directory((dir_ / "nope").string()), IoError);
}

}  // namespace
}  // namespace hmd
