// The epoll reactor (serve/event_loop.h): dispatch, mask modification,
// removal safety mid-wave (a dead watch's pending events must be
// dropped, not dispatched), and timerfd periodic callbacks.

#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <chrono>

#include "serve/event_loop.h"

namespace hmd {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int read_end() const { return fds[0]; }
  int write_end() const { return fds[1]; }
  void poke() const { EXPECT_EQ(::write(fds[1], "x", 1), 1); }
};

TEST(EventLoopTest, DispatchesReadableFdWithItsEvents) {
  serve::EventLoop loop;
  Pipe pipe;
  std::uint32_t seen = 0;
  int calls = 0;
  loop.add(pipe.read_end(), EPOLLIN, [&](std::uint32_t events) {
    seen = events;
    ++calls;
  });
  EXPECT_TRUE(loop.watched(pipe.read_end()));
  EXPECT_EQ(loop.size(), 1u);

  EXPECT_EQ(loop.poll_once(0), 0);  // nothing readable yet
  pipe.poke();
  EXPECT_EQ(loop.poll_once(0), 1);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(seen & EPOLLIN);

  loop.remove(pipe.read_end());
  EXPECT_FALSE(loop.watched(pipe.read_end()));
  EXPECT_EQ(loop.size(), 0u);
}

TEST(EventLoopTest, ModifySwitchesTheEventMask) {
  serve::EventLoop loop;
  Pipe pipe;
  int write_ready = 0;
  // An empty pipe's write end is immediately writable.
  loop.add(pipe.write_end(), EPOLLOUT, [&](std::uint32_t) { ++write_ready; });
  EXPECT_EQ(loop.poll_once(0), 1);
  EXPECT_EQ(write_ready, 1);
  // Stop caring about writability: no more dispatches.
  loop.modify(pipe.write_end(), EPOLLIN);
  EXPECT_EQ(loop.poll_once(0), 0);
  EXPECT_EQ(write_ready, 1);
  loop.remove(pipe.write_end());
}

TEST(EventLoopTest, RemovalDuringDispatchDropsPendingEvents) {
  serve::EventLoop loop;
  Pipe a;
  Pipe b;
  int a_calls = 0;
  int b_calls = 0;
  // Both fds readable in the same epoll wave; whichever callback runs
  // first removes the other watch — the removed watch's already-reported
  // event must be dropped, not dispatched into a dangling callback.
  loop.add(a.read_end(), EPOLLIN, [&](std::uint32_t) {
    ++a_calls;
    loop.remove(b.read_end());
  });
  loop.add(b.read_end(), EPOLLIN, [&](std::uint32_t) {
    ++b_calls;
    loop.remove(a.read_end());
  });
  a.poke();
  b.poke();
  loop.poll_once(0);
  EXPECT_EQ(a_calls + b_calls, 1);  // exactly one ran; the other was dead
  EXPECT_EQ(loop.size(), 1u);
}

TEST(EventLoopTest, CallbackMayAddNewWatches) {
  serve::EventLoop loop;
  Pipe first;
  Pipe second;
  int second_calls = 0;
  loop.add(first.read_end(), EPOLLIN, [&](std::uint32_t) {
    char c;
    EXPECT_EQ(::read(first.read_end(), &c, 1), 1);  // drain (level-triggered)
    loop.add(second.read_end(), EPOLLIN,
             [&](std::uint32_t) { ++second_calls; });
  });
  first.poke();
  second.poke();
  EXPECT_GE(loop.poll_once(0), 1);  // first fires, registers second
  EXPECT_TRUE(loop.watched(second.read_end()));
  loop.poll_once(0);  // second's readability surfaces now
  EXPECT_EQ(second_calls, 1);
  loop.remove(first.read_end());
  loop.remove(second.read_end());
}

TEST(EventLoopTest, TimerFiresRepeatedlyUntilRemoved) {
  serve::EventLoop loop;
  int ticks = 0;
  const int timer_fd = loop.add_timer_ms(5, [&] { ++ticks; });
  EXPECT_TRUE(loop.watched(timer_fd));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ticks < 3 && std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(50);
  }
  EXPECT_GE(ticks, 3);  // periodic, not one-shot

  loop.remove(timer_fd);  // also closes the loop-owned timer fd
  EXPECT_FALSE(loop.watched(timer_fd));
  const int before = ticks;
  loop.poll_once(20);
  EXPECT_EQ(ticks, before);
}

}  // namespace
}  // namespace hmd
