// Golden parity suite: the flat struct-of-arrays engine (per-sample and
// batched, stump-specialised and general trees alike) must be bit-identical
// to the reference pointer-tree path — predictions, vote counts, summed
// probabilities, and every entropy — across both dataset bundles and
// ensemble sizes M in {1, 5, 100}.

#include <gtest/gtest.h>

#include "core/flat_forest.h"
#include "core/hmd.h"
#include "core/uncertainty.h"
#include "test_support.h"

namespace {

using namespace hmd;

core::HmdConfig config_for(int members, int threads = 0) {
  core::HmdConfig config;
  config.model = core::ModelKind::kRandomForest;
  config.n_members = members;
  config.n_threads = threads;
  config.seed = 42;
  return config;
}

void expect_parity(const data::DatasetBundle& bundle, int members) {
  SCOPED_TRACE(bundle.name + " M=" + std::to_string(members));
  core::TrustedHmd hmd(config_for(members));
  hmd.fit(bundle.train);
  ASSERT_TRUE(hmd.uses_flat_engine());

  const core::UncertaintyEstimator reference(
      core::EnsembleView::of(hmd.ensemble()));

  const Matrix& x = bundle.test.X;
  const auto detections = hmd.detect_batch(x);
  const auto estimates = hmd.estimate_batch(x);
  ASSERT_EQ(detections.size(), x.rows());
  ASSERT_EQ(estimates.size(), x.rows());

  for (std::size_t r = 0; r < x.rows(); ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    const core::EnsembleStats ref = reference.reference_stats(x.row(r));
    const core::EnsembleStats flat = hmd.flat_forest().stats_one(x.row(r));

    // Per-sample flat engine vs member-by-member reference: bit-identical.
    EXPECT_EQ(flat.votes1, ref.votes1);
    EXPECT_EQ(flat.sum_p1, ref.sum_p1);
    EXPECT_EQ(flat.sum_entropy, ref.sum_entropy);

    // Batched vs per-sample: identical detections...
    const core::Detection one = hmd.detect(x.row(r));
    EXPECT_EQ(detections[r].prediction, one.prediction);
    EXPECT_EQ(detections[r].confidence, one.confidence);
    EXPECT_EQ(detections[r].score, one.score);
    EXPECT_EQ(detections[r].trusted, one.trusted);

    // ...and identical full estimates, entropy by entropy.
    const core::Estimate estimate = hmd.estimate(x.row(r));
    EXPECT_EQ(estimates[r].prediction, estimate.prediction);
    EXPECT_EQ(estimates[r].votes_malware, estimate.votes_malware);
    EXPECT_EQ(estimates[r].vote_entropy, estimate.vote_entropy);
    EXPECT_EQ(estimates[r].soft_entropy, estimate.soft_entropy);
    EXPECT_EQ(estimates[r].expected_entropy, estimate.expected_entropy);
    EXPECT_EQ(estimates[r].mutual_information, estimate.mutual_information);
    EXPECT_EQ(estimates[r].variation_ratio, estimate.variation_ratio);
    EXPECT_EQ(estimates[r].max_probability, estimate.max_probability);
    EXPECT_EQ(estimates[r].score, estimate.score);
    EXPECT_EQ(estimates[r].trusted, estimate.trusted);

    // Prediction / vote parity against the raw reference ensemble.
    EXPECT_EQ(estimates[r].votes_malware, ref.votes1);
    EXPECT_EQ(detections[r].prediction, 2 * ref.votes1 > members ? 1 : 0);
  }

  // Score sweep over every mode, flat batched vs reference per-sample.
  for (const auto mode :
       {core::UncertaintyMode::kVoteEntropy, core::UncertaintyMode::kSoftEntropy,
        core::UncertaintyMode::kExpectedEntropy,
        core::UncertaintyMode::kMutualInformation,
        core::UncertaintyMode::kVariationRatio,
        core::UncertaintyMode::kMaxProbability}) {
    const auto flat_scores = hmd.scores(x, mode);
    const auto ref_scores = reference.scores(x, mode);
    ASSERT_EQ(flat_scores.size(), ref_scores.size());
    for (std::size_t r = 0; r < flat_scores.size(); ++r) {
      EXPECT_EQ(flat_scores[r], ref_scores[r])
          << core::uncertainty_mode_name(mode) << " row " << r;
    }
  }
}

TEST(FlatForestParity, DvfsAllEnsembleSizes) {
  for (const int members : {1, 5, 100}) {
    expect_parity(test::small_dvfs(), members);
  }
}

TEST(FlatForestParity, HpcAllEnsembleSizes) {
  for (const int members : {1, 5, 100}) {
    expect_parity(test::small_hpc(), members);
  }
}

TEST(FlatForestParity, StumpSpecialisationCoversSeparableData) {
  // The DVFS classes are well separated, so most members compile to the
  // specialised stump path — the parity above must therefore have
  // exercised it. Guard against the specialisation silently disappearing.
  core::TrustedHmd hmd(config_for(100));
  hmd.fit(test::small_dvfs().train);
  EXPECT_GT(hmd.flat_forest().n_stumps(), 50u);
  EXPECT_EQ(hmd.flat_forest().n_trees(), 100u);
}

TEST(FlatForestParity, HpcGrowsGeneralTrees) {
  // Overlapping HPC classes must force at least some non-stump members,
  // so the general walk path is exercised by the HPC parity case.
  core::TrustedHmd hmd(config_for(100));
  hmd.fit(test::small_hpc().train);
  EXPECT_LT(hmd.flat_forest().n_stumps(), hmd.flat_forest().n_trees());
}

TEST(FlatForestParity, BatchIsDeterministicAcrossThreadCounts) {
  const auto& bundle = test::small_dvfs();
  core::TrustedHmd serial(config_for(40, 1));
  core::TrustedHmd threaded(config_for(40, 3));
  serial.fit(bundle.train);
  threaded.fit(bundle.train);
  const auto a = serial.estimate_batch(bundle.test.X);
  const auto b = threaded.estimate_batch(bundle.test.X);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].votes_malware, b[r].votes_malware);
    EXPECT_EQ(a[r].vote_entropy, b[r].vote_entropy);
    EXPECT_EQ(a[r].soft_entropy, b[r].soft_entropy);
  }
}

TEST(FlatForestParity, EveryModelKindReportsAFlatEngineTruthfully) {
  // Since the pluggable-engine refactor no ModelKind falls back to the
  // per-member pointer path: trees compile to FlatForestEngine, linear
  // ensembles to FlatLinearEngine, and uses_flat_engine() must say so.
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic,
        core::ModelKind::kBaggedSvm}) {
    SCOPED_TRACE(core::model_kind_name(kind));
    core::HmdConfig config = config_for(10);
    config.model = kind;
    core::TrustedHmd hmd(config);
    hmd.fit(test::small_dvfs().train);
    EXPECT_TRUE(hmd.uses_flat_engine());
    EXPECT_EQ(hmd.engine().n_members(), 10u);
    const bool is_tree = kind == core::ModelKind::kRandomForest;
    EXPECT_EQ(hmd.engine().engine_id() == core::EngineId::kFlatForest,
              is_tree);
  }
}

}  // namespace
