// Golden parity suite: the flat struct-of-arrays engine (per-sample and
// batched, stump-specialised and general trees alike) must be bit-identical
// to the reference pointer-tree path — predictions, vote counts, summed
// probabilities, and every entropy — across both dataset bundles and
// ensemble sizes M in {1, 5, 100}.
//
// The JitParity suite extends the contract one layer down: the same
// artifact loaded with the tree-to-native JIT forced on and forced off
// must produce bit-identical ScoreResults for every wrapper-suite
// OutputMask, every uncertainty mode, both bundles, M in {1, 5, 100}, a
// randomised deep-tree artifact, and NaN-bearing inputs (the JIT's
// compare encodings must descend right on NaN exactly like the
// interpreter). On targets without the JIT both loads fall back to the
// interpreted arena and the comparison is trivially green — the suite
// asserts behaviour, not that native code exists.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "api/score.h"
#include "core/flat_forest.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "core/uncertainty.h"
#include "jit/jit.h"
#include "test_support.h"

namespace {

using namespace hmd;

core::HmdConfig config_for(int members, int threads = 0) {
  core::HmdConfig config;
  config.model = core::ModelKind::kRandomForest;
  config.n_members = members;
  config.n_threads = threads;
  config.seed = 42;
  return config;
}

void expect_parity(const data::DatasetBundle& bundle, int members) {
  SCOPED_TRACE(bundle.name + " M=" + std::to_string(members));
  core::TrustedHmd hmd(config_for(members));
  hmd.fit(bundle.train);
  ASSERT_TRUE(hmd.uses_flat_engine());

  const core::UncertaintyEstimator reference(
      core::EnsembleView::of(hmd.ensemble()));

  const Matrix& x = bundle.test.X;
  const auto detections = hmd.detect_batch(x);
  const auto estimates = hmd.estimate_batch(x);
  ASSERT_EQ(detections.size(), x.rows());
  ASSERT_EQ(estimates.size(), x.rows());

  for (std::size_t r = 0; r < x.rows(); ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    const core::EnsembleStats ref = reference.reference_stats(x.row(r));
    const core::EnsembleStats flat = hmd.flat_forest().stats_one(x.row(r));

    // Per-sample flat engine vs member-by-member reference: bit-identical.
    EXPECT_EQ(flat.votes1, ref.votes1);
    EXPECT_EQ(flat.sum_p1, ref.sum_p1);
    EXPECT_EQ(flat.sum_entropy, ref.sum_entropy);

    // Batched vs per-sample: identical detections...
    const core::Detection one = hmd.detect(x.row(r));
    EXPECT_EQ(detections[r].prediction, one.prediction);
    EXPECT_EQ(detections[r].confidence, one.confidence);
    EXPECT_EQ(detections[r].score, one.score);
    EXPECT_EQ(detections[r].trusted, one.trusted);

    // ...and identical full estimates, entropy by entropy.
    const core::Estimate estimate = hmd.estimate(x.row(r));
    EXPECT_EQ(estimates[r].prediction, estimate.prediction);
    EXPECT_EQ(estimates[r].votes_malware, estimate.votes_malware);
    EXPECT_EQ(estimates[r].vote_entropy, estimate.vote_entropy);
    EXPECT_EQ(estimates[r].soft_entropy, estimate.soft_entropy);
    EXPECT_EQ(estimates[r].expected_entropy, estimate.expected_entropy);
    EXPECT_EQ(estimates[r].mutual_information, estimate.mutual_information);
    EXPECT_EQ(estimates[r].variation_ratio, estimate.variation_ratio);
    EXPECT_EQ(estimates[r].max_probability, estimate.max_probability);
    EXPECT_EQ(estimates[r].score, estimate.score);
    EXPECT_EQ(estimates[r].trusted, estimate.trusted);

    // Prediction / vote parity against the raw reference ensemble.
    EXPECT_EQ(estimates[r].votes_malware, ref.votes1);
    EXPECT_EQ(detections[r].prediction, 2 * ref.votes1 > members ? 1 : 0);
  }

  // Score sweep over every mode, flat batched vs reference per-sample.
  for (const auto mode :
       {core::UncertaintyMode::kVoteEntropy, core::UncertaintyMode::kSoftEntropy,
        core::UncertaintyMode::kExpectedEntropy,
        core::UncertaintyMode::kMutualInformation,
        core::UncertaintyMode::kVariationRatio,
        core::UncertaintyMode::kMaxProbability}) {
    const auto flat_scores = hmd.scores(x, mode);
    const auto ref_scores = reference.scores(x, mode);
    ASSERT_EQ(flat_scores.size(), ref_scores.size());
    for (std::size_t r = 0; r < flat_scores.size(); ++r) {
      EXPECT_EQ(flat_scores[r], ref_scores[r])
          << core::uncertainty_mode_name(mode) << " row " << r;
    }
  }
}

TEST(FlatForestParity, DvfsAllEnsembleSizes) {
  for (const int members : {1, 5, 100}) {
    expect_parity(test::small_dvfs(), members);
  }
}

TEST(FlatForestParity, HpcAllEnsembleSizes) {
  for (const int members : {1, 5, 100}) {
    expect_parity(test::small_hpc(), members);
  }
}

TEST(FlatForestParity, StumpSpecialisationCoversSeparableData) {
  // The DVFS classes are well separated, so most members compile to the
  // specialised stump path — the parity above must therefore have
  // exercised it. Guard against the specialisation silently disappearing.
  core::TrustedHmd hmd(config_for(100));
  hmd.fit(test::small_dvfs().train);
  EXPECT_GT(hmd.flat_forest().n_stumps(), 50u);
  EXPECT_EQ(hmd.flat_forest().n_trees(), 100u);
}

TEST(FlatForestParity, HpcGrowsGeneralTrees) {
  // Overlapping HPC classes must force at least some non-stump members,
  // so the general walk path is exercised by the HPC parity case.
  core::TrustedHmd hmd(config_for(100));
  hmd.fit(test::small_hpc().train);
  EXPECT_LT(hmd.flat_forest().n_stumps(), hmd.flat_forest().n_trees());
}

TEST(FlatForestParity, BatchIsDeterministicAcrossThreadCounts) {
  const auto& bundle = test::small_dvfs();
  core::TrustedHmd serial(config_for(40, 1));
  core::TrustedHmd threaded(config_for(40, 3));
  serial.fit(bundle.train);
  threaded.fit(bundle.train);
  const auto a = serial.estimate_batch(bundle.test.X);
  const auto b = threaded.estimate_batch(bundle.test.X);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].votes_malware, b[r].votes_malware);
    EXPECT_EQ(a[r].vote_entropy, b[r].vote_entropy);
    EXPECT_EQ(a[r].soft_entropy, b[r].soft_entropy);
  }
}

/// Restores the process-wide JIT policy on scope exit, so a failing test
/// cannot leak a forced policy into later suites.
struct PolicyGuard {
  jit::Policy saved = jit::policy();
  ~PolicyGuard() { jit::set_policy(saved); }
};

core::TrustedHmd load_with_policy(const std::string& path, jit::Policy p) {
  const PolicyGuard guard;
  jit::set_policy(p);
  return core::load_model(path, /*n_threads=*/1);
}

/// Every OutputMask the wrapper suite exercises: the three presets plus
/// each column bit on its own (a single-column request drives the
/// narrowest StatsMask through the kernel table).
const std::vector<api::OutputMask>& wrapper_masks() {
  static const std::vector<api::OutputMask> masks = [] {
    std::vector<api::OutputMask> out = {
        api::kPredictionOnly, api::kPredictionOnly | api::kOutTrusted,
        api::kDetectionOutputs, api::kEstimateOutputs};
    for (std::uint32_t bit = 0; bit < 11; ++bit) out.push_back(1u << bit);
    return out;
  }();
  return masks;
}

void expect_identical_results(const api::ScoreResult& jit,
                              const api::ScoreResult& arena) {
  ASSERT_EQ(jit.rows, arena.rows);
  EXPECT_EQ(jit.prediction, arena.prediction);
  EXPECT_EQ(jit.confidence, arena.confidence);
  EXPECT_EQ(jit.votes, arena.votes);
  EXPECT_EQ(jit.vote_entropy, arena.vote_entropy);
  EXPECT_EQ(jit.soft_entropy, arena.soft_entropy);
  EXPECT_EQ(jit.expected_entropy, arena.expected_entropy);
  EXPECT_EQ(jit.mutual_information, arena.mutual_information);
  EXPECT_EQ(jit.variation_ratio, arena.variation_ratio);
  EXPECT_EQ(jit.max_probability, arena.max_probability);
  EXPECT_EQ(jit.score, arena.score);
  EXPECT_EQ(jit.trusted, arena.trusted);
}

/// Round-trip one detector through an artifact, load it twice (JIT forced
/// on / forced off), and demand bit-identical score() columns for every
/// wrapper mask and every uncertainty mode over `x`.
void expect_jit_parity(const core::TrustedHmd& trained, const Matrix& x,
                       const std::string& tag) {
  const std::filesystem::path dir = "jit_parity_tmp_" + tag;
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "model.hmdf").string();
  core::save_model(trained, path);

  const core::TrustedHmd jitted = load_with_policy(path, jit::Policy::kOn);
  const core::TrustedHmd arena = load_with_policy(path, jit::Policy::kOff);
  EXPECT_EQ(arena.engine().kernel_backend(), "arena");
  if (jit::available()) {
    // Forced on, every forest compiles (stump-dominated ones included —
    // exactly the codegen paths kAuto would skip).
    EXPECT_EQ(jitted.engine().kernel_backend(), "jit");
    EXPECT_GT(jitted.flat_forest().jit_code_bytes(), 0u);
  }

  api::ScoreRequest request;
  request.x = &x;
  api::ScoreResult jit_result;
  api::ScoreResult arena_result;
  for (const api::OutputMask mask : wrapper_masks()) {
    SCOPED_TRACE(tag + " mask=" + std::to_string(mask));
    request.outputs = mask;
    request.mode.reset();
    jitted.score(request, jit_result);
    arena.score(request, arena_result);
    expect_identical_results(jit_result, arena_result);
  }
  request.outputs = api::kDetectionOutputs;
  for (const auto mode :
       {core::UncertaintyMode::kVoteEntropy, core::UncertaintyMode::kSoftEntropy,
        core::UncertaintyMode::kExpectedEntropy,
        core::UncertaintyMode::kMutualInformation,
        core::UncertaintyMode::kVariationRatio,
        core::UncertaintyMode::kMaxProbability}) {
    SCOPED_TRACE(tag + " mode=" + core::uncertainty_mode_name(mode));
    request.mode = mode;
    jitted.score(request, jit_result);
    arena.score(request, arena_result);
    expect_identical_results(jit_result, arena_result);
  }
  std::filesystem::remove_all(dir);
}

TEST(JitParity, DvfsAllEnsembleSizesAllMasks) {
  const auto& bundle = test::small_dvfs();
  for (const int members : {1, 5, 100}) {
    core::TrustedHmd hmd(config_for(members));
    hmd.fit(bundle.train);
    expect_jit_parity(hmd, bundle.test.X,
                      "dvfs_m" + std::to_string(members));
  }
}

TEST(JitParity, HpcAllEnsembleSizesAllMasks) {
  const auto& bundle = test::small_hpc();
  for (const int members : {1, 5, 100}) {
    core::TrustedHmd hmd(config_for(members));
    hmd.fit(bundle.train);
    expect_jit_parity(hmd, bundle.test.X, "hpc_m" + std::to_string(members));
  }
}

TEST(JitParity, RandomisedDeepTreesWithNaNInputs) {
  // Random labels force deep, irregular trees (no stump specialisation),
  // and NaN-poisoned inputs pin the compare encodings: cmpsd(LE) and
  // ucomisd/jb must both send NaN right, exactly like the interpreter's
  // !(x <= t).
  std::mt19937_64 rng(20210721);
  std::uniform_real_distribution<double> feature(-4.0, 4.0);
  ml::Dataset train;
  const std::size_t n = 240, cols = 12;
  train.X = Matrix(n, cols);
  train.y.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols; ++c) train.X(r, c) = feature(rng);
    train.y[r] = static_cast<int>(rng() & 1);
  }
  core::HmdConfig config = config_for(20);
  core::TrustedHmd hmd(config);
  hmd.fit(train);
  EXPECT_LT(hmd.flat_forest().n_stumps(), hmd.flat_forest().n_trees());

  Matrix x(64, cols);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) x(r, c) = feature(rng);
    if (r % 3 == 0) {  // poison a couple of features per third row
      x(r, r % cols) = std::numeric_limits<double>::quiet_NaN();
      x(r, (r + 5) % cols) = std::numeric_limits<double>::quiet_NaN();
    }
  }
  expect_jit_parity(hmd, x, "random_deep_nan");
}

TEST(FlatForestParity, EveryModelKindReportsAFlatEngineTruthfully) {
  // Since the pluggable-engine refactor no ModelKind falls back to the
  // per-member pointer path: trees compile to FlatForestEngine, linear
  // ensembles to FlatLinearEngine, and uses_flat_engine() must say so.
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic,
        core::ModelKind::kBaggedSvm}) {
    SCOPED_TRACE(core::model_kind_name(kind));
    core::HmdConfig config = config_for(10);
    config.model = kind;
    core::TrustedHmd hmd(config);
    hmd.fit(test::small_dvfs().train);
    EXPECT_TRUE(hmd.uses_flat_engine());
    EXPECT_EQ(hmd.engine().n_members(), 10u);
    const bool is_tree = kind == core::ModelKind::kRandomForest;
    EXPECT_EQ(hmd.engine().engine_id() == core::EngineId::kFlatForest,
              is_tree);
  }
}

}  // namespace
