// HpcFeaturizer edge cases: a counter window that recorded cycles but
// zero (or near-zero) activity everywhere else must still produce finite
// features — the per-rate denominators are floored at 1, so an idle
// window can never inject inf/NaN into a feature matrix and poison the
// standardiser downstream.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "features/hpc_features.h"
#include "sim/soc.h"

namespace {

using namespace hmd;

TEST(HpcFeaturizerTest, ZeroInstructionWindowYieldsFiniteFeatures) {
  sim::HpcWindow window;
  window.cycles = 1e6;  // only the timebase ticked
  const features::HpcFeaturizer featurizer;
  const std::vector<double> out = featurizer.features(window);
  ASSERT_EQ(out.size(), features::HpcFeaturizer::n_features());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i])) << "feature " << i << " = " << out[i];
  }
  // The instruction-derived rates degrade to zero, not to 0/0.
  EXPECT_EQ(out[0], 0.0);                 // IPC
  EXPECT_EQ(out[6], std::log(1.0));       // log(instructions) floored
}

TEST(HpcFeaturizerTest, SparseCountersStayFinite) {
  // Instructions present but every other event count zero: each rate's
  // own denominator floor has to hold, not just the instructions one.
  sim::HpcWindow window;
  window.cycles = 5e5;
  window.instructions = 1e5;
  const features::HpcFeaturizer featurizer;
  const std::vector<double> out = featurizer.features(window);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i])) << "feature " << i << " = " << out[i];
  }
  EXPECT_NEAR(out[0], 0.2, 1e-12);  // IPC survives
}

TEST(HpcFeaturizerTest, EmptyWindowIsRejected) {
  const features::HpcFeaturizer featurizer;
  EXPECT_THROW(featurizer.features(sim::HpcWindow{}), InvalidArgument);
}

}  // namespace
