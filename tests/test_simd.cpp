// The simd/ subsystem's contracts (ctest label `simd`, CI also forces
// HMD_SIMD=scalar through the whole tier-1 suite):
//
//  - ISA ladder plumbing: parse/name round trips, overrides only ever
//    clamp DOWN, kernels(level) never hands out a table above what the
//    host can execute.
//  - The ≤2-ULP bound of exp_array/log_array against libm, with exact
//    special values (±0, ±inf, NaN, denormals) — randomized sweeps plus
//    a hand-picked boundary list.
//  - sigmoid_array's exact saturation thresholds (the same +40 / -745
//    bit patterns the exact tier produces) and the bounded-ULP interior;
//    binary_entropy_array's exact endpoints and bounded-ULP interior.
//  - Lane-for-lane bit parity across ISA levels: the scalar, AVX2 and
//    AVX-512 builds of the one shared kernel body must produce identical
//    bits (the -ffp-contract=off construction argument in simd/vmath.h),
//    which is what makes HMD_SIMD=scalar a *fallback* and not a
//    different numerical product.
//  - End to end: Accuracy::kFast through api::score() stays within the
//    contract band of kExact for all three ModelKinds, and kExact stays
//    bit-identical to a default-constructed request.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "api/score.h"
#include "core/hmd.h"
#include "simd/cpu.h"
#include "simd/vmath.h"
#include "test_support.h"

namespace {

using namespace hmd;

// Monotone bit-rank of a double (total order matching <), so ULP
// distance is rank subtraction — same mapping serve/loadgen.cpp uses to
// verify fast-tier responses.
std::uint64_t rank_of(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return (bits >> 63) ? ~bits : (bits | 0x8000000000000000ull);
}

std::uint64_t ulp_distance(double a, double b) {
  std::uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ab == bb) return 0;  // covers NaN-vs-same-NaN, ±inf, -0.0 vs -0.0
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t ra = rank_of(a);
  const std::uint64_t rb = rank_of(b);
  return ra > rb ? ra - rb : rb - ra;
}

// The boundary inputs every kernel sweep appends to its random set.
std::vector<double> boundary_inputs() {
  const double inf = std::numeric_limits<double>::infinity();
  return {
      0.0, -0.0, inf, -inf, std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),       // smallest normal
      -std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      1.0, -1.0, 0.5, -0.5, 2.0, -2.0,
      // sigmoid saturation thresholds and their neighbourhoods
      40.0, std::nextafter(40.0, 0.0), std::nextafter(40.0, 100.0),
      -745.0, std::nextafter(-745.0, 0.0), std::nextafter(-745.0, -800.0),
      // exp overflow/underflow frontier
      709.78, 710.0, -745.13, -746.0, -708.0, 708.0,
  };
}

std::vector<double> random_inputs(double lo, double hi, int n,
                                  std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(dist(rng));
  return out;
}

// Log-uniform positive draws across many decades (for log_array).
std::vector<double> log_uniform_inputs(int n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> exponent(-300.0, 300.0);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(std::pow(10.0, exponent(rng)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ISA ladder

TEST(SimdIsaTest, NamesAndParseRoundTrip) {
  using simd::IsaLevel;
  EXPECT_STREQ(simd::isa_name(IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(IsaLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd::isa_name(IsaLevel::kAvx512), "avx512");
  EXPECT_EQ(simd::parse_isa("scalar"), IsaLevel::kScalar);
  EXPECT_EQ(simd::parse_isa("off"), IsaLevel::kScalar);
  EXPECT_EQ(simd::parse_isa("avx2"), IsaLevel::kAvx2);
  EXPECT_EQ(simd::parse_isa("avx512"), IsaLevel::kAvx512);
  EXPECT_FALSE(simd::parse_isa("sse9").has_value());
  EXPECT_FALSE(simd::parse_isa("").has_value());
}

TEST(SimdIsaTest, OverridesOnlyClampDown) {
  const simd::IsaLevel detected = simd::detected_isa();
  EXPECT_LE(static_cast<int>(simd::active_isa()),
            static_cast<int>(detected));

  // Forcing scalar always works; forcing a level above the hardware
  // clamps to the hardware, never traps.
  simd::set_isa_override(simd::IsaLevel::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::IsaLevel::kScalar);
  simd::set_isa_override(simd::IsaLevel::kAvx512);
  EXPECT_LE(static_cast<int>(simd::active_isa()),
            static_cast<int>(detected));
  simd::set_isa_override(std::nullopt);
  EXPECT_LE(static_cast<int>(simd::active_isa()),
            static_cast<int>(detected));

  // The table handed out never exceeds the requested or detected level.
  for (const auto level : {simd::IsaLevel::kScalar, simd::IsaLevel::kAvx2,
                           simd::IsaLevel::kAvx512}) {
    const simd::VmathKernels& table = simd::kernels(level);
    EXPECT_LE(static_cast<int>(table.level), static_cast<int>(level));
    EXPECT_LE(static_cast<int>(table.level), static_cast<int>(detected));
    ASSERT_NE(table.exp_array, nullptr);
    ASSERT_NE(table.log_array, nullptr);
    ASSERT_NE(table.sigmoid_array, nullptr);
    ASSERT_NE(table.binary_entropy_array, nullptr);
  }
}

// ---------------------------------------------------------------------------
// ULP bounds vs libm

TEST(SimdUlpTest, ExpWithinTwoUlpOfLibmPlusExactSpecials) {
  std::vector<double> in = random_inputs(-760.0, 720.0, 20000, 101);
  const std::vector<double> extra = random_inputs(-5.0, 5.0, 20000, 102);
  in.insert(in.end(), extra.begin(), extra.end());
  const std::vector<double> edge = boundary_inputs();
  in.insert(in.end(), edge.begin(), edge.end());

  std::vector<double> out(in.size());
  simd::kernels().exp_array(in.data(), out.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double want = std::exp(in[i]);
    ASSERT_LE(ulp_distance(out[i], want), 2u)
        << "exp(" << in[i] << ") = " << out[i] << ", libm " << want;
  }

  // Specials are exact, bit for bit.
  const double inf = std::numeric_limits<double>::infinity();
  double special_in[] = {0.0, -0.0, inf, -inf,
                         std::numeric_limits<double>::quiet_NaN()};
  double special_out[5];
  simd::kernels().exp_array(special_in, special_out, 5);
  EXPECT_EQ(special_out[0], 1.0);
  EXPECT_EQ(special_out[1], 1.0);
  EXPECT_EQ(special_out[2], inf);
  EXPECT_EQ(special_out[3], 0.0);
  EXPECT_TRUE(std::isnan(special_out[4]));
}

TEST(SimdUlpTest, LogWithinTwoUlpOfLibmPlusExactSpecials) {
  std::vector<double> in = log_uniform_inputs(30000, 201);
  const std::vector<double> near_one = random_inputs(0.5, 2.0, 10000, 202);
  in.insert(in.end(), near_one.begin(), near_one.end());
  // Denormals: log must pre-scale, not flush.
  for (int i = 1; i <= 64; ++i) {
    in.push_back(static_cast<double>(i) *
                 std::numeric_limits<double>::denorm_min());
  }
  std::vector<double> out(in.size());
  simd::kernels().log_array(in.data(), out.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double want = std::log(in[i]);
    ASSERT_LE(ulp_distance(out[i], want), 2u)
        << "log(" << in[i] << ") = " << out[i] << ", libm " << want;
  }

  const double inf = std::numeric_limits<double>::infinity();
  double special_in[] = {0.0, -0.0, 1.0, inf, -1.0,
                         std::numeric_limits<double>::quiet_NaN()};
  double special_out[6];
  simd::kernels().log_array(special_in, special_out, 6);
  EXPECT_EQ(special_out[0], -inf);
  EXPECT_EQ(special_out[1], -inf);
  EXPECT_EQ(special_out[2], 0.0);
  EXPECT_EQ(special_out[3], inf);
  EXPECT_TRUE(std::isnan(special_out[4]));  // log of a negative
  EXPECT_TRUE(std::isnan(special_out[5]));
}

TEST(SimdUlpTest, SigmoidSaturatesExactlyAndInteriorIsBounded) {
  // The saturation thresholds must match the exact tier bit for bit:
  // t >= 40 -> exactly 1.0, t <= -745 -> exactly 0.0.
  double sat_in[] = {40.0, 41.0, 1000.0,
                     std::numeric_limits<double>::infinity(), -745.0,
                     -746.0, -1e6,
                     -std::numeric_limits<double>::infinity()};
  double sat_out[8];
  simd::kernels().sigmoid_array(sat_in, sat_out, 8);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sat_out[i], 1.0) << sat_in[i];
  for (int i = 4; i < 8; ++i) EXPECT_EQ(sat_out[i], 0.0) << sat_in[i];

  // Interior: 1/(1+exp(-t)) with the fast exp — the fast exp's 2 ULP
  // plus one rounding each for the add and the divide against the libm
  // reference evaluated the same way.
  std::vector<double> in = random_inputs(-745.0, 40.0, 30000, 301);
  const std::vector<double> narrow = random_inputs(-8.0, 8.0, 10000, 302);
  in.insert(in.end(), narrow.begin(), narrow.end());
  in.push_back(std::nextafter(40.0, 0.0));
  in.push_back(std::nextafter(-745.0, 0.0));
  std::vector<double> out(in.size());
  simd::kernels().sigmoid_array(in.data(), out.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double want = 1.0 / (1.0 + std::exp(-in[i]));
    ASSERT_LE(ulp_distance(out[i], want), 4u)
        << "sigmoid(" << in[i] << ") = " << out[i] << ", reference "
        << want;
  }
}

TEST(SimdUlpTest, BinaryEntropyExactEndpointsAndBoundedInterior) {
  // Outside (0, 1) — including the endpoints themselves — H is exactly 0.
  double edge_in[] = {0.0, 1.0, -0.0, -0.5, 1.5,
                      std::numeric_limits<double>::infinity()};
  double edge_out[6];
  simd::kernels().binary_entropy_array(edge_in, edge_out, 6);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(edge_out[i], 0.0) << edge_in[i];

  std::vector<double> in = random_inputs(0.0, 1.0, 30000, 401);
  // The near-degenerate tails where -p log p cancellation would show.
  for (int i = 1; i <= 200; ++i) {
    in.push_back(std::ldexp(1.0, -i > -1022 ? -i : -1022));
    in.push_back(1.0 - std::ldexp(1.0, -(i % 52) - 1));
  }
  std::vector<double> out(in.size());
  simd::kernels().binary_entropy_array(in.data(), out.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double p = in[i];
    const double want = (p > 0.0 && p < 1.0)
                            ? -p * std::log(p) - (1.0 - p) * std::log(1.0 - p)
                            : 0.0;
    ASSERT_LE(ulp_distance(out[i], want), 4u)
        << "H(" << p << ") = " << out[i] << ", reference " << want;
  }
}

// ---------------------------------------------------------------------------
// Cross-ISA bit parity

TEST(SimdParityTest, AllIsaLevelsProduceIdenticalBits) {
  std::vector<double> in = random_inputs(-760.0, 720.0, 50000, 501);
  const std::vector<double> unit = random_inputs(0.0, 1.0, 20000, 502);
  in.insert(in.end(), unit.begin(), unit.end());
  const std::vector<double> edge = boundary_inputs();
  in.insert(in.end(), edge.begin(), edge.end());

  const simd::VmathKernels& scalar = simd::kernels(simd::IsaLevel::kScalar);
  ASSERT_EQ(scalar.level, simd::IsaLevel::kScalar);

  using ArrayFn = simd::VmathKernels::ArrayFn;
  const auto fn_of = [](const simd::VmathKernels& t, int which) -> ArrayFn {
    switch (which) {
      case 0: return t.exp_array;
      case 1: return t.log_array;
      case 2: return t.sigmoid_array;
      default: return t.binary_entropy_array;
    }
  };
  const char* names[] = {"exp", "log", "sigmoid", "binary_entropy"};

  for (const auto level : {simd::IsaLevel::kAvx2, simd::IsaLevel::kAvx512}) {
    const simd::VmathKernels& vec = simd::kernels(level);
    if (vec.level == simd::IsaLevel::kScalar) continue;  // host too old
    for (int which = 0; which < 4; ++which) {
      SCOPED_TRACE(std::string(names[which]) + " scalar vs " +
                   simd::isa_name(vec.level));
      std::vector<double> a(in.size()), b(in.size());
      fn_of(scalar, which)(in.data(), a.data(), in.size());
      fn_of(vec, which)(in.data(), b.data(), in.size());
      // One memcmp proves lane-for-lane parity including NaN payloads
      // and signed zeros.
      EXPECT_EQ(std::memcmp(a.data(), b.data(),
                            in.size() * sizeof(double)),
                0);
    }
  }
}

TEST(SimdParityTest, InPlaceAliasingMatchesOutOfPlace) {
  const std::vector<double> in = random_inputs(-40.0, 40.0, 4097, 601);
  const simd::VmathKernels& table = simd::kernels();
  std::vector<double> separate(in.size());
  table.sigmoid_array(in.data(), separate.data(), in.size());
  std::vector<double> aliased = in;
  table.sigmoid_array(aliased.data(), aliased.data(), aliased.size());
  EXPECT_EQ(std::memcmp(separate.data(), aliased.data(),
                        in.size() * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// End to end through api::score()

constexpr std::uint64_t kEndToEndUlps = 8;
constexpr double kEndToEndAbs = 1e-12;  // MI cancellation (see loadgen.cpp)

bool column_close(const std::vector<double>& got,
                  const std::vector<double>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::abs(got[i] - want[i]) <= kEndToEndAbs) continue;
    if (ulp_distance(got[i], want[i]) > kEndToEndUlps) return false;
  }
  return true;
}

core::HmdConfig e2e_config(core::ModelKind kind) {
  core::HmdConfig config;
  config.model = kind;
  config.n_members = 16;
  config.n_threads = 1;
  config.seed = 42;
  return config;
}

TEST(SimdEndToEndTest, FastTierWithinContractBandForAllModelKinds) {
  const auto& bundle = test::small_dvfs();
  for (const auto kind :
       {core::ModelKind::kBaggedLogistic, core::ModelKind::kBaggedSvm,
        core::ModelKind::kRandomForest}) {
    SCOPED_TRACE(core::model_kind_name(kind));
    core::TrustedHmd hmd(e2e_config(kind));
    hmd.fit(bundle.train);

    for (const auto mode :
         {core::UncertaintyMode::kVoteEntropy,
          core::UncertaintyMode::kSoftEntropy,
          core::UncertaintyMode::kMutualInformation,
          core::UncertaintyMode::kMaxProbability}) {
      SCOPED_TRACE(core::uncertainty_mode_name(mode));
      api::ScoreRequest request;
      request.x = &bundle.test.X;
      request.outputs = api::kEstimateOutputs;
      request.mode = mode;

      api::ScoreResult exact;
      request.accuracy = core::Accuracy::kExact;
      hmd.score(request, exact);

      api::ScoreResult fast;
      request.accuracy = core::Accuracy::kFast;
      hmd.score(request, fast);

      // Discrete columns: bit-identical (no trained detector sits on the
      // ULP knife edge of a decision boundary — the score.h contract).
      EXPECT_EQ(fast.prediction, exact.prediction);
      EXPECT_EQ(fast.votes, exact.votes);
      EXPECT_EQ(fast.trusted, exact.trusted);
      // Continuous columns: inside the fast-tier band.
      EXPECT_TRUE(column_close(fast.vote_entropy, exact.vote_entropy));
      EXPECT_TRUE(column_close(fast.soft_entropy, exact.soft_entropy));
      EXPECT_TRUE(
          column_close(fast.expected_entropy, exact.expected_entropy));
      EXPECT_TRUE(
          column_close(fast.mutual_information, exact.mutual_information));
      EXPECT_TRUE(
          column_close(fast.variation_ratio, exact.variation_ratio));
      EXPECT_TRUE(
          column_close(fast.max_probability, exact.max_probability));
      EXPECT_TRUE(column_close(fast.confidence, exact.confidence));
      EXPECT_TRUE(column_close(fast.score, exact.score));
    }
  }
}

TEST(SimdEndToEndTest, ExactTierIsTheDefaultAndBitIdentical) {
  const auto& bundle = test::small_dvfs();
  core::TrustedHmd hmd(e2e_config(core::ModelKind::kBaggedLogistic));
  hmd.fit(bundle.train);

  api::ScoreRequest request;  // accuracy left at its default
  request.x = &bundle.test.X;
  request.outputs = api::kEstimateOutputs;
  api::ScoreResult defaulted;
  hmd.score(request, defaulted);

  request.accuracy = core::Accuracy::kExact;
  api::ScoreResult explicit_exact;
  hmd.score(request, explicit_exact);

  EXPECT_EQ(defaulted.prediction, explicit_exact.prediction);
  EXPECT_EQ(defaulted.votes, explicit_exact.votes);
  EXPECT_EQ(defaulted.soft_entropy, explicit_exact.soft_entropy);
  EXPECT_EQ(defaulted.mutual_information,
            explicit_exact.mutual_information);
  EXPECT_EQ(defaulted.score, explicit_exact.score);
  EXPECT_EQ(defaulted.trusted, explicit_exact.trusted);
}

}  // namespace
