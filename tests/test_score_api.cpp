// The unified score() spine (api/score.h): wrapper parity (the legacy
// detect/estimate/scores surface must be bit-identical through the new
// path), OutputMask semantics (selected columns exact, unselected columns
// empty, minimal engine StatsMask), per-request mode override, the
// steady-state no-allocation contract, multi-thread determinism of
// score()/stats_batch at widths 1/2/4, and the parse_model_kind
// round-trip.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "api/score.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "test_support.h"

namespace hmd {
namespace {

using core::ModelKind;
using core::UncertaintyMode;

const std::vector<ModelKind> kAllKinds = {ModelKind::kRandomForest,
                                          ModelKind::kBaggedLogistic,
                                          ModelKind::kBaggedSvm};

core::HmdConfig small_config(ModelKind kind, int members = 7) {
  core::HmdConfig config;
  config.model = kind;
  config.n_members = members;
  config.n_threads = 1;
  config.seed = 5;
  return config;
}

core::TrustedHmd fitted(const data::DatasetBundle& bundle, ModelKind kind,
                        int members = 7) {
  core::TrustedHmd hmd(small_config(kind, members));
  hmd.fit(bundle.train);
  return hmd;
}

TEST(ScoreApiTest, DetectionMaskMatchesDetectBatch) {
  for (const auto* bundle : {&test::small_dvfs(), &test::small_hpc()}) {
    for (const ModelKind kind : kAllKinds) {
      const core::TrustedHmd hmd = fitted(*bundle, kind);
      const Matrix& x = bundle->test.X;
      const auto detections = hmd.detect_batch(x);

      api::ScoreRequest request;
      request.x = &x;
      request.outputs = api::kDetectionOutputs;
      api::ScoreResult result;
      hmd.score(request, result);

      ASSERT_EQ(result.rows, x.rows());
      for (std::size_t r = 0; r < x.rows(); ++r) {
        EXPECT_EQ(result.prediction[r], detections[r].prediction);
        EXPECT_EQ(result.confidence[r], detections[r].confidence);
        EXPECT_EQ(result.score[r], detections[r].score);
        EXPECT_EQ(result.trusted[r] != 0, detections[r].trusted);
      }
      // Unselected columns are empty, not stale.
      EXPECT_TRUE(result.votes.empty());
      EXPECT_TRUE(result.soft_entropy.empty());
      EXPECT_TRUE(result.mutual_information.empty());
    }
  }
}

TEST(ScoreApiTest, EstimateMaskMatchesEstimateBatch) {
  for (const auto* bundle : {&test::small_dvfs(), &test::small_hpc()}) {
    for (const ModelKind kind : kAllKinds) {
      const core::TrustedHmd hmd = fitted(*bundle, kind);
      const Matrix& x = bundle->unknown.X;
      const auto estimates = hmd.estimate_batch(x);

      api::ScoreRequest request;
      request.x = &x;
      request.outputs = api::kEstimateOutputs;
      api::ScoreResult result;
      hmd.score(request, result);

      ASSERT_EQ(result.rows, x.rows());
      for (std::size_t r = 0; r < x.rows(); ++r) {
        EXPECT_EQ(result.prediction[r], estimates[r].prediction);
        EXPECT_EQ(result.votes[r], estimates[r].votes_malware);
        EXPECT_EQ(result.vote_entropy[r], estimates[r].vote_entropy);
        EXPECT_EQ(result.soft_entropy[r], estimates[r].soft_entropy);
        EXPECT_EQ(result.expected_entropy[r], estimates[r].expected_entropy);
        EXPECT_EQ(result.mutual_information[r],
                  estimates[r].mutual_information);
        EXPECT_EQ(result.variation_ratio[r], estimates[r].variation_ratio);
        EXPECT_EQ(result.max_probability[r], estimates[r].max_probability);
        EXPECT_EQ(result.score[r], estimates[r].score);
        EXPECT_EQ(result.trusted[r] != 0, estimates[r].trusted);
      }
    }
  }
}

TEST(ScoreApiTest, PredictionOnlyMaskIsExactAndMinimal) {
  for (const ModelKind kind : kAllKinds) {
    const core::TrustedHmd hmd = fitted(test::small_dvfs(), kind);
    const Matrix& x = test::small_dvfs().test.X;
    const auto detections = hmd.detect_batch(x);

    api::ScoreRequest request;
    request.x = &x;
    request.outputs = api::kPredictionOnly;
    api::ScoreResult result;
    hmd.score(request, result);

    ASSERT_EQ(result.prediction.size(), x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      EXPECT_EQ(result.prediction[r], detections[r].prediction);
    }
    EXPECT_TRUE(result.confidence.empty());
    EXPECT_TRUE(result.score.empty());
    EXPECT_TRUE(result.trusted.empty());
    // A prediction-only request under the vote-entropy default demands
    // votes alone from the engine...
    for (const auto& stats : result.stats) {
      EXPECT_EQ(stats.sum_p1, 0.0);
      EXPECT_EQ(stats.sum_entropy, 0.0);
    }
  }
}

TEST(ScoreApiTest, StatsMaskLoweringIsMinimal) {
  const auto vote = UncertaintyMode::kVoteEntropy;
  EXPECT_EQ(api::stats_mask_for(api::kPredictionOnly, vote),
            core::kStatsVotes);
  EXPECT_EQ(api::stats_mask_for(api::kOutPrediction | api::kOutTrusted, vote),
            core::kStatsVotes);
  EXPECT_EQ(api::stats_mask_for(api::kDetectionOutputs, vote),
            core::kStatsVotes | core::kStatsPosterior);
  EXPECT_EQ(api::stats_mask_for(api::kEstimateOutputs, vote), core::kStatsAll);
  EXPECT_EQ(api::stats_mask_for(api::kOutScore,
                                UncertaintyMode::kMutualInformation),
            core::kStatsAll);
  EXPECT_EQ(api::stats_mask_for(api::kOutScore,
                                UncertaintyMode::kExpectedEntropy),
            core::kStatsVotes | core::kStatsEntropy);
  EXPECT_EQ(api::stats_mask_for(api::kOutScore,
                                UncertaintyMode::kMaxProbability),
            core::kStatsVotes | core::kStatsPosterior);
}

TEST(ScoreApiTest, ModeOverrideMatchesScoresWrapper) {
  const core::TrustedHmd hmd =
      fitted(test::small_hpc(), ModelKind::kRandomForest);
  const Matrix& x = test::small_hpc().unknown.X;
  for (const auto mode :
       {UncertaintyMode::kVoteEntropy, UncertaintyMode::kSoftEntropy,
        UncertaintyMode::kExpectedEntropy, UncertaintyMode::kMutualInformation,
        UncertaintyMode::kVariationRatio, UncertaintyMode::kMaxProbability}) {
    const auto want = hmd.scores(x, mode);

    api::ScoreRequest request;
    request.x = &x;
    request.outputs = api::kOutScore | api::kOutTrusted;
    request.mode = mode;
    api::ScoreResult result;
    hmd.score(request, result);

    ASSERT_EQ(result.score.size(), want.size());
    for (std::size_t r = 0; r < want.size(); ++r) {
      EXPECT_EQ(result.score[r], want[r]);
      EXPECT_EQ(result.trusted[r] != 0,
                want[r] <= hmd.config().entropy_threshold);
    }
  }
}

TEST(ScoreApiTest, SteadyStateReusesBuffers) {
  const core::TrustedHmd hmd =
      fitted(test::small_dvfs(), ModelKind::kBaggedLogistic);
  const Matrix& x = test::small_dvfs().test.X;
  api::ScoreRequest request;
  request.x = &x;
  request.outputs = api::kEstimateOutputs;
  api::ScoreResult result;
  hmd.score(request, result);

  const auto* prediction = result.prediction.data();
  const auto* score = result.score.data();
  const auto* stats = result.stats.data();
  hmd.score(request, result);  // reuse: same buffers, no realloc
  hmd.score(request, result);
  EXPECT_EQ(result.prediction.data(), prediction);
  EXPECT_EQ(result.score.data(), score);
  EXPECT_EQ(result.stats.data(), stats);

  // Shrinking to a masked request keeps capacity and empties the rest.
  request.outputs = api::kPredictionOnly;
  hmd.score(request, result);
  EXPECT_EQ(result.prediction.data(), prediction);
  EXPECT_TRUE(result.score.empty());
}

/// stats_batch / score must be bit-identical for any worker count. Tiles
/// are 256 rows, so the input is stacked past 3 tiles to make widths 2
/// and 4 actually split work. Artifacts pin the trained model so every
/// width serves the exact same engine.
TEST(ScoreApiTest, ScoreIsBitIdenticalAcrossThreadWidths) {
  const std::string dir =
      "score_api_tmp_" + std::string(::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  for (const auto* bundle : {&test::small_dvfs(), &test::small_hpc()}) {
    Matrix stacked;
    while (stacked.rows() < 700) {
      for (std::size_t r = 0; r < bundle->test.X.rows(); ++r) {
        stacked.push_row(bundle->test.X.row(r));
      }
    }
    for (const ModelKind kind :
         {ModelKind::kRandomForest, ModelKind::kBaggedLogistic}) {
      const std::string path =
          dir + "/" + core::model_kind_name(kind) + "_" + bundle->name +
          ".hmdf";
      {
        const core::TrustedHmd trainer = fitted(*bundle, kind, 9);
        core::save_model(trainer, path);
      }
      const core::TrustedHmd reference = core::load_model(path, 1);
      const auto want = reference.estimate_batch(stacked);
      for (const int n_threads : {1, 2, 4}) {
        const core::TrustedHmd hmd = core::load_model(path, n_threads);
        const auto got = hmd.estimate_batch(stacked);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t r = 0; r < want.size(); ++r) {
          EXPECT_EQ(got[r].prediction, want[r].prediction);
          EXPECT_EQ(got[r].votes_malware, want[r].votes_malware);
          EXPECT_EQ(got[r].vote_entropy, want[r].vote_entropy);
          EXPECT_EQ(got[r].soft_entropy, want[r].soft_entropy);
          EXPECT_EQ(got[r].mutual_information, want[r].mutual_information);
          EXPECT_EQ(got[r].score, want[r].score);
        }

        api::ScoreRequest request;
        request.x = &stacked;
        request.outputs = api::kPredictionOnly | api::kOutScore;
        api::ScoreResult result;
        hmd.score(request, result);
        for (std::size_t r = 0; r < want.size(); ++r) {
          EXPECT_EQ(result.prediction[r], want[r].prediction);
          EXPECT_EQ(result.score[r], want[r].score);
        }
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ScoreApiTest, ParseModelKindRoundTripsEveryKind) {
  for (const ModelKind kind : kAllKinds) {
    const auto parsed = core::parse_model_kind(core::model_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(core::parse_model_kind("rf"), ModelKind::kRandomForest);
  EXPECT_EQ(core::parse_model_kind("lr"), ModelKind::kBaggedLogistic);
  EXPECT_EQ(core::parse_model_kind("svm"), ModelKind::kBaggedSvm);
  EXPECT_EQ(core::parse_model_kind("Svm"), ModelKind::kBaggedSvm);
  EXPECT_FALSE(core::parse_model_kind("forest").has_value());
  EXPECT_FALSE(core::parse_model_kind("").has_value());
}

TEST(ScoreApiTest, NullInputThrows) {
  const core::TrustedHmd hmd =
      fitted(test::small_dvfs(), ModelKind::kRandomForest);
  api::ScoreRequest request;  // request.x left null
  api::ScoreResult result;
  EXPECT_THROW(hmd.score(request, result), InvalidArgument);
}

}  // namespace
}  // namespace hmd
