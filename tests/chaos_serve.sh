#!/usr/bin/env bash
# Chaos drill: hmd_serve must serve bit-identical traffic through a swap
# storm of corrupt publishes.
#
#   1. Train two model families into a registry directory and record a
#      baseline run's per-model traffic lines.
#   2. Run the same serve again (paced with --sleep-ms so the storm has
#      wall time to land in) while a storm publishes damaged variants of
#      one artifact over its real name via hmd_faultgen: checksum-breaking
#      bit flips, torn half-files, truncated tails — each a fresh inode,
#      exactly like a real bad publish.
#   3. The server must exit 0, its traffic lines must be byte-identical
#      to the baseline (every rejected replacement kept the last-good
#      snapshot serving), and the health log must record the degradation.
#
# usage: chaos_serve.sh <hmd_train> <hmd_serve> <hmd_faultgen>
set -euo pipefail

train_bin=$1
serve_bin=$2
faultgen_bin=$3

workdir=$(mktemp -d chaos_serve.XXXXXX)
trap 'rm -rf "$workdir"' EXIT

models="$workdir/models"
mkdir -p "$models"

common=(--dataset=dvfs --scale=0.1 --threads=1)

"$train_bin" "${common[@]}" --model=rf --members=5 \
    --out="$models/dvfs_RF_M5.hmdf"
"$train_bin" "${common[@]}" --model=lr --members=5 \
    --out="$models/dvfs_LR_M5.hmdf"

target="$models/dvfs_RF_M5.hmdf"
cp "$target" "$workdir/good.hmdf"

serve_args=(--models="$models" "${common[@]}" --batches=60 --refresh-every=1)

# Baseline: what the traffic counters look like with nobody interfering.
baseline=$("$serve_bin" "${serve_args[@]}")
baseline_traffic=$(grep '^traffic' <<<"$baseline")
[ -n "$baseline_traffic" ] || {
  echo "FAIL: baseline produced no traffic lines" >&2; exit 1; }

# Chaos run, paced and line-buffered so the storm can synchronise on the
# "serving" line (startup loads must complete clean — the drill is about
# *replacement* failures, which is why the storm waits).
log="$workdir/chaos.log"
runner=("$serve_bin")
if command -v stdbuf >/dev/null 2>&1; then
  runner=(stdbuf -oL "$serve_bin")
fi
"${runner[@]}" "${serve_args[@]}" --sleep-ms=50 >"$log" 2>&1 &
serve_pid=$!

for _ in $(seq 1 300); do
  grep -q '^serving' "$log" 2>/dev/null && break
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
grep -q '^serving' "$log" || {
  echo "FAIL: server never reached the serving loop" >&2
  cat "$log" >&2
  exit 1
}

# The storm: eight damaged publishes over the RF artifact, each preceded
# by a good publish so hmd_faultgen always has an intact section table to
# steer by (and so the registry sees a stream of distinct inodes, like a
# retrain pipeline gone wrong).
for i in $(seq 1 8); do
  "$faultgen_bin" publish "$workdir/good.hmdf" "$target" >/dev/null
  case $((i % 3)) in
    0) "$faultgen_bin" torn "$target" >/dev/null ;;
    1) "$faultgen_bin" bitflip "$target" --section=engine \
           --offset=$((i * 37)) --bit=$((i % 8)) >/dev/null ;;
    2) "$faultgen_bin" truncate "$target" --bytes=$((16 + i)) >/dev/null ;;
  esac
  sleep 0.2
done
# The storm passes; the last publish is good again.
"$faultgen_bin" publish "$workdir/good.hmdf" "$target" >/dev/null

rc=0
wait "$serve_pid" || rc=$?
cat "$log"

[ "$rc" -eq 0 ] || {
  echo "FAIL: chaos run exited $rc (must degrade, never crash)" >&2
  exit 1
}

chaos_traffic=$(grep '^traffic' "$log")
if [ "$chaos_traffic" != "$baseline_traffic" ]; then
  echo "FAIL: traffic diverged from baseline under the swap storm" >&2
  echo "--- baseline" >&2; echo "$baseline_traffic" >&2
  echo "--- chaos" >&2; echo "$chaos_traffic" >&2
  exit 1
fi

grep -Eq '^health .* -> (degraded|quarantined)' "$log" || {
  echo "FAIL: no degradation recorded — the storm never landed" >&2
  exit 1
}

echo "chaos_serve: OK"
