// Thread pool: full coverage of the index range, reuse across calls,
// exception propagation, and degenerate sizes.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_pool.h"

namespace {

using hmd::core::ThreadPool;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int call = 0; call < 50; ++call) {
    pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(static_cast<long>(end - begin));
    });
  }
  EXPECT_EQ(total.load(), 50 * 100);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  // Effective width 1 spawns no workers at all: every parallel_for runs
  // on the caller with no queue, locks, or wakeups — and the body must
  // observe the caller's thread id to prove it.
  EXPECT_TRUE(pool.inline_only());
  const auto caller = std::this_thread::get_id();
  std::vector<int> hits(10, 0);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, EffectiveThreadsResolvesAllCoresConvention) {
  EXPECT_EQ(ThreadPool::effective_threads(1), 1u);
  EXPECT_EQ(ThreadPool::effective_threads(5), 5u);
  EXPECT_GE(ThreadPool::effective_threads(0), 1u);
  EXPECT_GE(ThreadPool::effective_threads(-3), 1u);
}

TEST(ThreadPool, MultiWorkerPoolIsNotInlineOnly) {
  ThreadPool pool(3);
  EXPECT_FALSE(pool.inline_only());
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, DefaultSizeUsesHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
