// Model artifact (.hmdf): a saved detector must reload as a serving-only
// detector — no ml::Bagging on the path — emitting bit-identical
// Detections and Estimates; corrupt, truncated, or version-mismatched
// artifacts must be rejected loudly, never misread.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "test_support.h"

namespace {

using namespace hmd;

class ModelArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs sibling tests of this fixture in
    // separate processes, and a shared directory would let one test's
    // SetUp delete another's live artifact mid-roundtrip.
    dir_ = std::filesystem::path(
        "test_model_tmp_" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "detector.hmdf").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Overwrite one byte of the artifact at `offset`.
  void corrupt_byte(std::uintmax_t offset, char value) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&value, 1);
  }

  core::TrustedHmd train(core::ModelKind kind, int members = 25) {
    core::HmdConfig config;
    config.model = kind;
    config.n_members = members;
    config.seed = 9;
    core::TrustedHmd hmd(config);
    hmd.fit(test::small_dvfs().train);
    return hmd;
  }

  std::filesystem::path dir_;
  std::string path_;
};

void expect_bit_identical_outputs(const core::TrustedHmd& trained,
                                  const core::TrustedHmd& served,
                                  const Matrix& x) {
  const auto want_d = trained.detect_batch(x);
  const auto got_d = served.detect_batch(x);
  const auto want_e = trained.estimate_batch(x);
  const auto got_e = served.estimate_batch(x);
  ASSERT_EQ(got_d.size(), want_d.size());
  ASSERT_EQ(got_e.size(), want_e.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    EXPECT_EQ(got_d[r].prediction, want_d[r].prediction);
    EXPECT_EQ(got_d[r].confidence, want_d[r].confidence);
    EXPECT_EQ(got_d[r].score, want_d[r].score);
    EXPECT_EQ(got_d[r].trusted, want_d[r].trusted);
    EXPECT_EQ(got_e[r].votes_malware, want_e[r].votes_malware);
    EXPECT_EQ(got_e[r].vote_entropy, want_e[r].vote_entropy);
    EXPECT_EQ(got_e[r].soft_entropy, want_e[r].soft_entropy);
    EXPECT_EQ(got_e[r].expected_entropy, want_e[r].expected_entropy);
    EXPECT_EQ(got_e[r].mutual_information, want_e[r].mutual_information);
    EXPECT_EQ(got_e[r].variation_ratio, want_e[r].variation_ratio);
    EXPECT_EQ(got_e[r].max_probability, want_e[r].max_probability);

    // Per-sample serving path too, not just batches.
    const auto one_want = trained.detect(x.row(r));
    const auto one_got = served.detect(x.row(r));
    EXPECT_EQ(one_got.prediction, one_want.prediction);
    EXPECT_EQ(one_got.score, one_want.score);
  }
}

TEST_F(ModelArtifactTest, RoundTripIsBitIdenticalForEveryModelKind) {
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic,
        core::ModelKind::kBaggedSvm}) {
    SCOPED_TRACE(core::model_kind_name(kind));
    const core::TrustedHmd trained = train(kind);
    core::save_model(trained, path_);
    ASSERT_TRUE(core::model_exists(path_));

    const core::TrustedHmd served = core::load_model(path_);
    // The load path reconstructs the engine directly from the blob: no
    // reference ensemble (and no training objects) exist behind it.
    EXPECT_FALSE(served.has_ensemble());
    EXPECT_TRUE(served.uses_flat_engine());
    EXPECT_THROW(served.ensemble(), InvalidArgument);
    EXPECT_EQ(served.config().n_members, trained.config().n_members);
    EXPECT_EQ(served.config().model, trained.config().model);
    EXPECT_EQ(served.converged_fraction(), trained.converged_fraction());

    expect_bit_identical_outputs(trained, served, test::small_dvfs().test.X);
    expect_bit_identical_outputs(trained, served,
                                 test::small_dvfs().unknown.X);
  }
}

TEST_F(ModelArtifactTest, HpcBundleRoundTripsToo) {
  core::HmdConfig config;
  config.model = core::ModelKind::kBaggedLogistic;
  config.n_members = 15;
  core::TrustedHmd trained(config);
  trained.fit(test::small_hpc().train);
  core::save_model(trained, path_);
  const core::TrustedHmd served = core::load_model(path_);
  expect_bit_identical_outputs(trained, served, test::small_hpc().test.X);
}

TEST_F(ModelArtifactTest, ServingDetectorCannotBeRefit) {
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  core::TrustedHmd served = core::load_model(path_);
  EXPECT_THROW(served.fit(test::small_dvfs().train), InvalidArgument);
}

TEST_F(ModelArtifactTest, MissingArtifactLooksAbsentAndThrows) {
  EXPECT_FALSE(core::model_exists(path_));
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, BadMagicIsRejectedNotMisread) {
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  corrupt_byte(0, 'X');
  EXPECT_FALSE(core::model_exists(path_));
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, VersionMismatchIsRejectedNotMisread) {
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  // The u32 version sits right after the 4-byte magic; a future (or
  // corrupt) version must make the artifact look absent so callers
  // re-train rather than misread the layout.
  corrupt_byte(4, static_cast<char>(core::kModelFormatVersion + 1));
  EXPECT_FALSE(core::model_exists(path_));
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, UnknownEngineTagIsRejected) {
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  // Format v1, tree model: engine id is a u32 at offset 8 (magic+version)
  // + 44 (config block) + 1 (has_scaler = 0 for trees).
  corrupt_byte(53, 0x7e);
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, CorruptForestFeatureWidthIsRejected) {
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  // Format v1, tree model: the forest blob's u64 feature width starts at
  // offset 57 (header 8 + config 44 + has_scaler 1 + engine id 4).
  // Zeroing its low byte makes the width implausible; the loader must
  // throw rather than hand the traversal an arena it could misindex.
  corrupt_byte(57, 0);
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, ServedDetectorRejectsWrongWidthInputs) {
  // A DVFS-trained forest (14 features) must refuse HPC rows (8
  // features) instead of reading out of bounds.
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  const core::TrustedHmd served = core::load_model(path_);
  EXPECT_THROW(served.detect_batch(test::small_hpc().test.X),
               InvalidArgument);
  EXPECT_THROW(served.detect(test::small_hpc().test.X.row(0)),
               InvalidArgument);
}

TEST_F(ModelArtifactTest, TruncatedArtifactThrowsEverywhere) {
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic}) {
    SCOPED_TRACE(core::model_kind_name(kind));
    core::save_model(train(kind, 10), path_);
    const auto full = std::filesystem::file_size(path_);
    // Chop the file at several depths: inside the engine blob, inside the
    // scaler/config, and just past the header. Every cut must throw.
    for (const auto keep :
         {full - 4, full / 2, full / 4, std::uintmax_t{16}}) {
      std::filesystem::resize_file(path_, keep);
      EXPECT_TRUE(core::model_exists(path_));  // header still advertises
      EXPECT_THROW(core::load_model(path_), IoError) << "kept " << keep;
      core::save_model(train(kind, 10), path_);  // restore for next cut
    }
  }
}

TEST_F(ModelArtifactTest, ModelPathAppendsSuffix) {
  EXPECT_EQ(core::model_path("models/dvfs_rf"), "models/dvfs_rf.hmdf");
}

}  // namespace
