// Model artifact (.hmdf): a saved detector must reload as a serving-only
// detector — no ml::Bagging on the path — emitting bit-identical
// Detections and Estimates; corrupt, truncated, or version-mismatched
// artifacts must be rejected loudly, never misread. The v2 zero-copy
// layout adds: mmap-loaded and buffer-read engines are bit-identical to
// each other and to the trained detector, misaligned or out-of-range
// section offsets are rejected, and v1 files still load via the stream
// path.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "core/hmd.h"
#include "core/model_artifact.h"
#include "test_support.h"

namespace {

using namespace hmd;

class ModelArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs sibling tests of this fixture in
    // separate processes, and a shared directory would let one test's
    // SetUp delete another's live artifact mid-roundtrip.
    dir_ = std::filesystem::path(
        "test_model_tmp_" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "detector.hmdf").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Overwrite one byte of the artifact at `offset`.
  void corrupt_byte(std::uintmax_t offset, char value) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&value, 1);
  }

  /// Read a little-endian u64 at `offset` (section-table spelunking).
  std::uint64_t read_u64(std::uintmax_t offset) {
    std::ifstream f(path_, std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    std::uint64_t value = 0;
    f.read(reinterpret_cast<char*>(&value), sizeof(value));
    return value;
  }

  /// Overwrite a little-endian u64 at `offset`.
  void write_u64(std::uintmax_t offset, std::uint64_t value) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }

  /// File offset of v2 section `index` (0 config, 1 scaler, 2 engine),
  /// read from the section table at byte 16 — the tests never hard-code
  /// section positions, only the documented table location. The entry
  /// stride (16 bytes checksum-less, 24 checksummed) comes from the
  /// header flags word, never from an assumption about how the file was
  /// saved.
  std::uint64_t section_offset(int index) {
    std::ifstream f(path_, std::ios::binary);
    f.seekg(12);
    std::uint32_t flags = 0;
    f.read(reinterpret_cast<char*>(&flags), sizeof(flags));
    const std::uintmax_t stride =
        (flags & core::kArtifactFlagSectionChecksums) != 0 ? 24 : 16;
    return read_u64(16 + static_cast<std::uintmax_t>(index) * stride);
  }

  core::TrustedHmd train(core::ModelKind kind, int members = 25) {
    core::HmdConfig config;
    config.model = kind;
    config.n_members = members;
    config.seed = 9;
    core::TrustedHmd hmd(config);
    hmd.fit(test::small_dvfs().train);
    return hmd;
  }

  std::filesystem::path dir_;
  std::string path_;
};

void expect_bit_identical_outputs(const core::TrustedHmd& trained,
                                  const core::TrustedHmd& served,
                                  const Matrix& x) {
  const auto want_d = trained.detect_batch(x);
  const auto got_d = served.detect_batch(x);
  const auto want_e = trained.estimate_batch(x);
  const auto got_e = served.estimate_batch(x);
  ASSERT_EQ(got_d.size(), want_d.size());
  ASSERT_EQ(got_e.size(), want_e.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    EXPECT_EQ(got_d[r].prediction, want_d[r].prediction);
    EXPECT_EQ(got_d[r].confidence, want_d[r].confidence);
    EXPECT_EQ(got_d[r].score, want_d[r].score);
    EXPECT_EQ(got_d[r].trusted, want_d[r].trusted);
    EXPECT_EQ(got_e[r].votes_malware, want_e[r].votes_malware);
    EXPECT_EQ(got_e[r].vote_entropy, want_e[r].vote_entropy);
    EXPECT_EQ(got_e[r].soft_entropy, want_e[r].soft_entropy);
    EXPECT_EQ(got_e[r].expected_entropy, want_e[r].expected_entropy);
    EXPECT_EQ(got_e[r].mutual_information, want_e[r].mutual_information);
    EXPECT_EQ(got_e[r].variation_ratio, want_e[r].variation_ratio);
    EXPECT_EQ(got_e[r].max_probability, want_e[r].max_probability);

    // Per-sample serving path too, not just batches.
    const auto one_want = trained.detect(x.row(r));
    const auto one_got = served.detect(x.row(r));
    EXPECT_EQ(one_got.prediction, one_want.prediction);
    EXPECT_EQ(one_got.score, one_want.score);
  }
}

TEST_F(ModelArtifactTest, RoundTripIsBitIdenticalForEveryModelKind) {
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic,
        core::ModelKind::kBaggedSvm}) {
    SCOPED_TRACE(core::model_kind_name(kind));
    const core::TrustedHmd trained = train(kind);
    core::save_model(trained, path_);
    ASSERT_TRUE(core::model_exists(path_));

    const core::TrustedHmd served = core::load_model(path_);
    // The load path reconstructs the engine directly from the blob: no
    // reference ensemble (and no training objects) exist behind it.
    EXPECT_FALSE(served.has_ensemble());
    EXPECT_TRUE(served.uses_flat_engine());
    EXPECT_THROW(served.ensemble(), InvalidArgument);
    EXPECT_EQ(served.config().n_members, trained.config().n_members);
    EXPECT_EQ(served.config().model, trained.config().model);
    EXPECT_EQ(served.converged_fraction(), trained.converged_fraction());

    expect_bit_identical_outputs(trained, served, test::small_dvfs().test.X);
    expect_bit_identical_outputs(trained, served,
                                 test::small_dvfs().unknown.X);
  }
}

TEST_F(ModelArtifactTest, HpcBundleRoundTripsToo) {
  core::HmdConfig config;
  config.model = core::ModelKind::kBaggedLogistic;
  config.n_members = 15;
  core::TrustedHmd trained(config);
  trained.fit(test::small_hpc().train);
  core::save_model(trained, path_);
  const core::TrustedHmd served = core::load_model(path_);
  expect_bit_identical_outputs(trained, served, test::small_hpc().test.X);
}

TEST_F(ModelArtifactTest, ServingDetectorCannotBeRefit) {
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  core::TrustedHmd served = core::load_model(path_);
  EXPECT_THROW(served.fit(test::small_dvfs().train), InvalidArgument);
}

TEST_F(ModelArtifactTest, MissingArtifactLooksAbsentAndThrows) {
  EXPECT_FALSE(core::model_exists(path_));
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, BadMagicIsRejectedNotMisread) {
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  corrupt_byte(0, 'X');
  EXPECT_FALSE(core::model_exists(path_));
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, VersionMismatchIsRejectedNotMisread) {
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  // The u32 version sits right after the 4-byte magic; a future (or
  // corrupt) version must make the artifact look absent so callers
  // re-train rather than misread the layout.
  corrupt_byte(4, static_cast<char>(core::kModelFormatVersion + 1));
  EXPECT_FALSE(core::model_exists(path_));
  EXPECT_THROW(core::load_model(path_), IoError);
}

// The three structural-rejection tests below save with
// section_checksums=false: on a checksummed artifact the same
// corruptions are caught earlier, as LoadError{kChecksum} (pinned down
// in test_fault_injection.cpp) — these pin the *legacy* v2 defence,
// which is all a pre-checksum file has.

TEST_F(ModelArtifactTest, UnknownEngineTagIsRejected) {
  core::save_model(train(core::ModelKind::kRandomForest), path_,
                   core::kModelFormatVersion, /*section_checksums=*/false);
  // The engine id is the u32 opening the engine section (table entry 2).
  corrupt_byte(section_offset(2), 0x7e);
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, CorruptForestFeatureWidthIsRejected) {
  core::save_model(train(core::ModelKind::kRandomForest), path_,
                   core::kModelFormatVersion, /*section_checksums=*/false);
  // The forest blob's u64 feature width follows the engine-id u32.
  // Zeroing its low byte makes the width implausible; the loader must
  // throw rather than hand the traversal an arena it could misindex.
  corrupt_byte(section_offset(2) + 4, 0);
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, MisalignedSectionOffsetIsRejected) {
  core::save_model(train(core::ModelKind::kRandomForest), path_,
                   core::kModelFormatVersion, /*section_checksums=*/false);
  // Nudge the *config* section's table entry off its 64-byte boundary.
  // The config section is followed by alignment padding, so offset+4 and
  // its size stay comfortably in bounds — only the alignment check can
  // reject it, which is exactly what this test pins down.
  const std::uint64_t config_offset = section_offset(0);
  write_u64(16 + 0 * 16, config_offset + 4);
  EXPECT_THROW(core::load_model(path_), IoError);
  write_u64(16 + 0 * 16, config_offset);  // restore

  // An out-of-bounds offset (aligned or not) is equally rejected.
  write_u64(16 + 2 * 16, std::uint64_t{1} << 40);
  EXPECT_THROW(core::load_model(path_), IoError);
}

TEST_F(ModelArtifactTest, TruncatedSectionTableIsRejected) {
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  // Chop the file inside the section table (16 + 3×16 = 64 bytes): the
  // header still advertises a v2 artifact, but parsing the table must
  // throw, never read past the mapping.
  for (const std::uintmax_t keep : {60, 40, 17}) {
    std::filesystem::resize_file(path_, keep);
    EXPECT_TRUE(core::model_exists(path_));
    EXPECT_THROW(core::load_model(path_), IoError) << "kept " << keep;
  }
}

TEST_F(ModelArtifactTest, MmapAndStreamLoadsAreBitIdentical) {
  // The zero-copy acceptance gate: for every ModelKind at M ∈ {1, 5,
  // 100}, an mmap-loaded engine and a full-copy-loaded engine emit
  // outputs bit-identical to the trained detector (and therefore to each
  // other) on both bundles' feature distributions.
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic,
        core::ModelKind::kBaggedSvm}) {
    for (const int members : {1, 5, 100}) {
      SCOPED_TRACE(core::model_kind_name(kind) + " M=" +
                   std::to_string(members));
      const core::TrustedHmd trained = train(kind, members);
      core::save_model(trained, path_);

      const core::TrustedHmd mapped =
          core::load_model(path_, 0, core::LoadMode::kMmap);
      const core::TrustedHmd copied =
          core::load_model(path_, 0, core::LoadMode::kStream);
      EXPECT_TRUE(mapped.engine().zero_copy());
      EXPECT_FALSE(copied.engine().zero_copy());

      expect_bit_identical_outputs(trained, mapped,
                                   test::small_dvfs().test.X);
      expect_bit_identical_outputs(trained, copied,
                                   test::small_dvfs().test.X);
      expect_bit_identical_outputs(trained, mapped,
                                   test::small_dvfs().unknown.X);
    }
  }
}

TEST_F(ModelArtifactTest, MmapRoundTripsOnHpcBundleToo) {
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic,
        core::ModelKind::kBaggedSvm}) {
    for (const int members : {1, 5, 100}) {
      SCOPED_TRACE(core::model_kind_name(kind) + " M=" +
                   std::to_string(members));
      core::HmdConfig config;
      config.model = kind;
      config.n_members = members;
      config.seed = 9;
      core::TrustedHmd trained(config);
      trained.fit(test::small_hpc().train);
      core::save_model(trained, path_);
      const core::TrustedHmd mapped =
          core::load_model(path_, 0, core::LoadMode::kMmap);
      expect_bit_identical_outputs(trained, mapped, test::small_hpc().test.X);
    }
  }
}

TEST_F(ModelArtifactTest, V1FallbackRoundTripIsBitIdentical) {
  // A v1 artifact (the pre-zero-copy stream layout) must still load —
  // through the stream path, owned storage, same outputs — whatever
  // LoadMode the caller asks for.
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic}) {
    SCOPED_TRACE(core::model_kind_name(kind));
    const core::TrustedHmd trained = train(kind);
    core::save_model(trained, path_, core::kModelFormatV1);
    ASSERT_TRUE(core::model_exists(path_));
    for (const auto mode : {core::LoadMode::kAuto, core::LoadMode::kMmap,
                            core::LoadMode::kStream}) {
      const core::TrustedHmd served = core::load_model(path_, 0, mode);
      EXPECT_FALSE(served.engine().zero_copy());
      expect_bit_identical_outputs(trained, served,
                                   test::small_dvfs().test.X);
    }
  }
}

TEST_F(ModelArtifactTest, MappedDetectorSurvivesRenamePublishedSwap) {
  // The hot-swap guarantee at the mapping level: a detector serving from
  // a mapped artifact keeps emitting the *old* model's outputs, bit for
  // bit, after save_model rename-publishes a different model over the
  // same path — the old inode stays alive under the mapping.
  const core::TrustedHmd first = train(core::ModelKind::kRandomForest, 25);
  core::save_model(first, path_);
  const core::TrustedHmd mapped =
      core::load_model(path_, 0, core::LoadMode::kMmap);
  ASSERT_TRUE(mapped.engine().zero_copy());

  core::save_model(train(core::ModelKind::kBaggedSvm, 7), path_);
  expect_bit_identical_outputs(first, mapped, test::small_dvfs().test.X);

  // And the path now serves the replacement.
  const core::TrustedHmd swapped =
      core::load_model(path_, 0, core::LoadMode::kMmap);
  EXPECT_EQ(swapped.config().model, core::ModelKind::kBaggedSvm);
  EXPECT_EQ(swapped.config().n_members, 7);
}

TEST_F(ModelArtifactTest, ServedDetectorRejectsWrongWidthInputs) {
  // A DVFS-trained forest (14 features) must refuse HPC rows (8
  // features) instead of reading out of bounds.
  core::save_model(train(core::ModelKind::kRandomForest), path_);
  const core::TrustedHmd served = core::load_model(path_);
  EXPECT_THROW(served.detect_batch(test::small_hpc().test.X),
               InvalidArgument);
  EXPECT_THROW(served.detect(test::small_hpc().test.X.row(0)),
               InvalidArgument);
}

TEST_F(ModelArtifactTest, TruncatedArtifactThrowsEverywhere) {
  for (const auto kind :
       {core::ModelKind::kRandomForest, core::ModelKind::kBaggedLogistic}) {
    SCOPED_TRACE(core::model_kind_name(kind));
    core::save_model(train(kind, 10), path_);
    const auto full = std::filesystem::file_size(path_);
    // Chop the file at several depths: inside the engine blob, inside the
    // scaler/config, and just past the header. Every cut must throw.
    for (const auto keep :
         {full - 4, full / 2, full / 4, std::uintmax_t{16}}) {
      std::filesystem::resize_file(path_, keep);
      EXPECT_TRUE(core::model_exists(path_));  // header still advertises
      EXPECT_THROW(core::load_model(path_), IoError) << "kept " << keep;
      core::save_model(train(kind, 10), path_);  // restore for next cut
    }
  }
}

TEST_F(ModelArtifactTest, ModelPathAppendsSuffix) {
  EXPECT_EQ(core::model_path("models/dvfs_rf"), "models/dvfs_rf.hmdf");
}

}  // namespace
