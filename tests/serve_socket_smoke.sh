#!/usr/bin/env bash
# End-to-end socket serving smoke test, run by ctest in both the Release
# and ASan+UBSan CI jobs:
#
#   1. hmd_train writes two model families into a registry directory,
#      plus a replacement RF artifact kept outside it as swap material.
#   2. hmd_serve hosts them over TCP (--listen on an ephemeral port,
#      --refresh-ms=200); the port is parsed from its "listening on"
#      line.
#   3. hmd_client drives wire-protocol traffic with --verify: every
#      response must be bit-identical to a direct score() of the same
#      artifact — for the default detection mask, for the full estimate
#      mask under an explicit uncertainty mode, and for the second model
#      key (per-model routing).
#   4. An unknown model key must come back as typed error frames (client
#      exits 1), and the connection must survive to serve a valid
#      request afterwards (the client run itself proves this: errors are
#      counted, not fatal).
#   5. The RF artifact is overwritten mid-serve with the replacement
#      (temp file + rename publish). Within the refresh cadence a
#      --verify run against the NEW artifact must reach bit-parity —
#      proof the hot-swap landed and in-flight serving never broke.
#   6. SIGTERM: the server must drain, print its traffic/batcher/served
#      summaries, and exit 0.
#
# usage: serve_socket_smoke.sh <hmd_train> <hmd_serve> <hmd_client>
set -euo pipefail

train_bin=$1
serve_bin=$2
client_bin=$3

workdir=$(mktemp -d serve_socket_smoke.XXXXXX)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

models="$workdir/models"
mkdir -p "$models"

common=(--dataset=dvfs --scale=0.1 --threads=1)

"$train_bin" "${common[@]}" --model=rf --members=5 \
    --out="$models/dvfs_RF_M5.hmdf"
"$train_bin" "${common[@]}" --model=lr --members=5 \
    --out="$models/dvfs_LR_M5.hmdf"
# Swap material: a different model *family* so its scores genuinely
# differ from the RF's (two RF ensembles can agree bit-for-bit on an
# easy slice, which would make the post-swap parity check vacuous).
# Lives outside the registry dir (no .hmdf suffix) so the scan never
# sees it.
"$train_bin" "${common[@]}" --model=svm --members=9 \
    --out="$workdir/replacement.artifact"

"$serve_bin" --models="$models" --threads=1 --listen=127.0.0.1:0 \
    --refresh-ms=200 >"$workdir/server.log" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port=$(grep -oP 'listening on 127\.0\.0\.1:\K[0-9]+' "$workdir/server.log" \
      || true)
  [ -n "$port" ] && break
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
[ -n "$port" ] || {
  echo "FAIL: server never reported its port" >&2
  cat "$workdir/server.log" >&2
  exit 1; }

grep -q "serving  2 model(s)" "$workdir/server.log" || {
  echo "FAIL: expected 2 models from the registry" >&2; exit 1; }

# Every load line must name the kernel backend the engine selected
# (arena for these mmap-loaded stump-scale bundles under the default
# --jit=auto policy; jit where the profitability heuristic takes it;
# stream-fallback when zero-copy is unavailable).
for key in dvfs_RF_M5 dvfs_LR_M5; do
  grep -Eq "^model    $key +.*, kernel (jit|arena|stream-fallback)," \
      "$workdir/server.log" || {
    echo "FAIL: load line for $key does not report a kernel backend" >&2
    cat "$workdir/server.log" >&2
    exit 1; }
done

connect=(--connect=127.0.0.1:"$port" "${common[@]}" --rows=4)

# Leg 1: detection mask, concurrent pipelined connections, bit-parity
# against the artifact being served.
out=$("$client_bin" "${connect[@]}" --model=dvfs_RF_M5 --requests=200 \
    --connections=4 --pipeline=2 --verify="$models/dvfs_RF_M5.hmdf")
echo "$out"
grep -q "parity   ok" <<<"$out" || {
  echo "FAIL: detection-mask traffic not bit-identical" >&2; exit 1; }

# Leg 2: full estimate mask under an explicit uncertainty mode.
out=$("$client_bin" "${connect[@]}" --model=dvfs_RF_M5 --requests=100 \
    --outputs=estimate --mode=soft_entropy \
    --verify="$models/dvfs_RF_M5.hmdf")
echo "$out"
grep -q "parity   ok" <<<"$out" || {
  echo "FAIL: estimate-mask traffic not bit-identical" >&2; exit 1; }

# Leg 2b: the same estimate-mask traffic on the fast accuracy tier. The
# --verify oracle is always exact-tier, so parity here means every
# response sat inside the documented ULP band (integer columns
# bit-identical) — the over-the-wire accuracy contract, end to end.
out=$("$client_bin" "${connect[@]}" --model=dvfs_RF_M5 --requests=100 \
    --outputs=estimate --mode=soft_entropy --accuracy=fast \
    --verify="$models/dvfs_RF_M5.hmdf")
echo "$out"
grep -q "parity   ok" <<<"$out" || {
  echo "FAIL: fast-tier traffic outside the contract band" >&2; exit 1; }
grep -q "accuracy=fast" <<<"$out" || {
  echo "FAIL: client did not report the fast tier" >&2; exit 1; }

# Leg 3: the other model key — per-model routing in the batcher.
out=$("$client_bin" "${connect[@]}" --model=dvfs_LR_M5 --requests=100 \
    --connections=2 --verify="$models/dvfs_LR_M5.hmdf")
echo "$out"
grep -q "parity   ok" <<<"$out" || {
  echo "FAIL: second model key not bit-identical" >&2; exit 1; }

# Leg 4: unknown model key -> typed error frames, client exit 1, and the
# server must keep running (checked right after).
rc=0
out=$("$client_bin" "${connect[@]}" --model=nope --requests=5) || rc=$?
echo "$out"
[ "$rc" -eq 1 ] || {
  echo "FAIL: unknown-model traffic must exit 1, got $rc" >&2; exit 1; }
grep -q "unknown-model" <<<"$out" || {
  echo "FAIL: expected typed unknown-model error frames" >&2; exit 1; }
kill -0 "$server_pid" 2>/dev/null || {
  echo "FAIL: server died on bad traffic" >&2; exit 1; }

# Leg 4b: bogus-key flood. Unknown keys now bounce off the registry's
# cuckoo-filter front door (no shard lock, no load attempt), but the
# wire contract must not move: every distinct bogus key still yields the
# same typed unknown-model error frames, and the server keeps serving.
for bogus in ghost_0 ghost_1 ghost_2 ghost_3; do
  rc=0
  out=$("$client_bin" "${connect[@]}" --model="$bogus" --requests=5) || rc=$?
  [ "$rc" -eq 1 ] || {
    echo "FAIL: flood key $bogus must exit 1, got $rc" >&2; exit 1; }
  grep -q "unknown-model" <<<"$out" || {
    echo "FAIL: flood key $bogus lost the typed error" >&2; exit 1; }
done
out=$("$client_bin" "${connect[@]}" --model=dvfs_RF_M5 --requests=20 \
    --verify="$models/dvfs_RF_M5.hmdf")
grep -q "parity   ok" <<<"$out" || {
  echo "FAIL: serving broke after the bogus-key flood" >&2; exit 1; }

# Leg 5: publish the replacement over the RF artifact (temp + rename,
# the atomic-publish idiom) and require a --verify run against the NEW
# artifact to reach bit-parity within the 200 ms refresh cadence.
cp "$workdir/replacement.artifact" "$models/.swap_tmp"
mv "$models/.swap_tmp" "$models/dvfs_RF_M5.hmdf"

swapped=no
for _ in $(seq 1 50); do
  if "$client_bin" "${connect[@]}" --model=dvfs_RF_M5 --requests=50 \
      --verify="$models/dvfs_RF_M5.hmdf" \
      >"$workdir/client_swap.log" 2>&1; then
    swapped=yes
    break
  fi
  sleep 0.2
done
cat "$workdir/client_swap.log"
[ "$swapped" = yes ] || {
  echo "FAIL: hot-swapped artifact never reached bit-parity" >&2
  cat "$workdir/server.log" >&2
  exit 1; }
reload_seen=no
for _ in $(seq 1 25); do
  if grep -q "refresh  reloaded dvfs_RF_M5" "$workdir/server.log"; then
    reload_seen=yes
    break
  fi
  sleep 0.2
done
[ "$reload_seen" = yes ] || {
  echo "FAIL: refresh() did not report the reload" >&2
  cat "$workdir/server.log" >&2
  exit 1; }

# Leg 6: SIGTERM -> drain, summaries, exit 0.
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
cat "$workdir/server.log"
[ "$rc" -eq 0 ] || {
  echo "FAIL: SIGTERM shutdown must exit 0, got $rc" >&2; exit 1; }
grep -q "^traffic  " "$workdir/server.log" || {
  echo "FAIL: missing traffic summary" >&2; exit 1; }
grep -q "^batcher  " "$workdir/server.log" || {
  echo "FAIL: missing batcher summary" >&2; exit 1; }
grep -q "^served   " "$workdir/server.log" || {
  echo "FAIL: missing served summary" >&2; exit 1; }
# The end-of-run health summary must carry the kernel backend from the
# registry snapshot (the same field ModelHealth exposes to callers).
for key in dvfs_RF_M5 dvfs_LR_M5; do
  grep -Eq "^health   $key +.*, kernel (jit|arena|stream-fallback)," \
      "$workdir/server.log" || {
    echo "FAIL: health summary for $key missing kernel backend" >&2
    cat "$workdir/server.log" >&2
    exit 1; }
done
# Accuracy summary: the tier counters must show both the exact traffic
# and leg 2b's fast-tier requests, plus the active simd ISA level.
grep -Eq "^accuracy [0-9]+ exact-tier, [1-9][0-9]* fast-tier request\(s\), simd (scalar|avx2|avx512)" \
    "$workdir/server.log" || {
  echo "FAIL: missing or malformed accuracy summary" >&2
  cat "$workdir/server.log" >&2
  exit 1; }
# Fleet summary: the filter front door must report the bogus-key flood
# as rejects, and the residency line must account for both models.
grep -Eq "^fleet    2 key\(s\) in [0-9]+ shard\(s\), filter .* reject\(s\)" \
    "$workdir/server.log" || {
  echo "FAIL: missing or malformed fleet summary" >&2
  cat "$workdir/server.log" >&2
  exit 1; }
grep -Eq "^resident .* across 2 model\(s\)" "$workdir/server.log" || {
  echo "FAIL: missing or malformed residency summary" >&2
  cat "$workdir/server.log" >&2
  exit 1; }

echo "serve_socket_smoke: OK"
