#!/usr/bin/env bash
# End-to-end train-once / serve-many smoke test, run by ctest in both the
# Release and ASan+UBSan CI jobs:
#
#   1. hmd_train writes two model families (RF and LR) into a registry
#      directory, plus an SVM artifact kept outside it as swap material.
#   2. hmd_serve serves both families from one DetectorRegistry and, via
#      --swap-with, replaces the first model's artifact mid-run (temp
#      file + rename publish) and requires refresh() to hot-swap it (the
#      tool exits non-zero if the swap is not picked up).
#   3. The output must show both families and the hot-swap line.
#   4. The same serve -> overwrite -> refresh() loop runs again with
#      --mmap=on: zero-copy engines must serve and hot-swap while the
#      pre-swap snapshot's mapping (old inode) keeps scoring, and once
#      more with --mmap=off to cover the full-copy fallback.
#   5. A bit-flipped artifact (hmd_faultgen) is skipped at startup with a
#      typed checksum error while its healthy sibling keeps serving; with
#      every artifact corrupt, the server exits 3 (nothing servable).
#
# usage: serve_smoke.sh <hmd_train> <hmd_serve> <hmd_faultgen>
set -euo pipefail

train_bin=$1
serve_bin=$2
faultgen_bin=$3

workdir=$(mktemp -d serve_smoke.XXXXXX)
trap 'rm -rf "$workdir"' EXIT

models="$workdir/models"
mkdir -p "$models"

common=(--dataset=dvfs --scale=0.1 --threads=1)

"$train_bin" "${common[@]}" --model=rf --members=5 \
    --out="$models/dvfs_RF_M5.hmdf"
"$train_bin" "${common[@]}" --model=lr --members=5 \
    --out="$models/dvfs_LR_M5.hmdf"
# Swap material lives outside the registry dir (and without the .hmdf
# suffix) so the directory scan never picks it up as a third model.
"$train_bin" "${common[@]}" --model=svm --members=9 \
    --out="$workdir/swap_svm.artifact"

out=$("$serve_bin" --models="$models" "${common[@]}" --batches=8 \
    --swap-with="$workdir/swap_svm.artifact")
echo "$out"

grep -q "flat_forest" <<<"$out" || {
  echo "FAIL: RF family not served" >&2; exit 1; }
grep -q "flat_linear_lr" <<<"$out" || {
  echo "FAIL: LR family not served" >&2; exit 1; }
grep -q "serving  2 model(s)" <<<"$out" || {
  echo "FAIL: expected 2 models from the registry" >&2; exit 1; }
grep -q "hot-swap .* -> flat_linear_svm x9" <<<"$out" || {
  echo "FAIL: refresh() hot-swap not reported" >&2; exit 1; }

# The hot-swap left an SVM artifact under the LR key (served.front() is
# the first key in sort order); restore the LR model so the mmap round
# below serves both original families again.
"$train_bin" "${common[@]}" --model=lr --members=5 \
    --out="$models/dvfs_LR_M5.hmdf"

# Round 2: the same serve -> overwrite -> refresh() hot-swap loop on the
# explicit mmap path. Engines must report zero-copy residency and the
# pre-swap snapshot (whose mapping pins the old inode through the
# rename) must keep serving through the swap.
out=$("$serve_bin" --models="$models" "${common[@]}" --batches=8 --mmap=on \
    --swap-with="$workdir/swap_svm.artifact")
echo "$out"

grep -q "load=mmap" <<<"$out" || {
  echo "FAIL: --mmap=on not honoured" >&2; exit 1; }
grep -q "zero-copy" <<<"$out" || {
  echo "FAIL: mmap-loaded engines not zero-copy" >&2; exit 1; }
grep -q "hot-swap .* flat_linear_lr -> flat_linear_svm x9" <<<"$out" || {
  echo "FAIL: refresh() hot-swap not reported on the mmap path" >&2
  exit 1; }

# Round 3: --mmap=off must serve the same registry through the full-copy
# read path (no zero-copy engines).
"$train_bin" "${common[@]}" --model=lr --members=5 \
    --out="$models/dvfs_LR_M5.hmdf"
out=$("$serve_bin" --models="$models" "${common[@]}" --batches=4 --mmap=off)
echo "$out"

grep -q "load=stream" <<<"$out" || {
  echo "FAIL: --mmap=off not honoured" >&2; exit 1; }
grep -q "zero-copy" <<<"$out" && {
  echo "FAIL: stream path must not produce zero-copy engines" >&2; exit 1; }

# Round 4: corrupt the RF artifact (one flipped engine bit). The server
# must skip it with a typed checksum error, keep serving the LR sibling,
# and still exit 0 — one bad artifact never takes down a healthy one.
"$faultgen_bin" bitflip "$models/dvfs_RF_M5.hmdf" --section=engine \
    --offset=-1 >/dev/null
rc=0
out=$("$serve_bin" --models="$models" "${common[@]}" --batches=4 2>&1) \
    || rc=$?
echo "$out"

[ "$rc" -eq 0 ] || {
  echo "FAIL: corrupted sibling must not fail the serve (exit $rc)" >&2
  exit 1; }
grep -q "skipping dvfs_RF_M5: load error \[checksum\]" <<<"$out" || {
  echo "FAIL: corrupt artifact not rejected with a typed checksum error" >&2
  exit 1; }
grep -q "serving  1 model(s)" <<<"$out" || {
  echo "FAIL: healthy sibling not served past the corrupt artifact" >&2
  exit 1; }

# With *every* artifact corrupt there is nothing to serve: exit 3, the
# load/integrity code — distinct from usage (2) and runtime failure (1).
"$faultgen_bin" bitflip "$models/dvfs_LR_M5.hmdf" --section=scaler \
    --offset=-1 >/dev/null
rc=0
"$serve_bin" --models="$models" "${common[@]}" --batches=4 >/dev/null 2>&1 \
    || rc=$?
[ "$rc" -eq 3 ] || {
  echo "FAIL: nothing-servable must exit 3, got $rc" >&2; exit 1; }

echo "serve_smoke: OK"
