// hmd_faultgen — deterministic artifact corruption for fault-injection
// drills and tests.
//
// Reads a `.hmdf` artifact's section table (core::inspect_model — no
// payload parsing, so it works on artifacts the loader would reject) and
// produces a precisely-damaged variant: one flipped bit in a named
// section, a truncated tail, a zeroed section, or a torn half-written
// publish. Every mutation is written the same way a legitimate publish
// is — sibling temp file + rename — so a serving process under test
// observes exactly what a real bad publish looks like: a fresh inode
// carrying wrong bytes, never an in-place rewrite of the artifact it may
// be mmap-serving.
//
// commands:
//   info     FILE                 print version, flags, and section table
//   bitflip  FILE [--section=config|scaler|engine] [--offset=N] [--bit=B]
//                                 flip one bit inside a section (defaults:
//                                 engine, offset 0, bit 0); with
//                                 --offset=-1, the section's middle byte
//   truncate FILE (--bytes=N | --keep=N)
//                                 drop N tail bytes / keep the first N
//   zero     FILE --section=NAME  zero a whole section
//   torn     FILE                 keep only the first half (a publish
//                                 interrupted mid-write by a non-atomic
//                                 foreign writer)
//   publish  SRC DST              temp+rename copy (the *correct* swap,
//                                 for restore legs of chaos drills)
//
// Exit codes: 0 success, 2 usage, 3 the artifact could not be read or
// the requested section/range does not exist.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/error.h"
#include "core/model_artifact.h"

namespace {

using namespace hmd;

[[noreturn]] void usage_error(const std::string& detail) {
  std::fprintf(stderr,
               "hmd_faultgen: %s\n"
               "usage: hmd_faultgen info FILE\n"
               "       hmd_faultgen bitflip FILE [--section=NAME] "
               "[--offset=N] [--bit=B]\n"
               "       hmd_faultgen truncate FILE (--bytes=N | --keep=N)\n"
               "       hmd_faultgen zero FILE --section=NAME\n"
               "       hmd_faultgen torn FILE\n"
               "       hmd_faultgen publish SRC DST\n",
               detail.c_str());
  std::exit(2);
}

std::vector<char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw LoadError(LoadErrorCode::kIo, path, "cannot open");
  }
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<char> bytes(size);
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  if (!in) throw LoadError(LoadErrorCode::kIo, path, "read failed");
  return bytes;
}

/// Write `bytes` over `path` the way a real publish happens: sibling
/// temp file, then rename. (No fsync — a drill tool does not need the
/// durability discipline, only the fresh-inode visibility semantics.)
void publish_bytes(const std::vector<char>& bytes, const std::string& path) {
  const std::string tmp = path + ".fault.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("hmd_faultgen: cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw IoError("hmd_faultgen: write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

const core::ArtifactSectionInfo& find_section(const core::ArtifactInfo& info,
                                              const std::string& path,
                                              const std::string& name) {
  for (const auto& section : info.sections) {
    if (section.name == name) return section;
  }
  throw LoadError(LoadErrorCode::kBadStructure, path,
                  "no section named '" + name +
                      "' (v" + std::to_string(info.version) +
                      " artifact; v1 files have no section table)");
}

struct Options {
  std::string section = "engine";
  long long offset = 0;
  int bit = 0;
  long long bytes = -1;
  long long keep = -1;
};

Options parse_options(int argc, char** argv, int first) {
  Options opts;
  args::Parser cli(
      argc, argv,
      [](const std::string& bad) { usage_error("bad argument '" + bad + "'"); },
      first);
  while (cli.next()) {
    if (cli.match("--section", opts.section)) continue;
    if (cli.match_int("--offset", opts.offset)) continue;
    if (cli.match_int("--bit", opts.bit, 0, 7)) continue;
    if (cli.match_int("--bytes", opts.bytes, 1)) continue;
    if (cli.match_int("--keep", opts.keep, 0)) continue;
    cli.reject();
  }
  return opts;
}

int cmd_info(const std::string& path) {
  const core::ArtifactInfo info = core::inspect_model(path);
  std::printf("%s: v%u, %llu bytes, section checksums %s\n", path.c_str(),
              info.version,
              static_cast<unsigned long long>(info.file_bytes),
              info.section_checksums ? "on" : "off");
  for (const auto& section : info.sections) {
    std::printf("  %-8s offset %8llu  size %10llu  xxh64 %016llx\n",
                section.name.c_str(),
                static_cast<unsigned long long>(section.offset),
                static_cast<unsigned long long>(section.size),
                static_cast<unsigned long long>(section.checksum));
  }
  return 0;
}

int cmd_bitflip(const std::string& path, const Options& opts) {
  const core::ArtifactInfo info = core::inspect_model(path);
  const auto& section = find_section(info, path, opts.section);
  if (section.size == 0) {
    throw LoadError(LoadErrorCode::kBadStructure, path,
                    "section '" + opts.section + "' is empty");
  }
  const std::uint64_t rel =
      opts.offset < 0 ? section.size / 2
                      : static_cast<std::uint64_t>(opts.offset);
  if (rel >= section.size) usage_error("--offset past end of section");
  std::vector<char> bytes = read_all(path);
  const std::uint64_t at = section.offset + rel;
  bytes[at] = static_cast<char>(bytes[at] ^ (1 << opts.bit));
  publish_bytes(bytes, path);
  std::printf("bitflip  %s: section %s byte %llu bit %d\n", path.c_str(),
              opts.section.c_str(), static_cast<unsigned long long>(rel),
              opts.bit);
  return 0;
}

int cmd_truncate(const std::string& path, const Options& opts) {
  if ((opts.bytes < 0) == (opts.keep < 0)) {
    usage_error("truncate needs exactly one of --bytes / --keep");
  }
  std::vector<char> bytes = read_all(path);
  const std::size_t keep =
      opts.keep >= 0
          ? static_cast<std::size_t>(opts.keep)
          : bytes.size() - std::min<std::size_t>(
                               bytes.size(),
                               static_cast<std::size_t>(opts.bytes));
  if (keep >= bytes.size()) usage_error("nothing to truncate");
  bytes.resize(keep);
  publish_bytes(bytes, path);
  std::printf("truncate %s: kept %zu bytes\n", path.c_str(), keep);
  return 0;
}

int cmd_zero(const std::string& path, const Options& opts) {
  const core::ArtifactInfo info = core::inspect_model(path);
  const auto& section = find_section(info, path, opts.section);
  std::vector<char> bytes = read_all(path);
  std::memset(bytes.data() + section.offset, 0,
              static_cast<std::size_t>(section.size));
  publish_bytes(bytes, path);
  std::printf("zero     %s: section %s (%llu bytes)\n", path.c_str(),
              opts.section.c_str(),
              static_cast<unsigned long long>(section.size));
  return 0;
}

int cmd_torn(const std::string& path) {
  std::vector<char> bytes = read_all(path);
  if (bytes.size() < 2) usage_error("file too small to tear");
  bytes.resize(bytes.size() / 2);
  publish_bytes(bytes, path);
  std::printf("torn     %s: kept first %zu bytes\n", path.c_str(),
              bytes.size());
  return 0;
}

int cmd_publish(const std::string& source, const std::string& target) {
  publish_bytes(read_all(source), target);
  std::printf("publish  %s -> %s\n", source.c_str(), target.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage_error("missing command or file");
  const std::string command = argv[1];
  const std::string path = argv[2];
  try {
    if (command == "info") {
      if (argc != 3) usage_error("info takes exactly one file");
      return cmd_info(path);
    }
    if (command == "bitflip") return cmd_bitflip(path, parse_options(argc, argv, 3));
    if (command == "truncate")
      return cmd_truncate(path, parse_options(argc, argv, 3));
    if (command == "zero") return cmd_zero(path, parse_options(argc, argv, 3));
    if (command == "torn") {
      if (argc != 3) usage_error("torn takes exactly one file");
      return cmd_torn(path);
    }
    if (command == "publish") {
      if (argc != 4) usage_error("publish takes SRC DST");
      return cmd_publish(path, argv[3]);
    }
    usage_error("unknown command '" + command + "'");
  } catch (const LoadError& error) {
    std::fprintf(stderr, "hmd_faultgen: load error [%s] %s: %s\n",
                 load_error_code_name(error.code()), error.path().c_str(),
                 error.detail().c_str());
    return 3;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "hmd_faultgen: error: %s\n", error.what());
    return 3;
  }
}
